file(REMOVE_RECURSE
  "libeat.a"
)
