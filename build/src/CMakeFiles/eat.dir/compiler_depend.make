# Empty compiler generated dependencies file for eat.
# This may be replaced when dependencies are built.
