
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/eat.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/eat.dir/base/logging.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/eat.dir/core/config.cc.o" "gcc" "src/CMakeFiles/eat.dir/core/config.cc.o.d"
  "/root/repo/src/core/mmu.cc" "src/CMakeFiles/eat.dir/core/mmu.cc.o" "gcc" "src/CMakeFiles/eat.dir/core/mmu.cc.o.d"
  "/root/repo/src/core/mmu_stats.cc" "src/CMakeFiles/eat.dir/core/mmu_stats.cc.o" "gcc" "src/CMakeFiles/eat.dir/core/mmu_stats.cc.o.d"
  "/root/repo/src/energy/account.cc" "src/CMakeFiles/eat.dir/energy/account.cc.o" "gcc" "src/CMakeFiles/eat.dir/energy/account.cc.o.d"
  "/root/repo/src/energy/cacti_lite.cc" "src/CMakeFiles/eat.dir/energy/cacti_lite.cc.o" "gcc" "src/CMakeFiles/eat.dir/energy/cacti_lite.cc.o.d"
  "/root/repo/src/energy/coefficients.cc" "src/CMakeFiles/eat.dir/energy/coefficients.cc.o" "gcc" "src/CMakeFiles/eat.dir/energy/coefficients.cc.o.d"
  "/root/repo/src/lite/lite_controller.cc" "src/CMakeFiles/eat.dir/lite/lite_controller.cc.o" "gcc" "src/CMakeFiles/eat.dir/lite/lite_controller.cc.o.d"
  "/root/repo/src/lite/lru_profiler.cc" "src/CMakeFiles/eat.dir/lite/lru_profiler.cc.o" "gcc" "src/CMakeFiles/eat.dir/lite/lru_profiler.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/eat.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/eat.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/eat.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/eat.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/csv.cc" "src/CMakeFiles/eat.dir/stats/csv.cc.o" "gcc" "src/CMakeFiles/eat.dir/stats/csv.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/eat.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/eat.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/eat.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/eat.dir/stats/table.cc.o.d"
  "/root/repo/src/stats/timeline.cc" "src/CMakeFiles/eat.dir/stats/timeline.cc.o" "gcc" "src/CMakeFiles/eat.dir/stats/timeline.cc.o.d"
  "/root/repo/src/tlb/fully_assoc_tlb.cc" "src/CMakeFiles/eat.dir/tlb/fully_assoc_tlb.cc.o" "gcc" "src/CMakeFiles/eat.dir/tlb/fully_assoc_tlb.cc.o.d"
  "/root/repo/src/tlb/mmu_cache.cc" "src/CMakeFiles/eat.dir/tlb/mmu_cache.cc.o" "gcc" "src/CMakeFiles/eat.dir/tlb/mmu_cache.cc.o.d"
  "/root/repo/src/tlb/page_walker.cc" "src/CMakeFiles/eat.dir/tlb/page_walker.cc.o" "gcc" "src/CMakeFiles/eat.dir/tlb/page_walker.cc.o.d"
  "/root/repo/src/tlb/range_tlb.cc" "src/CMakeFiles/eat.dir/tlb/range_tlb.cc.o" "gcc" "src/CMakeFiles/eat.dir/tlb/range_tlb.cc.o.d"
  "/root/repo/src/tlb/range_walker.cc" "src/CMakeFiles/eat.dir/tlb/range_walker.cc.o" "gcc" "src/CMakeFiles/eat.dir/tlb/range_walker.cc.o.d"
  "/root/repo/src/tlb/set_assoc_tlb.cc" "src/CMakeFiles/eat.dir/tlb/set_assoc_tlb.cc.o" "gcc" "src/CMakeFiles/eat.dir/tlb/set_assoc_tlb.cc.o.d"
  "/root/repo/src/vm/memory_manager.cc" "src/CMakeFiles/eat.dir/vm/memory_manager.cc.o" "gcc" "src/CMakeFiles/eat.dir/vm/memory_manager.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/eat.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/eat.dir/vm/page_table.cc.o.d"
  "/root/repo/src/vm/phys_mem.cc" "src/CMakeFiles/eat.dir/vm/phys_mem.cc.o" "gcc" "src/CMakeFiles/eat.dir/vm/phys_mem.cc.o.d"
  "/root/repo/src/vm/range_table.cc" "src/CMakeFiles/eat.dir/vm/range_table.cc.o" "gcc" "src/CMakeFiles/eat.dir/vm/range_table.cc.o.d"
  "/root/repo/src/workloads/pattern.cc" "src/CMakeFiles/eat.dir/workloads/pattern.cc.o" "gcc" "src/CMakeFiles/eat.dir/workloads/pattern.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/eat.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/eat.dir/workloads/suite.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/CMakeFiles/eat.dir/workloads/trace.cc.o" "gcc" "src/CMakeFiles/eat.dir/workloads/trace.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/eat.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/eat.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
