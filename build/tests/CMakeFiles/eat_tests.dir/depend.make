# Empty dependencies file for eat_tests.
# This may be replaced when dependencies are built.
