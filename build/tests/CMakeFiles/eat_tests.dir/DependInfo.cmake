
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_base.cc" "tests/CMakeFiles/eat_tests.dir/test_base.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_base.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/eat_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_cross_org.cc" "tests/CMakeFiles/eat_tests.dir/test_cross_org.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_cross_org.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/eat_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/eat_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_lite_controller.cc" "tests/CMakeFiles/eat_tests.dir/test_lite_controller.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_lite_controller.cc.o.d"
  "/root/repo/tests/test_lru_profiler.cc" "tests/CMakeFiles/eat_tests.dir/test_lru_profiler.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_lru_profiler.cc.o.d"
  "/root/repo/tests/test_memory_manager.cc" "tests/CMakeFiles/eat_tests.dir/test_memory_manager.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_memory_manager.cc.o.d"
  "/root/repo/tests/test_mmu.cc" "tests/CMakeFiles/eat_tests.dir/test_mmu.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_mmu.cc.o.d"
  "/root/repo/tests/test_mmu_cache.cc" "tests/CMakeFiles/eat_tests.dir/test_mmu_cache.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_mmu_cache.cc.o.d"
  "/root/repo/tests/test_page_size.cc" "tests/CMakeFiles/eat_tests.dir/test_page_size.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_page_size.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/eat_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_phys_mem.cc" "tests/CMakeFiles/eat_tests.dir/test_phys_mem.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_phys_mem.cc.o.d"
  "/root/repo/tests/test_range_table.cc" "tests/CMakeFiles/eat_tests.dir/test_range_table.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_range_table.cc.o.d"
  "/root/repo/tests/test_range_tlb.cc" "tests/CMakeFiles/eat_tests.dir/test_range_tlb.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_range_tlb.cc.o.d"
  "/root/repo/tests/test_set_assoc_tlb.cc" "tests/CMakeFiles/eat_tests.dir/test_set_assoc_tlb.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_set_assoc_tlb.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/eat_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/eat_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/eat_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/eat_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/eat_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
