# Empty dependencies file for ablation_fully_assoc.
# This may be replaced when dependencies are built.
