file(REMOVE_RECURSE
  "CMakeFiles/ablation_fully_assoc.dir/ablation_fully_assoc.cc.o"
  "CMakeFiles/ablation_fully_assoc.dir/ablation_fully_assoc.cc.o.d"
  "ablation_fully_assoc"
  "ablation_fully_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fully_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
