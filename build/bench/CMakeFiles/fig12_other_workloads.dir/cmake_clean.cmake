file(REMOVE_RECURSE
  "CMakeFiles/fig12_other_workloads.dir/fig12_other_workloads.cc.o"
  "CMakeFiles/fig12_other_workloads.dir/fig12_other_workloads.cc.o.d"
  "fig12_other_workloads"
  "fig12_other_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_other_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
