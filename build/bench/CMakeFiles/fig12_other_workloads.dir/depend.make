# Empty dependencies file for fig12_other_workloads.
# This may be replaced when dependencies are built.
