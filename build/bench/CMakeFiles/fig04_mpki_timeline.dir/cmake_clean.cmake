file(REMOVE_RECURSE
  "CMakeFiles/fig04_mpki_timeline.dir/fig04_mpki_timeline.cc.o"
  "CMakeFiles/fig04_mpki_timeline.dir/fig04_mpki_timeline.cc.o.d"
  "fig04_mpki_timeline"
  "fig04_mpki_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_mpki_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
