# Empty dependencies file for fig04_mpki_timeline.
# This may be replaced when dependencies are built.
