file(REMOVE_RECURSE
  "CMakeFiles/ablation_l1range_size.dir/ablation_l1range_size.cc.o"
  "CMakeFiles/ablation_l1range_size.dir/ablation_l1range_size.cc.o.d"
  "ablation_l1range_size"
  "ablation_l1range_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l1range_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
