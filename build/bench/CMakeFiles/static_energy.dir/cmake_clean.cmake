file(REMOVE_RECURSE
  "CMakeFiles/static_energy.dir/static_energy.cc.o"
  "CMakeFiles/static_energy.dir/static_energy.cc.o.d"
  "static_energy"
  "static_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
