# Empty dependencies file for static_energy.
# This may be replaced when dependencies are built.
