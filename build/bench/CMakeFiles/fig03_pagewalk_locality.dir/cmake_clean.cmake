file(REMOVE_RECURSE
  "CMakeFiles/fig03_pagewalk_locality.dir/fig03_pagewalk_locality.cc.o"
  "CMakeFiles/fig03_pagewalk_locality.dir/fig03_pagewalk_locality.cc.o.d"
  "fig03_pagewalk_locality"
  "fig03_pagewalk_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pagewalk_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
