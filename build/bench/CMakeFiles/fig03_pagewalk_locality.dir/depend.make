# Empty dependencies file for fig03_pagewalk_locality.
# This may be replaced when dependencies are built.
