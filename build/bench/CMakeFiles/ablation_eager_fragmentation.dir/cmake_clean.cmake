file(REMOVE_RECURSE
  "CMakeFiles/ablation_eager_fragmentation.dir/ablation_eager_fragmentation.cc.o"
  "CMakeFiles/ablation_eager_fragmentation.dir/ablation_eager_fragmentation.cc.o.d"
  "ablation_eager_fragmentation"
  "ablation_eager_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eager_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
