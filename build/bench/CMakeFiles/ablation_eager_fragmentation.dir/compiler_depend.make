# Empty compiler generated dependencies file for ablation_eager_fragmentation.
# This may be replaced when dependencies are built.
