file(REMOVE_RECURSE
  "CMakeFiles/table02_energy_model.dir/table02_energy_model.cc.o"
  "CMakeFiles/table02_energy_model.dir/table02_energy_model.cc.o.d"
  "table02_energy_model"
  "table02_energy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
