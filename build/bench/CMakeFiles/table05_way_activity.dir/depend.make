# Empty dependencies file for table05_way_activity.
# This may be replaced when dependencies are built.
