file(REMOVE_RECURSE
  "CMakeFiles/table05_way_activity.dir/table05_way_activity.cc.o"
  "CMakeFiles/table05_way_activity.dir/table05_way_activity.cc.o.d"
  "table05_way_activity"
  "table05_way_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_way_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
