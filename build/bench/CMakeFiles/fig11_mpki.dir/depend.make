# Empty dependencies file for fig11_mpki.
# This may be replaced when dependencies are built.
