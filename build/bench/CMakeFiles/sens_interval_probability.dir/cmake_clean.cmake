file(REMOVE_RECURSE
  "CMakeFiles/sens_interval_probability.dir/sens_interval_probability.cc.o"
  "CMakeFiles/sens_interval_probability.dir/sens_interval_probability.cc.o.d"
  "sens_interval_probability"
  "sens_interval_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_interval_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
