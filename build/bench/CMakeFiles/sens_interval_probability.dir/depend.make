# Empty dependencies file for sens_interval_probability.
# This may be replaced when dependencies are built.
