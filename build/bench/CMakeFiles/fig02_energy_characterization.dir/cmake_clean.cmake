file(REMOVE_RECURSE
  "CMakeFiles/fig02_energy_characterization.dir/fig02_energy_characterization.cc.o"
  "CMakeFiles/fig02_energy_characterization.dir/fig02_energy_characterization.cc.o.d"
  "fig02_energy_characterization"
  "fig02_energy_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_energy_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
