# Empty dependencies file for micro_tlb_structures.
# This may be replaced when dependencies are built.
