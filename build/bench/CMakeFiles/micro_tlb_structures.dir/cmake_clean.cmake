file(REMOVE_RECURSE
  "CMakeFiles/micro_tlb_structures.dir/micro_tlb_structures.cc.o"
  "CMakeFiles/micro_tlb_structures.dir/micro_tlb_structures.cc.o.d"
  "micro_tlb_structures"
  "micro_tlb_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tlb_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
