# Empty dependencies file for eatsim.
# This may be replaced when dependencies are built.
