file(REMOVE_RECURSE
  "CMakeFiles/eatsim.dir/eatsim.cc.o"
  "CMakeFiles/eatsim.dir/eatsim.cc.o.d"
  "eatsim"
  "eatsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eatsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
