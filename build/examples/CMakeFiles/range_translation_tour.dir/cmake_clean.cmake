file(REMOVE_RECURSE
  "CMakeFiles/range_translation_tour.dir/range_translation_tour.cpp.o"
  "CMakeFiles/range_translation_tour.dir/range_translation_tour.cpp.o.d"
  "range_translation_tour"
  "range_translation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_translation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
