# Empty compiler generated dependencies file for range_translation_tour.
# This may be replaced when dependencies are built.
