file(REMOVE_RECURSE
  "CMakeFiles/bigmemory_scan.dir/bigmemory_scan.cpp.o"
  "CMakeFiles/bigmemory_scan.dir/bigmemory_scan.cpp.o.d"
  "bigmemory_scan"
  "bigmemory_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigmemory_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
