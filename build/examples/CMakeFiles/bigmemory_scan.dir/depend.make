# Empty dependencies file for bigmemory_scan.
# This may be replaced when dependencies are built.
