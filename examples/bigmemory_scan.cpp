/**
 * @file
 * Defining a custom workload against the public API: an in-memory
 * analytics scan (the big-memory-server scenario the paper's
 * introduction motivates) evaluated under all six TLB organizations,
 * including recording and replaying its trace.
 */

#include <cstdio>
#include <iostream>

#include "sim/simulator.hh"
#include "stats/table.hh"
#include "workloads/pattern.hh"
#include "workloads/trace.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eat;

    // --- 1. Describe the workload: a 1.2 GB column store scanned
    //        sequentially while a 96 MB hash table is probed randomly
    //        and small per-query state stays hot.
    workloads::WorkloadSpec spec;
    spec.name = "column-scan";
    spec.suite = "custom";
    spec.memOpsPerKiloInstr = 400;
    spec.allocs = {{1200_MiB, 1}, {96_MiB, 1}, {1_MiB, 4}};
    spec.buildPattern = [](const std::vector<vm::Region> &r) {
        std::vector<workloads::PatternPtr> kids;
        // the scan: sequential over the column store
        kids.push_back(std::make_unique<workloads::SequentialPattern>(
            workloads::Span({{r[0].vbase, r[0].bytes}}), 128));
        // the join: uniform probes of the hash table
        kids.push_back(std::make_unique<workloads::UniformRandomPattern>(
            workloads::Span({{r[1].vbase, r[1].bytes}})));
        // per-query state: hot pages in the small regions
        std::vector<workloads::Extent> hot;
        for (int i = 2; i < 6; ++i)
            hot.push_back({r[static_cast<std::size_t>(i)].vbase, 16_KiB});
        kids.push_back(std::make_unique<workloads::UniformRandomPattern>(
            workloads::Span(std::move(hot))));
        return std::make_unique<workloads::MixturePattern>(
            std::move(kids), std::vector<double>{0.45, 0.25, 0.30});
    };

    // --- 2. Record a snippet of its trace (Pin-style decoupling).
    {
        vm::MemoryManager mm(vm::OsPolicy{}, 2_GiB);
        workloads::WorkloadGenerator gen(spec, mm, 42);
        workloads::TraceWriter writer("/tmp/column_scan.eat");
        for (int i = 0; i < 10000; ++i)
            writer.write(gen.next());
        std::cout << "recorded " << writer.recordsWritten()
                  << " operations to /tmp/column_scan.eat\n";
    }
    {
        workloads::TraceReader reader("/tmp/column_scan.eat");
        std::uint64_t n = 0;
        while (reader.next())
            ++n;
        std::cout << "replayed " << n << " operations back\n\n";
    }
    std::remove("/tmp/column_scan.eat");

    // --- 3. Evaluate under every organization.
    stats::TextTable table({"org", "pJ/kinstr", "vs THP", "L1 MPKI",
                            "walk MPKI", "miss cyc/kinstr"});
    double thpEnergy = 0.0;
    for (const auto org : core::allOrgs()) {
        sim::SimConfig cfg;
        cfg.workload = spec;
        cfg.mmu = core::MmuConfig::make(org);
        cfg.simulateInstructions = 8'000'000;
        cfg.fastForwardInstructions = 400'000;
        const auto r = sim::simulate(cfg);
        if (org == core::MmuOrg::Thp)
            thpEnergy = r.energyPerKiloInstr();
        table.addRow(
            {std::string(core::orgName(org)),
             stats::TextTable::num(r.energyPerKiloInstr(), 0),
             thpEnergy > 0.0
                 ? stats::TextTable::percent(
                       r.energyPerKiloInstr() / thpEnergy - 1.0)
                 : "-",
             stats::TextTable::num(r.stats.l1Mpki(), 2),
             stats::TextTable::num(r.stats.l2Mpki(), 3),
             stats::TextTable::num(r.missCyclesPerKiloInstr(), 1)});
    }
    std::cout << "column-scan (1.3 GB footprint) across TLB "
                 "organizations:\n\n";
    table.print(std::cout);
    return 0;
}
