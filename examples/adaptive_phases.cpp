/**
 * @file
 * Watch Lite adapt: a workload with phased TLB behaviour plus an
 * OS-triggered huge-page breakup, driven through the public API.
 *
 * Phase A cycles a 3-pages-per-set working set (Lite must keep all 4
 * ways), phase B shrinks it (Lite downsizes), and at the end the OS
 * demotes the huge pages under memory pressure — the performance
 * degradation Lite answers by re-activating every way (paper §4.2.2).
 */

#include <iostream>

#include "core/mmu.hh"
#include "stats/table.hh"
#include "vm/memory_manager.hh"

namespace
{

using namespace eat;

/** Run one Lite interval of page-cycled accesses and report. */
void
runInterval(core::Mmu &mmu, const vm::Region &buffer, unsigned pages,
            const char *label)
{
    constexpr InstrCount kInterval = 1'000'000;
    constexpr std::uint64_t kOps = 300'000;
    for (std::uint64_t i = 0; i < kOps; ++i) {
        mmu.tick(kInterval / kOps);
        mmu.access(buffer.vbase + (i % pages) * 4096);
    }
    std::cout << "  " << label << ": L1-4KB TLB running with "
              << mmu.l1Tlb4K().activeWays() << " active way(s), "
              << mmu.stats().l1Misses << " cumulative L1 misses\n";
}

} // namespace

int
main()
{
    vm::OsPolicy policy;
    policy.transparentHugePages = true;
    vm::MemoryManager mm(policy, 1_GiB);
    const auto arena = mm.mmap(64_MiB);  // 2 MB pages
    const auto buffer = mm.mmap(1_MiB);  // 4 KB pages (too small for THP)

    core::Mmu mmu(core::MmuConfig::make(core::MmuOrg::TlbLite),
                  mm.pageTable(), nullptr);

    std::cout << "Lite adapting to phases (TLB_Lite, 1M-instruction "
                 "intervals):\n\n";

    // Warm the 2 MB side so the L1-2MB TLB is live too.
    for (Addr v = arena.vbase; v < arena.vlimit(); v += 2_MiB)
        mmu.access(v);

    // Phase A: 48 cycled pages = 3 pages/set -> deep utility.
    for (int i = 0; i < 3; ++i)
        runInterval(mmu, buffer, 48, "phase A (48-page working set)");

    // Phase B: 8 cycled pages -> Lite downsizes step by step.
    for (int i = 0; i < 3; ++i)
        runInterval(mmu, buffer, 8, "phase B (8-page working set) ");

    // Memory pressure: the OS breaks the arena's huge pages. The TLBs
    // are flushed (TLB shootdown) and the 4 KB miss rate explodes.
    const auto demoted = mm.demoteRegion(arena);
    mmu.l1Tlb4K().invalidateAll();
    if (mmu.l1Tlb2M())
        mmu.l1Tlb2M()->invalidateAll();
    mmu.l2Tlb().invalidateAll();
    std::cout << "\nOS demoted " << demoted
              << " huge pages under memory pressure\n\n";

    // The arena traffic now misses in the 4 KB hierarchy: Lite sees the
    // MPKI spike and re-activates all ways within one interval.
    constexpr std::uint64_t kOps = 300'000;
    for (int interval = 0; interval < 2; ++interval) {
        for (std::uint64_t i = 0; i < kOps; ++i) {
            mmu.tick(3);
            mmu.access(arena.vbase + (i * 8 * 4096) % (64_MiB));
        }
        std::cout << "  post-demotion interval " << interval << ": "
                  << mmu.l1Tlb4K().activeWays()
                  << " active way(s) in the L1-4KB TLB\n";
    }

    const auto &lite = *mmu.lite();
    std::cout << "\nLite activity: " << lite.stats().intervals
              << " intervals, " << lite.stats().wayDisableEvents
              << " way-disable events, "
              << lite.stats().degradationActivations
              << " degradation re-activations, "
              << lite.stats().randomActivations
              << " random re-activations\n";
    return 0;
}
