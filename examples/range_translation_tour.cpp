/**
 * @file
 * A tour of the RMM substrate through the public API: eager paging,
 * the software range table, the redundancy invariant, and what the
 * L1/L2 range TLBs do to a big-memory workload.
 */

#include <iostream>

#include "core/mmu.hh"
#include "stats/table.hh"
#include "vm/memory_manager.hh"

int
main()
{
    using namespace eat;

    // --- 1. An OS with eager paging: contiguous physical backing and
    //        range-table entries are created at allocation time.
    vm::OsPolicy policy;
    policy.eagerPaging = true;
    vm::MemoryManager mm(policy, 2_GiB);

    const auto arena = mm.mmap(512_MiB);
    const auto index = mm.mmap(32_MiB);
    const auto scratch = mm.mmap(1_MiB);

    std::cout << "eager paging mapped " << mm.mappedBytes() / 1_MiB
              << " MiB into " << mm.rangeTable().size()
              << " range translations (coverage "
              << stats::TextTable::percent(mm.rangeCoverage()) << ")\n";
    for (const auto &[vbase, r] : mm.rangeTable()) {
        std::cout << "  range [" << std::hex << r.vbase << ", "
                  << r.vlimit << ") -> " << r.pbase << std::dec << " ("
                  << r.bytes() / 1_MiB << " MiB)\n";
    }

    // --- 2. The redundancy invariant: page table and range table give
    //        the same translation for every mapped byte.
    const Addr probe = arena.vbase + 123456789;
    const auto viaPages = mm.pageTable().translate(probe);
    const auto viaRanges = mm.rangeTable().lookup(probe);
    std::cout << "\nprobe " << std::hex << probe << ": page table -> "
              << viaPages->paddr(probe) << ", range table -> "
              << viaRanges->paddr(probe) << std::dec << "\n";

    // --- 3. Drive an RMM_Lite MMU over the arena: after one walk, one
    //        L1-range entry covers all 512 MiB.
    core::Mmu mmu(core::MmuConfig::make(core::MmuOrg::RmmLite),
                  mm.pageTable(), &mm.rangeTable());
    mmu.access(arena.vbase);          // cold: walk + range walk
    mmu.access(arena.vbase + 4096);   // L2-range hit, fills L1-range
    std::uint64_t probes = 0;
    for (Addr v = arena.vbase; v < arena.vlimit(); v += 9 * 4096 + 64)
        mmu.access(v), ++probes;

    const auto &s = mmu.stats();
    std::cout << "\nRMM_Lite over " << probes
              << " scattered arena accesses:\n"
              << "  L1-range hits: "
              << s.hits(core::HitSource::L1Range) << "\n"
              << "  page walks:    " << s.l2Misses << "\n"
              << "  range entries in L1-range TLB: "
              << mmu.l1RangeTlb()->validCount() << "\n";

    // --- 4. Touch the other regions: a 4-entry L1-range TLB holds all
    //        three ranges of this process with room to spare. (The
    //        second touch hits a *different* page, so it misses the
    //        L1-page TLB and pulls the range into the L1-range TLB.)
    mmu.access(index.vbase + 5000);
    mmu.access(index.vbase + 5000 + 8192);
    mmu.access(scratch.vbase + 100);
    mmu.access(scratch.vbase + 100 + 8192);
    std::cout << "  after touching all regions: "
              << mmu.l1RangeTlb()->validCount()
              << " ranges cached, walks total " << mmu.stats().l2Misses
              << "\n";

    const auto report = mmu.energyReport();
    std::cout << "\ndynamic translation energy so far: "
              << stats::TextTable::num(report.breakdown.total() / 1000.0,
                                       2)
              << " nJ (" << report.structs.size()
              << " structures active)\n";
    return 0;
}
