/**
 * @file
 * Quickstart: simulate one TLB-intensive workload under the THP
 * baseline and under RMM_Lite, and print the energy and performance
 * comparison — the paper's headline claim in ~60 lines.
 */

#include <cstdio>
#include <iostream>

#include "sim/simulator.hh"
#include "stats/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace eat;

    // 1. Pick a workload model (mcf: 1.7 GB, pointer-chasing, the
    //    paper's most page-walk-bound workload).
    auto spec = workloads::findWorkload("mcf");
    if (!spec) {
        std::fprintf(stderr, "workload not found\n");
        return 1;
    }

    // 2. Simulate it under two TLB organizations.
    auto runUnder = [&](core::MmuOrg org) {
        sim::SimConfig cfg;
        cfg.workload = *spec;
        cfg.mmu = core::MmuConfig::make(org);
        cfg.simulateInstructions = 10'000'000;
        return sim::simulate(cfg);
    };
    const auto thp = runUnder(core::MmuOrg::Thp);
    const auto rmmLite = runUnder(core::MmuOrg::RmmLite);

    // 3. Compare.
    stats::TextTable table(
        {"metric", "THP", "RMM_Lite", "RMM_Lite vs THP"});
    auto rel = [](double a, double b) {
        return b > 0 ? stats::TextTable::percent(a / b - 1.0) : "n/a";
    };
    table.addRow({"dynamic energy (pJ/kinstr)",
                  stats::TextTable::num(thp.energyPerKiloInstr(), 1),
                  stats::TextTable::num(rmmLite.energyPerKiloInstr(), 1),
                  rel(rmmLite.energyPerKiloInstr(),
                      thp.energyPerKiloInstr())});
    table.addRow({"TLB-miss cycles (/kinstr)",
                  stats::TextTable::num(thp.missCyclesPerKiloInstr(), 2),
                  stats::TextTable::num(rmmLite.missCyclesPerKiloInstr(), 2),
                  rel(rmmLite.missCyclesPerKiloInstr(),
                      thp.missCyclesPerKiloInstr())});
    table.addRow({"L1 TLB MPKI",
                  stats::TextTable::num(thp.stats.l1Mpki(), 2),
                  stats::TextTable::num(rmmLite.stats.l1Mpki(), 2), ""});
    table.addRow({"L2 TLB MPKI (page walks)",
                  stats::TextTable::num(thp.stats.l2Mpki(), 3),
                  stats::TextTable::num(rmmLite.stats.l2Mpki(), 3), ""});
    table.addRow({"range translations", "-",
                  std::to_string(rmmLite.numRanges), ""});

    std::cout << "quickstart: mcf under THP vs RMM_Lite\n\n";
    table.print(std::cout);

    std::cout << "\nRMM_Lite spends "
              << stats::TextTable::percent(
                     1.0 - rmmLite.energyPerKiloInstr() /
                               thp.energyPerKiloInstr())
              << " less dynamic energy on address translation.\n";
    return 0;
}
