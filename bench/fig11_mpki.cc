/**
 * @file
 * Figure 11: L1 and L2 TLB misses per kilo-instruction for every
 * organization and TLB-intensive workload.
 *
 * Paper shapes: every workload exceeds 5 L1 MPKI with 4 KB pages (the
 * TLB-intensive bar); cactusADM and mcf have the highest walk (L2
 * miss) rates; THP slashes both; RMM zeroes the L2 misses; RMM_Lite
 * additionally zeroes most L1 misses.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const auto &orgs = core::allOrgs();

    const auto rows =
        sim::runMatrix(workloads::tlbIntensiveSuite(), orgs, opts);

    std::vector<std::string> headers{"workload"};
    for (const auto org : orgs)
        headers.emplace_back(core::orgName(org));

    std::cout << "Figure 11 (top): L1 TLB misses per kilo-instruction\n\n";
    stats::TextTable l1(headers);
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.workload};
        for (const auto &r : row.byOrg)
            cells.push_back(stats::TextTable::num(r.stats.l1Mpki(), 2));
        l1.addRow(std::move(cells));
    }
    l1.print(std::cout);

    std::cout << "\nFigure 11 (bottom): L2 TLB misses (page walks) per "
                 "kilo-instruction\n\n";
    stats::TextTable l2(headers);
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.workload};
        for (const auto &r : row.byOrg)
            cells.push_back(stats::TextTable::num(r.stats.l2Mpki(), 3));
        l2.addRow(std::move(cells));
    }
    l2.print(std::cout);
    return 0;
}
