/**
 * @file
 * Section 6.2 sensitivity analysis: Lite's interval length (1 M - 10 M
 * instructions) and random full-activation probability (1/8 - 1/128).
 *
 * Paper shape: shorter intervals and lower probabilities perform
 * slightly better in both energy and performance — the short interval
 * reacts faster, the low probability avoids needless full-power
 * intervals.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);

    // A representative subset keeps the sweep affordable.
    const char *names[] = {"astar", "mcf", "GemsFDTD", "canneal"};
    const InstrCount intervals[] = {1'000'000, 2'000'000, 5'000'000,
                                    10'000'000};
    const double probabilities[] = {1.0 / 8, 1.0 / 32, 1.0 / 128};

    for (const auto org : {core::MmuOrg::TlbLite, core::MmuOrg::RmmLite}) {
        std::cout << "Lite sensitivity for "
                  << std::string(core::orgName(org))
                  << " (energy pJ/kinstr | miss cycles/kinstr, averaged "
                     "over astar, mcf,\nGemsFDTD, canneal)\n\n";
        stats::TextTable table({"interval", "p=1/8", "p=1/32",
                                "p=1/128"});
        for (const auto interval : intervals) {
            std::vector<std::string> cells{
                std::to_string(interval / 1'000'000) + "M"};
            for (const double p : probabilities) {
                double energy = 0.0, cyc = 0.0;
                for (const char *name : names) {
                    std::fprintf(stderr,
                                 "  %s interval=%lluM p=%.4f %s\n",
                                 std::string(core::orgName(org)).c_str(),
                                 static_cast<unsigned long long>(
                                     interval / 1'000'000),
                                 p, name);
                    sim::SimConfig cfg;
                    cfg.workload = *workloads::findWorkload(name);
                    cfg.mmu = core::MmuConfig::make(org);
                    cfg.mmu.lite.intervalInstructions = interval;
                    cfg.mmu.lite.fullActivationProbability = p;
                    cfg.simulateInstructions = opts.simulateInstructions;
                    cfg.fastForwardInstructions =
                        opts.fastForwardInstructions;
                    cfg.seed = opts.seed;
                    const auto r = sim::simulate(cfg);
                    energy += r.energyPerKiloInstr();
                    cyc += r.missCyclesPerKiloInstr();
                }
                cells.push_back(
                    stats::TextTable::num(energy / 4, 0) + " | " +
                    stats::TextTable::num(cyc / 4, 1));
            }
            table.addRow(std::move(cells));
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
