/**
 * @file
 * Ablation (paper §2.2 / §4.4): separate set-associative L1 TLBs vs a
 * single fully associative L1 holding every page size (SPARC/AMD
 * style), with and without Lite.
 *
 * Paper claims to check: separate set-associative TLBs are the more
 * energy-efficient baseline, and the same Lite mechanism still works on
 * the fully associative organization by clustering LRU distances as
 * pseudo-ways.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);

    struct Variant
    {
        const char *name;
        core::MmuOrg org;
        bool combined;
    };
    const Variant variants[] = {
        {"separate SA (THP)", core::MmuOrg::Thp, false},
        {"combined FA", core::MmuOrg::Thp, true},
        {"separate SA + Lite", core::MmuOrg::TlbLite, false},
        {"combined FA + Lite", core::MmuOrg::TlbLite, true},
    };

    std::vector<std::string> headers{"workload"};
    for (const auto &v : variants)
        headers.emplace_back(v.name);
    stats::TextTable energy(headers);

    std::vector<double> sums(4, 0.0);
    for (const auto &w : workloads::tlbIntensiveSuite()) {
        std::vector<std::string> cells{w.name};
        for (std::size_t i = 0; i < 4; ++i) {
            const auto &v = variants[i];
            std::fprintf(stderr, "  %-12s %s\n", w.name.c_str(), v.name);
            sim::SimConfig cfg;
            cfg.workload = w;
            cfg.mmu = core::MmuConfig::make(v.org);
            cfg.mmu.combinedFullyAssocL1 = v.combined;
            cfg.simulateInstructions = opts.simulateInstructions;
            cfg.fastForwardInstructions = opts.fastForwardInstructions;
            cfg.seed = opts.seed;
            const auto r = sim::simulate(cfg);
            sums[i] += r.energyPerKiloInstr();
            cells.push_back(
                stats::TextTable::num(r.energyPerKiloInstr(), 0));
        }
        energy.addRow(std::move(cells));
    }
    std::vector<std::string> avg{"average"};
    for (const double s : sums)
        avg.push_back(stats::TextTable::num(s / 8.0, 0));
    energy.addRow(std::move(avg));

    std::cout << "Ablation: separate set-associative vs combined fully "
                 "associative L1 TLBs\n(dynamic energy, pJ/kinstr)\n\n";
    energy.print(std::cout);
    return 0;
}
