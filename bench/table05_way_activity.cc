/**
 * @file
 * Table 5: Lite's way activity and the sources of L1 TLB hits.
 *
 * For TLB_Lite and RMM_Lite prints (i) the percentage of lookups
 * performed with 4, 2, and 1 active ways in the L1-4KB TLB (and the
 * L1-2MB TLB for TLB_Lite), and (ii) the percentage of L1 hits served
 * by each structure.
 *
 * Paper shapes: TLB_Lite runs all 4 ways only ~51% of the time in the
 * L1-4KB TLB (omnetpp and canneal pinned at 4 ways, cactusADM and mcf
 * mostly at 1); under RMM_Lite the L1-range TLB supplies the large
 * majority of hits, letting Lite run ~64% of lookups with a single
 * active way.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const std::vector<core::MmuOrg> orgs{core::MmuOrg::TlbLite,
                                         core::MmuOrg::RmmLite};

    const auto rows =
        sim::runMatrix(workloads::tlbIntensiveSuite(), orgs, opts);

    std::cout << "Table 5 (left): % of lookups at 4/2/1 active ways\n\n";
    stats::TextTable ways({"workload", "Lite:4K 4/2/1", "Lite:2M 4/2/1",
                           "RMMLite:4K 4/2/1"});
    auto fmt = [](const stats::Histogram &h) {
        return stats::TextTable::num(h.fraction(2) * 100, 1) + "/" +
               stats::TextTable::num(h.fraction(1) * 100, 1) + "/" +
               stats::TextTable::num(h.fraction(0) * 100, 1);
    };
    std::vector<double> avg(9, 0.0);
    for (const auto &row : rows) {
        const auto &lite = row.byOrg[0].stats;
        const auto &rmm = row.byOrg[1].stats;
        ways.addRow({row.workload, fmt(lite.l1WayLookups4K),
                     fmt(lite.l1WayLookups2M), fmt(rmm.l1WayLookups4K)});
        for (int b = 0; b < 3; ++b) {
            avg[static_cast<std::size_t>(b)] +=
                lite.l1WayLookups4K.fraction(2 - static_cast<unsigned>(b));
            avg[static_cast<std::size_t>(3 + b)] +=
                lite.l1WayLookups2M.fraction(2 - static_cast<unsigned>(b));
            avg[static_cast<std::size_t>(6 + b)] +=
                rmm.l1WayLookups4K.fraction(2 - static_cast<unsigned>(b));
        }
    }
    const auto n = static_cast<double>(rows.size());
    auto avgCell = [&](int base) {
        return stats::TextTable::num(avg[base] / n * 100, 1) + "/" +
               stats::TextTable::num(avg[base + 1] / n * 100, 1) + "/" +
               stats::TextTable::num(avg[base + 2] / n * 100, 1);
    };
    ways.addRow({"average", avgCell(0), avgCell(3), avgCell(6)});
    ways.print(std::cout);

    std::cout << "\nTable 5 (right): % of L1 TLB hits per structure\n\n";
    stats::TextTable hits({"workload", "Lite:4KB", "Lite:2MB",
                           "RMMLite:4KB", "RMMLite:range"});
    for (const auto &row : rows) {
        auto share = [](const core::MmuStats &s, core::HitSource src) {
            return s.l1Hits
                       ? static_cast<double>(s.hits(src)) /
                             static_cast<double>(s.l1Hits)
                       : 0.0;
        };
        const auto &lite = row.byOrg[0].stats;
        const auto &rmm = row.byOrg[1].stats;
        hits.addRow(
            {row.workload,
             stats::TextTable::percent(
                 share(lite, core::HitSource::L1Page4K)),
             stats::TextTable::percent(
                 share(lite, core::HitSource::L1Page2M)),
             stats::TextTable::percent(
                 share(rmm, core::HitSource::L1Page4K)),
             stats::TextTable::percent(
                 share(rmm, core::HitSource::L1Range))});
    }
    hits.print(std::cout);
    return 0;
}
