/**
 * @file
 * Ablation: imperfect eager paging.
 *
 * The paper assumes *perfect* eager paging (every region is one
 * physically contiguous range). This sweep splits each eager
 * allocation into 1..32 physically separate ranges, modeling a
 * fragmented machine, and reports what happens to RMM_Lite: more
 * ranges per region means more L1/L2-range-TLB pressure, a deeper
 * range-table walk, and eventually the return of L1 misses.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const unsigned splits[] = {1, 2, 8, 32};

    std::vector<std::string> headers{"workload"};
    for (const unsigned s : splits)
        headers.push_back(std::to_string(s) + " ranges/region");
    stats::TextTable energy(headers);
    stats::TextTable mpki(headers);

    for (const char *name : {"astar", "mcf", "mummer", "omnetpp"}) {
        std::vector<std::string> eCells{name};
        std::vector<std::string> mCells{name};
        for (const unsigned s : splits) {
            std::fprintf(stderr, "  %-12s split=%u\n", name, s);
            sim::SimConfig cfg;
            cfg.workload = *workloads::findWorkload(name);
            cfg.mmu = core::MmuConfig::make(core::MmuOrg::RmmLite);
            cfg.simulateInstructions = opts.simulateInstructions;
            cfg.fastForwardInstructions = opts.fastForwardInstructions;
            cfg.seed = opts.seed;
            cfg.eagerRangesPerRegion = s;
            const auto r = sim::simulate(cfg);
            eCells.push_back(
                stats::TextTable::num(r.energyPerKiloInstr(), 0));
            mCells.push_back(
                stats::TextTable::num(r.stats.l1Mpki(), 2) + " (" +
                std::to_string(r.numRanges) + "r)");
        }
        energy.addRow(std::move(eCells));
        mpki.addRow(std::move(mCells));
    }

    std::cout << "Ablation: eager-paging fragmentation under RMM_Lite — "
                 "dynamic energy (pJ/kinstr)\n\n";
    energy.print(std::cout);
    std::cout << "\nL1 TLB MPKI (and resulting range count)\n\n";
    mpki.print(std::cout);
    return 0;
}
