/**
 * @file
 * Figure 4: L1 TLB MPKI over time with fixed L1-4KB TLB sizes.
 *
 * Four configurations per workload: Base (4 KB pages only) and THP
 * with a 64-entry 4-way, 32-entry 2-way, or 16-entry direct-mapped
 * L1-4KB TLB (ways reduced, sets constant — the way-disabling
 * geometry). Prints a compact per-interval MPKI series.
 *
 * Paper shapes: with huge pages most workloads tolerate smaller L1-4KB
 * TLBs, but no single size is best for every workload or every phase —
 * the motivation for Lite's dynamic resizing.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);

    struct Variant
    {
        const char *name;
        core::MmuOrg org;
        core::TlbGeom l1;
    };
    const Variant variants[] = {
        {"Base", core::MmuOrg::Base4K, {64, 4}},
        {"64", core::MmuOrg::Thp, {64, 4}},
        {"32", core::MmuOrg::Thp, {32, 2}},
        {"16", core::MmuOrg::Thp, {16, 1}},
    };

    constexpr std::size_t kPoints = 10;
    std::vector<std::string> headers{"workload", "config", "meanMPKI"};
    for (std::size_t i = 0; i < kPoints; ++i)
        headers.push_back("t" + std::to_string(i));
    stats::TextTable table(std::move(headers));

    for (const auto &w : workloads::tlbIntensiveSuite()) {
        for (const auto &v : variants) {
            std::fprintf(stderr, "  running %-12s config %-5s\n",
                         w.name.c_str(), v.name);
            sim::SimConfig cfg;
            cfg.workload = w;
            cfg.mmu = core::MmuConfig::make(v.org);
            cfg.mmu.l1Tlb4K = v.l1;
            cfg.simulateInstructions = opts.simulateInstructions;
            cfg.fastForwardInstructions = opts.fastForwardInstructions;
            cfg.seed = opts.seed;
            cfg.timelineInterval =
                std::max<InstrCount>(opts.simulateInstructions / 40,
                                     100'000);
            const auto r = sim::simulate(cfg);

            std::vector<std::string> cells{
                w.name, v.name,
                stats::TextTable::num(r.mpkiTimeline.mean(), 2)};
            for (const double s : r.mpkiTimeline.downsample(kPoints))
                cells.push_back(stats::TextTable::num(s, 1));
            while (cells.size() < 3 + kPoints)
                cells.emplace_back("-");
            table.addRow(std::move(cells));
        }
    }

    std::cout << "Figure 4: L1 TLB MPKI timeline with fixed L1-4KB TLB "
                 "sizes\n(columns t0..t9: downsampled interval MPKI)\n\n";
    table.print(std::cout);
    return 0;
}
