/**
 * @file
 * google-benchmark microbenchmarks of the simulator's lookup-path
 * structures (simulation throughput, not modeled hardware latency).
 */

#include <benchmark/benchmark.h>

#include "base/rng.hh"
#include "tlb/mmu_cache.hh"
#include "tlb/range_tlb.hh"
#include "tlb/set_assoc_tlb.hh"
#include "vm/page_table.hh"

namespace
{

using namespace eat;

void
BM_SetAssocTlbLookup(benchmark::State &state)
{
    tlb::SetAssocTlb t("bm", 64, static_cast<unsigned>(state.range(0)), 12);
    Rng rng(1);
    for (int i = 0; i < 64; ++i) {
        t.fill(tlb::makePageEntry(static_cast<Addr>(i) << 12, 0x1000,
                                  vm::PageSize::Size4K));
    }
    for (auto _ : state) {
        const Addr a = (rng.next() & 0x7f) << 12;
        benchmark::DoNotOptimize(t.lookup(a));
    }
}
BENCHMARK(BM_SetAssocTlbLookup)->Arg(1)->Arg(2)->Arg(4);

void
BM_RangeTlbLookup(benchmark::State &state)
{
    tlb::RangeTlb t("bm", static_cast<unsigned>(state.range(0)));
    for (int i = 0; i < state.range(0); ++i) {
        const Addr base = static_cast<Addr>(i) * 0x10000000;
        t.fill({base, base + 0x8000000, base});
    }
    Rng rng(2);
    for (auto _ : state) {
        const Addr a = rng.next() % (static_cast<Addr>(state.range(0)) *
                                     0x10000000);
        benchmark::DoNotOptimize(t.lookup(a));
    }
}
BENCHMARK(BM_RangeTlbLookup)->Arg(4)->Arg(32);

void
BM_PageTableTranslate(benchmark::State &state)
{
    vm::PageTable pt;
    const std::uint64_t pages = 4096;
    for (std::uint64_t i = 0; i < pages; ++i)
        pt.map(i << 12, (i + 100) << 12, vm::PageSize::Size4K);
    Rng rng(3);
    for (auto _ : state) {
        const Addr a = (rng.next() % pages) << 12;
        benchmark::DoNotOptimize(pt.translate(a));
    }
}
BENCHMARK(BM_PageTableTranslate);

void
BM_MmuCacheWalk(benchmark::State &state)
{
    tlb::MmuCache cache;
    Rng rng(4);
    for (auto _ : state) {
        const Addr a = (rng.next() & 0xffffffffull) << 12;
        benchmark::DoNotOptimize(cache.walkAccess(a,
                                                  vm::PageSize::Size4K));
    }
}
BENCHMARK(BM_MmuCacheWalk);

} // namespace
