/**
 * @file
 * Ablation (the paper's §6.2 "future work" pointer): the epsilon
 * threshold of the Lite decision algorithm.
 *
 * Sweeps the relative threshold for TLB_Lite and the absolute MPKI
 * threshold for RMM_Lite, showing the dynamic-energy / miss-cycle
 * trade-off the threshold controls.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

namespace
{

using namespace eat;

std::pair<double, double>
sweepPoint(core::MmuOrg org, double relative, double absolute,
           const sim::BenchOptions &opts)
{
    double energy = 0.0, cyc = 0.0;
    const auto &suite = workloads::tlbIntensiveSuite();
    for (const auto &w : suite) {
        sim::SimConfig cfg;
        cfg.workload = w;
        cfg.mmu = core::MmuConfig::make(org);
        cfg.mmu.lite.epsilonRelative = relative;
        cfg.mmu.lite.epsilonAbsoluteMpki = absolute;
        cfg.simulateInstructions = opts.simulateInstructions;
        cfg.fastForwardInstructions = opts.fastForwardInstructions;
        cfg.seed = opts.seed;
        const auto r = sim::simulate(cfg);
        energy += r.energyPerKiloInstr();
        cyc += r.missCyclesPerKiloInstr();
    }
    const auto n = static_cast<double>(suite.size());
    return {energy / n, cyc / n};
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = sim::BenchOptions::parse(argc, argv);

    std::cout << "Ablation: Lite threshold epsilon (suite-average "
                 "energy pJ/kinstr and\nmiss cycles/kinstr)\n\n";

    stats::TextTable rel({"TLB_Lite eps (relative)", "energy",
                          "miss cycles"});
    for (const double eps : {0.03125, 0.0625, 0.125, 0.25, 0.5}) {
        std::fprintf(stderr, "  TLB_Lite eps=%.5f\n", eps);
        const auto [e, c] =
            sweepPoint(core::MmuOrg::TlbLite, eps, 0.1, opts);
        rel.addRow({stats::TextTable::percent(eps, 2),
                    stats::TextTable::num(e, 0),
                    stats::TextTable::num(c, 1)});
    }
    rel.print(std::cout);

    std::cout << "\n";
    stats::TextTable abs({"RMM_Lite eps (absolute MPKI)", "energy",
                          "miss cycles"});
    for (const double eps : {0.01, 0.05, 0.1, 0.5, 2.0}) {
        std::fprintf(stderr, "  RMM_Lite eps=%.2f\n", eps);
        const auto [e, c] =
            sweepPoint(core::MmuOrg::RmmLite, 0.125, eps, opts);
        abs.addRow({stats::TextTable::num(eps, 2),
                    stats::TextTable::num(e, 0),
                    stats::TextTable::num(c, 1)});
    }
    abs.print(std::cout);
    return 0;
}
