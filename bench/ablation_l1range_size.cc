/**
 * @file
 * Ablation: the size of RMM_Lite's L1-range TLB.
 *
 * The paper fixes it at 4 entries "like the small L1-1GB TLB" to meet
 * L1 timing; this sweep quantifies what those entries buy. omnetpp and
 * canneal — whose traffic spreads over many ranges — are the workloads
 * that gain from more entries; the single-arena workloads saturate at
 * 1-2 entries.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const unsigned sizes[] = {1, 2, 4, 8, 16};

    std::vector<std::string> headers{"workload"};
    for (const unsigned s : sizes)
        headers.push_back(std::to_string(s) + "-entry");
    stats::TextTable energy(headers);
    stats::TextTable rangeShare(headers);

    for (const auto &w : workloads::tlbIntensiveSuite()) {
        std::vector<std::string> eCells{w.name};
        std::vector<std::string> sCells{w.name};
        for (const unsigned s : sizes) {
            std::fprintf(stderr, "  %-12s L1-range entries=%u\n",
                         w.name.c_str(), s);
            sim::SimConfig cfg;
            cfg.workload = w;
            cfg.mmu = core::MmuConfig::make(core::MmuOrg::RmmLite);
            cfg.mmu.l1RangeEntries = s;
            cfg.simulateInstructions = opts.simulateInstructions;
            cfg.fastForwardInstructions = opts.fastForwardInstructions;
            cfg.seed = opts.seed;
            const auto r = sim::simulate(cfg);
            eCells.push_back(
                stats::TextTable::num(r.energyPerKiloInstr(), 0));
            const double share =
                r.stats.l1Hits
                    ? static_cast<double>(
                          r.stats.hits(core::HitSource::L1Range)) /
                          static_cast<double>(r.stats.l1Hits)
                    : 0.0;
            sCells.push_back(stats::TextTable::percent(share));
        }
        energy.addRow(std::move(eCells));
        rangeShare.addRow(std::move(sCells));
    }

    std::cout << "Ablation: RMM_Lite L1-range TLB size — dynamic energy "
                 "(pJ/kinstr)\n\n";
    energy.print(std::cout);
    std::cout << "\nL1-range TLB share of L1 hits\n\n";
    rangeShare.print(std::cout);
    return 0;
}
