/**
 * @file
 * Figure 2 (a/b): the dynamic-energy characterization of address
 * translation.
 *
 * For the 4KB, THP, and RMM configurations, prints (a) the dynamic
 * energy broken into L1 TLBs / L2 TLBs / MMU cache / page walks /
 * range walks, normalized to the 4KB total per workload, and (b) the
 * cycles spent in TLB misses, normalized to 4KB.
 *
 * Paper shapes to look for: the L1 TLBs and page walks dominate with
 * 4 KB pages; THP and RMM crush the walk share and the miss cycles but
 * keep (or increase) the total dynamic energy because every memory
 * operation now reads one more L1 TLB; only cactusADM and mcf (the
 * page-walk-bound workloads) see THP reduce their energy.
 */

#include <iostream>

#include "sim/report.hh"
#include "stats/csv.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const std::vector<core::MmuOrg> orgs{
        core::MmuOrg::Base4K, core::MmuOrg::Thp, core::MmuOrg::Rmm};

    const auto rows =
        sim::runMatrix(workloads::tlbIntensiveSuite(), orgs, opts);

    std::cout << "Figure 2a: dynamic translation energy breakdown "
                 "(normalized to 4KB total)\n\n";
    stats::TextTable table({"workload", "org", "L1-TLBs", "L2-TLBs",
                            "MMU-cache", "page-walks", "range-walks",
                            "total"});
    for (const auto &row : rows) {
        const double base = row.byOrg[0].totalEnergy();
        for (const auto &r : row.byOrg) {
            const auto &b = r.energy.breakdown;
            auto norm = [&](double v) {
                return stats::TextTable::num(v / base, 3);
            };
            table.addRow({row.workload, std::string(core::orgName(r.org)),
                          norm(b.l1Tlb), norm(b.l2Tlb), norm(b.mmuCache),
                          norm(b.pageWalkMem), norm(b.rangeWalkMem),
                          norm(b.total())});
        }
    }
    table.print(std::cout);

    std::cout << "\nFigure 2b: cycles spent in TLB misses "
                 "(normalized to 4KB)\n\n";
    auto cycles = sim::normalizedTable(rows, orgs, sim::missCyclesMetric,
                                       "workload");
    cycles.print(std::cout);

    if (opts.csv) {
        std::cout << "\nCSV\nworkload,org,l1,l2,mmu,walk,rangewalk,"
                     "total,misscycles\n";
        stats::CsvWriter csv(std::cout);
        for (const auto &row : rows) {
            const double base = row.byOrg[0].totalEnergy();
            for (const auto &r : row.byOrg) {
                const auto &b = r.energy.breakdown;
                csv.writeRow(
                    {row.workload, std::string(core::orgName(r.org)),
                     std::to_string(b.l1Tlb / base),
                     std::to_string(b.l2Tlb / base),
                     std::to_string(b.mmuCache / base),
                     std::to_string(b.pageWalkMem / base),
                     std::to_string(b.rangeWalkMem / base),
                     std::to_string(b.total() / base),
                     std::to_string(r.missCyclesPerKiloInstr())});
            }
        }
    }
    return 0;
}
