/**
 * @file
 * Calibration harness (not a paper figure): prints, per workload and
 * organization, the raw signals the workload models are tuned against —
 * L1/L2 MPKI, energy per kilo-instruction, way-activity, hit sources,
 * and range statistics. Used to keep the synthetic workloads inside
 * the paper's published bands; see suite.cc.
 */

#include <cstdio>
#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);

    const auto &workloads = workloads::tlbIntensiveSuite();
    const auto &orgs = core::allOrgs();

    stats::TextTable table({"workload", "org", "L1MPKI", "L2MPKI",
                            "pJ/kinstr", "cyc/kinstr", "4K@4/2/1",
                            "hit:4K", "hit:2M", "hit:range", "ranges",
                            "lite:dis/deg/rnd"});

    const auto rows = sim::runMatrix(workloads, orgs, opts);
    for (const auto &row : rows) {
        for (const auto &r : row.byOrg) {
            const auto &s = r.stats;
            const double l1Hits = static_cast<double>(s.l1Hits);
            auto hitFrac = [&](core::HitSource src) {
                return l1Hits > 0 ? s.hits(src) / l1Hits : 0.0;
            };
            std::string ways =
                stats::TextTable::num(s.l1WayLookups4K.fraction(2) * 100, 0) +
                "/" +
                stats::TextTable::num(s.l1WayLookups4K.fraction(1) * 100, 0) +
                "/" +
                stats::TextTable::num(s.l1WayLookups4K.fraction(0) * 100, 0);
            table.addRow({row.workload, std::string(core::orgName(r.org)),
                          stats::TextTable::num(s.l1Mpki(), 2),
                          stats::TextTable::num(s.l2Mpki(), 2),
                          stats::TextTable::num(r.energyPerKiloInstr(), 1),
                          stats::TextTable::num(r.missCyclesPerKiloInstr(), 1),
                          ways,
                          stats::TextTable::percent(
                              hitFrac(core::HitSource::L1Page4K)),
                          stats::TextTable::percent(
                              hitFrac(core::HitSource::L1Page2M)),
                          stats::TextTable::percent(
                              hitFrac(core::HitSource::L1Range)),
                          std::to_string(r.numRanges),
                          r.liteEnabled
                              ? std::to_string(r.lite.wayDisableEvents) +
                                    "/" +
                                    std::to_string(
                                        r.lite.degradationActivations) +
                                    "/" +
                                    std::to_string(r.lite.randomActivations)
                              : "-"});
        }
    }
    table.print(std::cout);
    return 0;
}
