/**
 * @file
 * Table 2: the per-operation energy coefficients of every structure on
 * the address-translation path (CACTI-P, 32 nm), plus the CactiLite
 * extrapolations this reproduction uses where the paper published no
 * value.
 */

#include <iostream>

#include "energy/cacti_lite.hh"
#include "stats/table.hh"

int
main()
{
    using namespace eat;
    using energy::StructClass;

    energy::CactiLite model;

    struct Row
    {
        StructClass cls;
        unsigned entries;
        unsigned ways; // 0 = fully associative
    };
    const Row rows[] = {
        {StructClass::L1Tlb4K, 64, 4},   {StructClass::L1Tlb4K, 32, 2},
        {StructClass::L1Tlb4K, 16, 1},   {StructClass::L1Tlb2M, 32, 4},
        {StructClass::L1Tlb2M, 16, 2},   {StructClass::L1Tlb2M, 8, 1},
        {StructClass::L1Tlb1G, 4, 0},    {StructClass::L1RangeTlb, 4, 0},
        {StructClass::L2Tlb4K, 512, 4},  {StructClass::L2RangeTlb, 32, 0},
        {StructClass::MmuPde, 32, 2},    {StructClass::MmuPdpte, 4, 0},
        {StructClass::MmuPml4, 2, 0},    {StructClass::L1Cache, 512, 8},
    };

    stats::TextTable table({"component", "entries", "assoc", "read (pJ)",
                            "write (pJ)", "leakage (mW)", "source"});
    for (const auto &r : rows) {
        const auto e = model.estimate(r.cls, r.entries, r.ways);
        table.addRow(
            {std::string(energy::structClassName(r.cls)),
             std::to_string(r.entries),
             r.ways == 0 ? "fully" : std::to_string(r.ways) + "-way",
             stats::TextTable::num(e.read, 3),
             stats::TextTable::num(e.write, 3),
             stats::TextTable::num(e.leakage, 4),
             energy::CactiLite::isAnchor(r.cls, r.entries, r.ways)
                 ? "Table 2"
                 : "CactiLite"});
    }
    std::cout << "Table 2: dynamic energy per operation and leakage "
                 "power (32 nm)\n\n";
    table.print(std::cout);
    std::cout << "\nL2-cache read (Figure 3 walk-locality sweep): "
              << stats::TextTable::num(model.l2CacheReadEnergy(), 3)
              << " pJ (CactiLite)\n";
    return 0;
}
