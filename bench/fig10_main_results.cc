/**
 * @file
 * Figure 10: the headline result.
 *
 * For the eight TLB-intensive workloads and all six organizations
 * (4KB, THP, TLB_Lite, RMM, TLB_PP, RMM_Lite), prints the dynamic
 * energy spent in address translation (top) and the cycles spent in
 * TLB misses (bottom), normalized to the 4KB configuration, plus the
 * paper's headline ratios vs THP.
 *
 * Paper shapes: TLB_Lite -23% energy vs THP at near-unchanged miss
 * cycles; RMM -8% with near-zero L2 misses; TLB_PP -43% (perfect
 * predictor, unrealizable); RMM_Lite -71% on average (> 80% for mcf
 * and cactusADM) while also eliminating ~99% of L1-miss overhead;
 * RMM_Lite beats TLB_PP everywhere except omnetpp and canneal.
 *
 * Two derived columns extend the figure with the giant-reach L3
 * translation tier: TLB_L3$ (4KB pages + Lite, backed by the
 * cache-resident L3 TLB) and TLB_DRAM (same, backed by the in-DRAM
 * TLB), both with the tier's Lite epsilon relief so the L1s downsize
 * against the backstop. They build on the 4KB organization rather than
 * THP because the tier holds 4 KB-granule translations — the Victima
 * pitch is giant reach *without* huge pages, which makes RMM_Lite
 * (also hugepage-free) the natural rival.
 */

#include <iostream>

#include "sim/report.hh"
#include "stats/csv.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const auto &orgs = core::allOrgs();

    auto variants = sim::orgVariants(
        std::vector<core::MmuOrg>(orgs.begin(), orgs.end()));
    {
        // TLB_Lite's Lite settings on the 4KB organization (no THP; the
        // tier's 4 KB-granule reach replaces huge pages), plus the tier.
        auto lite4K = core::MmuConfig::make(core::MmuOrg::TlbLite);
        lite4K.org = core::MmuOrg::Base4K;
        auto l3Cache = lite4K;
        l3Cache.enableL3(l3::L3Mode::Cache);
        variants.push_back({"TLB_L3$", l3Cache});
        auto l3Dram = lite4K;
        l3Dram.enableL3(l3::L3Mode::Dram);
        variants.push_back({"TLB_DRAM", l3Dram});
    }

    const auto rows =
        sim::runMatrix(workloads::tlbIntensiveSuite(), variants, opts);

    std::cout << "Figure 10 (top): dynamic translation energy, "
                 "normalized to 4KB\n\n";
    auto energy = sim::normalizedTable(rows, variants, sim::energyMetric,
                                       "workload");
    energy.print(std::cout);

    std::cout << "\nFigure 10 (bottom): TLB-miss cycles, normalized to "
                 "4KB\n\n";
    auto cycles = sim::normalizedTable(rows, variants,
                                       sim::missCyclesMetric,
                                       "workload");
    cycles.print(std::cout);

    // The headline ratios the abstract quotes, relative to THP.
    std::cout << "\nHeadline vs THP (paper: TLB_Lite -23%, TLB_PP -43%, "
                 "RMM_Lite -71% energy;\nRMM_Lite removes ~99% of the "
                 "L1-miss cycles left over THP+RMM):\n\n";
    stats::TextTable head({"metric", "TLB_Lite", "RMM", "TLB_PP",
                           "RMM_Lite", "TLB_L3$", "TLB_DRAM"});
    auto avgRatio = [&rows](std::size_t org,
                            double (*metric)(const sim::SimResult &)) {
        double sum = 0.0;
        for (const auto &row : rows)
            sum += metric(row.byOrg[org]) / metric(row.byOrg[1]);
        return sum / static_cast<double>(rows.size());
    };
    head.addRow({"energy vs THP",
                 stats::TextTable::percent(
                     avgRatio(2, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(3, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(4, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(5, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(6, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(7, sim::energyMetric) - 1.0)});

    // L1-miss-cycle reduction of RMM_Lite vs RMM (the "99%" claim).
    double l1CycleRatio = 0.0;
    int counted = 0;
    for (const auto &row : rows) {
        const double rmm =
            static_cast<double>(row.byOrg[3].stats.l1MissCycles);
        const double rmmLite =
            static_cast<double>(row.byOrg[5].stats.l1MissCycles);
        if (rmm > 0.0) {
            l1CycleRatio += rmmLite / rmm;
            ++counted;
        }
    }
    head.addRow({"L1-miss cycles vs RMM", "-", "-", "-",
                 stats::TextTable::percent(
                     l1CycleRatio / std::max(counted, 1) - 1.0),
                 "-", "-"});
    head.print(std::cout);

    if (opts.csv) {
        std::cout << "\nCSV\nworkload,org,pJ_per_kinstr,"
                     "misscycles_per_kinstr\n";
        stats::CsvWriter csv(std::cout);
        for (const auto &row : rows) {
            for (std::size_t o = 0; o < row.byOrg.size(); ++o) {
                const auto &r = row.byOrg[o];
                csv.writeRow({row.workload, variants[o].label,
                              std::to_string(r.energyPerKiloInstr()),
                              std::to_string(
                                  r.missCyclesPerKiloInstr())});
            }
        }
    }
    return 0;
}
