/**
 * @file
 * Figure 10: the headline result.
 *
 * For the eight TLB-intensive workloads and all six organizations
 * (4KB, THP, TLB_Lite, RMM, TLB_PP, RMM_Lite), prints the dynamic
 * energy spent in address translation (top) and the cycles spent in
 * TLB misses (bottom), normalized to the 4KB configuration, plus the
 * paper's headline ratios vs THP.
 *
 * Paper shapes: TLB_Lite -23% energy vs THP at near-unchanged miss
 * cycles; RMM -8% with near-zero L2 misses; TLB_PP -43% (perfect
 * predictor, unrealizable); RMM_Lite -71% on average (> 80% for mcf
 * and cactusADM) while also eliminating ~99% of L1-miss overhead;
 * RMM_Lite beats TLB_PP everywhere except omnetpp and canneal.
 */

#include <iostream>

#include "sim/report.hh"
#include "stats/csv.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const auto &orgs = core::allOrgs();

    const auto rows =
        sim::runMatrix(workloads::tlbIntensiveSuite(), orgs, opts);

    std::cout << "Figure 10 (top): dynamic translation energy, "
                 "normalized to 4KB\n\n";
    auto energy = sim::normalizedTable(rows, orgs, sim::energyMetric,
                                       "workload");
    energy.print(std::cout);

    std::cout << "\nFigure 10 (bottom): TLB-miss cycles, normalized to "
                 "4KB\n\n";
    auto cycles = sim::normalizedTable(rows, orgs, sim::missCyclesMetric,
                                       "workload");
    cycles.print(std::cout);

    // The headline ratios the abstract quotes, relative to THP.
    std::cout << "\nHeadline vs THP (paper: TLB_Lite -23%, TLB_PP -43%, "
                 "RMM_Lite -71% energy;\nRMM_Lite removes ~99% of the "
                 "L1-miss cycles left over THP+RMM):\n\n";
    stats::TextTable head({"metric", "TLB_Lite", "RMM", "TLB_PP",
                           "RMM_Lite"});
    auto avgRatio = [&rows](std::size_t org,
                            double (*metric)(const sim::SimResult &)) {
        double sum = 0.0;
        for (const auto &row : rows)
            sum += metric(row.byOrg[org]) / metric(row.byOrg[1]);
        return sum / static_cast<double>(rows.size());
    };
    head.addRow({"energy vs THP",
                 stats::TextTable::percent(
                     avgRatio(2, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(3, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(4, sim::energyMetric) - 1.0),
                 stats::TextTable::percent(
                     avgRatio(5, sim::energyMetric) - 1.0)});

    // L1-miss-cycle reduction of RMM_Lite vs RMM (the "99%" claim).
    double l1CycleRatio = 0.0;
    int counted = 0;
    for (const auto &row : rows) {
        const double rmm =
            static_cast<double>(row.byOrg[3].stats.l1MissCycles);
        const double rmmLite =
            static_cast<double>(row.byOrg[5].stats.l1MissCycles);
        if (rmm > 0.0) {
            l1CycleRatio += rmmLite / rmm;
            ++counted;
        }
    }
    head.addRow({"L1-miss cycles vs RMM", "-", "-", "-",
                 stats::TextTable::percent(
                     l1CycleRatio / std::max(counted, 1) - 1.0)});
    head.print(std::cout);

    if (opts.csv) {
        std::cout << "\nCSV\nworkload,org,pJ_per_kinstr,"
                     "misscycles_per_kinstr\n";
        stats::CsvWriter csv(std::cout);
        for (const auto &row : rows) {
            for (const auto &r : row.byOrg) {
                csv.writeRow({row.workload,
                              std::string(core::orgName(r.org)),
                              std::to_string(r.energyPerKiloInstr()),
                              std::to_string(
                                  r.missCyclesPerKiloInstr())});
            }
        }
    }
    return 0;
}
