/**
 * @file
 * Extension (paper §6.2): static (leakage) energy when way-disabling is
 * combined with power gating of the disabled ways.
 *
 * For THP, TLB_Lite, and RMM_Lite, prints the leakage energy of the
 * translation structures over the run with and without power gating,
 * and the resulting total (dynamic + gated static) energy.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const std::vector<core::MmuOrg> orgs{
        core::MmuOrg::Thp, core::MmuOrg::TlbLite, core::MmuOrg::RmmLite};

    const auto rows =
        sim::runMatrix(workloads::tlbIntensiveSuite(), orgs, opts);

    stats::TextTable table({"workload", "org", "dynamic (pJ/ki)",
                            "static full (pJ/ki)", "static gated (pJ/ki)",
                            "gating saves", "total vs THP"});
    std::vector<double> totals(orgs.size(), 0.0);
    for (const auto &row : rows) {
        double thpTotal = 0.0;
        for (std::size_t o = 0; o < orgs.size(); ++o) {
            const auto &r = row.byOrg[o];
            const double ki =
                static_cast<double>(r.stats.instructions) / 1000.0;
            const double dyn = r.energyPerKiloInstr();
            const double staticFull = r.energy.staticEnergyFull / ki;
            const double staticGated = r.energy.staticEnergyGated / ki;
            const double total = dyn + staticGated;
            if (o == 0)
                thpTotal = total;
            totals[o] += total / thpTotal;
            table.addRow(
                {row.workload, std::string(core::orgName(r.org)),
                 stats::TextTable::num(dyn, 0),
                 stats::TextTable::num(staticFull, 0),
                 stats::TextTable::num(staticGated, 0),
                 stats::TextTable::percent(
                     staticFull > 0.0 ? 1.0 - staticGated / staticFull
                                      : 0.0),
                 stats::TextTable::num(total / thpTotal, 3)});
        }
    }
    std::cout << "Extension (paper §6.2): leakage with power-gated "
                 "disabled ways (2 GHz, CPI 1)\n\n";
    table.print(std::cout);
    std::cout << "\naverage total (dynamic + gated static) vs THP: ";
    for (std::size_t o = 0; o < orgs.size(); ++o) {
        std::cout << core::orgName(orgs[o]) << "="
                  << stats::TextTable::num(totals[o] / 8.0, 3)
                  << (o + 1 < orgs.size() ? ", " : "\n");
    }
    return 0;
}
