/**
 * @file
 * Figure 3: sensitivity of the 4KB configuration's dynamic energy to
 * page-walk locality.
 *
 * Sweeps the fraction of page-walk memory references that hit in the
 * L1 data cache from 100% (the paper's optimistic default) to 0% (all
 * walk references served by the L2 cache) and prints the total dynamic
 * translation energy normalized to the 100% point.
 *
 * Paper shape: workloads with frequent walks (mcf, cactusADM) blow up
 * by tens of percent (up to +91% for mcf in the paper) while
 * L1-TLB-dominated workloads barely move.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace eat;
    const auto opts = sim::BenchOptions::parse(argc, argv);
    const double ratios[] = {1.0, 0.75, 0.5, 0.25, 0.0};

    stats::TextTable table({"workload", "100%", "75%", "50%", "25%",
                            "0% (all L2)"});
    for (const auto &w : workloads::tlbIntensiveSuite()) {
        std::vector<double> energies;
        for (const double ratio : ratios) {
            std::fprintf(stderr, "  running %-12s at hit ratio %.2f\n",
                         w.name.c_str(), ratio);
            sim::SimConfig cfg;
            cfg.workload = w;
            cfg.mmu = core::MmuConfig::make(core::MmuOrg::Base4K);
            cfg.mmu.walkL1CacheHitRatio = ratio;
            cfg.simulateInstructions = opts.simulateInstructions;
            cfg.fastForwardInstructions = opts.fastForwardInstructions;
            cfg.seed = opts.seed;
            energies.push_back(
                sim::simulate(cfg).energyPerKiloInstr());
        }
        std::vector<std::string> cells{w.name};
        for (const double e : energies)
            cells.push_back(stats::TextTable::num(e / energies[0], 3));
        table.addRow(std::move(cells));
    }

    std::cout << "Figure 3: 4KB-config dynamic energy vs page-walk L1 "
                 "cache hit ratio\n(normalized to the 100% point)\n\n";
    table.print(std::cout);
    return 0;
}
