/**
 * @file
 * Figure 12: dynamic-energy reduction for the remaining (non-TLB-
 * intensive) SPEC 2006 and PARSEC workloads.
 *
 * Paper shapes: the savings persist on mild workloads — TLB_Lite
 * averages -26% (SPEC) / -20% (PARSEC) vs THP, RMM_Lite -72% / -66%.
 */

#include <iostream>

#include "sim/report.hh"
#include "workloads/suite.hh"

namespace
{

void
runSuite(const char *title,
         const std::vector<eat::workloads::WorkloadSpec> &suite,
         const eat::sim::BenchOptions &opts)
{
    using namespace eat;
    const std::vector<core::MmuOrg> orgs{
        core::MmuOrg::Thp, core::MmuOrg::TlbLite, core::MmuOrg::Rmm,
        core::MmuOrg::TlbPP, core::MmuOrg::RmmLite};

    const auto rows = sim::runMatrix(suite, orgs, opts);

    std::cout << title << " (energy normalized to THP)\n\n";
    auto table = sim::normalizedTable(rows, orgs, sim::energyMetric,
                                      "workload");
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace eat;
    auto opts = sim::BenchOptions::parse(argc, argv);

    std::cout << "Figure 12: dynamic-energy reduction for the remaining "
                 "workloads\n\n";
    runSuite("SPEC 2006 (rest)", workloads::spec2006OtherSuite(), opts);
    runSuite("PARSEC (rest)", workloads::parsecOtherSuite(), opts);
    return 0;
}
