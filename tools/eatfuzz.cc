/**
 * @file
 * eatfuzz: property-based fuzzing driver for the whole simulator.
 *
 *   eatfuzz [--runs=N] [--seed=N] [-jN | --jobs=N] [--timeout=SECONDS]
 *           [--corpus-dir=DIR] [--verdicts=PATH] [--no-shrink]
 *   eatfuzz --replay=PATH_OR_DIR [--verdicts=PATH]
 *   eatfuzz --shrink=SEEDFILE [--corpus-dir=DIR]
 *   eatfuzz --self-test
 *
 * The default mode generates N scenarios deterministically from the
 * campaign seed, runs each in its own process (a crash or hang costs
 * one scenario, never the campaign), and judges it with the metamorphic
 * oracle suite. Failing scenarios are shrunk to minimal replayable seed
 * files under --corpus-dir, and every scenario emits one JSONL verdict.
 *
 * --replay re-judges saved seed files (regression mode); --shrink
 * minimizes one known-failing seed; --self-test proves the oracles
 * catch deliberately seeded defects.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/parse.hh"
#include "qa/campaign.hh"
#include "qa/oracles.hh"
#include "qa/shrinker.hh"
#include "sim/batch.hh"

namespace
{

using namespace eat;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "       %s --replay=PATH_OR_DIR [--verdicts=PATH]\n"
        "       %s --shrink=SEEDFILE [--corpus-dir=DIR]\n"
        "       %s --self-test\n"
        "\n"
        "campaign options:\n"
        "  --runs=N          scenarios to generate (default 100)\n"
        "  --seed=N          campaign seed; scenario i is a pure\n"
        "                    function of (seed, i) (default 1)\n"
        "  -jN, --jobs=N     scenarios run concurrently (default 1)\n"
        "  --timeout=SECONDS per-scenario watchdog (default 120)\n"
        "  --corpus-dir=DIR  archive failing seeds here\n"
        "  --verdicts=PATH   JSONL verdict record per scenario\n"
        "  --no-shrink       archive failures without minimizing\n"
        "\n"
        "exit status: 0 all scenarios pass, 1 violations or crashes,\n"
        "2 usage error\n",
        argv0, argv0, argv0, argv0);
    std::exit(2);
}

std::uint64_t
parseCount(const char *flag, const std::string &text)
{
    const auto r = parseU64(text);
    if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", flag,
                     std::string(r.status().message()).c_str());
        std::exit(2);
    }
    return r.value();
}

int
report(const Result<qa::CampaignSummary> &result, const char *mode)
{
    if (!result.ok()) {
        std::fprintf(stderr, "eatfuzz: %s\n",
                     std::string(result.status().message()).c_str());
        return 1;
    }
    const auto &s = result.value();
    std::cout << "\n" << mode << ": " << s.scenarios << " scenarios, "
              << s.passed << " pass, " << s.failed << " fail, "
              << s.crashed << " crash";
    if (!s.savedSeeds.empty())
        std::cout << "; " << s.savedSeeds.size() << " seeds saved";
    std::cout << "\n";
    return s.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    qa::CampaignOptions options;
    std::string replayPath, shrinkPath;
    bool selfTest = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        auto setJobs = [&options](const char *text) {
            const auto jobs = sim::parseJobs(text);
            if (!jobs.ok()) {
                std::fprintf(stderr, "--jobs: %s\n",
                             std::string(jobs.status().message()).c_str());
                std::exit(2);
            }
            options.jobs = jobs.value();
        };
        if (const char *v = value("--runs=")) {
            options.runs = parseCount("--runs", v);
        } else if (const char *v2 = value("--seed=")) {
            options.seed = parseCount("--seed", v2);
        } else if (const char *v3 = value("--timeout=")) {
            options.timeoutSeconds =
                static_cast<unsigned>(parseCount("--timeout", v3));
        } else if (const char *v4 = value("--corpus-dir=")) {
            options.corpusDir = v4;
        } else if (const char *v5 = value("--verdicts=")) {
            options.verdictsPath = v5;
        } else if (const char *v6 = value("--replay=")) {
            replayPath = v6;
        } else if (const char *v7 = value("--shrink=")) {
            shrinkPath = v7;
        } else if (const char *v8 = value("--jobs=")) {
            setJobs(v8);
        } else if (const char *v9 = value("-j")) {
            setJobs(v9);
        } else if (arg == "--no-shrink") {
            options.shrink = false;
        } else if (arg == "--self-test") {
            selfTest = true;
        } else {
            usage(argv[0]);
        }
    }
    if (static_cast<int>(!replayPath.empty()) +
            static_cast<int>(!shrinkPath.empty()) +
            static_cast<int>(selfTest) > 1) {
        std::fprintf(stderr, "--replay, --shrink, and --self-test are "
                             "mutually exclusive\n");
        return 2;
    }

    if (selfTest) {
        const Status s = qa::runSelfTest(std::cout);
        if (!s.ok()) {
            std::fprintf(stderr, "eatfuzz: self-test FAILED: %s\n",
                         std::string(s.message()).c_str());
            return 1;
        }
        std::cout << "self-test: ok\n";
        return 0;
    }

    if (!shrinkPath.empty()) {
        const auto loaded = qa::loadScenario(shrinkPath);
        if (!loaded.ok()) {
            std::fprintf(stderr, "eatfuzz: %s\n",
                         std::string(loaded.status().message()).c_str());
            return 1;
        }
        const auto &scenario = loaded.value();
        std::cout << "shrinking " << scenario.describe() << "\n";
        if (qa::runOracles(scenario).passed()) {
            std::fprintf(stderr, "eatfuzz: %s does not fail any oracle; "
                                 "nothing to shrink\n",
                         shrinkPath.c_str());
            return 1;
        }
        const auto shrunk = qa::shrinkScenario(
            scenario,
            [](const qa::Scenario &c) {
                return !qa::runOracles(c).passed();
            });
        std::cout << "shrunk in " << shrunk.attempts << " attempts ("
                  << shrunk.accepted << " accepted) -> "
                  << shrunk.scenario.describe() << "\n";
        const std::string out = options.corpusDir.empty()
                                    ? shrinkPath
                                    : options.corpusDir + "/shrunk-" +
                                          std::to_string(
                                              shrunk.scenario.id) +
                                          ".json";
        if (const Status s = qa::saveScenario(shrunk.scenario, out);
            !s.ok()) {
            std::fprintf(stderr, "eatfuzz: %s\n",
                         std::string(s.message()).c_str());
            return 1;
        }
        std::cout << "saved " << out << "\n";
        return 0;
    }

    if (!replayPath.empty())
        return report(qa::replayCorpus(replayPath, options, std::cout),
                      "replay");
    return report(qa::runCampaign(options, std::cout), "campaign");
}
