/**
 * @file
 * eatfuzz: property-based fuzzing driver for the whole simulator.
 *
 *   eatfuzz [--runs=N] [--seed=N] [-jN | --jobs=N] [--timeout=SECONDS]
 *           [--corpus-dir=DIR] [--verdicts=PATH] [--no-shrink]
 *           [--retries=N] [--checkpoint=PATH] [--resume]
 *   eatfuzz --replay=PATH_OR_DIR [--verdicts=PATH]
 *   eatfuzz --shrink=SEEDFILE [--corpus-dir=DIR]
 *   eatfuzz --self-test
 *
 * The default mode generates N scenarios deterministically from the
 * campaign seed, runs each in its own process (a crash or hang costs
 * one scenario, never the campaign), and judges it with the metamorphic
 * oracle suite. Failing scenarios are shrunk to minimal replayable seed
 * files under --corpus-dir, and every scenario emits one JSONL verdict,
 * in scenario-id order whatever the job count.
 *
 * With --checkpoint every settled scenario is journaled (flushed per
 * record): after a crash or kill -9 of the driver, the same command
 * plus --resume replays the journal instead of re-running, and the
 * final verdict file is byte-identical to an uninterrupted campaign.
 * --retries re-runs transient failures (spawn failure, signal death,
 * watchdog timeout) with bounded backoff; scenarios that still fail
 * are quarantined into <checkpoint>.quarantine and the campaign keeps
 * going. SIGINT/SIGTERM stop dispatch cleanly and leave resumable
 * state.
 *
 * --replay re-judges saved seed files (regression mode); --shrink
 * minimizes one known-failing seed; --self-test proves the oracles
 * catch deliberately seeded defects.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/parse.hh"
#include "campaign/retry.hh"
#include "qa/campaign.hh"
#include "qa/oracles.hh"
#include "qa/shrinker.hh"
#include "sim/batch.hh"

namespace
{

using namespace eat;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "       %s --replay=PATH_OR_DIR [--verdicts=PATH]\n"
        "       %s --shrink=SEEDFILE [--corpus-dir=DIR]\n"
        "       %s --self-test\n"
        "\n"
        "campaign options:\n"
        "  --runs=N          scenarios to generate (default 100)\n"
        "  --seed=N          campaign seed; scenario i is a pure\n"
        "                    function of (seed, i) (default 1)\n"
        "  -jN, --jobs=N     scenarios run concurrently (default 1)\n"
        "  --timeout=SECONDS per-scenario watchdog (default 120)\n"
        "  --corpus-dir=DIR  archive failing seeds here\n"
        "  --verdicts=PATH   JSONL verdict record per scenario\n"
        "  --no-shrink       archive failures without minimizing\n"
        "  --retries=N       retry transient scenario failures (spawn\n"
        "                    failure, signal, timeout) up to N times\n"
        "                    with backoff (0..10, default 0); what\n"
        "                    still fails is quarantined\n"
        "  --checkpoint=PATH journal every settled scenario here\n"
        "  --resume          replay the checkpoint journal instead of\n"
        "                    re-running settled scenarios (requires\n"
        "                    --checkpoint)\n"
        "\n"
        "exit status: 0 all scenarios pass, 1 violations or crashes,\n"
        "2 usage error, 128+N interrupted by signal N\n",
        argv0, argv0, argv0, argv0);
    std::exit(2);
}

std::uint64_t
parseCount(const char *flag, const std::string &text)
{
    const auto r = parseU64(text);
    if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", flag,
                     std::string(r.status().message()).c_str());
        std::exit(2);
    }
    return r.value();
}

int
report(const Result<qa::CampaignSummary> &result, const char *mode)
{
    if (!result.ok()) {
        std::fprintf(stderr, "eatfuzz: %s\n",
                     std::string(result.status().message()).c_str());
        return 1;
    }
    const auto &s = result.value();
    std::cout << "\n" << mode << ": " << s.scenarios << " scenarios, "
              << s.passed << " pass, " << s.failed << " fail, "
              << s.crashed << " crash";
    if (s.replayed > 0)
        std::cout << "; " << s.replayed << " replayed from checkpoint";
    if (s.quarantined > 0)
        std::cout << "; " << s.quarantined << " quarantined";
    if (s.retries > 0)
        std::cout << "; " << s.retries << " retries";
    if (!s.savedSeeds.empty())
        std::cout << "; " << s.savedSeeds.size() << " seeds saved";
    std::cout << "\n";
    if (s.interrupted()) {
        std::fprintf(stderr,
                     "eatfuzz: interrupted by signal %d; rerun with "
                     "--resume to finish the campaign\n",
                     s.interruptSignal);
        return 128 + s.interruptSignal;
    }
    return s.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    qa::CampaignOptions options;
    std::string replayPath, shrinkPath;
    bool selfTest = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        auto setJobs = [&options](const char *text) {
            const auto jobs = sim::parseJobs(text);
            if (!jobs.ok()) {
                std::fprintf(stderr, "--jobs: %s\n",
                             std::string(jobs.status().message()).c_str());
                std::exit(2);
            }
            options.jobs = jobs.value();
        };
        if (const char *v = value("--runs=")) {
            options.runs = parseCount("--runs", v);
        } else if (const char *v2 = value("--seed=")) {
            options.seed = parseCount("--seed", v2);
        } else if (const char *v3 = value("--timeout=")) {
            options.timeoutSeconds =
                static_cast<unsigned>(parseCount("--timeout", v3));
        } else if (const char *v4 = value("--corpus-dir=")) {
            options.corpusDir = v4;
        } else if (const char *v5 = value("--verdicts=")) {
            options.verdictsPath = v5;
        } else if (const char *v6 = value("--replay=")) {
            replayPath = v6;
        } else if (const char *v7 = value("--shrink=")) {
            shrinkPath = v7;
        } else if (const char *v8 = value("--jobs=")) {
            setJobs(v8);
        } else if (const char *v10 = value("--retries=")) {
            const auto retries = campaign::parseRetries(v10);
            if (!retries.ok()) {
                std::fprintf(stderr, "--%s\n",
                             std::string(retries.status().message())
                                 .c_str());
                return 2;
            }
            options.retries = retries.value();
        } else if (const char *v11 = value("--checkpoint=")) {
            if (*v11 == '\0') {
                std::fprintf(stderr,
                             "--checkpoint: path must not be empty\n");
                return 2;
            }
            options.checkpointPath = v11;
        } else if (const char *v12 = value("--kill-after=")) {
            // Undocumented testing aid: SIGKILL this process after N
            // checkpoint appends (crash-resume suite).
            options.killAfterCells = static_cast<unsigned>(
                parseCount("--kill-after", v12));
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (const char *v9 = value("-j")) {
            setJobs(v9);
        } else if (arg == "--no-shrink") {
            options.shrink = false;
        } else if (arg == "--self-test") {
            selfTest = true;
        } else {
            usage(argv[0]);
        }
    }
    if (static_cast<int>(!replayPath.empty()) +
            static_cast<int>(!shrinkPath.empty()) +
            static_cast<int>(selfTest) > 1) {
        std::fprintf(stderr, "--replay, --shrink, and --self-test are "
                             "mutually exclusive\n");
        return 2;
    }
    if (options.resume && options.checkpointPath.empty()) {
        std::fprintf(stderr, "--resume requires --checkpoint=PATH (the "
                             "journal to replay)\n");
        return 2;
    }
    if ((options.resume || !options.checkpointPath.empty()) &&
        (!replayPath.empty() || !shrinkPath.empty() || selfTest)) {
        std::fprintf(stderr, "--checkpoint/--resume only apply to the "
                             "campaign mode\n");
        return 2;
    }

    if (selfTest) {
        const Status s = qa::runSelfTest(std::cout);
        if (!s.ok()) {
            std::fprintf(stderr, "eatfuzz: self-test FAILED: %s\n",
                         std::string(s.message()).c_str());
            return 1;
        }
        std::cout << "self-test: ok\n";
        return 0;
    }

    if (!shrinkPath.empty()) {
        const auto loaded = qa::loadScenario(shrinkPath);
        if (!loaded.ok()) {
            std::fprintf(stderr, "eatfuzz: %s\n",
                         std::string(loaded.status().message()).c_str());
            return 1;
        }
        const auto &scenario = loaded.value();
        std::cout << "shrinking " << scenario.describe() << "\n";
        if (qa::runOracles(scenario).passed()) {
            std::fprintf(stderr, "eatfuzz: %s does not fail any oracle; "
                                 "nothing to shrink\n",
                         shrinkPath.c_str());
            return 1;
        }
        const auto shrunk = qa::shrinkScenario(
            scenario,
            [](const qa::Scenario &c) {
                return !qa::runOracles(c).passed();
            });
        std::cout << "shrunk in " << shrunk.attempts << " attempts ("
                  << shrunk.accepted << " accepted) -> "
                  << shrunk.scenario.describe() << "\n";
        const std::string out = options.corpusDir.empty()
                                    ? shrinkPath
                                    : options.corpusDir + "/shrunk-" +
                                          std::to_string(
                                              shrunk.scenario.id) +
                                          ".json";
        if (const Status s = qa::saveScenario(shrunk.scenario, out);
            !s.ok()) {
            std::fprintf(stderr, "eatfuzz: %s\n",
                         std::string(s.message()).c_str());
            return 1;
        }
        std::cout << "saved " << out << "\n";
        return 0;
    }

    if (!replayPath.empty())
        return report(qa::replayCorpus(replayPath, options, std::cout),
                      "replay");
    return report(qa::runCampaign(options, std::cout), "campaign");
}
