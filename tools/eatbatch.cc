/**
 * @file
 * eatbatch: fault-tolerant (workload x organization) sweep driver.
 *
 *   eatbatch --out=results.csv [-jN | --jobs=N] [--workloads=a,b,c]
 *            [--orgs=THP,RMM] [--instructions=N] [--fast-forward=N]
 *            [--seed=N] [--timeout=SECONDS] [--check=off|paddr|full]
 *            [--inject=SPEC] [--retries=N] [--checkpoint=PATH]
 *            [--resume]
 *   eatbatch --out=mix.csv --cores=4 --mix=mcf,canneal,omnetpp,astar
 *            [--shared] [--ctx-flush] [--quantum=N]
 *            [--remap-interval=N]
 *
 * Every run executes in its own process under a wall-clock watchdog,
 * so one crashing or hanging cell costs one row, not the sweep. Up to
 * N cells run concurrently (default: all hardware threads) with no
 * effect on results: rows are ordered by cell index and every column
 * except wall_seconds/sim_kips is bit-identical to a -j1 sweep. The
 * CSV is rewritten atomically after every run, a checkpoint journal
 * (default <out>.journal) records every settled cell, and --resume
 * replays it — even after a kill -9 the rerun loses at most the cells
 * that were in flight, and the merged CSV is byte-identical (modulo
 * the wall-clock columns) to an uninterrupted sweep. Transient
 * failures (fork pressure, signal death, watchdog timeouts) retry up
 * to --retries times with bounded backoff; what still fails lands in
 * <journal>.quarantine with full diagnostics, and SIGINT/SIGTERM stop
 * dispatch cleanly, reap every child, and leave resumable state.
 *
 * With --cores/--mix the grid becomes (mix x organization): every cell
 * runs the whole multiprogrammed mix through the multicore driver
 * under one organization, and after the sweep a normalized per-mix
 * table (energy and miss cycles relative to the first organization,
 * Figure-10 style) is printed from the finished rows.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/parse.hh"
#include "campaign/retry.hh"
#include "mc/mix.hh"
#include "sim/batch.hh"
#include "stats/table.hh"
#include "vm/host_table.hh"
#include "workloads/suite.hh"

namespace
{

using namespace eat;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --out=PATH [options]\n"
        "\n"
        "options:\n"
        "  -jN, --jobs=N        cells run concurrently (default: all\n"
        "                       hardware threads; max 4x that); results\n"
        "                       are identical at any job count\n"
        "  --workloads=A,B,...  workload names (default: the 8\n"
        "                       TLB-intensive workloads)\n"
        "  --orgs=A,B,...       organizations (default: all six)\n"
        "  --instructions=N     measured window per run\n"
        "  --fast-forward=N     skipped prefix per run\n"
        "  --seed=N             deterministic seed\n"
        "  --timeout=SECONDS    per-run watchdog (0 = none, default 0)\n"
        "  --check=LEVEL        off | paddr | full (default full)\n"
        "  --inject=SPEC        fault-injection spec per run\n"
        "  --telemetry-dir=DIR  per-cell interval telemetry (JSONL) as\n"
        "                       DIR/<workload>_<org>.jsonl\n"
        "  --retries=N          retry transient cell failures (spawn\n"
        "                       failure, signal, timeout) up to N times\n"
        "                       with backoff (0..10, default 0); what\n"
        "                       still fails is quarantined\n"
        "  --checkpoint=PATH    checkpoint journal (default\n"
        "                       <out>.journal)\n"
        "  --resume             replay the checkpoint journal (or, if\n"
        "                       absent, ok rows already in --out)\n"
        "  --cores=N            multicore sweep with N cores (1..16)\n"
        "  --mix=A,B,...        multiprogrammed mix (default: the\n"
        "                       selected workloads)\n"
        "  --shared             one shared address space per mc cell\n"
        "  --ctx-flush          flush TLBs on context switch (no ASIDs)\n"
        "  --quantum=N          scheduler quantum (default 100000)\n"
        "  --remap-interval=N   OS churn every N instructions per task\n"
        "  --coherence=MODE     ipi | hw remap-invalidation cost model\n"
        "                       (multicore cells only; default ipi)\n"
        "  --vm[=MODE]          nested paging per cell: identity |\n"
        "                       paged (bare --vm means paged)\n"
        "  --host-pages=SZ      host page size: 4k | 2m | 1g\n"
        "                       (requires --vm; default 4k)\n"
        "  --l3=MODE            L3 translation tier per cell: none |\n"
        "                       cache | dram (default none; part of the\n"
        "                       sweep fingerprint, so --resume refuses\n"
        "                       rows from a different tier)\n"
        "  --l3-policy=POLICY   cache-tier insertion: walk | promote\n"
        "                       (requires --l3=cache)\n"
        "  --l3-promote-streak=N\n"
        "                       promotion threshold (requires\n"
        "                       --l3-policy=promote)\n",
        argv0);
    std::exit(2);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

std::uint64_t
parseCount(const char *flag, const std::string &text)
{
    const auto r = parseU64(text);
    if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", flag,
                     std::string(r.status().message()).c_str());
        std::exit(2);
    }
    return r.value();
}

} // namespace

int
main(int argc, char **argv)
{
    sim::BatchOptions options;
    options.jobs = 0; // auto: one child per hardware thread
    std::string workloadsArg, orgsArg;
    bool haveVm = false;
    bool haveCoherence = false;
    std::string vmModeName;
    std::string hostPagesName;
    std::string l3ModeName;
    std::string l3PolicyName;
    std::uint64_t l3PromoteStreak = 0;
    bool haveL3Streak = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        auto setJobs = [&options](const char *text) {
            const auto jobs = sim::parseJobs(text);
            if (!jobs.ok()) {
                std::fprintf(stderr, "--jobs: %s\n",
                             std::string(jobs.status().message()).c_str());
                std::exit(2);
            }
            options.jobs = jobs.value();
        };
        if (const char *v = value("--out=")) {
            options.outPath = v;
        } else if (const char *v2 = value("--workloads=")) {
            workloadsArg = v2;
        } else if (const char *v3 = value("--orgs=")) {
            orgsArg = v3;
        } else if (const char *v4 = value("--instructions=")) {
            options.base.simulateInstructions =
                parseCount("--instructions", v4);
        } else if (const char *v5 = value("--fast-forward=")) {
            options.base.fastForwardInstructions =
                parseCount("--fast-forward", v5);
        } else if (const char *v6 = value("--seed=")) {
            options.base.seed = parseCount("--seed", v6);
        } else if (const char *v7 = value("--timeout=")) {
            options.timeoutSeconds = static_cast<unsigned>(
                parseCount("--timeout", v7));
        } else if (const char *v8 = value("--check=")) {
            const auto level = check::parseCheckLevel(v8);
            if (!level.ok()) {
                std::fprintf(stderr, "--check: %s\n",
                             std::string(level.status().message())
                                 .c_str());
                return 2;
            }
            options.base.checkLevel = level.value();
        } else if (const char *v9 = value("--inject=")) {
            options.base.faultSpec = v9;
            // Reject a malformed spec here, not in every child.
            const auto specs = check::parseFaultSpecs(v9);
            if (!specs.ok()) {
                std::fprintf(stderr, "--inject: %s\n",
                             std::string(specs.status().message())
                                 .c_str());
                return 2;
            }
        } else if (const char *v10 = value("--fail-cell=")) {
            options.failCell = v10; // undocumented testing aid
        } else if (const char *v11 = value("--telemetry-dir=")) {
            options.telemetryDir = v11;
        } else if (const char *v18 = value("--retries=")) {
            const auto retries = campaign::parseRetries(v18);
            if (!retries.ok()) {
                std::fprintf(stderr, "--%s\n",
                             std::string(retries.status().message())
                                 .c_str());
                return 2;
            }
            options.retries = retries.value();
        } else if (const char *v19 = value("--checkpoint=")) {
            if (*v19 == '\0') {
                std::fprintf(stderr,
                             "--checkpoint: path must not be empty\n");
                return 2;
            }
            options.checkpointPath = v19;
        } else if (const char *v20 = value("--kill-after=")) {
            // Undocumented testing aid: SIGKILL this process after N
            // checkpoint appends (crash-resume suite).
            options.killAfterCells = static_cast<unsigned>(
                parseCount("--kill-after", v20));
        } else if (const char *v12 = value("--jobs=")) {
            setJobs(v12);
        } else if (const char *v14 = value("--cores=")) {
            const auto n = mc::parseCoreCount(v14);
            if (!n.ok()) {
                std::fprintf(stderr, "--cores: %s\n",
                             std::string(n.status().message()).c_str());
                return 2;
            }
            options.cores = n.value();
        } else if (const char *v15 = value("--mix=")) {
            auto mix = mc::parseMixSpec(v15);
            if (!mix.ok()) {
                std::fprintf(stderr, "--mix: %s\n",
                             std::string(mix.status().message()).c_str());
                return 2;
            }
            options.mix = std::move(mix.value());
        } else if (const char *v16 = value("--quantum=")) {
            options.mcQuantum = parseCount("--quantum", v16);
            if (options.mcQuantum == 0) {
                std::fprintf(stderr, "--quantum: must be positive\n");
                return 2;
            }
        } else if (const char *v17 = value("--remap-interval=")) {
            options.mcRemapInterval =
                parseCount("--remap-interval", v17);
        } else if (const char *vcoh = value("--coherence=")) {
            const auto mode = mc::coherenceModeFromName(vcoh);
            if (!mode.ok()) {
                std::fprintf(stderr, "--coherence: %s\n",
                             std::string(mode.status().message())
                                 .c_str());
                return 2;
            }
            options.coherence = mode.value();
            haveCoherence = true;
        } else if (arg == "--vm") {
            haveVm = true;
            vmModeName = "paged";
        } else if (const char *vvm = value("--vm=")) {
            haveVm = true;
            vmModeName = vvm;
        } else if (const char *vhp = value("--host-pages=")) {
            hostPagesName = vhp;
        } else if (const char *vl3 = value("--l3=")) {
            l3ModeName = vl3;
        } else if (const char *vl3p = value("--l3-policy=")) {
            l3PolicyName = vl3p;
        } else if (const char *vl3s = value("--l3-promote-streak=")) {
            l3PromoteStreak = parseCount("--l3-promote-streak", vl3s);
            haveL3Streak = true;
        } else if (arg == "--shared") {
            options.mcShared = true;
        } else if (arg == "--ctx-flush") {
            options.mcCtxFlush = true;
        } else if (const char *v13 = value("-j")) {
            setJobs(v13);
        } else if (arg == "--resume") {
            options.resume = true;
        } else {
            usage(argv[0]);
        }
    }
    if (options.outPath.empty())
        usage(argv[0]);
    if (haveCoherence && !options.multicore()) {
        std::fprintf(stderr, "--coherence requires --cores/--mix\n");
        return 2;
    }
    if (haveVm) {
        const auto mode = vm::hostModeFromName(vmModeName);
        if (!mode.ok()) {
            std::fprintf(stderr, "--vm: %s\n",
                         std::string(mode.status().message()).c_str());
            return 2;
        }
        options.vmEnabled = true;
        options.vmIdentityHost = mode.value() == vm::HostMode::Identity;
    }
    if (!hostPagesName.empty()) {
        if (!haveVm) {
            std::fprintf(stderr, "--host-pages requires --vm\n");
            return 2;
        }
        const auto size = vm::hostPageSizeFromName(hostPagesName);
        if (!size.ok()) {
            std::fprintf(stderr, "--host-pages: %s\n",
                         std::string(size.status().message()).c_str());
            return 2;
        }
        options.hostPageSize = size.value();
    }
    if (!l3ModeName.empty()) {
        const auto mode = l3::l3ModeFromName(l3ModeName);
        if (!mode.ok()) {
            std::fprintf(stderr, "--l3: %s\n",
                         std::string(mode.status().message()).c_str());
            return 2;
        }
        options.l3Mode = mode.value();
    }
    if (!l3PolicyName.empty()) {
        if (options.l3Mode != l3::L3Mode::Cache) {
            std::fprintf(stderr, "--l3-policy requires --l3=cache\n");
            return 2;
        }
        const auto policy = l3::l3InsertPolicyFromName(l3PolicyName);
        if (!policy.ok()) {
            std::fprintf(stderr, "--l3-policy: %s\n",
                         std::string(policy.status().message()).c_str());
            return 2;
        }
        options.l3Policy = policy.value();
    }
    if (haveL3Streak) {
        if (options.l3Policy != l3::L3InsertPolicy::PtePromote) {
            std::fprintf(stderr, "--l3-promote-streak requires "
                                 "--l3-policy=promote\n");
            return 2;
        }
        if (l3PromoteStreak == 0) {
            std::fprintf(stderr,
                         "--l3-promote-streak: must be positive\n");
            return 2;
        }
        options.l3PromoteStreak =
            static_cast<unsigned>(l3PromoteStreak);
    }

    if (workloadsArg.empty()) {
        for (const auto &w : workloads::tlbIntensiveSuite())
            options.workloadNames.push_back(w.name);
    } else {
        options.workloadNames = splitCommas(workloadsArg);
    }
    for (const auto &name : splitCommas(orgsArg)) {
        bool found = false;
        for (const auto org : core::allOrgs()) {
            if (name == core::orgName(org)) {
                options.orgs.push_back(org);
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown organization '%s'\n",
                         name.c_str());
            return 2;
        }
    }

    const auto result = sim::runBatch(options, std::cout);
    if (!result.ok()) {
        std::fprintf(stderr, "eatbatch: %s\n",
                     std::string(result.status().message()).c_str());
        return 1;
    }

    const auto &s = result.value();
    std::cout << "\nsweep: " << s.ok << " ok, " << s.failed
              << " failed, " << s.timedOut << " timed out, " << s.resumed
              << " resumed (" << s.total() << " total";
    if (s.quarantined > 0)
        std::cout << "; " << s.quarantined << " quarantined";
    if (s.retries > 0)
        std::cout << "; " << s.retries << " retries";
    std::cout << ") -> " << options.outPath << "\n";

    if (s.interrupted()) {
        std::fprintf(stderr,
                     "eatbatch: interrupted by signal %d; rerun with "
                     "--resume to finish the sweep\n",
                     s.interruptSignal);
        return 128 + s.interruptSignal;
    }

    // After a multicore sweep, print the per-mix organization table
    // (paper Figure 10 shape): absolute and normalized energy and
    // miss cycles per organization, from the finished rows.
    if (options.multicore() && s.ok + s.resumed > 0) {
        const auto rows = sim::loadBatchRows(options.outPath);
        if (!rows.empty()) {
            // Metric columns (see batchCsvHeader): 1 l1_mpki,
            // 3 miss_cycles_pki, 4 energy_pj_pki, 7 shootdowns.
            const double baseEnergy = std::stod(rows.front().metrics[4]);
            const double baseCycles = std::stod(rows.front().metrics[3]);
            std::cout << "\nmix " << rows.front().workload << " on "
                      << options.cores << " cores (normalized to "
                      << rows.front().org << "):\n";
            stats::TextTable table({"org", "pJ/KI", "norm energy",
                                    "miss-cyc/KI", "norm cycles",
                                    "L1 MPKI", "shootdowns"});
            for (const auto &row : rows) {
                const double energy = std::stod(row.metrics[4]);
                const double cycles = std::stod(row.metrics[3]);
                table.addRow(
                    {row.org, stats::TextTable::num(energy, 1),
                     stats::TextTable::num(
                         baseEnergy > 0 ? energy / baseEnergy : 0.0, 3),
                     stats::TextTable::num(cycles, 2),
                     stats::TextTable::num(
                         baseCycles > 0 ? cycles / baseCycles : 0.0, 3),
                     row.metrics[1], row.metrics[7]});
            }
            table.print(std::cout);
        }
    }
    return (s.failed + s.timedOut) > 0 ? 1 : 0;
}
