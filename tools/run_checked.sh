#!/bin/sh
# Build and run the full test suite under ASan + UBSan, the slow-but-
# thorough lane that complements the differential checker: the shadow
# model catches wrong translations, the sanitizers catch wrong memory.
#
# usage: tools/run_checked.sh [build-dir]      (default: build-asan)

set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DEAT_SANITIZE=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"

# abort_on_error makes a sanitizer report fail the ctest run loudly;
# detect_leaks stays on by default where LeakSanitizer is available.
ASAN_OPTIONS="abort_on_error=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
