/**
 * @file
 * eatsim: the command-line simulator driver.
 *
 *   eatsim --list
 *   eatsim --workload=mcf --org=RMM_Lite [--instructions=N]
 *          [--fast-forward=N] [--seed=N] [--timeline=N]
 *          [--record=trace.eat | --replay=trace.eat]
 *          [--check=off|paddr|full] [--inject=SPEC]
 *   eatsim --cores=4 --mix=mcf,canneal,omnetpp,astar --org=RMM_Lite
 *          [--shared] [--ctx-flush] [--quantum=N] [--remap-interval=N]
 *          [--fault-core=N]
 *
 * Runs one simulation and prints the full report: performance, the
 * dynamic-energy breakdown per structure, Lite activity, the
 * self-check verdict, and the OS facts of the run. With --cores/--mix
 * the multicore driver runs instead and the report shows per-core and
 * aggregate numbers plus context-switch and shootdown activity.
 *
 * Exit status: 0 on success, 1 on a runtime error, 2 on bad usage,
 * 3 when the differential checker found mismatches that no fault
 * injection explains.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "base/parse.hh"
#include "l3/l3_config.hh"
#include "mc/mc_simulator.hh"
#include "mc/mix.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"
#include "vm/host_table.hh"
#include "workloads/suite.hh"

namespace
{

using namespace eat;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --workload=NAME --org=ORG [options]\n"
        "       %s --list\n"
        "\n"
        "options:\n"
        "  --org=ORG            4KB | THP | TLB_Lite | RMM | TLB_PP |"
        " RMM_Lite\n"
        "  --instructions=N     measured window (default 20000000)\n"
        "  --fast-forward=N     skipped prefix (default 2000000)\n"
        "  --seed=N             deterministic seed (default 42)\n"
        "  --timeline=N         record L1 MPKI every N instructions\n"
        "  --record=PATH        record the operation stream to PATH\n"
        "  --replay=PATH        replay a recorded trace through the MMU\n"
        "  --combined-l1        single fully associative L1 (paper 4.4)\n"
        "  --check=LEVEL        off | paddr | full (default full)\n"
        "  --inject=SPEC        inject TLB faults, e.g.\n"
        "                       'tag-flip@l1-4k:1e-4,drop-inv:1e-5'\n"
        "  --front-cache=MODE   on | off: the simulator's\n"
        "                       last-translation replay fast path\n"
        "                       (default on; results are identical\n"
        "                       either way)\n"
        "  --metrics=PATH       dump the metric registry as JSON\n"
        "  --telemetry=PATH     stream per-interval telemetry (JSONL)\n"
        "  --trace-out=PATH     write a Chrome trace of Lite/TLB\n"
        "                       decisions (load in chrome://tracing)\n"
        "  --provenance=PATH    stream per-translation energy-provenance\n"
        "                       events (JSONL; analyze with eatreport)\n"
        "  --prov-sample=N      write 1-in-N translation paths (default\n"
        "                       1 = every path; summary stays exact)\n"
        "  --cores=N            multicore run with N cores (1..16)\n"
        "  --mix=A,B,...        multiprogrammed workload mix\n"
        "  --shared             one shared address space (threads)\n"
        "  --ctx-flush          no ASID tags: flush TLBs on context"
        " switch\n"
        "  --quantum=N          scheduler quantum (default 100000)\n"
        "  --remap-interval=N   OS churn (and shootdowns) every N\n"
        "                       instructions per task (default off)\n"
        "  --fault-core=N       core targeted by --inject (default 0)\n"
        "  --vm[=MODE]          nested paging: identity | paged\n"
        "                       (bare --vm means paged; every guest\n"
        "                       walk reference takes its own host walk)\n"
        "  --host-pages=SZ      host page size: 4k | 2m | 1g\n"
        "                       (requires --vm; default 4k)\n"
        "  --coherence=MODE     how remap invalidations reach remote\n"
        "                       cores: ipi | hw (multicore only;\n"
        "                       default ipi)\n"
        "  --l3=MODE            giant-reach L3 translation tier behind\n"
        "                       the L2 TLBs: none | cache | dram\n"
        "                       (default none; valid with every --org)\n"
        "  --l3-policy=POLICY   cache-tier insertion: walk | promote\n"
        "                       (requires --l3=cache; default walk)\n"
        "  --l3-promote-streak=N\n"
        "                       L2-miss streak that triggers promotion\n"
        "                       (requires --l3-policy=promote)\n"
        "  --list               list the available workloads\n",
        argv0, argv0);
    std::exit(2);
}

/** Parse a numeric flag value strictly; bad input is a usage error. */
std::uint64_t
parseCount(const char *flag, const std::string &text)
{
    const auto r = parseU64(text);
    if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", flag,
                     r.status().message().c_str());
        std::exit(2);
    }
    return r.value();
}

core::MmuOrg
parseOrg(const std::string &name)
{
    for (const auto org : core::allOrgs()) {
        if (name == core::orgName(org))
            return org;
    }
    std::fprintf(stderr, "unknown organization '%s'\n", name.c_str());
    std::exit(2);
}

void
listWorkloads()
{
    stats::TextTable table({"workload", "suite", "footprint (MiB)",
                            "TLB intensive"});
    for (const auto &w : workloads::allWorkloads()) {
        table.addRow({w.name, w.suite,
                      std::to_string(w.footprintBytes() / 1_MiB),
                      w.tlbIntensive ? "yes" : "no"});
    }
    table.print(std::cout);
}

void
printReport(const sim::SimResult &r)
{
    const auto &s = r.stats;
    std::cout << "run: " << r.workloadName << " under "
              << core::orgName(r.org) << "\n\n";

    stats::TextTable perf({"metric", "value"});
    perf.addRow({"instructions", std::to_string(s.instructions)});
    perf.addRow({"memory operations", std::to_string(s.memOps)});
    perf.addRow({"L1 TLB MPKI", stats::TextTable::num(s.l1Mpki(), 3)});
    perf.addRow({"L2 TLB MPKI (walks)",
                 stats::TextTable::num(s.l2Mpki(), 3)});
    perf.addRow({"TLB-miss cycles / kinstr",
                 stats::TextTable::num(r.missCyclesPerKiloInstr(), 2)});
    perf.addRow({"miss-cycle fraction (CPI 1)",
                 stats::TextTable::percent(s.tlbMissCycleFraction())});
    perf.addRow({"dynamic energy pJ / kinstr",
                 stats::TextTable::num(r.energyPerKiloInstr(), 1)});
    perf.addRow({"leakage power (active config, mW)",
                 stats::TextTable::num(r.energy.leakagePower, 4)});
    perf.print(std::cout);

    std::cout << "\nhit sources:\n";
    stats::TextTable hits({"source", "count", "share of ops"});
    for (unsigned i = 0; i < static_cast<unsigned>(core::HitSource::Count);
         ++i) {
        const auto src = static_cast<core::HitSource>(i);
        if (s.hits(src) == 0)
            continue;
        hits.addRow({std::string(core::hitSourceName(src)),
                     std::to_string(s.hits(src)),
                     stats::TextTable::percent(
                         static_cast<double>(s.hits(src)) /
                         static_cast<double>(std::max<std::uint64_t>(
                             s.memOps, 1)))});
    }
    hits.print(std::cout);

    std::cout << "\nenergy by structure:\n";
    stats::TextTable energy({"structure", "reads", "writes",
                             "read pJ", "write pJ"});
    for (const auto &row : r.energy.structs) {
        energy.addRow({row.name, std::to_string(row.reads),
                       std::to_string(row.writes),
                       stats::TextTable::num(row.readEnergy, 0),
                       stats::TextTable::num(row.writeEnergy, 0)});
    }
    energy.print(std::cout);

    if (r.liteEnabled) {
        std::cout << "\nLite: " << r.lite.intervals << " intervals, "
                  << r.lite.wayDisableEvents << " way disables, "
                  << r.lite.degradationActivations
                  << " degradation re-activations, "
                  << r.lite.randomActivations
                  << " random re-activations\n";
        std::cout << "L1-4KB lookups at 4/2/1 ways: "
                  << stats::TextTable::percent(
                         s.l1WayLookups4K.fraction(2))
                  << " / "
                  << stats::TextTable::percent(
                         s.l1WayLookups4K.fraction(1))
                  << " / "
                  << stats::TextTable::percent(
                         s.l1WayLookups4K.fraction(0))
                  << "\n";
    }

    if (r.checkLevel != check::CheckLevel::Off) {
        std::cout << "\nself-check (" << check::checkLevelName(r.checkLevel)
                  << "): " << r.check.translationChecks
                  << " translations checked, " << r.check.wayMaskAudits
                  << " way-mask audits, " << r.check.mismatches()
                  << " mismatches\n";
        if (!r.firstMismatch.empty())
            std::cout << "first mismatch: " << r.firstMismatch << "\n";
    }
    if (r.inject.injected() > 0) {
        std::cout << "fault injection: " << r.inject.injected()
                  << " faults (" << r.inject.tagFlips << " tag flips, "
                  << r.inject.ppnFlips << " PPN flips, "
                  << r.inject.droppedInvalidations << " dropped invs, "
                  << r.inject.spuriousEnables << " spurious enables)\n";
    }

    if (s.hostWalks > 0) {
        std::cout << "\nnested paging: " << s.hostWalks
                  << " host walks, " << s.hostWalkMemRefs
                  << " host memory references ("
                  << stats::TextTable::num(
                         static_cast<double>(s.hostWalkMemRefs) /
                             static_cast<double>(s.hostWalks),
                         2)
                  << " refs/walk)\n";
    }

    if (s.l3Probes > 0) {
        std::cout << "\nl3: " << s.l3Probes << " probes, " << s.l3Hits
                  << " hits ("
                  << stats::TextTable::percent(
                         static_cast<double>(s.l3Hits) /
                         static_cast<double>(s.l3Probes))
                  << "), " << s.l3Fills << " fills, " << s.l3Evictions
                  << " evictions";
        if (s.dramAccesses > 0 || s.dramTagHits > 0) {
            std::cout << "; dram: " << s.dramTagHits << " tag hits, "
                      << s.dramAccesses << " array accesses";
        }
        std::cout << "\n";
    }

    std::cout << "\nOS: " << r.pages4K << " x 4KB pages, " << r.pages2M
              << " x 2MB pages, " << r.numRanges << " ranges (coverage "
              << stats::TextTable::percent(r.rangeCoverage) << ")\n";

    if (r.mpkiTimeline.numSamples() > 0) {
        std::cout << "\nL1 MPKI timeline (interval "
                  << r.mpkiTimeline.intervalInstructions() << "):\n  ";
        for (const double v : r.mpkiTimeline.downsample(20))
            std::cout << stats::TextTable::num(v, 1) << " ";
        std::cout << "\n";
    }

    std::cout << "\nwall clock:";
    for (const auto &stage : r.profile.stages) {
        std::cout << " " << stage.name << " "
                  << stats::TextTable::num(stage.seconds, 2) << "s";
    }
    std::cout << " | total "
              << stats::TextTable::num(r.profile.total(), 2) << "s, "
              << stats::TextTable::num(r.simKips(), 0) << " sim-KIPS\n";
    if (r.telemetryRecords > 0) {
        std::cout << "telemetry: " << r.telemetryRecords
                  << " interval records\n";
    }
    if (r.traceEvents > 0) {
        std::cout << "trace: " << r.traceEvents << " events";
        if (r.traceEventsDropped > 0)
            std::cout << " (" << r.traceEventsDropped << " dropped)";
        std::cout << "\n";
    }
    if (r.provenanceEnabled) {
        const auto &p = r.provenance;
        std::cout << "provenance: " << p.eventsWritten << " of "
                  << p.events << " events written ("
                  << p.translationsSampled << " of " << p.translations
                  << " translation paths, 1-in-" << p.sampleEvery
                  << " sampling; summary totals exact)\n";
    }
}

void
printMcReport(const mc::McResult &r)
{
    std::cout << "run: " << r.mixName << " on " << r.cores
              << (r.cores == 1 ? " core" : " cores") << " under "
              << core::orgName(r.perCore[0].org) << " ("
              << (r.sharedAddressSpace ? "shared address space"
                                       : "private address spaces")
              << ", " << (r.ctxFlush ? "ctx-flush" : "ASID-tagged")
              << ", quantum " << r.quantumInstructions << ")\n\n";

    mc::mcPerCoreTable(r).print(std::cout);

    std::cout << "\ntasks:\n";
    stats::TextTable tasks({"task", "workload", "asid", "instructions",
                            "remaps", "4KB pages", "2MB pages", "ranges",
                            "coverage"});
    for (std::size_t t = 0; t < r.tasks.size(); ++t) {
        const auto &task = r.tasks[t];
        tasks.addRow({std::to_string(t), task.workload,
                      std::to_string(task.asid),
                      std::to_string(task.instructions),
                      std::to_string(task.remapEvents),
                      std::to_string(task.pages4K),
                      std::to_string(task.pages2M),
                      std::to_string(task.numRanges),
                      stats::TextTable::percent(task.rangeCoverage)});
    }
    tasks.print(std::cout);

    std::uint64_t hostWalks = 0, hostWalkRefs = 0;
    for (const auto &c : r.perCore) {
        hostWalks += c.stats.hostWalks;
        hostWalkRefs += c.stats.hostWalkMemRefs;
    }
    if (hostWalks > 0) {
        std::cout << "\nnested paging: " << hostWalks << " host walks, "
                  << hostWalkRefs
                  << " host memory references (all cores)\n";
    }

    std::uint64_t l3Probes = 0, l3Hits = 0;
    for (const auto &c : r.perCore) {
        l3Probes += c.stats.l3Probes;
        l3Hits += c.stats.l3Hits;
    }
    if (l3Probes > 0) {
        std::cout << "\nl3: " << l3Probes << " probes, " << l3Hits
                  << " hits ("
                  << stats::TextTable::percent(
                         static_cast<double>(l3Hits) /
                         static_cast<double>(l3Probes))
                  << ", all cores)\n";
    }

    std::cout << "\nshootdowns: " << r.shootdownEvents << " events ("
              << mc::coherenceModeName(r.coherence) << " coherence), "
              << r.shootdownInvalidations << " entries invalidated\n";
    if (r.coherence == mc::McConfig::CoherenceMode::Hw) {
        std::cout << "hw coherence: " << r.coherenceProbes
                  << " filter probes, " << r.coherenceTargetedCores
                  << " sharer cores targeted\n";
    }

    std::uint64_t checks = 0, mismatches = 0, injected = 0;
    for (const auto &c : r.perCore) {
        checks += c.check.translationChecks;
        mismatches += c.check.mismatches();
        injected += c.inject.injected();
    }
    if (r.perCore[0].checkLevel != check::CheckLevel::Off) {
        std::cout << "self-check ("
                  << check::checkLevelName(r.perCore[0].checkLevel)
                  << "): " << checks << " translations checked, "
                  << mismatches << " mismatches\n";
        for (const auto &c : r.perCore) {
            if (!c.firstMismatch.empty()) {
                std::cout << "first mismatch: " << c.firstMismatch
                          << "\n";
                break;
            }
        }
    }
    if (injected > 0)
        std::cout << "fault injection: " << injected << " faults\n";

    std::cout << "\naggregate: "
              << stats::TextTable::num(r.energyPerKiloInstr(), 1)
              << " pJ/kinstr, L1 MPKI "
              << stats::TextTable::num(r.aggregateMpki(), 3)
              << ", miss-cycles/kinstr "
              << stats::TextTable::num(r.missCyclesPerKiloInstr(), 2)
              << "\n";

    std::cout << "wall clock:";
    for (const auto &stage : r.profile.stages) {
        std::cout << " " << stage.name << " "
                  << stats::TextTable::num(stage.seconds, 2) << "s";
    }
    std::cout << " | total "
              << stats::TextTable::num(r.profile.total(), 2) << "s, "
              << stats::TextTable::num(r.simKips(), 0)
              << " aggregate sim-KIPS\n";
    if (r.perCore[0].telemetryRecords > 0) {
        std::cout << "telemetry: " << r.perCore[0].telemetryRecords
                  << " interval records\n";
    }
    if (r.perCore[0].traceEvents > 0) {
        std::cout << "trace: " << r.perCore[0].traceEvents << " events";
        if (r.perCore[0].traceEventsDropped > 0) {
            std::cout << " (" << r.perCore[0].traceEventsDropped
                      << " dropped)";
        }
        std::cout << "\n";
    }
    if (r.provenanceEnabled) {
        const auto &p = r.provenance;
        std::cout << "provenance: " << p.eventsWritten << " of "
                  << p.events << " events written ("
                  << p.translationsSampled << " of " << p.translations
                  << " translation paths, 1-in-" << p.sampleEvery
                  << " sampling; summary totals exact)\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workloadName;
    std::string orgName = "THP";
    std::string recordPath, replayPath;
    sim::SimConfig cfg;
    cfg.simulateInstructions = 20'000'000;

    bool combined = false;
    bool provSampleSet = false;
    bool haveCores = false;
    unsigned coreCount = 1;
    std::vector<workloads::WorkloadSpec> mixSpecs;
    bool shared = false;
    bool ctxFlush = false;
    std::uint64_t quantum = 100'000;
    std::uint64_t remapInterval = 0;
    std::uint64_t faultCore = 0;
    bool haveVm = false;
    std::string vmModeName;
    std::string hostPagesName;
    std::string coherenceName;
    std::string l3ModeName;
    std::string l3PolicyName;
    std::uint64_t l3PromoteStreak = 0;
    bool haveL3Streak = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (const char *v = value("--workload=")) {
            workloadName = v;
        } else if (const char *v2 = value("--org=")) {
            orgName = v2;
        } else if (const char *v3 = value("--instructions=")) {
            cfg.simulateInstructions = parseCount("--instructions", v3);
        } else if (const char *v4 = value("--fast-forward=")) {
            cfg.fastForwardInstructions = parseCount("--fast-forward", v4);
        } else if (const char *v5 = value("--seed=")) {
            cfg.seed = parseCount("--seed", v5);
        } else if (const char *v6 = value("--timeline=")) {
            cfg.timelineInterval = parseCount("--timeline", v6);
        } else if (const char *v7 = value("--record=")) {
            recordPath = v7;
        } else if (const char *v8 = value("--replay=")) {
            replayPath = v8;
        } else if (const char *v9 = value("--check=")) {
            const auto level = check::parseCheckLevel(v9);
            if (!level.ok()) {
                std::fprintf(stderr, "--check: %s\n",
                             level.status().message().c_str());
                return 2;
            }
            cfg.checkLevel = level.value();
        } else if (const char *v10 = value("--inject=")) {
            cfg.faultSpec = v10;
            const auto specs = check::parseFaultSpecs(v10);
            if (!specs.ok()) {
                std::fprintf(stderr, "--inject: %s\n",
                             specs.status().message().c_str());
                return 2;
            }
        } else if (const char *vfc = value("--front-cache=")) {
            const std::string mode = vfc;
            if (mode == "on") {
                cfg.frontCache = true;
            } else if (mode == "off") {
                cfg.frontCache = false;
            } else {
                std::fprintf(stderr,
                             "--front-cache: expected on|off, got '%s'\n",
                             vfc);
                return 2;
            }
        } else if (const char *v11 = value("--metrics=")) {
            cfg.metricsPath = v11;
        } else if (const char *v12 = value("--telemetry=")) {
            cfg.telemetryPath = v12;
        } else if (const char *v13 = value("--trace-out=")) {
            cfg.traceOutPath = v13;
        } else if (const char *vp = value("--provenance=")) {
            if (*vp == '\0') {
                std::fprintf(stderr,
                             "--provenance: empty output path\n");
                return 2;
            }
            cfg.provenancePath = vp;
        } else if (const char *vs = value("--prov-sample=")) {
            cfg.provenanceSampleEvery = parseCount("--prov-sample", vs);
            if (cfg.provenanceSampleEvery == 0) {
                std::fprintf(stderr,
                             "--prov-sample: must be >= 1 (1 = trace "
                             "every translation)\n");
                return 2;
            }
            provSampleSet = true;
        } else if (const char *v14 = value("--cores=")) {
            const auto n = mc::parseCoreCount(v14);
            if (!n.ok()) {
                std::fprintf(stderr, "--cores: %s\n",
                             n.status().message().c_str());
                return 2;
            }
            coreCount = n.value();
            haveCores = true;
        } else if (const char *v15 = value("--mix=")) {
            auto mix = mc::parseMixSpec(v15);
            if (!mix.ok()) {
                std::fprintf(stderr, "--mix: %s\n",
                             mix.status().message().c_str());
                return 2;
            }
            mixSpecs = std::move(mix.value());
        } else if (const char *v16 = value("--quantum=")) {
            quantum = parseCount("--quantum", v16);
            if (quantum == 0) {
                std::fprintf(stderr,
                             "--quantum: must be positive\n");
                return 2;
            }
        } else if (const char *v17 = value("--remap-interval=")) {
            remapInterval = parseCount("--remap-interval", v17);
        } else if (const char *v18 = value("--fault-core=")) {
            faultCore = parseCount("--fault-core", v18);
        } else if (arg == "--vm") {
            haveVm = true;
            vmModeName = "paged";
        } else if (const char *vvm = value("--vm=")) {
            haveVm = true;
            vmModeName = vvm;
        } else if (const char *vhp = value("--host-pages=")) {
            hostPagesName = vhp;
        } else if (const char *vcoh = value("--coherence=")) {
            coherenceName = vcoh;
        } else if (const char *vl3 = value("--l3=")) {
            l3ModeName = vl3;
        } else if (const char *vl3p = value("--l3-policy=")) {
            l3PolicyName = vl3p;
        } else if (const char *vl3s = value("--l3-promote-streak=")) {
            l3PromoteStreak = parseCount("--l3-promote-streak", vl3s);
            haveL3Streak = true;
        } else if (arg == "--shared") {
            shared = true;
        } else if (arg == "--ctx-flush") {
            ctxFlush = true;
        } else if (arg == "--combined-l1") {
            combined = true;
        } else {
            usage(argv[0]);
        }
    }
    const bool multicore = haveCores || !mixSpecs.empty();
    if (workloadName.empty() && mixSpecs.empty())
        usage(argv[0]);
    if (provSampleSet && cfg.provenancePath.empty()) {
        std::fprintf(stderr,
                     "--prov-sample requires --provenance=PATH\n");
        return 2;
    }

    vm::HostMode hostMode = vm::HostMode::Paged;
    if (haveVm) {
        const auto mode = vm::hostModeFromName(vmModeName);
        if (!mode.ok()) {
            std::fprintf(stderr, "--vm: %s\n",
                         mode.status().message().c_str());
            return 2;
        }
        hostMode = mode.value();
    }
    vm::PageSize hostPageSize = vm::PageSize::Size4K;
    if (!hostPagesName.empty()) {
        if (!haveVm) {
            std::fprintf(stderr, "--host-pages requires --vm\n");
            return 2;
        }
        const auto size = vm::hostPageSizeFromName(hostPagesName);
        if (!size.ok()) {
            std::fprintf(stderr, "--host-pages: %s\n",
                         size.status().message().c_str());
            return 2;
        }
        hostPageSize = size.value();
    }
    // Orphaned L3 tuning flags describe nothing: reject them rather
    // than silently run a different machine than the user asked for.
    l3::L3Mode l3Mode = l3::L3Mode::None;
    if (!l3ModeName.empty()) {
        const auto mode = l3::l3ModeFromName(l3ModeName);
        if (!mode.ok()) {
            std::fprintf(stderr, "--l3: %s\n",
                         mode.status().message().c_str());
            return 2;
        }
        l3Mode = mode.value();
    }
    l3::L3InsertPolicy l3Policy = l3::L3InsertPolicy::WalkFill;
    if (!l3PolicyName.empty()) {
        if (l3Mode != l3::L3Mode::Cache) {
            std::fprintf(stderr,
                         "--l3-policy requires --l3=cache\n");
            return 2;
        }
        const auto policy = l3::l3InsertPolicyFromName(l3PolicyName);
        if (!policy.ok()) {
            std::fprintf(stderr, "--l3-policy: %s\n",
                         policy.status().message().c_str());
            return 2;
        }
        l3Policy = policy.value();
    }
    if (haveL3Streak) {
        if (l3Policy != l3::L3InsertPolicy::PtePromote) {
            std::fprintf(stderr,
                         "--l3-promote-streak requires "
                         "--l3-policy=promote\n");
            return 2;
        }
        if (l3PromoteStreak == 0) {
            std::fprintf(stderr,
                         "--l3-promote-streak: must be positive\n");
            return 2;
        }
    }

    mc::McConfig::CoherenceMode coherence =
        mc::McConfig::CoherenceMode::Ipi;
    if (!coherenceName.empty()) {
        const auto mode = mc::coherenceModeFromName(coherenceName);
        if (!mode.ok()) {
            std::fprintf(stderr, "--coherence: %s\n",
                         mode.status().message().c_str());
            return 2;
        }
        coherence = mode.value();
        if (!multicore) {
            std::fprintf(stderr,
                         "--coherence requires --cores/--mix\n");
            return 2;
        }
    }

    if (workloadName.empty()) {
        cfg.workload = mixSpecs.front();
    } else {
        const auto spec = workloads::findWorkload(workloadName);
        if (!spec) {
            std::fprintf(stderr,
                         "unknown workload '%s' (try --list)\n",
                         workloadName.c_str());
            return 2;
        }
        cfg.workload = *spec;
    }
    cfg.mmu = core::MmuConfig::make(parseOrg(orgName));
    cfg.mmu.combinedFullyAssocL1 = combined;
    if (haveVm) {
        cfg.mmu.vmEnabled = true;
        cfg.mmu.vmIdentityHost = hostMode == vm::HostMode::Identity;
        cfg.mmu.hostPageSize = hostPageSize;
    }
    if (l3Mode != l3::L3Mode::None) {
        cfg.mmu.l3Cache.policy = l3Policy;
        if (haveL3Streak) {
            cfg.mmu.l3Cache.promoteStreak =
                static_cast<unsigned>(l3PromoteStreak);
        }
        cfg.mmu.enableL3(l3Mode);
    }

    if (multicore) {
        if (!recordPath.empty() || !replayPath.empty()) {
            std::fprintf(stderr,
                         "--record/--replay are single-core only\n");
            return 2;
        }
        if (faultCore >= coreCount) {
            std::fprintf(stderr,
                         "--fault-core: core %llu beyond core count %u\n",
                         static_cast<unsigned long long>(faultCore),
                         coreCount);
            return 2;
        }
    }

    // Error boundary: library code reports problems by throwing (fatal)
    // or returning Status; here they become an exit code and a message.
    try {
        if (multicore) {
            mc::McConfig mcc;
            mcc.base = cfg;
            mcc.cores = coreCount;
            mcc.mix = mixSpecs.empty()
                          ? std::vector<workloads::WorkloadSpec>{
                                cfg.workload}
                          : std::move(mixSpecs);
            mcc.sharedAddressSpace = shared;
            mcc.ctxFlush = ctxFlush;
            mcc.quantumInstructions = quantum;
            mcc.remapInterval = remapInterval;
            mcc.faultCore = static_cast<unsigned>(faultCore);
            mcc.coherence = coherence;

            const auto result = mc::mcSimulate(mcc);
            printMcReport(result);

            std::uint64_t mismatches = 0;
            for (const auto &c : result.perCore)
                mismatches += c.check.mismatches();
            if (cfg.faultSpec.empty() && mismatches > 0) {
                std::fprintf(
                    stderr,
                    "eatsim: self-check FAILED with %llu mismatches\n",
                    static_cast<unsigned long long>(mismatches));
                return 3;
            }
            return 0;
        }

        if (!recordPath.empty()) {
            const auto n = sim::recordTrace(cfg, recordPath);
            std::cout << "recorded " << n << " operations to "
                      << recordPath << "\n";
            return 0;
        }

        const auto result = replayPath.empty()
                                ? sim::simulate(cfg)
                                : sim::simulateFromTrace(cfg, replayPath);
        printReport(result);

        // Mismatches with no injection running mean the simulator (or
        // the checker) is broken: make the run loudly non-zero.
        if (cfg.faultSpec.empty() && result.check.mismatches() > 0) {
            std::fprintf(stderr,
                         "eatsim: self-check FAILED with %llu mismatches\n",
                         static_cast<unsigned long long>(
                             result.check.mismatches()));
            return 3;
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "eatsim: %s\n", e.what());
        return 1;
    }
}
