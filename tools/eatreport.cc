/**
 * @file
 * eatreport: the energy-provenance analyzer.
 *
 *   eatreport --prov=run.prov.jsonl
 *   eatreport --prov=run.prov.jsonl --reconcile [--telemetry=run.jsonl]
 *   eatreport --prov=a.prov.jsonl --diff=b.prov.jsonl
 *   eatreport --prov=run.prov.jsonl --chrome-out=run.trace.json
 *
 * Reads the JSONL stream eatsim --provenance writes and renders:
 *
 *  - the per-core energy breakdown by structure, and the full
 *    structure x event-kind x page-size decomposition;
 *  - percentile summaries of the per-translation energy, walk depth,
 *    inter-miss reuse distance, and shootdown fan-out histograms;
 *  - with --diff, a Figure-10-style comparison of two runs (pJ per
 *    kilo-instruction per structure, plus the normalized total);
 *  - with --chrome-out, a Chrome trace-event export of the stream's
 *    translation/resize/interval/shootdown events on per-core tracks;
 *  - with --reconcile, the exact-accounting check: re-summing the
 *    written events must reproduce the trailing summary record bit for
 *    bit (and, with --telemetry, every telemetry dynamic_pj row must
 *    equal its interval marker exactly). Reconciliation requires an
 *    unsampled stream (sample_every == 1).
 *
 * A torn final line (crashed producer) is tolerated with a warning;
 * malformed lines anywhere else are a hard error.
 *
 * Exit status: 0 on success (reconciliation included), 1 on a runtime
 * error or a failed check, 2 on bad usage.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.hh"
#include "obs/provenance.hh"
#include "obs/telemetry.hh"
#include "stats/table.hh"

namespace
{

using namespace eat;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --prov=PATH [options]\n"
        "\n"
        "options:\n"
        "  --prov=PATH        provenance JSONL (eatsim --provenance)\n"
        "  --telemetry=PATH   cross-check interval markers against the\n"
        "                     telemetry stream's dynamic_pj rows\n"
        "  --diff=PATH        second provenance stream: print a\n"
        "                     Figure-10-style comparison\n"
        "  --chrome-out=PATH  export a Chrome trace (per-core tracks)\n"
        "  --reconcile        re-sum the events and require bit-exact\n"
        "                     agreement with the summary record\n",
        argv0);
    std::exit(2);
}

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "eatreport: %s\n", msg.c_str());
    std::exit(1);
}

double
num(const obs::JsonValue &o, std::string_view key, double fallback = 0.0)
{
    const obs::JsonValue *v = o.find(key);
    return v && v->isNumber() ? v->number : fallback;
}

std::uint64_t
count(const obs::JsonValue &o, std::string_view key)
{
    return static_cast<std::uint64_t>(num(o, key));
}

std::string
str(const obs::JsonValue &o, std::string_view key)
{
    const obs::JsonValue *v = o.find(key);
    return v && v->isString() ? v->string : std::string();
}

/** Exact per-(core, structure) re-accumulation, in stream order. */
struct CoreAgg
{
    std::array<obs::ProvStructTotals, obs::kProvMeteredStructs> structs{};
    std::uint64_t shootdowns = 0;
    PicoJoules shootdownPj = 0.0;
    std::uint64_t cohProbes = 0;
    PicoJoules cohPj = 0.0;
};

/** One lightweight event kept for the Chrome export. */
struct ChromeEvent
{
    std::uint64_t instr;
    unsigned core;
    obs::ProvKind kind;
    std::string name;
    std::string args;
};

/** Everything loaded from one provenance stream. */
struct Stream
{
    std::string path;
    std::uint64_t eventLines = 0;
    std::uint64_t maxInstr = 0;
    std::uint64_t translationEvents = 0;
    bool torn = false;

    std::vector<CoreAgg> cores;

    /** (struct, kind, psShift) -> {count, pJ}. */
    std::map<std::tuple<unsigned, unsigned, unsigned>,
             std::pair<std::uint64_t, PicoJoules>>
        breakdown;

    /** Translation resolution source -> {count, pJ}. */
    std::map<std::string, std::pair<std::uint64_t, PicoJoules>> bySource;

    /** Interval markers: (core, interval) -> exact delta pJ. */
    std::map<std::pair<unsigned, std::uint64_t>, PicoJoules> intervals;

    bool haveSummary = false;
    std::uint64_t sampleEvery = 1;
    std::uint64_t translations = 0;
    std::uint64_t translationsSampled = 0;
    std::uint64_t summaryEvents = 0;
    std::uint64_t eventsWritten = 0;
    obs::JsonValue summary;

    /** Exact totals parsed from the summary record — unlike the event
     *  sums these survive sampling, so the report and diff prefer
     *  them when present. */
    std::vector<CoreAgg> summaryCores;

    std::vector<ChromeEvent> chrome;

    CoreAgg &
    core(unsigned c)
    {
        if (c >= cores.size())
            cores.resize(c + 1);
        return cores[c];
    }

    /** The most trustworthy totals: exact summary when present,
     *  otherwise the re-summed events (a torn stream). */
    const std::vector<CoreAgg> &
    best() const
    {
        return haveSummary ? summaryCores : cores;
    }

    /** Dynamic total summed in the meters' canonical order. */
    PicoJoules
    canonicalDynamicPj(unsigned c) const
    {
        const auto &from = best();
        if (c >= from.size())
            return 0.0;
        PicoJoules total = 0.0;
        for (const auto &s : from[c].structs)
            total += s.readPj + s.writePj;
        return total;
    }

    PicoJoules
    totalDynamicPj() const
    {
        PicoJoules total = 0.0;
        for (unsigned c = 0; c < best().size(); ++c)
            total += canonicalDynamicPj(c);
        return total;
    }

    double
    pjPerKiloInstr() const
    {
        // maxInstr is the last measured-window instruction stamp seen,
        // i.e. the retired-instruction count of the longest core.
        const double instr =
            static_cast<double>(std::max<std::uint64_t>(maxInstr, 1)) *
            static_cast<double>(std::max<std::size_t>(best().size(), 1));
        return totalDynamicPj() * 1000.0 / instr;
    }
};

/** Parse the summary record's exact per-core totals. */
std::vector<CoreAgg>
parseSummaryCores(const obs::JsonValue &summary)
{
    std::vector<CoreAgg> cores;
    const obs::JsonValue *arr = summary.find("cores");
    if (!arr || !arr->isArray())
        return cores;
    for (const auto &co : arr->array) {
        const unsigned c = static_cast<unsigned>(count(co, "core"));
        if (c >= cores.size())
            cores.resize(c + 1);
        CoreAgg &agg = cores[c];
        agg.shootdowns = count(co, "shootdowns");
        agg.shootdownPj = num(co, "shootdown_pj");
        agg.cohProbes = count(co, "coh_probes");
        agg.cohPj = num(co, "coh_pj");
        const obs::JsonValue *structs = co.find("structs");
        if (!structs || !structs->isArray())
            continue;
        for (const auto &so : structs->array) {
            const auto idx = static_cast<unsigned>(
                obs::provStructFromName(str(so, "s")));
            if (idx >= obs::kProvMeteredStructs)
                continue;
            auto &t = agg.structs[idx];
            t.reads = count(so, "reads");
            t.writes = count(so, "writes");
            t.evicts = count(so, "evicts");
            t.readPj = num(so, "read_pj");
            t.writePj = num(so, "write_pj");
        }
    }
    return cores;
}

void
recordEvent(Stream &s, const obs::JsonValue &o, bool keepChrome)
{
    const std::string kindName = str(o, "k");
    const obs::ProvKind kind = obs::provKindFromName(kindName);
    if (kind == obs::ProvKind::Count)
        fail(s.path + ": unknown event kind '" + kindName + "'");
    const unsigned core = static_cast<unsigned>(count(o, "core"));
    const std::uint64_t instr = count(o, "i");
    const double pj = num(o, "pj");
    s.maxInstr = std::max(s.maxInstr, instr);
    ++s.eventLines;

    // Shootdown/CohProbe/Translation/Interval lines carry no "s"
    // field; give them a stable display structure instead of the
    // Count sentinel.
    obs::ProvStruct structId = obs::provStructFromName(str(o, "s"));
    if (structId == obs::ProvStruct::Count) {
        if (kind == obs::ProvKind::Shootdown)
            structId = obs::ProvStruct::Shootdown;
        else if (kind == obs::ProvKind::CohProbe)
            structId = obs::ProvStruct::Coherence;
        else
            structId = obs::ProvStruct::None;
    }
    const unsigned structIdx = static_cast<unsigned>(structId);
    const unsigned ps = static_cast<unsigned>(count(o, "ps"));
    CoreAgg &agg = s.core(core);

    switch (kind) {
      case obs::ProvKind::Probe:
      case obs::ProvKind::WalkRef: {
        if (structIdx >= obs::kProvMeteredStructs)
            fail(s.path + ": probe/walk_ref with bad structure");
        auto &t = agg.structs[structIdx];
        ++t.reads;
        t.readPj += pj;
        break;
      }
      case obs::ProvKind::Fill: {
        if (structIdx >= obs::kProvMeteredStructs)
            fail(s.path + ": fill with bad structure");
        auto &t = agg.structs[structIdx];
        ++t.writes;
        t.writePj += pj;
        break;
      }
      case obs::ProvKind::Evict:
        if (structIdx >= obs::kProvMeteredStructs)
            fail(s.path + ": evict with bad structure");
        ++agg.structs[structIdx].evicts;
        break;
      case obs::ProvKind::Shootdown:
        ++agg.shootdowns;
        agg.shootdownPj += pj;
        break;
      case obs::ProvKind::CohProbe:
        ++agg.cohProbes;
        agg.cohPj += pj;
        break;
      case obs::ProvKind::Interval:
        s.intervals[{core, count(o, "interval")}] = pj;
        break;
      case obs::ProvKind::Translation: {
        ++s.translationEvents;
        auto &src = s.bySource[str(o, "src")];
        ++src.first;
        src.second += pj;
        break;
      }
      default:
        break;
    }

    if (kind != obs::ProvKind::Interval) {
        auto &cell = s.breakdown[{structIdx,
                                  static_cast<unsigned>(kind), ps}];
        ++cell.first;
        cell.second += pj;
    }

    if (keepChrome && s.chrome.size() < (1u << 20)) {
        switch (kind) {
          case obs::ProvKind::Translation: {
            obs::JsonObject args;
            args.put("src", str(o, "src"));
            args.put("pj", pj);
            if (ps)
                args.put("page_shift", ps);
            s.chrome.push_back({instr, core, kind,
                                "translate:" + str(o, "src"), args.str()});
            break;
          }
          case obs::ProvKind::Resize: {
            obs::JsonObject args;
            args.put("from_ways", count(o, "from"));
            args.put("to_ways", count(o, "to"));
            s.chrome.push_back({instr, core, kind,
                                "resize:" + str(o, "s"), args.str()});
            break;
          }
          case obs::ProvKind::Shootdown: {
            obs::JsonObject args;
            args.put("remote_cores", count(o, "remote"));
            args.put("entries", count(o, "entries"));
            args.put("pj", pj);
            s.chrome.push_back({instr, core, kind, "shootdown",
                                args.str()});
            break;
          }
          case obs::ProvKind::CohProbe: {
            obs::JsonObject args;
            args.put("targeted_cores", count(o, "targets"));
            args.put("entries", count(o, "entries"));
            args.put("version", count(o, "version"));
            args.put("pj", pj);
            s.chrome.push_back({instr, core, kind, "coh_probe",
                                args.str()});
            break;
          }
          case obs::ProvKind::Interval: {
            s.chrome.push_back({instr, core, kind, "interval_pj",
                                obs::jsonNumber(pj)});
            break;
          }
          default:
            break;
        }
    }
}

Stream
loadStream(const std::string &path, bool keepChrome)
{
    std::ifstream in(path);
    if (!in)
        fail("cannot open provenance file '" + path + "'");

    Stream s;
    s.path = path;
    std::string line;
    std::string pending;
    std::uint64_t lineNo = 0;
    bool pendingBad = false;
    std::uint64_t badLineNo = 0;

    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        // A malformed line is only forgivable as the *last* line of the
        // stream (a producer that died mid-write); defer judgment.
        if (pendingBad)
            fail(path + ":" + std::to_string(badLineNo) +
                 ": malformed JSON line");
        auto parsed = obs::parseJson(line);
        if (!parsed.ok()) {
            pendingBad = true;
            badLineNo = lineNo;
            continue;
        }
        const obs::JsonValue &o = parsed.value();
        const std::string schema = str(o, "schema");
        if (schema == obs::kProvEventSchema) {
            recordEvent(s, o, keepChrome);
        } else if (schema == obs::kProvSummarySchema) {
            s.haveSummary = true;
            s.sampleEvery = std::max<std::uint64_t>(
                count(o, "sample_every"), 1);
            s.translations = count(o, "translations");
            s.translationsSampled = count(o, "translations_sampled");
            s.summaryEvents = count(o, "events");
            s.eventsWritten = count(o, "events_written");
            s.summary = o;
            s.summaryCores = parseSummaryCores(o);
        } else {
            fail(path + ":" + std::to_string(lineNo) +
                 ": unknown schema '" + schema +
                 "' (expected eat.prov.event / eat.prov.summary)");
        }
    }
    if (pendingBad) {
        s.torn = true;
        std::fprintf(stderr,
                     "eatreport: warning: %s:%llu: torn final line "
                     "ignored\n",
                     path.c_str(),
                     static_cast<unsigned long long>(badLineNo));
    }
    if (s.eventLines == 0 && !s.haveSummary)
        fail(path + ": no provenance records found");
    return s;
}

// --- histogram helpers (summary "hist" arrays) ---

std::vector<std::uint64_t>
histCounts(const obs::JsonValue &summary, std::string_view name)
{
    std::vector<std::uint64_t> counts;
    const obs::JsonValue *hist = summary.find("hist");
    const obs::JsonValue *arr = hist ? hist->find(name) : nullptr;
    if (arr && arr->isArray()) {
        for (const auto &v : arr->array)
            counts.push_back(static_cast<std::uint64_t>(v.number));
    }
    return counts;
}

/** Index of the bucket holding quantile @p q (0..1). */
std::size_t
histQuantile(const std::vector<std::uint64_t> &counts, double q)
{
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    if (total == 0)
        return 0;
    const double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (static_cast<double>(seen) >= target)
            return i;
    }
    return counts.empty() ? 0 : counts.size() - 1;
}

/** Render a log2 bucket index as its value range ("0" or "[2^a,2^b)"). */
std::string
log2BucketLabel(std::size_t bucket)
{
    if (bucket == 0)
        return "<1";
    return "[2^" + std::to_string(bucket - 1) + ",2^" +
           std::to_string(bucket) + ")";
}

void
printHistogramSummaries(const Stream &s)
{
    struct Spec
    {
        const char *key;
        const char *title;
        bool log2;
    };
    const Spec specs[] = {
        {"walk_depth", "page-walk memory refs / translation", false},
        {"translation_pj_log2", "pJ / translation", true},
        {"reuse_log2", "instructions between L1 misses", true},
        {"shootdown_fanout_log2", "entries invalidated / shootdown",
         true},
    };
    std::cout << "\ndistributions (p50 / p90 / p99):\n";
    stats::TextTable table({"distribution", "samples", "p50", "p90",
                            "p99"});
    for (const auto &spec : specs) {
        const auto counts = histCounts(s.summary, spec.key);
        std::uint64_t total = 0;
        for (const auto c : counts)
            total += c;
        if (total == 0)
            continue;
        auto label = [&spec](std::size_t bucket) {
            return spec.log2 ? log2BucketLabel(bucket)
                             : std::to_string(bucket);
        };
        table.addRow({spec.title, std::to_string(total),
                      label(histQuantile(counts, 0.50)),
                      label(histQuantile(counts, 0.90)),
                      label(histQuantile(counts, 0.99))});
    }
    table.print(std::cout);
}

// --- the default report ---

void
printReport(const Stream &s)
{
    std::cout << "provenance stream: " << s.path << "\n";
    std::cout << "events: " << s.eventLines << " lines, "
              << s.translationEvents << " translation paths";
    if (s.haveSummary) {
        std::cout << " (run total " << s.translations
                  << " translations, 1-in-" << s.sampleEvery
                  << " sampling)";
    }
    std::cout << "\n";
    if (s.torn)
        std::cout << "note: stream ends in a torn line (producer died "
                     "mid-write)\n";

    const auto &cores = s.best();
    for (unsigned c = 0; c < cores.size(); ++c) {
        const CoreAgg &agg = cores[c];
        std::cout << "\ncore " << c << " energy by structure ("
                  << (s.haveSummary ? "exact summary totals"
                                    : "re-summed events")
                  << "):\n";
        stats::TextTable table({"structure", "reads", "writes", "evicts",
                                "read pJ", "write pJ", "share"});
        const PicoJoules total = s.canonicalDynamicPj(c);
        for (unsigned i = 0; i < obs::kProvMeteredStructs; ++i) {
            const auto &t = agg.structs[i];
            if (t.reads == 0 && t.writes == 0 && t.evicts == 0)
                continue;
            const PicoJoules pj = t.readPj + t.writePj;
            table.addRow(
                {std::string(obs::provStructName(
                     static_cast<obs::ProvStruct>(i))),
                 std::to_string(t.reads), std::to_string(t.writes),
                 std::to_string(t.evicts),
                 stats::TextTable::num(t.readPj, 0),
                 stats::TextTable::num(t.writePj, 0),
                 stats::TextTable::percent(total > 0.0 ? pj / total
                                                       : 0.0)});
        }
        table.print(std::cout);
        if (agg.shootdowns > 0) {
            std::cout << "core " << c << " shootdowns: "
                      << agg.shootdowns << " broadcasts, "
                      << stats::TextTable::num(agg.shootdownPj, 0)
                      << " pJ\n";
        }
        if (agg.cohProbes > 0) {
            std::cout << "core " << c << " hw coherence: "
                      << agg.cohProbes << " filter probes, "
                      << stats::TextTable::num(agg.cohPj, 0)
                      << " pJ\n";
        }
    }

    std::cout << "\nstructure x event-kind x page-size:\n";
    stats::TextTable cells({"structure", "kind", "page", "count", "pJ"});
    for (const auto &[key, cell] : s.breakdown) {
        const auto [structIdx, kindIdx, ps] = key;
        const auto structId = static_cast<obs::ProvStruct>(structIdx);
        cells.addRow(
            {std::string(obs::provStructName(structId)),
             std::string(obs::provKindName(
                 static_cast<obs::ProvKind>(kindIdx))),
             ps == 0 ? "-" : ("2^" + std::to_string(ps)),
             std::to_string(cell.first),
             stats::TextTable::num(cell.second, 0)});
    }
    cells.print(std::cout);

    if (!s.bySource.empty()) {
        std::cout << "\ntranslations by resolution source:\n";
        stats::TextTable src({"source", "count", "pJ", "pJ/translation"});
        for (const auto &[name, cell] : s.bySource) {
            src.addRow({name, std::to_string(cell.first),
                        stats::TextTable::num(cell.second, 0),
                        stats::TextTable::num(
                            cell.first ? cell.second /
                                             static_cast<double>(
                                                 cell.first)
                                       : 0.0,
                            2)});
        }
        src.print(std::cout);
    }

    if (s.haveSummary)
        printHistogramSummaries(s);

    std::cout << "\ntotal_dynamic_pj=" << obs::jsonNumberExact(
                     s.totalDynamicPj())
              << " pj_per_ki=" << stats::TextTable::num(
                     s.pjPerKiloInstr(), 3)
              << "\n";
}

// --- the Figure-10-style diff ---

void
printDiff(const Stream &a, const Stream &b)
{
    std::cout << "\nFigure-10-style diff (pJ per kilo-instruction):\n";
    stats::TextTable table({"structure", "A", "B", "B/A"});
    auto perKi = [](const Stream &s, unsigned structIdx) {
        PicoJoules pj = 0.0;
        for (const auto &core : s.best()) {
            pj += core.structs[structIdx].readPj +
                  core.structs[structIdx].writePj;
        }
        const double instr =
            static_cast<double>(std::max<std::uint64_t>(s.maxInstr, 1)) *
            static_cast<double>(
                std::max<std::size_t>(s.best().size(), 1));
        return pj * 1000.0 / instr;
    };
    for (unsigned i = 0; i < obs::kProvMeteredStructs; ++i) {
        const double av = perKi(a, i);
        const double bv = perKi(b, i);
        if (av == 0.0 && bv == 0.0)
            continue;
        table.addRow({std::string(obs::provStructName(
                          static_cast<obs::ProvStruct>(i))),
                      stats::TextTable::num(av, 1),
                      stats::TextTable::num(bv, 1),
                      av > 0.0 ? stats::TextTable::num(bv / av, 3)
                               : "-"});
    }
    table.print(std::cout);

    const double aKi = a.pjPerKiloInstr();
    const double bKi = b.pjPerKiloInstr();
    std::cout << "fig10: A=" << a.path << " B=" << b.path
              << " A_pj_per_ki=" << stats::TextTable::num(aKi, 3)
              << " B_pj_per_ki=" << stats::TextTable::num(bKi, 3)
              << " ratio="
              << (aKi > 0.0 ? stats::TextTable::num(bKi / aKi, 4) : "-")
              << "\n";
}

// --- the Chrome export ---

void
writeChrome(const Stream &s, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fail("cannot open chrome trace file '" + path + "'");

    unsigned maxCore = 0;
    for (const auto &e : s.chrome)
        maxCore = std::max(maxCore, e.core);

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&out, &first](const std::string &json) {
        if (!first)
            out << ",";
        first = false;
        out << "\n" << json;
    };

    // One process per core, one thread per event family: the same
    // pid/tid layout TraceWriter uses, so both exports look alike in
    // the viewer.
    const char *tracks[] = {"translations", "lite resizes", "intervals",
                            "shootdowns"};
    auto trackOf = [](obs::ProvKind kind) {
        switch (kind) {
          case obs::ProvKind::Translation: return 0;
          case obs::ProvKind::Resize: return 1;
          case obs::ProvKind::Interval: return 2;
          default: return 3;
        }
    };
    for (unsigned core = 0; core <= maxCore; ++core) {
        obs::JsonObject args;
        args.put("name", "core " + std::to_string(core));
        obs::JsonObject meta;
        meta.put("name", "process_name");
        meta.put("ph", "M");
        meta.put("pid", core + 1);
        meta.put("tid", 0);
        meta.putRaw("args", args.str());
        emit(meta.str());
        for (unsigned t = 0; t < 4; ++t) {
            obs::JsonObject targs;
            targs.put("name", tracks[t]);
            obs::JsonObject tmeta;
            tmeta.put("name", "thread_name");
            tmeta.put("ph", "M");
            tmeta.put("pid", core + 1);
            tmeta.put("tid", t);
            tmeta.putRaw("args", targs.str());
            emit(tmeta.str());
        }
    }

    std::vector<const ChromeEvent *> ordered;
    ordered.reserve(s.chrome.size());
    for (const auto &e : s.chrome)
        ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const ChromeEvent *x, const ChromeEvent *y) {
                         return x->instr < y->instr;
                     });
    for (const ChromeEvent *e : ordered) {
        obs::JsonObject o;
        const bool counter = e->kind == obs::ProvKind::Interval;
        o.put("name", e->name);
        o.put("ph", counter ? "C" : "i");
        o.put("ts", e->instr);
        o.put("pid", e->core + 1);
        o.put("tid", static_cast<unsigned>(trackOf(e->kind)));
        if (!counter)
            o.put("s", "t");
        if (counter) {
            obs::JsonObject args;
            args.putRaw("value", e->args);
            o.putRaw("args", args.str());
        } else {
            o.putRaw("args", e->args);
        }
        emit(o.str());
    }
    out << "\n]}\n";
    out.flush();
    if (!out)
        fail("write failure on chrome trace file '" + path + "'");
    std::cout << "chrome trace: " << s.chrome.size() << " events -> "
              << path << "\n";
}

// --- reconciliation ---

/** One failed expectation -> message; empty return = pass. */
std::vector<std::string>
reconcile(const Stream &s)
{
    std::vector<std::string> errors;
    auto expect = [&errors](bool ok, const std::string &msg) {
        if (!ok)
            errors.push_back(msg);
    };

    if (!s.haveSummary) {
        errors.push_back("stream has no trailing summary record "
                         "(torn run?)");
        return errors;
    }
    if (s.sampleEvery > 1) {
        errors.push_back(
            "stream was sampled (1-in-" + std::to_string(s.sampleEvery) +
            "); reconciliation requires --prov-sample=1");
        return errors;
    }
    if (s.torn) {
        errors.push_back("stream ends in a torn line; the event sum is "
                         "incomplete");
        return errors;
    }

    expect(s.eventLines == s.eventsWritten,
           "stream holds " + std::to_string(s.eventLines) +
               " event lines but the summary counted " +
               std::to_string(s.eventsWritten) + " written");
    expect(s.translationEvents == s.translations,
           "stream holds " + std::to_string(s.translationEvents) +
               " translation events but the run made " +
               std::to_string(s.translations) + " translations");

    const obs::JsonValue *cores = s.summary.find("cores");
    if (!cores || !cores->isArray()) {
        errors.push_back("summary record has no cores array");
        return errors;
    }
    for (const auto &co : cores->array) {
        const unsigned c = static_cast<unsigned>(count(co, "core"));
        const std::string tag = "core " + std::to_string(c) + " ";

        // Per-structure exact agreement. The summary omits untouched
        // structures, so walk its rows and separately confirm our
        // aggregation has no activity the summary lacks.
        std::array<bool, obs::kProvMeteredStructs> inSummary{};
        const obs::JsonValue *structs = co.find("structs");
        if (structs && structs->isArray()) {
            for (const auto &so : structs->array) {
                const obs::ProvStruct id =
                    obs::provStructFromName(str(so, "s"));
                const auto idx = static_cast<unsigned>(id);
                if (idx >= obs::kProvMeteredStructs) {
                    errors.push_back(tag + "summary row with unknown "
                                           "structure '" +
                                     str(so, "s") + "'");
                    continue;
                }
                inSummary[idx] = true;
                const auto &t = c < s.cores.size()
                                    ? s.cores[c].structs[idx]
                                    : obs::ProvStructTotals{};
                const std::string name(obs::provStructName(id));
                expect(t.reads == count(so, "reads"),
                       tag + name + ": event reads " +
                           std::to_string(t.reads) + " != summary " +
                           std::to_string(count(so, "reads")));
                expect(t.writes == count(so, "writes"),
                       tag + name + ": event writes " +
                           std::to_string(t.writes) + " != summary " +
                           std::to_string(count(so, "writes")));
                expect(t.evicts == count(so, "evicts"),
                       tag + name + ": event evicts " +
                           std::to_string(t.evicts) + " != summary " +
                           std::to_string(count(so, "evicts")));
                expect(t.readPj == num(so, "read_pj"),
                       tag + name + ": event read energy " +
                           obs::jsonNumberExact(t.readPj) +
                           " pJ != summary " +
                           obs::jsonNumberExact(num(so, "read_pj")) +
                           " pJ (exact)");
                expect(t.writePj == num(so, "write_pj"),
                       tag + name + ": event write energy " +
                           obs::jsonNumberExact(t.writePj) +
                           " pJ != summary " +
                           obs::jsonNumberExact(num(so, "write_pj")) +
                           " pJ (exact)");
            }
        }
        if (c < s.cores.size()) {
            for (unsigned i = 0; i < obs::kProvMeteredStructs; ++i) {
                const auto &t = s.cores[c].structs[i];
                if (inSummary[i] ||
                    (t.reads == 0 && t.writes == 0 && t.evicts == 0))
                    continue;
                errors.push_back(
                    tag + "events touch " +
                    std::string(obs::provStructName(
                        static_cast<obs::ProvStruct>(i))) +
                    " but the summary has no row for it");
            }
        }

        // The canonical re-sum of the *events* (not the parsed summary
        // totals best() would prefer) in meter order.
        PicoJoules eventDynamicPj = 0.0;
        if (c < s.cores.size())
            for (const auto &st : s.cores[c].structs)
                eventDynamicPj += st.readPj + st.writePj;
        expect(eventDynamicPj == num(co, "dynamic_pj"),
               tag + "canonical dynamic energy " +
                   obs::jsonNumberExact(eventDynamicPj) +
                   " pJ != summary " +
                   obs::jsonNumberExact(num(co, "dynamic_pj")) +
                   " pJ (exact)");
        const std::uint64_t shootdowns =
            c < s.cores.size() ? s.cores[c].shootdowns : 0;
        const PicoJoules shootdownPj =
            c < s.cores.size() ? s.cores[c].shootdownPj : 0.0;
        expect(shootdowns == count(co, "shootdowns"),
               tag + "event shootdowns " + std::to_string(shootdowns) +
                   " != summary " +
                   std::to_string(count(co, "shootdowns")));
        expect(shootdownPj == num(co, "shootdown_pj"),
               tag + "event shootdown energy " +
                   obs::jsonNumberExact(shootdownPj) +
                   " pJ != summary " +
                   obs::jsonNumberExact(num(co, "shootdown_pj")) +
                   " pJ (exact)");
        const std::uint64_t cohProbes =
            c < s.cores.size() ? s.cores[c].cohProbes : 0;
        const PicoJoules cohPj =
            c < s.cores.size() ? s.cores[c].cohPj : 0.0;
        expect(cohProbes == count(co, "coh_probes"),
               tag + "event coherence probes " +
                   std::to_string(cohProbes) + " != summary " +
                   std::to_string(count(co, "coh_probes")));
        expect(cohPj == num(co, "coh_pj"),
               tag + "event coherence energy " +
                   obs::jsonNumberExact(cohPj) + " pJ != summary " +
                   obs::jsonNumberExact(num(co, "coh_pj")) +
                   " pJ (exact)");
    }
    return errors;
}

/** Match telemetry dynamic_pj rows against the interval markers. */
std::vector<std::string>
reconcileTelemetry(const Stream &s, const std::string &path)
{
    std::vector<std::string> errors;
    std::ifstream in(path);
    if (!in)
        fail("cannot open telemetry file '" + path + "'");

    std::string line;
    std::uint64_t lineNo = 0;
    std::uint64_t rows = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        auto parsed = obs::parseJson(line);
        if (!parsed.ok()) {
            fail(path + ":" + std::to_string(lineNo) +
                 ": malformed telemetry line");
        }
        const obs::JsonValue &o = parsed.value();
        if (str(o, "schema") != obs::kTelemetrySchema)
            continue;
        ++rows;
        const unsigned core = static_cast<unsigned>(count(o, "core"));
        const std::uint64_t interval = count(o, "interval");
        const auto it = s.intervals.find({core, interval});
        if (it == s.intervals.end()) {
            errors.push_back("telemetry core " + std::to_string(core) +
                             " interval " + std::to_string(interval) +
                             " has no provenance interval marker");
            continue;
        }
        const double telemetryPj = num(o, "dynamic_pj");
        if (it->second != telemetryPj) {
            errors.push_back(
                "core " + std::to_string(core) + " interval " +
                std::to_string(interval) + ": telemetry dynamic_pj " +
                obs::jsonNumberExact(telemetryPj) +
                " != interval marker " +
                obs::jsonNumberExact(it->second) + " (exact)");
        }
    }
    if (rows != s.intervals.size()) {
        errors.push_back("telemetry has " + std::to_string(rows) +
                         " interval rows but the provenance stream has " +
                         std::to_string(s.intervals.size()) +
                         " interval markers");
    }
    return errors;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string provPath, telemetryPath, diffPath, chromePath;
    bool doReconcile = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (const char *v = value("--prov=")) {
            provPath = v;
        } else if (const char *v2 = value("--telemetry=")) {
            telemetryPath = v2;
        } else if (const char *v3 = value("--diff=")) {
            diffPath = v3;
        } else if (const char *v4 = value("--chrome-out=")) {
            chromePath = v4;
        } else if (arg == "--reconcile") {
            doReconcile = true;
        } else {
            usage(argv[0]);
        }
    }
    if (provPath.empty())
        usage(argv[0]);
    if (!telemetryPath.empty() && !doReconcile) {
        std::fprintf(stderr,
                     "eatreport: --telemetry only applies with "
                     "--reconcile\n");
        return 2;
    }

    const Stream stream = loadStream(provPath, !chromePath.empty());
    printReport(stream);

    if (!diffPath.empty()) {
        const Stream other = loadStream(diffPath, false);
        printDiff(stream, other);
    }
    if (!chromePath.empty())
        writeChrome(stream, chromePath);

    if (doReconcile) {
        auto errors = reconcile(stream);
        if (!telemetryPath.empty() && errors.empty()) {
            auto more = reconcileTelemetry(stream, telemetryPath);
            errors.insert(errors.end(), more.begin(), more.end());
        }
        if (!errors.empty()) {
            for (const auto &e : errors)
                std::fprintf(stderr, "eatreport: reconcile: %s\n",
                             e.c_str());
            std::fprintf(stderr,
                         "eatreport: reconciliation FAILED (%zu "
                         "mismatches)\n",
                         errors.size());
            return 1;
        }
        std::cout << "reconcile: event sums match the summary record "
                     "bit for bit";
        if (!telemetryPath.empty())
            std::cout << " (telemetry rows match their interval "
                         "markers)";
        std::cout << "\n";
    }
    return 0;
}
