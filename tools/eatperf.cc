/**
 * @file
 * eatperf: the tracked performance baseline of the simulator itself.
 *
 *   eatperf --out=BENCH_perf.json [--jobs=N] [--instructions=N]
 *           [--fast-forward=N] [--repeats=N] [--quick]
 *
 * Runs a fixed, pinned-seed mini-grid twice over — once in-process to
 * measure sim-KIPS per organization, once through the batch runner at
 * -j1 and -jN to measure sweep wall clock — and writes one JSON
 * document future PRs can regress against. Simulated results are
 * deterministic; only the wall-clock numbers move between machines,
 * which is exactly what the file exists to track.
 *
 * Every sim-KIPS measurement (the "kips" and "mc" legs) is repeated
 * --repeats times (default 3) and the *median* rate is reported:
 * single-shot KIPS on a shared CI machine swings with tenant load, and
 * the --max-regression gate exists to catch code slowdowns, not a
 * noisy neighbour. --quick drops to one repeat to keep the CI lane's
 * wall clock flat. The simulated outcome is identical across repeats
 * (same seed, same windows); only the wall clock differs, so the
 * per-row simulation facts (e.g. the front-cache hit rate) are taken
 * from the first repeat.
 *
 * BENCH_perf.json schema (v5; v4 lacked the "l3" array, v3 lacked the
 * "vm" array, v2 lacked "repeats" and the per-row
 * "front_cache_hit_rate", v1 lacked the "mc" array):
 *
 *   {
 *     "schema": "eat.perf_baseline", "v": 5,
 *     "seed": ..., "instructions": ..., "fast_forward": ...,
 *     "repeats": N,
 *     "kips": [ {"org": "THP", "workload": "mcf",
 *                "sim_kips": <median>, "wall_seconds": <median>,
 *                "front_cache_hit_rate": ...}, ... ],
 *     "mc": [ {"cores": 1, "mix": "mcf,canneal",
 *              "sim_kips": <median>, "wall_seconds": <median>}, ... ],
 *     "vm": [ {"vm": "identity", "host_pages": "4k",
 *              "sim_kips": <median>, "wall_seconds": <median>,
 *              "host_walk_refs": ...}, ... ],
 *     "l3": [ {"l3": "none", "sim_kips": <median>,
 *              "wall_seconds": <median>, "l3_hit_rate": ...}, ... ],
 *     "sweep": { "workloads": "mcf,astar", "orgs": 6, "cells": 12,
 *                "jobs": N, "j1_wall_seconds": ...,
 *                "jn_wall_seconds": ..., "speedup": ... }
 *   }
 *
 * The "mc" leg runs the same pinned mix through the multicore driver
 * at 1, 2, and 4 cores; sim_kips there is the aggregate rate over all
 * cores, the scaling number the multicore scheduler is accountable
 * for. The "vm" leg runs the kips workload under nested paging —
 * identity host (must cost nothing) and paged host (every guest walk
 * reference takes its own host walk) — so two-dimensional-walk
 * slowdowns are tracked like everything else. The "l3" leg runs the
 * kips workload under TLB_Lite with the L3 translation tier off,
 * cache-resident, and in-DRAM, with each run's L3 hit rate recorded
 * beside the rate — the tier's probe path rides the L2-miss path, so
 * a slowdown here means the probe leaked onto a hot path.
 *
 * With --baseline=PATH the run additionally regresses itself against a
 * previously committed BENCH_perf.json: every per-org sim_kips row and
 * every mc aggregate row must stay above (1 - R) x its baseline value,
 * where R is --max-regression (default 0.5). CI machines are noisy and
 * share tenants, so R is deliberately generous — the gate exists to
 * catch order-of-magnitude slowdowns (an accidentally hot tracing hook,
 * a quadratic loop), not 10% drift. Offenders are listed and the exit
 * status is 1.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/parse.hh"
#include "l3/l3_config.hh"
#include "mc/mc_simulator.hh"
#include "mc/mix.hh"
#include "obs/json.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace
{

using namespace eat;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --out=PATH [options]\n"
        "\n"
        "options:\n"
        "  --jobs=N           pool width for the -jN sweep leg\n"
        "                     (default: all hardware threads)\n"
        "  --instructions=N   measured window per run (default 1e6)\n"
        "  --fast-forward=N   skipped prefix per run (default 1e5)\n"
        "  --repeats=N        timed repeats per sim-KIPS row; the\n"
        "                     median is reported (default 3)\n"
        "  --quick            CI-sized windows (2e5 measured) and one\n"
        "                     repeat\n"
        "  --baseline=PATH    regress sim-KIPS against a committed\n"
        "                     BENCH_perf.json; exit 1 on offenders\n"
        "  --max-regression=R allowed fractional sim-KIPS drop vs the\n"
        "                     baseline (default 0.5; 0.8 = fail only\n"
        "                     below 20%% of baseline)\n",
        argv0);
    std::exit(2);
}

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Median of a non-empty sample (mean of the middle pair when even). */
double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return (values[mid - 1] + values[mid]) / 2.0;
}

/**
 * Compare measured sim-KIPS rows against a committed baseline file.
 * @return the offender messages (empty = gate passes).
 */
std::vector<std::string>
checkBaseline(const std::string &path, double maxRegression,
              const std::vector<std::pair<std::string, double>> &kipsNow,
              const std::vector<std::pair<unsigned, double>> &mcNow,
              const std::vector<std::pair<std::string, double>> &vmNow,
              const std::vector<std::pair<std::string, double>> &l3Now)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "eatperf: cannot open baseline '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const auto parsed = obs::parseJson(buf.str());
    if (!parsed.ok()) {
        std::fprintf(stderr,
                     "eatperf: baseline '%s' is not valid JSON: %s\n",
                     path.c_str(),
                     std::string(parsed.status().message()).c_str());
        std::exit(1);
    }
    const obs::JsonValue &doc = parsed.value();
    const obs::JsonValue *schema = doc.find("schema");
    if (!schema || schema->string != "eat.perf_baseline") {
        std::fprintf(stderr,
                     "eatperf: baseline '%s' is not an "
                     "eat.perf_baseline document\n",
                     path.c_str());
        std::exit(1);
    }

    const double floorFraction = 1.0 - maxRegression;
    std::vector<std::string> offenders;
    auto gate = [floorFraction, &offenders](const std::string &what,
                                            double base, double now) {
        if (base <= 0.0)
            return;
        const double floorKips = base * floorFraction;
        if (now < floorKips) {
            char msg[160];
            std::snprintf(msg, sizeof msg,
                          "%s: %.0f sim-KIPS, below %.0f (baseline "
                          "%.0f x %.2f)",
                          what.c_str(), now, floorKips, base,
                          floorFraction);
            offenders.emplace_back(msg);
        }
    };

    if (const obs::JsonValue *rows = doc.find("kips");
        rows && rows->isArray()) {
        for (const auto &row : rows->array) {
            const obs::JsonValue *org = row.find("org");
            const obs::JsonValue *kips = row.find("sim_kips");
            if (!org || !kips)
                continue;
            for (const auto &[name, now] : kipsNow)
                if (name == org->string)
                    gate("org " + name, kips->number, now);
        }
    }
    if (const obs::JsonValue *rows = doc.find("mc");
        rows && rows->isArray()) {
        for (const auto &row : rows->array) {
            const obs::JsonValue *cores = row.find("cores");
            const obs::JsonValue *kips = row.find("sim_kips");
            if (!cores || !kips)
                continue;
            for (const auto &[n, now] : mcNow)
                if (n == static_cast<unsigned>(cores->number))
                    gate("mc " + std::to_string(n) + "-core",
                         kips->number, now);
        }
    }
    // Absent in pre-v4 baselines; the vm rows gate only once a
    // baseline regenerated under v4 is committed.
    if (const obs::JsonValue *rows = doc.find("vm");
        rows && rows->isArray()) {
        for (const auto &row : rows->array) {
            const obs::JsonValue *mode = row.find("vm");
            const obs::JsonValue *kips = row.find("sim_kips");
            if (!mode || !kips)
                continue;
            for (const auto &[name, now] : vmNow)
                if (name == mode->string)
                    gate("vm " + name, kips->number, now);
        }
    }
    // Absent in pre-v5 baselines; the l3 rows gate only once a
    // baseline regenerated under v5 is committed.
    if (const obs::JsonValue *rows = doc.find("l3");
        rows && rows->isArray()) {
        for (const auto &row : rows->array) {
            const obs::JsonValue *mode = row.find("l3");
            const obs::JsonValue *kips = row.find("sim_kips");
            if (!mode || !kips)
                continue;
            for (const auto &[name, now] : l3Now)
                if (name == mode->string)
                    gate("l3 " + name, kips->number, now);
        }
    }
    return offenders;
}

/** One batch-runner leg of the mini-grid; returns wall seconds. */
double
timedSweep(sim::BatchOptions options, unsigned jobs,
           const std::string &csvPath)
{
    options.jobs = jobs;
    options.outPath = csvPath;
    std::ostringstream sink; // progress is not the measurement
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim::runBatch(options, sink);
    const double wall = seconds(start);
    if (!result.ok()) {
        std::fprintf(stderr, "eatperf: sweep failed: %s\n",
                     std::string(result.status().message()).c_str());
        std::exit(1);
    }
    if (result.value().ok != result.value().total()) {
        std::fprintf(stderr,
                     "eatperf: %u of %u sweep cells did not finish ok\n",
                     result.value().total() - result.value().ok,
                     result.value().total());
        std::exit(1);
    }
    std::remove(csvPath.c_str());
    return wall;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::string baselinePath;
    double maxRegression = 0.5;
    unsigned jobs = 0; // auto
    InstrCount instructions = 1'000'000;
    InstrCount fastForward = 100'000;
    unsigned repeats = 3;
    bool repeatsGiven = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        auto count = [&arg](const char *flag,
                            const char *text) -> std::uint64_t {
            const auto r = parseU64(text);
            if (!r.ok()) {
                std::fprintf(stderr, "%s: %s\n", flag,
                             std::string(r.status().message()).c_str());
                std::exit(2);
            }
            return r.value();
        };
        if (const char *v = value("--out=")) {
            outPath = v;
        } else if (const char *v2 = value("--jobs=")) {
            const auto parsed = sim::parseJobs(v2);
            if (!parsed.ok()) {
                std::fprintf(
                    stderr, "--jobs: %s\n",
                    std::string(parsed.status().message()).c_str());
                return 2;
            }
            jobs = parsed.value();
        } else if (const char *v3 = value("--instructions=")) {
            instructions = count("--instructions", v3);
        } else if (const char *v4 = value("--fast-forward=")) {
            fastForward = count("--fast-forward", v4);
        } else if (const char *vr = value("--repeats=")) {
            const auto n = count("--repeats", vr);
            if (n < 1) {
                std::fprintf(stderr, "--repeats: must be >= 1\n");
                return 2;
            }
            repeats = static_cast<unsigned>(n);
            repeatsGiven = true;
        } else if (arg == "--quick") {
            instructions = 200'000;
            fastForward = 20'000;
            if (!repeatsGiven)
                repeats = 1;
        } else if (const char *v5 = value("--baseline=")) {
            baselinePath = v5;
        } else if (const char *v6 = value("--max-regression=")) {
            char *end = nullptr;
            maxRegression = std::strtod(v6, &end);
            if (end == v6 || *end != '\0' || maxRegression < 0.0 ||
                maxRegression >= 1.0) {
                std::fprintf(stderr,
                             "--max-regression: expected a fraction in "
                             "[0,1), got '%s'\n",
                             v6);
                return 2;
            }
        } else {
            usage(argv[0]);
        }
    }
    if (outPath.empty())
        usage(argv[0]);
    if (jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? hw : 1;
    }

    // The pinned mini-grid: two workloads with different locality
    // profiles x all six organizations, fixed seed 42 — small enough
    // for a CI lane, wide enough to exercise every datapath.
    const std::vector<std::string> sweepWorkloads{"mcf", "astar"};
    sim::BatchOptions batchTemplate;
    batchTemplate.workloadNames = sweepWorkloads;
    batchTemplate.base.simulateInstructions = instructions;
    batchTemplate.base.fastForwardInstructions = fastForward;
    batchTemplate.base.seed = 42;

    // --- leg 1: per-organization sim-KIPS, in-process ---
    const auto kipsSpec = workloads::findWorkload("mcf");
    if (!kipsSpec) {
        std::fprintf(stderr, "eatperf: workload 'mcf' missing\n");
        return 1;
    }
    std::vector<std::pair<std::string, double>> kipsNow;
    std::string kipsArray = "[";
    for (const auto org : core::allOrgs()) {
        sim::SimConfig cfg = batchTemplate.base;
        cfg.workload = *kipsSpec;
        cfg.mmu = core::MmuConfig::make(org);
        std::vector<double> kipsSamples, wallSamples;
        double frontHitRate = 0.0;
        for (unsigned rep = 0; rep < repeats; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            const sim::SimResult r = sim::simulate(cfg);
            const double wall = seconds(start);
            kipsSamples.push_back(r.simKips());
            wallSamples.push_back(wall);
            if (rep == 0 && r.stats.memOps > 0) {
                frontHitRate =
                    static_cast<double>(r.frontCacheHits) /
                    static_cast<double>(r.stats.memOps);
            }
        }
        const double kipsMed = median(kipsSamples);
        obs::JsonObject entry;
        entry.put("org", std::string(core::orgName(org)));
        entry.put("workload", kipsSpec->name);
        entry.put("sim_kips", kipsMed);
        entry.put("wall_seconds", median(wallSamples));
        entry.put("front_cache_hit_rate", frontHitRate);
        if (kipsArray.size() > 1)
            kipsArray += ",";
        kipsArray += entry.str();
        kipsNow.emplace_back(std::string(core::orgName(org)), kipsMed);
        std::cout << "kips: " << core::orgName(org) << " " << kipsMed
                  << " (median of " << repeats << ", front-hit "
                  << frontHitRate << ")\n";
    }
    kipsArray += "]";

    // --- leg 1b: multicore scaling, aggregate sim-KIPS at 1/2/4 cores ---
    const auto mcMix = mc::parseMixSpec("mcf,canneal");
    if (!mcMix.ok()) {
        std::fprintf(stderr, "eatperf: %s\n",
                     std::string(mcMix.status().message()).c_str());
        return 1;
    }
    std::vector<std::pair<unsigned, double>> mcNow;
    std::string mcArray = "[";
    for (const unsigned cores : {1u, 2u, 4u}) {
        mc::McConfig mcc;
        mcc.base = batchTemplate.base;
        mcc.base.workload = mcMix.value().front();
        mcc.base.mmu = core::MmuConfig::make(core::MmuOrg::TlbLite);
        mcc.cores = cores;
        mcc.mix = mcMix.value();
        std::vector<double> kipsSamples, wallSamples;
        std::string mixName;
        for (unsigned rep = 0; rep < repeats; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            const mc::McResult r = mc::mcSimulate(mcc);
            const double wall = seconds(start);
            kipsSamples.push_back(r.simKips());
            wallSamples.push_back(wall);
            if (rep == 0)
                mixName = r.mixName;
        }
        const double kipsMed = median(kipsSamples);
        obs::JsonObject entry;
        entry.put("cores", cores);
        entry.put("mix", mixName);
        entry.put("sim_kips", kipsMed);
        entry.put("wall_seconds", median(wallSamples));
        if (mcArray.size() > 1)
            mcArray += ",";
        mcArray += entry.str();
        mcNow.emplace_back(cores, kipsMed);
        std::cout << "mc: " << cores << " cores " << kipsMed
                  << " aggregate sim-KIPS (median of " << repeats
                  << ")\n";
    }
    mcArray += "]";

    // --- leg 1c: nested-paging sim-KIPS, identity and paged host ---
    std::vector<std::pair<std::string, double>> vmNow;
    std::string vmArray = "[";
    for (const bool identity : {true, false}) {
        const std::string mode = identity ? "identity" : "paged";
        sim::SimConfig cfg = batchTemplate.base;
        cfg.workload = *kipsSpec;
        cfg.mmu = core::MmuConfig::make(core::MmuOrg::Thp);
        cfg.mmu.vmEnabled = true;
        cfg.mmu.vmIdentityHost = identity;
        std::vector<double> kipsSamples, wallSamples;
        std::uint64_t hostWalkRefs = 0;
        for (unsigned rep = 0; rep < repeats; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            const sim::SimResult r = sim::simulate(cfg);
            const double wall = seconds(start);
            kipsSamples.push_back(r.simKips());
            wallSamples.push_back(wall);
            if (rep == 0)
                hostWalkRefs = r.stats.hostWalkMemRefs;
        }
        const double kipsMed = median(kipsSamples);
        obs::JsonObject entry;
        entry.put("vm", mode);
        entry.put("host_pages", "4k");
        entry.put("sim_kips", kipsMed);
        entry.put("wall_seconds", median(wallSamples));
        entry.put("host_walk_refs", hostWalkRefs);
        if (vmArray.size() > 1)
            vmArray += ",";
        vmArray += entry.str();
        vmNow.emplace_back(mode, kipsMed);
        std::cout << "vm: " << mode << " host " << kipsMed
                  << " sim-KIPS (median of " << repeats << ", "
                  << hostWalkRefs << " host walk refs)\n";
    }
    vmArray += "]";

    // --- leg 1d: L3-tier sim-KIPS, off vs cache-resident vs in-DRAM ---
    std::vector<std::pair<std::string, double>> l3Now;
    std::string l3Array = "[";
    for (const auto l3Mode :
         {l3::L3Mode::None, l3::L3Mode::Cache, l3::L3Mode::Dram}) {
        const std::string mode = std::string(l3::l3ModeName(l3Mode));
        sim::SimConfig cfg = batchTemplate.base;
        cfg.workload = *kipsSpec;
        // The TLB_L3$ shape: Lite on 4 KB pages, no THP — the tier
        // holds 4 KB-granule entries only, so a THP organization would
        // starve it and the leg would never time the hit path.
        cfg.mmu = core::MmuConfig::make(core::MmuOrg::TlbLite);
        cfg.mmu.org = core::MmuOrg::Base4K;
        if (l3Mode != l3::L3Mode::None)
            cfg.mmu.enableL3(l3Mode);
        std::vector<double> kipsSamples, wallSamples;
        double l3HitRate = 0.0;
        for (unsigned rep = 0; rep < repeats; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            const sim::SimResult r = sim::simulate(cfg);
            const double wall = seconds(start);
            kipsSamples.push_back(r.simKips());
            wallSamples.push_back(wall);
            if (rep == 0 && r.stats.l3Probes > 0) {
                l3HitRate = static_cast<double>(r.stats.l3Hits) /
                            static_cast<double>(r.stats.l3Probes);
            }
        }
        const double kipsMed = median(kipsSamples);
        obs::JsonObject entry;
        entry.put("l3", mode);
        entry.put("sim_kips", kipsMed);
        entry.put("wall_seconds", median(wallSamples));
        entry.put("l3_hit_rate", l3HitRate);
        if (l3Array.size() > 1)
            l3Array += ",";
        l3Array += entry.str();
        l3Now.emplace_back(mode, kipsMed);
        std::cout << "l3: " << mode << " " << kipsMed
                  << " sim-KIPS (median of " << repeats << ", hit rate "
                  << l3HitRate << ")\n";
    }
    l3Array += "]";

    // --- leg 2: sweep wall clock, serial vs pool ---
    const std::string csvPath = outPath + ".sweep.csv";
    std::cout << "sweep: " << sweepWorkloads.size() * core::allOrgs().size()
              << " cells at -j1...\n";
    const double j1Wall = timedSweep(batchTemplate, 1, csvPath);
    std::cout << "sweep: -j1 " << j1Wall << "s; now -j" << jobs
              << "...\n";
    const double jnWall = timedSweep(batchTemplate, jobs, csvPath);
    std::cout << "sweep: -j" << jobs << " " << jnWall << "s\n";

    obs::JsonObject sweep;
    {
        std::string joined;
        for (const auto &w : sweepWorkloads)
            joined += (joined.empty() ? "" : ",") + w;
        sweep.put("workloads", joined);
    }
    sweep.put("orgs", static_cast<unsigned>(core::allOrgs().size()));
    sweep.put("cells", static_cast<unsigned>(
                           sweepWorkloads.size() * core::allOrgs().size()));
    sweep.put("jobs", jobs);
    sweep.put("j1_wall_seconds", j1Wall);
    sweep.put("jn_wall_seconds", jnWall);
    sweep.put("speedup", jnWall > 0.0 ? j1Wall / jnWall : 0.0);

    obs::JsonObject doc;
    doc.put("schema", "eat.perf_baseline");
    doc.put("v", 5);
    doc.put("seed", std::uint64_t{42});
    doc.put("instructions", std::uint64_t{instructions});
    doc.put("fast_forward", std::uint64_t{fastForward});
    doc.put("repeats", repeats);
    doc.putRaw("kips", kipsArray);
    doc.putRaw("mc", mcArray);
    doc.putRaw("vm", vmArray);
    doc.putRaw("l3", l3Array);
    doc.putRaw("sweep", sweep.str());

    std::ofstream out(outPath, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "eatperf: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    out << doc.str() << "\n";
    out.flush();
    if (!out) {
        std::fprintf(stderr, "eatperf: write failure on %s\n",
                     outPath.c_str());
        return 1;
    }
    std::cout << "wrote " << outPath << " (speedup -j" << jobs << " vs -j1: "
              << (jnWall > 0.0 ? j1Wall / jnWall : 0.0) << "x)\n";

    if (!baselinePath.empty()) {
        const auto offenders = checkBaseline(baselinePath, maxRegression,
                                             kipsNow, mcNow, vmNow,
                                             l3Now);
        if (!offenders.empty()) {
            for (const auto &o : offenders)
                std::fprintf(stderr, "eatperf: regression: %s\n",
                             o.c_str());
            std::fprintf(stderr,
                         "eatperf: %zu row(s) regressed more than "
                         "%.0f%% vs %s\n",
                         offenders.size(), maxRegression * 100.0,
                         baselinePath.c_str());
            return 1;
        }
        std::cout << "baseline: all rows within " << maxRegression * 100.0
                  << "% of " << baselinePath << "\n";
    }
    return 0;
}
