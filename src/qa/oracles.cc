#include "qa/oracles.hh"

#include <cmath>
#include <sstream>

#include "core/mmu_stats.hh"
#include "l3/l3_config.hh"

namespace eat::qa
{

namespace
{

/** Relative tolerance for comparing accumulated energy sums. */
constexpr double kEnergyRelTol = 1e-9;

/**
 * Minimum landed ppn-flips before the fault-detection oracle demands a
 * checker mismatch. Below this the corrupted entries may all be
 * evicted before re-hitting, which is legitimate silence.
 */
constexpr std::uint64_t kDetectablePpnFlips = 8;

const energy::StructEnergyRow *
findRow(const std::vector<energy::StructEnergyRow> &rows,
        std::string_view name)
{
    for (const auto &row : rows) {
        if (row.name == name)
            return &row;
    }
    return nullptr;
}

bool
nearlyEqual(double a, double b)
{
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= kEnergyRelTol * scale;
}

/** One oracle's book-keeping: note it ran, record a violation if any. */
class Oracle
{
  public:
    Oracle(OracleVerdict &verdict, std::string name)
        : verdict_(verdict), name_(std::move(name))
    {
        verdict_.checked.push_back(name_);
    }

    template <typename... Args>
    void
    expect(bool ok, Args &&...args)
    {
        if (ok)
            return;
        std::ostringstream os;
        os << name_ << ": ";
        (os << ... << std::forward<Args>(args));
        verdict_.violations.push_back(os.str());
    }

  private:
    OracleVerdict &verdict_;
    std::string name_;
};

void
checkEnergyConservation(const sim::SimResult &r, OracleVerdict &verdict)
{
    Oracle oracle(verdict, "energy-conservation");

    double rowSum = 0.0;
    for (const auto &row : r.energy.structs)
        rowSum += row.readEnergy + row.writeEnergy;
    const double total = r.energy.breakdown.total();
    oracle.expect(nearlyEqual(rowSum, total),
                  "sum of per-structure rows ", rowSum,
                  " pJ != breakdown total ", total, " pJ");

    const auto &s = r.stats;
    std::uint64_t bySource = 0;
    for (const auto hits : s.hitsBySource)
        bySource += hits;
    oracle.expect(bySource == s.memOps, "hits by source sum to ", bySource,
                  " but ", s.memOps, " memory operations ran");
    oracle.expect(s.l1Hits + s.l1Misses == s.memOps, "L1 hits ", s.l1Hits,
                  " + misses ", s.l1Misses, " != mem ops ", s.memOps);
    oracle.expect(s.l2Hits + s.l2Misses == s.l1Misses, "L2 hits ",
                  s.l2Hits, " + misses ", s.l2Misses, " != L1 misses ",
                  s.l1Misses);
    const auto walkHits =
        s.hitsBySource[static_cast<unsigned>(core::HitSource::PageWalk)];
    oracle.expect(walkHits == s.l2Misses, "page-walk resolutions ",
                  walkHits, " != L2 misses ", s.l2Misses);

    const auto *walkRow = findRow(r.energy.structs, "page-walk memory");
    const auto walkRowReads = walkRow ? walkRow->reads : 0;
    oracle.expect(walkRowReads == s.walkMemRefs,
                  "page-walk memory row charged ", walkRowReads,
                  " reads but the walker made ", s.walkMemRefs,
                  " references");
    const auto *rangeRow = findRow(r.energy.structs, "range-walk memory");
    const auto rangeRowReads = rangeRow ? rangeRow->reads : 0;
    oracle.expect(rangeRowReads == s.rangeWalkMemRefs,
                  "range-walk memory row charged ", rangeRowReads,
                  " reads but the walker made ", s.rangeWalkMemRefs,
                  " references");
}

/**
 * The two-dimensional walk identities. Under a paged host every guest
 * page-walk reference plus the final guest-physical data address takes
 * its own host walk, so hostWalks == walkMemRefs + walks exactly,
 * where walks is l2Misses minus the L3-tier hits that skipped the walk;
 * the host-PWC is probed once per host walk and the host-walk memory
 * meter charges one read per host reference. Flat and identity-host
 * runs must keep the whole host dimension at zero — that is what makes
 * their digests comparable to bare-metal runs.
 */
void
checkNestedWalkAccounting(const sim::SimResult &r, bool pagedHost,
                          OracleVerdict &verdict)
{
    Oracle oracle(verdict, "nested-walk-accounting");

    const auto &s = r.stats;
    const auto *pwcRow = findRow(r.energy.structs, "host-PWC");
    const auto *hostRow = findRow(r.energy.structs, "host-walk memory");
    if (pagedHost) {
        const auto walks = s.l2Misses - s.l3Hits;
        oracle.expect(s.hostWalks == s.walkMemRefs + walks,
                      s.hostWalks, " host walks but ", s.walkMemRefs,
                      " guest walk references + ", walks,
                      " nested walks demand one each");
        const auto pwcReads = pwcRow ? pwcRow->reads : 0;
        oracle.expect(pwcReads == s.hostWalks,
                      "host-PWC row charged ", pwcReads,
                      " probes but the walker made ", s.hostWalks,
                      " host walks");
        const auto hostReads = hostRow ? hostRow->reads : 0;
        oracle.expect(hostReads == s.hostWalkMemRefs,
                      "host-walk memory row charged ", hostReads,
                      " reads but the walker made ", s.hostWalkMemRefs,
                      " references");
        if (walks > 0) {
            oracle.expect(s.hostWalkMemRefs > 0,
                          "paged host made ", s.hostWalks,
                          " host walks but no memory references");
        }
    } else {
        oracle.expect(s.hostWalks == 0 && s.hostWalkMemRefs == 0,
                      "host dimension active (", s.hostWalks, " walks, ",
                      s.hostWalkMemRefs,
                      " refs) without a paged host table");
        oracle.expect(!hostRow || hostRow->reads == 0,
                      "host-walk memory row present without a paged "
                      "host table");
    }
}

/**
 * L3-tier bookkeeping. The tier sits behind the L2 TLBs and in front of
 * the walker, probed on *every* L2 miss, so l3Probes == l2Misses is the
 * anchor identity; hits and misses partition the probes, fills are
 * bounded by misses (only walked 4 KB translations are parked), and the
 * energy rows must charge exactly one read per probe stage. With the
 * tier off every counter stays zero and no L3 row may appear — that is
 * what keeps --l3=none digest-identical to pre-L3 builds.
 */
void
checkL3Accounting(const sim::SimResult &r, l3::L3Mode mode,
                  OracleVerdict &verdict)
{
    Oracle oracle(verdict, "l3-accounting");

    const auto &s = r.stats;
    const auto *cacheRow = findRow(r.energy.structs, "L3-cache TLB");
    const auto *dramRow = findRow(r.energy.structs, "DRAM TLB");

    if (mode == l3::L3Mode::None) {
        oracle.expect(s.l3Probes == 0 && s.l3Hits == 0 &&
                          s.l3Misses == 0 && s.l3Fills == 0 &&
                          s.l3Evictions == 0 && s.dramTagHits == 0 &&
                          s.dramAccesses == 0,
                      "L3 counters active (", s.l3Probes,
                      " probes) without an L3 tier");
        oracle.expect(!cacheRow && !dramRow,
                      "an L3 energy row appeared without an L3 tier");
        return;
    }

    oracle.expect(s.l3Probes == s.l2Misses,
                  "the tier must be probed on every L2 miss: ",
                  s.l3Probes, " probes but ", s.l2Misses, " L2 misses");
    oracle.expect(s.l3Hits + s.l3Misses == s.l3Probes, "L3 hits ",
                  s.l3Hits, " + misses ", s.l3Misses, " != probes ",
                  s.l3Probes);
    oracle.expect(s.l3Fills <= s.l3Misses, s.l3Fills,
                  " fills exceed the ", s.l3Misses,
                  " misses that could have walked");
    oracle.expect(s.l3Evictions <= s.l3Fills, s.l3Evictions,
                  " evictions exceed ", s.l3Fills, " fills");

    if (mode == l3::L3Mode::Cache) {
        oracle.expect(s.dramTagHits == 0 && s.dramAccesses == 0,
                      "cache-resident tier kept a DRAM book: ",
                      s.dramTagHits, " tag hits, ", s.dramAccesses,
                      " accesses");
        oracle.expect(!dramRow, "DRAM TLB row in a cache-tier run");
        const auto reads = cacheRow ? cacheRow->reads : 0;
        const auto writes = cacheRow ? cacheRow->writes : 0;
        oracle.expect(reads == s.l3Probes, "L3-cache TLB row charged ",
                      reads, " reads for ", s.l3Probes, " probes");
        oracle.expect(writes == s.l3Fills, "L3-cache TLB row charged ",
                      writes, " writes for ", s.l3Fills, " fills");
    } else {
        oracle.expect(!cacheRow, "L3-cache TLB row in a dram-tier run");
        oracle.expect(s.dramTagHits <= s.l3Probes, s.dramTagHits,
                      " tag-cache hits exceed ", s.l3Probes, " probes");
        oracle.expect(s.dramAccesses <= s.l3Probes, s.dramAccesses,
                      " DRAM accesses exceed ", s.l3Probes, " probes");
        // Every probe pays the SRAM tag stage; only dramAccesses reach
        // the array. Both stages charge reads on the one meter.
        const auto reads = dramRow ? dramRow->reads : 0;
        const auto writes = dramRow ? dramRow->writes : 0;
        oracle.expect(reads == s.l3Probes + s.dramAccesses,
                      "DRAM TLB row charged ", reads, " reads for ",
                      s.l3Probes, " tag probes + ", s.dramAccesses,
                      " array accesses");
        oracle.expect(writes == s.l3Fills, "DRAM TLB row charged ",
                      writes, " writes for ", s.l3Fills, " fills");
    }
}

/**
 * The load-bearing provenance property: summing the traced events'
 * energy — per (core, structure), in the sink's exact accumulators —
 * equals the meters' aggregate rows *bit for bit*. No tolerance: the
 * sink charges the identical double at the identical choke point, so
 * any drift means an instrumentation gap, a double-charge, or a
 * summation-order bug.
 */
void
checkProvenanceReconciliation(const obs::ProvSummary &prov,
                              const sim::SimResult &r, unsigned core,
                              OracleVerdict &verdict)
{
    Oracle oracle(verdict, "provenance-reconciliation");

    static const obs::ProvCoreTotals kZero{};
    const obs::ProvCoreTotals &totals =
        core < prov.cores.size() ? prov.cores[core] : kZero;

    for (const auto &row : r.energy.structs) {
        const auto idx = static_cast<unsigned>(row.id);
        if (idx >= obs::kProvMeteredStructs)
            continue;
        const auto &t = totals.structs[idx];
        oracle.expect(t.reads == row.reads, "core ", core, " ",
                      row.name, ": traced ", t.reads,
                      " reads but the meter counted ", row.reads);
        oracle.expect(t.writes == row.writes, "core ", core, " ",
                      row.name, ": traced ", t.writes,
                      " writes but the meter counted ", row.writes);
        oracle.expect(t.readPj == row.readEnergy, "core ", core, " ",
                      row.name, ": traced read energy ", t.readPj,
                      " pJ != metered ", row.readEnergy, " pJ (exact)");
        oracle.expect(t.writePj == row.writeEnergy, "core ", core, " ",
                      row.name, ": traced write energy ", t.writePj,
                      " pJ != metered ", row.writeEnergy, " pJ (exact)");
    }

    oracle.expect(totals.shootdowns == r.stats.shootdownsInitiated,
                  "core ", core, ": traced ", totals.shootdowns,
                  " shootdowns but the core initiated ",
                  r.stats.shootdownsInitiated);
    oracle.expect(totals.shootdownPj == r.stats.shootdownEnergyPj,
                  "core ", core, ": traced shootdown energy ",
                  totals.shootdownPj, " pJ != metered ",
                  r.stats.shootdownEnergyPj, " pJ (exact)");
}

/**
 * The LRU inclusion (stack) property, phrased over way masks: shrinking
 * the L1 4 KB TLB while keeping its set count — 64x4 to 32x2 to 16x1,
 * all 16 sets — keeps every set's reference stream identical, so the
 * smaller TLB's hits are a subset of the larger's. More ways may never
 * lose hits, fewer ways may never gain them, and no geometry may change
 * any translation result (the shadow checker must stay silent).
 *
 * Only meaningful where the 4 KB TLB's fill stream is self-contained
 * and static: Base4K/THP organizations, Lite off, split L1.
 */
void
checkWayMonotonicity(const Scenario &scenario, const sim::SimResult &full,
                     OracleVerdict &verdict)
{
    Oracle oracle(verdict, "way-monotonicity");

    auto hits4K = [](const sim::SimResult &r) {
        return r.stats
            .hitsBySource[static_cast<unsigned>(core::HitSource::L1Page4K)];
    };

    std::uint64_t priorHits = hits4K(full);
    std::uint64_t priorMisses = full.stats.l1Misses;
    for (const unsigned ways : {2u, 1u}) {
        auto cfg = scenario.toSimConfig();
        // Same set count (16), fewer ways: a strict capacity shrink
        // with identical indexing.
        cfg.mmu.l1Tlb4K.entries = 16 * ways;
        cfg.mmu.l1Tlb4K.ways = ways;
        const auto shrunk = sim::simulate(cfg);

        oracle.expect(hits4K(shrunk) <= priorHits, ways,
                      "-way L1 4K TLB hit ", hits4K(shrunk),
                      " times, more than the ", priorHits,
                      "-hit larger geometry (inclusion violated)");
        oracle.expect(shrunk.stats.l1Misses >= priorMisses,
                      "L1 misses dropped from ", priorMisses, " to ",
                      shrunk.stats.l1Misses, " when shrinking to ", ways,
                      " ways");
        oracle.expect(shrunk.check.mismatches() == 0,
                      "translation results changed at ", ways, " ways: ",
                      shrunk.firstMismatch);
        oracle.expect(shrunk.stats.memOps == full.stats.memOps,
                      "operation stream changed size: ",
                      shrunk.stats.memOps, " vs ", full.stats.memOps);

        priorHits = hits4K(shrunk);
        priorMisses = shrunk.stats.l1Misses;
    }
}

} // namespace

std::string
resultDigest(const sim::SimResult &r)
{
    std::ostringstream os;
    os.precision(17);
    os << std::hexfloat;

    const auto &s = r.stats;
    os << "i" << s.instructions << " m" << s.memOps << " h" << s.l1Hits
       << '/' << s.l1Misses << " l2" << s.l2Hits << '/' << s.l2Misses
       << " w" << s.walkMemRefs << " hw" << s.hostWalks << '/'
       << s.hostWalkMemRefs << " rw" << s.rangeWalks << '/'
       << s.rangeWalkMemRefs;
    // The L3 tier's section is conditional so that --l3=none digests
    // stay byte-identical to pre-L3 builds (the golden-digest contract).
    if (s.l3Probes > 0) {
        os << " l3" << s.l3Probes << '/' << s.l3Hits << '/'
           << s.l3Misses << '/' << s.l3Fills << '/' << s.l3Evictions
           << '/' << s.dramTagHits << '/' << s.dramAccesses;
    }
    os << " c" << s.l1MissCycles << '/'
       << s.walkCycles << " wl" << s.l1WayLookups4K.toString() << '/'
       << s.l1WayLookups2M.toString();
    os << " src";
    for (const auto hits : s.hitsBySource)
        os << ':' << hits;

    os << " e" << r.energy.breakdown.l1Tlb << '/'
       << r.energy.breakdown.l2Tlb << '/' << r.energy.breakdown.mmuCache
       << '/' << r.energy.breakdown.pageWalkMem << '/'
       << r.energy.breakdown.rangeWalkMem << '/'
       << r.energy.breakdown.hostWalkMem;
    if (s.l3Probes > 0)
        os << '/' << r.energy.breakdown.l3Tlb;
    os << " st" << r.energy.leakagePower << '/'
       << r.energy.staticEnergyGated << '/' << r.energy.staticEnergyFull;
    for (const auto &row : r.energy.structs) {
        os << " [" << row.name << ' ' << row.reads << ' ' << row.writes
           << ' ' << row.readEnergy << ' ' << row.writeEnergy << ']';
    }

    os << " lite" << r.lite.intervals << '/' << r.lite.wayDisableEvents
       << '/' << r.lite.degradationActivations << '/'
       << r.lite.randomActivations;
    os << " chk" << r.check.translationChecks << '/'
       << r.check.wayMaskAudits << '/' << r.check.paddrMismatches << '/'
       << r.check.sizeMismatches << '/' << r.check.sourceViolations << '/'
       << r.check.wayMaskViolations;
    os << " inj" << r.inject.opportunities << '/' << r.inject.tagFlips
       << '/' << r.inject.ppnFlips << '/'
       << r.inject.droppedInvalidations << '/'
       << r.inject.spuriousEnables;
    os << " os" << r.pages4K << '/' << r.pages2M << '/' << r.numRanges
       << '/' << r.rangeCoverage;
    if (!r.firstMismatch.empty())
        os << " mm{" << r.firstMismatch << '}';
    return os.str();
}

namespace
{

/**
 * Shared digest body. The cost books — IPI shootdown charges and hw
 * coherence charges, plus the initiator/receipt counters that identify
 * which book a run kept — enter only when @p includeCostBooks is set:
 * mcResultDigest() includes them (full bit-identity), mcOutcomeDigest()
 * excludes them (IPI-vs-hw architectural equivalence).
 */
std::string
mcDigest(const mc::McResult &r, bool includeCostBooks)
{
    std::ostringstream os;
    os.precision(17);
    os << std::hexfloat;
    os << "cores" << r.cores << " mix{" << r.mixName << '}'
       << (r.sharedAddressSpace ? " shared" : " private")
       << (r.ctxFlush ? " ctxflush" : "") << " q"
       << r.quantumInstructions << " sd" << r.shootdownEvents << '/'
       << r.shootdownInvalidations;
    if (includeCostBooks) {
        os << " coh{" << mc::coherenceModeName(r.coherence) << '}'
           << r.coherenceProbes << '/' << r.coherenceTargetedCores;
    }
    for (std::size_t c = 0; c < r.perCore.size(); ++c) {
        const auto &s = r.perCore[c].stats;
        os << "\ncore" << c << ' ' << resultDigest(r.perCore[c]) << " mc"
           << s.contextSwitches << '/' << s.shootdownInvalidations;
        if (includeCostBooks) {
            os << " ipi" << s.shootdownsInitiated << '/'
               << s.shootdownsReceived << '/' << s.shootdownCycles << '/'
               << s.shootdownEnergyPj << " hwc" << s.cohProbes << '/'
               << s.cohTargetedCores << '/'
               << s.cohInvalidationsReceived << '/' << s.cohCycles << '/'
               << s.cohEnergyPj;
        }
    }
    for (std::size_t t = 0; t < r.tasks.size(); ++t) {
        const auto &task = r.tasks[t];
        os << "\ntask" << t << ' ' << task.workload << " a" << task.asid
           << " i" << task.instructions << " r" << task.remapEvents
           << " os" << task.pages4K << '/' << task.pages2M << '/'
           << task.numRanges << '/' << task.rangeCoverage;
    }
    return os.str();
}

} // namespace

std::string
mcResultDigest(const mc::McResult &r)
{
    return mcDigest(r, true);
}

std::string
mcOutcomeDigest(const mc::McResult &r)
{
    return mcDigest(r, false);
}

namespace
{

/** The oracle set of multicore scenarios. */
OracleVerdict
runMcOracles(const Scenario &scenario, Mutation mutation)
{
    OracleVerdict verdict;

    auto cfg = scenario.toMcConfig();
    if (mutation == Mutation::CorruptTlbFill)
        cfg.base.faultSpec = "ppn-flip@l2:0.01,ppn-flip@l1-4k:0.01";
    // In-memory provenance accumulation on the primary runs: the
    // reconciliation oracle needs the exact traced totals. The digests
    // never include provenance, so replay comparisons are unaffected.
    cfg.base.provenanceEnabled = true;

    auto result = mc::mcSimulate(cfg);
    {
        Oracle oracle(verdict, "mc-replay-determinism");
        const auto replay = mc::mcSimulate(cfg);
        const auto first = mcResultDigest(result);
        const auto second = mcResultDigest(replay);
        oracle.expect(first == second,
                      "two runs of one multicore scenario diverged; "
                      "first run: ",
                      first.substr(0, 160), "...");
    }
    verdict.digest = mcResultDigest(result);

    if (mutation == Mutation::SkipEnergyCharge) {
        // The defect under test, landed in core 0's report.
        for (auto &row : result.perCore[0].energy.structs) {
            if (row.readEnergy > 0.0) {
                row.readEnergy *= 0.5;
                break;
            }
        }
    }

    {
        Oracle oracle(verdict, "checker-activity");
        for (std::size_t c = 0; c < result.perCore.size(); ++c) {
            const auto &r = result.perCore[c];
            oracle.expect(r.checkLevel == check::CheckLevel::Full,
                          "core ", c,
                          " ran without the full shadow checker");
            oracle.expect(r.check.translationChecks > 0, "core ", c,
                          "'s shadow checker never checked a "
                          "translation");
        }
    }

    if (scenario.faultSpec.empty()) {
        Oracle oracle(verdict, "checker-silence");
        std::uint64_t mismatches = 0;
        std::uint64_t injected = 0;
        std::string first;
        for (const auto &r : result.perCore) {
            mismatches += r.check.mismatches();
            injected += r.inject.injected();
            if (first.empty())
                first = r.firstMismatch;
        }
        oracle.expect(mismatches == 0, "fault-free run reported ",
                      mismatches, " mismatches; first: ", first);
        oracle.expect(injected == 0, "fault-free run injected ",
                      injected, " faults");
    } else {
        Oracle oracle(verdict, "fault-detection");
        const auto &faulted = result.perCore[cfg.faultCore];
        if (faulted.inject.ppnFlips >= kDetectablePpnFlips) {
            oracle.expect(faulted.check.mismatches() > 0,
                          faulted.inject.ppnFlips,
                          " ppn-flips landed on core ", cfg.faultCore,
                          " but its checker stayed silent");
        }
        // Attribution: the injector touched exactly one core's TLBs,
        // so every other core's checker must stay silent.
        for (std::size_t c = 0; c < result.perCore.size(); ++c) {
            if (c == cfg.faultCore)
                continue;
            oracle.expect(result.perCore[c].check.mismatches() == 0,
                          "faults targeted core ", cfg.faultCore,
                          " but core ", c, "'s checker fired: ",
                          result.perCore[c].firstMismatch);
        }
    }

    for (const auto &r : result.perCore)
        checkEnergyConservation(r, verdict);

    if (result.provenanceEnabled) {
        for (unsigned c = 0;
             c < static_cast<unsigned>(result.perCore.size()); ++c) {
            checkProvenanceReconciliation(result.provenance,
                                          result.perCore[c], c, verdict);
        }
        Oracle oracle(verdict, "provenance-reconciliation");
        std::uint64_t memOps = 0;
        for (const auto &r : result.perCore)
            memOps += r.stats.memOps;
        oracle.expect(result.provenance.translations == memOps,
                      "sink saw ", result.provenance.translations,
                      " translations but the cores ran ", memOps,
                      " memory operations");
    }

    {
        Oracle oracle(verdict, "shootdown-accounting");
        const bool hw =
            result.coherence == mc::McConfig::CoherenceMode::Hw;
        std::uint64_t initiated = 0;
        std::uint64_t received = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t probes = 0;
        std::uint64_t targeted = 0;
        std::uint64_t cohReceived = 0;
        for (const auto &r : result.perCore) {
            initiated += r.stats.shootdownsInitiated;
            received += r.stats.shootdownsReceived;
            invalidations += r.stats.shootdownInvalidations;
            probes += r.stats.cohProbes;
            targeted += r.stats.cohTargetedCores;
            cohReceived += r.stats.cohInvalidationsReceived;
        }
        const std::uint64_t cores = result.perCore.size();
        oracle.expect(invalidations == result.shootdownInvalidations,
                      "per-core invalidations sum to ", invalidations,
                      " but the run counted ",
                      result.shootdownInvalidations);
        if (!hw) {
            oracle.expect(
                received == result.shootdownEvents * (cores - 1),
                "every broadcast interrupts every remote core: ",
                result.shootdownEvents, " events on ", cores,
                " cores but ", received, " receipts");
            if (cores > 1) {
                oracle.expect(initiated == result.shootdownEvents,
                              initiated, " initiations for ",
                              result.shootdownEvents, " broadcasts");
            }
            oracle.expect(probes == 0 && targeted == 0 &&
                              cohReceived == 0,
                          "IPI mode kept a hw coherence book: ", probes,
                          " probes, ", targeted, " targets, ",
                          cohReceived, " receipts");
        } else {
            oracle.expect(initiated == 0 && received == 0,
                          "hw mode kept an IPI book: ", initiated,
                          " initiations, ", received, " receipts");
            if (cores > 1) {
                oracle.expect(probes == result.shootdownEvents,
                              "every remap must probe the filter: ",
                              result.shootdownEvents, " events but ",
                              probes, " probes");
            }
            oracle.expect(probes == result.coherenceProbes &&
                              targeted == result.coherenceTargetedCores,
                          "per-core probe book (", probes, '/', targeted,
                          ") diverged from the run's (",
                          result.coherenceProbes, '/',
                          result.coherenceTargetedCores, ')');
            oracle.expect(cohReceived == targeted,
                          "filter targeted ", targeted,
                          " sharer cores but ", cohReceived,
                          " invalidation receipts landed");
            for (std::size_t c = 0; c < result.perCore.size(); ++c) {
                const auto &s = result.perCore[c].stats;
                const auto expectCycles =
                    cfg.base.mmu.cohProbeCycles * s.cohProbes +
                    cfg.base.mmu.cohPerCoreCycles * s.cohTargetedCores;
                oracle.expect(s.cohCycles == expectCycles, "core ", c,
                              " charged ", s.cohCycles,
                              " coherence cycles; the cost model says ",
                              expectCycles);
            }
        }
    }

    // Cost books must never leak into architectural state: an IPI twin
    // of a hw-coherence scenario performs the identical invalidations,
    // so everything but the charges matches.
    if (cfg.coherence == mc::McConfig::CoherenceMode::Hw &&
        mutation == Mutation::None) {
        Oracle oracle(verdict, "coherence-equivalence");
        auto ipiCfg = cfg;
        ipiCfg.coherence = mc::McConfig::CoherenceMode::Ipi;
        const auto ipi = mc::mcSimulate(ipiCfg);
        const auto hwOutcome = mcOutcomeDigest(result);
        const auto ipiOutcome = mcOutcomeDigest(ipi);
        oracle.expect(hwOutcome == ipiOutcome,
                      "hw coherence changed architectural outcomes; "
                      "hw: ",
                      hwOutcome.substr(0, 160), "...");
    }

    {
        const bool pagedHost =
            cfg.base.mmu.vmEnabled && !cfg.base.mmu.vmIdentityHost;
        for (const auto &r : result.perCore)
            checkNestedWalkAccounting(r, pagedHost, verdict);
    }

    for (const auto &r : result.perCore)
        checkL3Accounting(r, cfg.base.mmu.l3Mode, verdict);

    // A one-task multicore run (churn off) must be the single-core
    // driver, bit for bit — the acceptance bar for `--cores 1`.
    if (cfg.cores == 1 && cfg.mix.size() == 1 &&
        cfg.remapInterval == 0 && mutation == Mutation::None) {
        Oracle oracle(verdict, "single-core-equivalence");
        auto scfg = scenario.toSimConfig();
        scfg.workload = cfg.mix[0];
        const auto single = sim::simulate(scfg);
        const auto singleDigest = resultDigest(single);
        const auto coreDigest = resultDigest(result.perCore[0]);
        oracle.expect(singleDigest == coreDigest,
                      "one-core multicore run diverged from the "
                      "single-core driver; single: ",
                      singleDigest.substr(0, 160), "...");
    }

    return verdict;
}

} // namespace

OracleVerdict
runOracles(const Scenario &scenario, Mutation mutation)
{
    if (scenario.multicore())
        return runMcOracles(scenario, mutation);

    OracleVerdict verdict;

    auto cfg = scenario.toSimConfig();
    if (mutation == Mutation::CorruptTlbFill) {
        // The defect under test: fills get corrupted but the scenario
        // declares no fault plan, so the silence oracle must fire.
        cfg.faultSpec = "ppn-flip@l2:0.01,ppn-flip@l1-4k:0.01";
    }
    // In-memory provenance accumulation on the primary runs: the
    // reconciliation oracle needs the exact traced totals. The digests
    // never include provenance, so replay comparisons are unaffected.
    cfg.provenanceEnabled = true;

    auto result = sim::simulate(cfg);
    {
        Oracle oracle(verdict, "replay-determinism");
        const auto replay = sim::simulate(cfg);
        const auto first = resultDigest(result);
        const auto second = resultDigest(replay);
        oracle.expect(first == second,
                      "two runs of one scenario diverged; first run: ",
                      first.substr(0, 160), "...");
    }
    verdict.digest = resultDigest(result);

    if (mutation == Mutation::SkipEnergyCharge) {
        // The defect under test: one structure's activity goes
        // unaccounted. Conservation must catch the imbalance.
        for (auto &row : result.energy.structs) {
            if (row.readEnergy > 0.0) {
                row.readEnergy *= 0.5;
                break;
            }
        }
    }

    {
        Oracle oracle(verdict, "checker-activity");
        oracle.expect(result.checkLevel == check::CheckLevel::Full,
                      "scenario ran without the full shadow checker");
        oracle.expect(result.check.translationChecks > 0,
                      "the shadow checker never checked a translation");
    }

    if (scenario.faultSpec.empty()) {
        Oracle oracle(verdict, "checker-silence");
        oracle.expect(result.check.mismatches() == 0,
                      "fault-free run reported ",
                      result.check.mismatches(),
                      " mismatches; first: ", result.firstMismatch);
        oracle.expect(result.inject.injected() == 0,
                      "fault-free run injected ",
                      result.inject.injected(), " faults");
    } else {
        Oracle oracle(verdict, "fault-detection");
        if (result.inject.ppnFlips >= kDetectablePpnFlips) {
            oracle.expect(result.check.mismatches() > 0,
                          result.inject.ppnFlips,
                          " ppn-flips landed but the checker stayed "
                          "silent");
        }
    }

    checkEnergyConservation(result, verdict);
    checkNestedWalkAccounting(
        result, cfg.mmu.vmEnabled && !cfg.mmu.vmIdentityHost, verdict);
    checkL3Accounting(result, cfg.mmu.l3Mode, verdict);

    // An identity host table engages the nested walker but must charge
    // nothing: the run is digest-identical to the same scenario on
    // bare metal.
    if (cfg.mmu.vmEnabled && cfg.mmu.vmIdentityHost &&
        mutation == Mutation::None) {
        Oracle oracle(verdict, "vm-identity-equivalence");
        auto flatCfg = cfg;
        flatCfg.mmu.vmEnabled = false;
        flatCfg.mmu.vmIdentityHost = false;
        const auto flat = sim::simulate(flatCfg);
        const auto flatDigest = resultDigest(flat);
        const auto vmDigest = resultDigest(result);
        oracle.expect(flatDigest == vmDigest,
                      "identity-host run diverged from bare metal; "
                      "vm: ",
                      vmDigest.substr(0, 160), "...");
    }

    if (result.provenanceEnabled) {
        checkProvenanceReconciliation(result.provenance, result, 0,
                                      verdict);
        Oracle oracle(verdict, "provenance-reconciliation");
        oracle.expect(result.provenance.translations == result.stats.memOps,
                      "sink saw ", result.provenance.translations,
                      " translations but the run made ",
                      result.stats.memOps, " memory operations");
    }

    const bool wayOracleEligible =
        (scenario.org == core::MmuOrg::Base4K ||
         scenario.org == core::MmuOrg::Thp) &&
        scenario.faultSpec.empty() && !scenario.combinedL1 &&
        mutation == Mutation::None;
    if (wayOracleEligible)
        checkWayMonotonicity(scenario, result, verdict);

    return verdict;
}

} // namespace eat::qa
