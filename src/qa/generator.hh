/**
 * @file
 * Deterministic scenario generation for fuzzing campaigns.
 *
 * Scenario i of a campaign is a pure function of (campaignSeed, i): the
 * generator seeds a private Rng from the pair, so any scenario can be
 * re-derived — and re-run bit-identically — from those two numbers
 * alone. The generated space covers all six MMU organizations, the
 * TLB-intensive workload suite, small/large measured windows, optional
 * fast-forward, combined-L1 and eager-range variants, randomized Lite
 * schedules, and (on a quarter of page-TLB scenarios) fault-injection
 * plans tuned so that corruption is actually observable by the shadow
 * checker rather than masked as extra misses.
 *
 * Every scenario the generator emits passes MmuConfig::validate(); the
 * constraints (no Lite on mixed TLBs, no combined L1 on TLB_PP, ...)
 * are encoded here rather than discovered by rejection sampling.
 */

#ifndef EAT_QA_GENERATOR_HH
#define EAT_QA_GENERATOR_HH

#include <cstdint>

#include "qa/scenario.hh"

namespace eat::qa
{

/** Derive scenario @p index of the campaign seeded with @p campaignSeed. */
Scenario generateScenario(std::uint64_t campaignSeed, std::uint64_t index);

} // namespace eat::qa

#endif // EAT_QA_GENERATOR_HH
