/**
 * @file
 * Fuzzing campaigns: generate, run, judge, shrink, and archive
 * scenarios at scale.
 *
 * A campaign derives its scenarios deterministically from one seed
 * (scenario i is a pure function of (seed, i)), fans them out over the
 * crash-resilient campaign engine — a crashing or hanging scenario
 * costs one child, never the campaign; transient failures retry with
 * backoff; a checkpoint journal makes a killed campaign resumable —
 * and judges each with the oracle suite. Failing scenarios are
 * greedily shrunk in the parent and saved as replayable seed files;
 * every scenario, pass or fail, gets one JSONL verdict record, written
 * in scenario-id order whatever the job count.
 *
 * Verdict-record format (schema "eat.qa.verdict", v2), one per line:
 *
 *   {"schema": "eat.qa.verdict", "v": 2, "id": ..., "scenario": ...,
 *    "status": "pass"|"fail"|"crash"|"timeout", "checked": ...,
 *    "violations": ..., "digest": ..., "seed_file": ...,
 *    "failure_class": "none"|"spawn-failed"|"signal"|"timeout"|
 *                     "nonzero-exit"|"bad-payload",
 *    "exit_code": ..., "term_signal": ..., "attempts": ...}
 *
 * v2 adds the last four fields: the actual failure class (a spawn
 * failure is no longer lumped with a signal death or a garbled
 * payload), the child's exit status / terminating signal, and how
 * many attempts the scenario took (> 1 after transient retries).
 *
 * replayCorpus() re-judges previously saved seed files, which is how
 * CI keeps old failures fixed; runSelfTest() proves the oracles have
 * teeth by requiring that deliberately seeded defects are caught and
 * shrink to a minimal replayable seed.
 */

#ifndef EAT_QA_CAMPAIGN_HH
#define EAT_QA_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qa/scenario.hh"

namespace eat::qa
{

/** Schema identifier stamped into every verdict record. */
inline constexpr std::string_view kVerdictSchema = "eat.qa.verdict";
inline constexpr int kVerdictVersion = 2;

struct CampaignOptions
{
    /** Campaign seed: scenario i is derived from (seed, i). */
    std::uint64_t seed = 1;

    /** Number of scenarios to generate and judge. */
    std::uint64_t runs = 100;

    /** Concurrent scenario children; 0 = hardware concurrency. */
    unsigned jobs = 1;

    /** Per-scenario watchdog; 0 disables it. */
    unsigned timeoutSeconds = 120;

    /** Where failing seeds are archived; empty = do not archive. */
    std::string corpusDir;

    /** JSONL verdict stream; empty = no verdict file. */
    std::string verdictsPath;

    /** Minimize failing scenarios before archiving them. */
    bool shrink = true;

    /** Checkpoint journal path; empty disables checkpointing. */
    std::string checkpointPath;

    /** Replay the checkpoint journal before dispatching: scenarios
     *  already settled (any verdict) are not re-run. Requires
     *  checkpointPath. */
    bool resume = false;

    /** Transient-failure retry budget per scenario (spawn failure,
     *  signal death, watchdog timeout), with bounded exponential
     *  backoff. What still fails is quarantined, not fatal. */
    unsigned retries = 0;

    /** Testing aid: SIGKILL this process after N checkpoint appends
     *  (a deterministic kill -9 for the crash-resume suite); 0 = off. */
    unsigned killAfterCells = 0;
};

struct CampaignSummary
{
    std::uint64_t scenarios = 0;
    std::uint64_t passed = 0;
    std::uint64_t failed = 0;   ///< oracle violations
    std::uint64_t crashed = 0;  ///< child crash, hang, or spawn failure

    /** Scenarios satisfied from the checkpoint journal on resume
     *  (also counted in passed/failed/crashed). */
    std::uint64_t replayed = 0;

    /** Scenarios recorded in the poisoned-cell (quarantine) file
     *  (also counted in crashed). */
    std::uint64_t quarantined = 0;

    /** Transient-failure retry attempts dispatched. */
    std::uint64_t retries = 0;

    /** SIGINT/SIGTERM that stopped the campaign; 0 = ran to
     *  completion. Settled verdicts are checkpointed — rerun with
     *  resume to finish. */
    int interruptSignal = 0;

    /** Seed files written for failing scenarios. */
    std::vector<std::string> savedSeeds;

    bool interrupted() const { return interruptSignal != 0; }

    bool clean() const { return failed == 0 && crashed == 0; }
};

/** Run a fuzzing campaign; progress goes to @p log. */
Result<CampaignSummary> runCampaign(const CampaignOptions &options,
                                    std::ostream &log);

/**
 * Re-judge saved seed files: @p path is one seed file or a directory
 * whose *.json files are all replayed (in name order). Campaign
 * options other than seed/runs apply.
 */
Result<CampaignSummary> replayCorpus(const std::string &path,
                                     const CampaignOptions &options,
                                     std::ostream &log);

/**
 * Prove the oracles catch defects: a healthy scenario must pass, each
 * deliberate Mutation must be caught, and the mutated failure must
 * shrink to a smaller scenario that still fails after a save/load
 * round-trip. @return the first broken property, or OK.
 */
Status runSelfTest(std::ostream &log);

} // namespace eat::qa

#endif // EAT_QA_CAMPAIGN_HH
