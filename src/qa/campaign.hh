/**
 * @file
 * Fuzzing campaigns: generate, run, judge, shrink, and archive
 * scenarios at scale.
 *
 * A campaign derives its scenarios deterministically from one seed
 * (scenario i is a pure function of (seed, i)), fans them out over the
 * fork-per-scenario ProcessPool — a crashing or hanging scenario costs
 * one child, never the campaign — and judges each with the oracle
 * suite. Failing scenarios are greedily shrunk in the parent and saved
 * as replayable seed files; every scenario, pass or fail, gets one
 * JSONL verdict record.
 *
 * Verdict-record format (schema "eat.qa.verdict", v1), one per line:
 *
 *   {"schema": "eat.qa.verdict", "v": 1, "id": ..., "scenario": ...,
 *    "status": "pass"|"fail"|"crash"|"timeout", "checked": ...,
 *    "violations": ..., "digest": ..., "seed_file": ...}
 *
 * replayCorpus() re-judges previously saved seed files, which is how
 * CI keeps old failures fixed; runSelfTest() proves the oracles have
 * teeth by requiring that deliberately seeded defects are caught and
 * shrink to a minimal replayable seed.
 */

#ifndef EAT_QA_CAMPAIGN_HH
#define EAT_QA_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qa/scenario.hh"

namespace eat::qa
{

/** Schema identifier stamped into every verdict record. */
inline constexpr std::string_view kVerdictSchema = "eat.qa.verdict";
inline constexpr int kVerdictVersion = 1;

struct CampaignOptions
{
    /** Campaign seed: scenario i is derived from (seed, i). */
    std::uint64_t seed = 1;

    /** Number of scenarios to generate and judge. */
    std::uint64_t runs = 100;

    /** Concurrent scenario children; 0 = hardware concurrency. */
    unsigned jobs = 1;

    /** Per-scenario watchdog; 0 disables it. */
    unsigned timeoutSeconds = 120;

    /** Where failing seeds are archived; empty = do not archive. */
    std::string corpusDir;

    /** JSONL verdict stream; empty = no verdict file. */
    std::string verdictsPath;

    /** Minimize failing scenarios before archiving them. */
    bool shrink = true;
};

struct CampaignSummary
{
    std::uint64_t scenarios = 0;
    std::uint64_t passed = 0;
    std::uint64_t failed = 0;   ///< oracle violations
    std::uint64_t crashed = 0;  ///< child crash, hang, or spawn failure

    /** Seed files written for failing scenarios. */
    std::vector<std::string> savedSeeds;

    bool clean() const { return failed == 0 && crashed == 0; }
};

/** Run a fuzzing campaign; progress goes to @p log. */
Result<CampaignSummary> runCampaign(const CampaignOptions &options,
                                    std::ostream &log);

/**
 * Re-judge saved seed files: @p path is one seed file or a directory
 * whose *.json files are all replayed (in name order). Campaign
 * options other than seed/runs apply.
 */
Result<CampaignSummary> replayCorpus(const std::string &path,
                                     const CampaignOptions &options,
                                     std::ostream &log);

/**
 * Prove the oracles catch defects: a healthy scenario must pass, each
 * deliberate Mutation must be caught, and the mutated failure must
 * shrink to a smaller scenario that still fails after a save/load
 * round-trip. @return the first broken property, or OK.
 */
Status runSelfTest(std::ostream &log);

} // namespace eat::qa

#endif // EAT_QA_CAMPAIGN_HH
