/**
 * @file
 * The fuzzing scenario model: one fully described, replayable
 * simulation setup.
 *
 * A Scenario is the unit the QA subsystem generates, runs, shrinks,
 * and stores. It is deliberately a plain value: everything a run needs
 * (workload, organization, window sizes, seed, Lite schedule, fault
 * plan) is in the struct, so a scenario serialized to a seed file
 * replays bit-identically on any machine — the simulator itself is
 * deterministic, so the scenario *is* the reproduction recipe.
 *
 * Seed-file format: one JSON object per file,
 *
 *   {"schema": "eat.qa.scenario", "v": 1, "id": ..., "workload": ...,
 *    "org": ..., "instructions": ..., "fast_forward": ..., "seed": ...,
 *    "timeline_interval": ..., "eager_ranges": ..., "combined_l1": ...,
 *    "lite_interval": ..., "lite_epsilon": ..., "lite_full_act_prob":
 *    ..., "fault_spec": ...}
 *
 * plus optional multicore fields ("cores", "mix", ...), optional
 * virtualization fields ("vm", "host_pages", "coherence"), and optional
 * L3-tier fields ("l3", "l3_policy", "l3_promote_streak").
 *
 * written and parsed with the obs JSON substrate, so corpus files need
 * no third-party tooling to read or edit.
 */

#ifndef EAT_QA_SCENARIO_HH
#define EAT_QA_SCENARIO_HH

#include <cstdint>
#include <string>

#include "base/status.hh"
#include "core/config.hh"
#include "mc/mc_simulator.hh"
#include "sim/simulator.hh"

namespace eat::qa
{

/** Schema identifier stamped into every seed file. */
inline constexpr std::string_view kScenarioSchema = "eat.qa.scenario";
inline constexpr int kScenarioVersion = 1;

/** One fully described, replayable simulation setup. */
struct Scenario
{
    /** Generator identity: the campaign-derived scenario number. */
    std::uint64_t id = 0;

    std::string workload = "mcf";
    core::MmuOrg org = core::MmuOrg::Thp;

    std::uint64_t simInstructions = 100'000;
    std::uint64_t fastForward = 0;
    std::uint64_t seed = 42;

    /** MPKI timeline sampling interval; 0 = off. */
    std::uint64_t timelineInterval = 0;

    /** eagerRangesPerRegion override; 0 keeps the org default. */
    unsigned eagerRanges = 0;

    /** Paper §4.4 fully associative combined L1. */
    bool combinedL1 = false;

    // Lite schedule overrides (0 / negative = keep the org default).
    std::uint64_t liteInterval = 0;
    double liteEpsilon = -1.0;      ///< in the org's threshold mode
    double liteFullActProb = -1.0;

    /** Fault-injection plan (fault_injector.hh grammar); empty = none. */
    std::string faultSpec;

    // --- multicore (defaults describe a single-core run; the fields
    // are optional in seed files, so v1 corpus seeds parse unchanged).
    unsigned cores = 1;
    std::string mixSpec; ///< comma list; empty = just `workload`
    bool sharedSpace = false;
    bool ctxFlush = false;
    std::uint64_t quantum = 100'000;
    std::uint64_t remapInterval = 0;
    unsigned faultCore = 0;

    // --- virtualization (optional in seed files; empty = bare metal).
    std::string vmMode;           ///< "", "identity", or "paged"
    std::string hostPages = "4k"; ///< host page size of a paged host
    std::string coherence;        ///< "", "ipi", or "hw"

    // --- L3 translation tier (optional in seed files; empty = none).
    std::string l3Mode;   ///< "", "cache", or "dram"
    std::string l3Policy; ///< "", "walk", or "promote" (cache tier only)
    unsigned l3PromoteStreak = 0; ///< promote threshold; 0 = default

    /** True when the scenario runs the multicore driver. */
    bool multicore() const { return cores > 1 || !mixSpec.empty(); }

    /** True when the scenario runs under nested paging. */
    bool virtualized() const { return !vmMode.empty(); }

    /** True when the scenario configures an L3 translation tier. */
    bool hasL3() const { return !l3Mode.empty() && l3Mode != "none"; }

    /** The SimConfig this scenario describes (checker always Full). */
    sim::SimConfig toSimConfig() const;

    /** The McConfig of a multicore() scenario. */
    mc::McConfig toMcConfig() const;

    /** Render as a seed-file JSON line. */
    std::string toJson() const;

    /** Human-readable one-line summary for logs. */
    std::string describe() const;
};

/** Parse a seed-file JSON document (strict: schema/version checked). */
Result<Scenario> scenarioFromJson(std::string_view text);

/** Load a seed file from disk. */
Result<Scenario> loadScenario(const std::string &path);

/** Write @p scenario to @p path as one JSON document plus newline. */
Status saveScenario(const Scenario &scenario, const std::string &path);

/** Parse an organization display name ("THP", "RMM_Lite", ...). */
Result<core::MmuOrg> parseOrgName(std::string_view name);

} // namespace eat::qa

#endif // EAT_QA_SCENARIO_HH
