#include "qa/campaign.hh"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "campaign/engine.hh"
#include "obs/json.hh"
#include "qa/generator.hh"
#include "qa/oracles.hh"
#include "qa/shrinker.hh"

namespace eat::qa
{

namespace
{

namespace fs = std::filesystem;

std::string
join(const std::vector<std::string> &parts, const char *sep)
{
    std::string out;
    for (const auto &part : parts) {
        if (!out.empty())
            out += sep;
        out += part;
    }
    return out;
}

/**
 * The per-scenario child work: run the oracle suite and report the
 * verdict as one JSON object over the pipe. Exceptions become failing
 * verdicts; crashes and hangs are the pool's department.
 */
std::string
judgeScenario(const Scenario &scenario)
{
    obs::JsonObject json;
    try {
        const auto verdict = runOracles(scenario);
        json.put("passed", verdict.passed());
        json.put("checked", join(verdict.checked, ","));
        json.put("violations", join(verdict.violations, "; "));
        json.put("digest", verdict.digest);
    } catch (const std::exception &e) {
        json = obs::JsonObject();
        json.put("passed", false);
        json.put("checked", "");
        json.put("violations",
                 std::string("oracle-harness: exception: ") + e.what());
        json.put("digest", "");
    }
    return json.str();
}

/** Everything one verdict JSONL record carries. */
struct VerdictRecord
{
    std::uint64_t id = 0;
    std::string scenario;
    std::string status; ///< "pass", "fail", "crash", "timeout"
    std::string checked;
    std::string violations;
    std::string digest;
    std::string seedFile;
    /** v2 diagnostics: what actually happened to the child. */
    std::string failureClass = "none";
    int exitCode = 0;
    int termSignal = 0;
    unsigned attempts = 1;
};

void
writeVerdict(std::ofstream &out, const VerdictRecord &rec)
{
    if (!out.is_open())
        return;
    obs::JsonObject json;
    json.put("schema", kVerdictSchema);
    json.put("v", kVerdictVersion);
    json.put("id", rec.id);
    json.put("scenario", rec.scenario);
    json.put("status", rec.status);
    json.put("checked", rec.checked);
    json.put("violations", rec.violations);
    json.put("digest", rec.digest);
    json.put("seed_file", rec.seedFile);
    json.put("failure_class", rec.failureClass);
    json.put("exit_code", rec.exitCode);
    json.put("term_signal", rec.termSignal);
    json.put("attempts", rec.attempts);
    out << json.str() << '\n';
    out.flush(); // a partial campaign must still leave whole records
}

/** Archive @p scenario (shrunk if requested) under the corpus dir. */
std::string
archiveFailure(const Scenario &scenario, const CampaignOptions &options,
               bool shrinkFirst, bool reuseExisting, std::ostream &log,
               CampaignSummary &summary)
{
    if (options.corpusDir.empty())
        return "";

    // The archive name uses the scenario id (which shrinking keeps),
    // so the path is known before any work happens.
    std::ostringstream name;
    name << "seed-" << scenario.id << ".json";
    const std::string path =
        (fs::path(options.corpusDir) / name.str()).string();

    // A verdict replayed from the checkpoint journal archived its seed
    // during the original run; do not redo the shrink work. (If the
    // kill landed between the checkpoint and the save, the file is
    // missing and we archive it now.)
    std::error_code ec;
    if (reuseExisting && fs::exists(path, ec)) {
        summary.savedSeeds.push_back(path);
        return path;
    }

    Scenario seed = scenario;
    if (shrinkFirst && options.shrink) {
        const auto shrunk = shrinkScenario(
            seed, [](const Scenario &c) { return !runOracles(c).passed(); });
        log << "  shrink: " << shrunk.accepted << " simplifications in "
            << shrunk.attempts << " attempts -> "
            << shrunk.scenario.describe() << "\n";
        seed = shrunk.scenario;
    }

    if (const Status s = saveScenario(seed, path); !s.ok()) {
        log << "  warning: " << s.message() << "\n";
        return "";
    }
    summary.savedSeeds.push_back(path);
    log << "  saved " << path << "\n";
    return path;
}

/** Judge one final outcome in the parent; fills @p rec and @p summary. */
void
settleVerdict(const campaign::TaskOutcome &outcome,
              const Scenario &scenario, const CampaignOptions &options,
              std::ostream &log, CampaignSummary &summary,
              VerdictRecord &rec, bool archiveFailures)
{
    using campaign::FailureClass;
    rec.id = scenario.id;
    rec.scenario = scenario.describe();
    rec.failureClass =
        std::string(campaign::failureClassName(outcome.failure));
    rec.exitCode = outcome.exitCode;
    rec.termSignal = outcome.termSignal;
    rec.attempts = outcome.attempts;

    switch (outcome.failure) {
      case FailureClass::None: {
        const auto parsed = obs::parseJson(outcome.payload);
        const obs::JsonValue *passed =
            parsed.ok() ? parsed.value().find("passed") : nullptr;
        if (!passed || !passed->isBool()) {
            rec.status = "crash";
            rec.violations = "garbled child verdict";
            break;
        }
        if (const auto *v = parsed.value().find("checked");
            v && v->isString())
            rec.checked = v->string;
        if (const auto *v = parsed.value().find("violations");
            v && v->isString())
            rec.violations = v->string;
        if (const auto *v = parsed.value().find("digest");
            v && v->isString())
            rec.digest = v->string;
        rec.status = passed->boolean ? "pass" : "fail";
        break;
      }
      case FailureClass::BadPayload:
        rec.status = "crash";
        rec.violations = "garbled child verdict";
        break;
      case FailureClass::NonzeroExit:
        rec.status = "crash";
        rec.violations = "child exited with status " +
                         std::to_string(outcome.exitCode);
        break;
      case FailureClass::Crashed:
        rec.status = "crash";
        rec.violations = "child killed by signal " +
                         std::to_string(outcome.termSignal);
        break;
      case FailureClass::TimedOut:
        rec.status = "timeout";
        rec.violations = "scenario exceeded the " +
                         std::to_string(options.timeoutSeconds) +
                         "s watchdog";
        break;
      case FailureClass::SpawnFailed:
        rec.status = "crash";
        rec.violations = outcome.spawnError.empty()
                             ? "process spawn failed"
                             : outcome.spawnError;
        break;
    }

    if (rec.status == "pass") {
        ++summary.passed;
        return;
    }
    log << "scenario " << scenario.id << " " << rec.status << ": "
        << rec.violations << "\n  " << rec.scenario << "\n";
    if (rec.status == "fail") {
        ++summary.failed;
        if (archiveFailures) {
            // Only oracle failures shrink: the scenario demonstrably
            // runs to completion, so in-parent re-runs are safe.
            rec.seedFile =
                archiveFailure(scenario, options, true,
                               outcome.fromCheckpoint, log, summary);
        }
    } else {
        ++summary.crashed;
        if (archiveFailures) {
            rec.seedFile =
                archiveFailure(scenario, options, false,
                               outcome.fromCheckpoint, log, summary);
        }
    }
}

Result<std::ofstream>
openVerdicts(const std::string &path)
{
    std::ofstream out;
    if (path.empty())
        return out;
    out.open(path, std::ios::trunc);
    if (!out)
        return Status::error("cannot write verdicts to '", path, "'");
    return out;
}

} // namespace

Result<CampaignSummary>
runCampaign(const CampaignOptions &options, std::ostream &log)
{
    if (options.runs == 0)
        return Status::error("no scenarios requested");
    if (options.resume && options.checkpointPath.empty())
        return Status::error("resume requires a checkpoint journal");
    if (!options.corpusDir.empty()) {
        std::error_code ec;
        fs::create_directories(options.corpusDir, ec);
        if (ec) {
            return Status::error("cannot create corpus dir '",
                                 options.corpusDir, "': ", ec.message());
        }
    }
    auto verdicts = openVerdicts(options.verdictsPath);
    if (!verdicts.ok())
        return verdicts.status();

    std::vector<Scenario> scenarios;
    scenarios.reserve(options.runs);
    for (std::uint64_t i = 0; i < options.runs; ++i)
        scenarios.push_back(generateScenario(options.seed, i));

    std::vector<campaign::EngineTask> tasks;
    tasks.reserve(scenarios.size());
    for (const auto &scenario : scenarios) {
        tasks.push_back({"scenario-" + std::to_string(scenario.id),
                         [scenario] { return judgeScenario(scenario); }});
    }

    CampaignSummary summary;
    summary.scenarios = options.runs;
    std::uint64_t completed = 0;

    // Verdicts are emitted in scenario-id order whatever the job
    // count: settled records buffer here until every lower id has
    // settled too, so the verdict file of a parallel, killed, and
    // resumed campaign is byte-identical to a serial uninterrupted
    // one. (A kill loses only buffered-not-yet-written verdicts, and
    // those replay from the journal on resume.)
    std::vector<VerdictRecord> buffered(scenarios.size());
    std::vector<char> settled(scenarios.size(), 0);
    std::size_t nextToWrite = 0;

    campaign::EngineOptions engine;
    engine.jobs = options.jobs;
    engine.timeoutSeconds = options.timeoutSeconds;
    engine.retry.maxRetries = options.retries;
    engine.journalPath = options.checkpointPath;
    engine.fingerprint = "eatfuzz|v1|seed=" +
                         std::to_string(options.seed) +
                         "|runs=" + std::to_string(options.runs) +
                         "|shrink=" + (options.shrink ? "1" : "0");
    engine.resume = options.resume;
    engine.quarantinePath = options.checkpointPath.empty()
                                ? ""
                                : options.checkpointPath + ".quarantine";
    engine.payloadOk = [](const std::string &payload) {
        const auto parsed = obs::parseJson(payload);
        const obs::JsonValue *passed =
            parsed.ok() ? parsed.value().find("passed") : nullptr;
        return passed != nullptr && passed->isBool();
    };
    // Any settled verdict satisfies its scenario on resume: a crash or
    // timeout is a result worth keeping, not work to redo.
    engine.acceptCheckpoint = [](const campaign::TaskOutcome &) {
        return true;
    };
    engine.killAfterCheckpoints = options.killAfterCells;

    const auto engineRun = campaign::runEngine(
        engine, tasks,
        [&](std::size_t index, const campaign::TaskOutcome &outcome,
            std::size_t inFlight) {
            VerdictRecord &rec = buffered[index];
            settleVerdict(outcome, scenarios[index], options, log,
                          summary, rec, /*archiveFailures=*/true);
            settled[index] = 1;
            while (nextToWrite < settled.size() &&
                   settled[nextToWrite]) {
                writeVerdict(verdicts.value(), buffered[nextToWrite]);
                ++nextToWrite;
            }
            ++completed;
            if (completed % 25 == 0 || completed == options.runs) {
                log << "[" << completed << "/" << options.runs << "] "
                    << summary.passed << " pass, " << summary.failed
                    << " fail, " << summary.crashed << " crash, "
                    << inFlight << " in flight\n";
            }
            return true;
        },
        log);
    if (!engineRun.ok())
        return engineRun.status();
    summary.replayed = engineRun.value().replayed;
    summary.quarantined = engineRun.value().quarantined;
    summary.retries = engineRun.value().retries;
    summary.interruptSignal = engineRun.value().interruptSignal;

    return summary;
}

Result<CampaignSummary>
replayCorpus(const std::string &path, const CampaignOptions &options,
             std::ostream &log)
{
    std::vector<std::string> files;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto &entry : fs::directory_iterator(path, ec)) {
            if (entry.path().extension() == ".json")
                files.push_back(entry.path().string());
        }
        if (ec) {
            return Status::error("cannot list corpus dir '", path,
                                 "': ", ec.message());
        }
        std::sort(files.begin(), files.end());
        if (files.empty())
            return Status::error("no *.json seed files in '", path, "'");
    } else {
        files.push_back(path);
    }

    auto verdicts = openVerdicts(options.verdictsPath);
    if (!verdicts.ok())
        return verdicts.status();

    CampaignSummary summary;
    summary.scenarios = files.size();
    for (const auto &file : files) {
        const auto loaded = loadScenario(file);
        if (!loaded.ok())
            return loaded.status();
        const auto &scenario = loaded.value();
        log << "replay " << file << ": " << scenario.describe() << "\n";

        // In-process: corpus seeds are known-small shrunk repro
        // recipes, and a crash here should fail the replay loudly.
        const auto verdict = runOracles(scenario);
        VerdictRecord rec;
        rec.id = scenario.id;
        rec.scenario = scenario.describe();
        rec.status = verdict.passed() ? "pass" : "fail";
        rec.checked = join(verdict.checked, ",");
        rec.violations = join(verdict.violations, "; ");
        rec.digest = verdict.digest;
        rec.seedFile = file;
        writeVerdict(verdicts.value(), rec);

        if (verdict.passed()) {
            ++summary.passed;
        } else {
            ++summary.failed;
            log << "  FAIL: " << rec.violations << "\n";
        }
    }
    return summary;
}

Status
runSelfTest(std::ostream &log)
{
    // A deliberately noisy scenario: every shrinkable feature enabled,
    // so the shrinker has weight to shed.
    Scenario s;
    s.id = 0;
    s.workload = "mcf";
    s.org = core::MmuOrg::Thp;
    s.simInstructions = 120'000;
    s.fastForward = 20'000;
    s.timelineInterval = 10'000;
    s.seed = 7;

    log << "self-test: healthy run must pass every oracle\n";
    const auto healthy = runOracles(s);
    if (!healthy.passed()) {
        return Status::error("healthy scenario failed: ",
                             join(healthy.violations, "; "));
    }
    if (healthy.checked.size() < 4) {
        return Status::error("healthy scenario only exercised ",
                             healthy.checked.size(), " oracles");
    }

    log << "self-test: a skipped energy charge must be caught\n";
    const auto skip = runOracles(s, Mutation::SkipEnergyCharge);
    if (skip.passed())
        return Status::error("skipped energy charge went unnoticed");
    if (join(skip.violations, "; ").find("energy-conservation") ==
        std::string::npos) {
        return Status::error("wrong oracle caught the skipped charge: ",
                             join(skip.violations, "; "));
    }

    log << "self-test: corrupted TLB fills must be caught\n";
    const auto corrupt = runOracles(s, Mutation::CorruptTlbFill);
    if (corrupt.passed())
        return Status::error("corrupted TLB fills went unnoticed");
    if (join(corrupt.violations, "; ").find("checker-silence") ==
        std::string::npos) {
        return Status::error("wrong oracle caught the corruption: ",
                             join(corrupt.violations, "; "));
    }

    log << "self-test: the failure must shrink to a minimal seed\n";
    const auto stillFails = [](const Scenario &c) {
        return !runOracles(c, Mutation::CorruptTlbFill).passed();
    };
    const auto shrunk = shrinkScenario(s, stillFails);
    log << "  " << shrunk.accepted << " simplifications in "
        << shrunk.attempts << " attempts -> "
        << shrunk.scenario.describe() << "\n";
    if (shrunk.scenario.simInstructions >= s.simInstructions)
        return Status::error("shrinker failed to reduce the window");
    if (shrunk.scenario.fastForward != 0 ||
        shrunk.scenario.timelineInterval != 0) {
        return Status::error("shrinker kept irrelevant features: ",
                             shrunk.scenario.describe());
    }
    if (!stillFails(shrunk.scenario))
        return Status::error("shrunk scenario no longer fails");

    log << "self-test: the shrunk seed must replay after a round-trip\n";
    const std::string path =
        (fs::temp_directory_path() / "eat-qa-selftest-seed.json").string();
    if (const Status st = saveScenario(shrunk.scenario, path); !st.ok())
        return st;
    const auto loaded = loadScenario(path);
    std::error_code ec;
    fs::remove(path, ec);
    if (!loaded.ok())
        return loaded.status();
    if (loaded.value().toJson() != shrunk.scenario.toJson())
        return Status::error("seed changed across a save/load round-trip");
    if (!stillFails(loaded.value()))
        return Status::error("reloaded seed no longer fails");

    log << "self-test: all properties hold\n";
    return Status();
}

} // namespace eat::qa
