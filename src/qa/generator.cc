#include "qa/generator.hh"

#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "base/rng.hh"
#include "workloads/suite.hh"

namespace eat::qa
{

namespace
{

/** True for organizations whose L1 is built from per-size page TLBs. */
bool
isPageTlbOrg(core::MmuOrg org)
{
    switch (org) {
      case core::MmuOrg::Base4K:
      case core::MmuOrg::Thp:
      case core::MmuOrg::TlbLite:
      case core::MmuOrg::TlbPP:
        return true;
      case core::MmuOrg::Rmm:
      case core::MmuOrg::RmmLite:
        return false;
    }
    return false;
}

/**
 * Build a fault plan that the shadow checker can actually catch.
 *
 * ppn-flips on hot structures corrupt translations that re-hit, which
 * the Paddr check then flags; tag-flips and dropped invalidations
 * mostly degrade into extra (correct) walks, so they are added only as
 * low-probability garnish to exercise the injector paths, never as the
 * sole clause.
 */
std::string
generateFaultSpec(core::MmuOrg org, Rng &rng)
{
    std::ostringstream spec;
    // Probability chosen so that even the smallest measured window
    // (~30k instructions, roughly a third of them memory operations)
    // produces well over the detection threshold of corrupted fills.
    const double pFlip = 3e-3 * std::pow(10.0, rng.real());
    // The flipped structure must be hot enough that corrupted entries
    // re-hit: under huge-page organizations the L2 TLB (4 KB entries
    // only) is nearly empty, so flips there land on dead entries and
    // legitimately stay silent. Only Base4K keeps it busy.
    const bool targetL2 =
        org == core::MmuOrg::Base4K && rng.chance(0.5);
    spec << "ppn-flip@" << (targetL2 ? "l2" : "l1-4k") << ':' << pFlip;
    if (rng.chance(0.3))
        spec << ",tag-flip@any:" << 1e-4;
    if (rng.chance(0.2))
        spec << ",drop-inv@l1-4k:" << 1e-3;
    return spec.str();
}

} // namespace

Scenario
generateScenario(std::uint64_t campaignSeed, std::uint64_t index)
{
    // Mix the pair into one seed; the Rng's splitmix64 expansion
    // decorrelates adjacent indices.
    Rng rng(campaignSeed * 0x9e3779b97f4a7c15ull + index * 2 + 1);

    Scenario s;
    s.id = index;
    s.seed = rng.next();

    const auto &workloads = workloads::tlbIntensiveSuite();
    s.workload = workloads[rng.below(workloads.size())].name;

    const auto &orgs = core::allOrgs();
    s.org = orgs[rng.below(orgs.size())];

    // Windows small enough that hundreds of scenarios fit in a CI
    // smoke budget, large enough for several Lite intervals.
    s.simInstructions = rng.range(30'000, 300'000);
    s.fastForward = rng.chance(0.5) ? rng.range(1'000, 50'000) : 0;
    s.timelineInterval = rng.chance(0.25) ? rng.range(5'000, 50'000) : 0;

    const auto base = core::MmuConfig::make(s.org);
    if (!base.mixedTlbs && rng.chance(0.15))
        s.combinedL1 = true;
    if (base.hasL2Range && rng.chance(0.3))
        s.eagerRanges = static_cast<unsigned>(rng.range(1, 8));
    if (base.liteEnabled) {
        // Short intervals so resizing decisions actually happen inside
        // the small measured windows.
        s.liteInterval = rng.range(5'000, 40'000);
        if (rng.chance(0.5)) {
            s.liteEpsilon =
                base.lite.mode == lite::ThresholdMode::Relative
                    ? 0.05 + 0.2 * rng.real()
                    : 0.02 + 0.3 * rng.real();
        }
        if (rng.chance(0.25))
            s.liteFullActProb = 1.0 / static_cast<double>(rng.range(16, 128));
    }

    // Fault plans only where corruption is observable: page-TLB L1s
    // with self-contained fill streams (range orgs satisfy most
    // lookups from range entries, so TLB corruption rarely re-hits).
    if (isPageTlbOrg(s.org) && rng.chance(0.25))
        s.faultSpec = generateFaultSpec(s.org, rng);

    // A quarter of scenarios exercise the multicore driver: context
    // switching, ASID tagging (or --ctx-flush), shootdown churn, and —
    // at one core with an explicit mix — the single-core-equivalence
    // oracle.
    if (rng.chance(0.25)) {
        constexpr unsigned kCoreChoices[] = {1, 2, 4};
        s.cores = kCoreChoices[rng.below(3)];
        const auto mixLen = rng.range(1, 4);
        std::string mix;
        for (std::uint64_t i = 0; i < mixLen; ++i) {
            if (!mix.empty())
                mix += ',';
            mix += workloads[rng.below(workloads.size())].name;
        }
        s.mixSpec = mix;
        s.sharedSpace = rng.chance(0.5);
        s.ctxFlush = rng.chance(0.3);
        s.quantum = rng.range(5'000, 50'000);
        if (rng.chance(0.5))
            s.remapInterval = rng.range(20'000, 100'000);
        if (s.cores > 1 && !s.faultSpec.empty())
            s.faultCore = static_cast<unsigned>(rng.below(s.cores));
        // Multicore remap scenarios split between IPI broadcast and
        // hardware translation coherence, so both cost books — and the
        // coherence-equivalence oracle — see fuzz traffic.
        if (s.cores > 1 && rng.chance(0.5))
            s.coherence = rng.chance(0.5) ? "hw" : "ipi";
    }

    // A fifth of scenarios run under nested paging: identity hosts
    // prove the zero-cost path stays digest-identical to bare metal,
    // paged hosts drive the full two-dimensional walk arithmetic.
    if (rng.chance(0.2)) {
        s.vmMode = rng.chance(0.35) ? "identity" : "paged";
        if (s.vmMode == "paged") {
            constexpr const char *kHostPages[] = {"4k", "2m", "1g"};
            s.hostPages = kHostPages[rng.below(3)];
        }
    }

    // A quarter of scenarios add the L3 translation tier — on top of
    // whatever org/multicore/vm shape was drawn above, because the tier
    // claims validity over every organization. Both substrates and both
    // cache-tier insertion policies see fuzz traffic.
    if (rng.chance(0.25)) {
        s.l3Mode = rng.chance(0.5) ? "cache" : "dram";
        if (s.l3Mode == "cache" && rng.chance(0.5)) {
            s.l3Policy = rng.chance(0.5) ? "promote" : "walk";
            if (s.l3Policy == "promote")
                s.l3PromoteStreak =
                    static_cast<unsigned>(rng.range(1, 6));
        }
    }

    const auto cfg = s.toSimConfig();
    eat_assert(cfg.mmu.validate().ok(),
               "generator emitted invalid scenario: ", s.describe());
    return s;
}

} // namespace eat::qa
