#include "qa/scenario.hh"

#include <fstream>
#include <sstream>

#include "l3/l3_config.hh"
#include "mc/mix.hh"
#include "obs/json.hh"
#include "vm/host_table.hh"
#include "workloads/suite.hh"

namespace eat::qa
{

sim::SimConfig
Scenario::toSimConfig() const
{
    sim::SimConfig cfg;
    const auto spec = workloads::findWorkload(workload);
    if (spec)
        cfg.workload = *spec;
    cfg.mmu = core::MmuConfig::make(org);
    cfg.mmu.combinedFullyAssocL1 = combinedL1;
    if (liteInterval > 0)
        cfg.mmu.lite.intervalInstructions = liteInterval;
    if (liteEpsilon >= 0.0) {
        if (cfg.mmu.lite.mode == lite::ThresholdMode::Relative)
            cfg.mmu.lite.epsilonRelative = liteEpsilon;
        else
            cfg.mmu.lite.epsilonAbsoluteMpki = liteEpsilon;
    }
    if (liteFullActProb >= 0.0)
        cfg.mmu.lite.fullActivationProbability = liteFullActProb;
    cfg.simulateInstructions = simInstructions;
    cfg.fastForwardInstructions = fastForward;
    cfg.seed = seed;
    cfg.timelineInterval = timelineInterval;
    cfg.eagerRangesPerRegion = eagerRanges;
    cfg.checkLevel = check::CheckLevel::Full;
    cfg.faultSpec = faultSpec;
    if (!vmMode.empty()) {
        const auto mode = vm::hostModeFromName(vmMode);
        if (!mode.ok())
            eat_fatal("scenario ", id, ": ", mode.status().message());
        const auto size = vm::hostPageSizeFromName(hostPages);
        if (!size.ok())
            eat_fatal("scenario ", id, ": ", size.status().message());
        cfg.mmu.vmEnabled = true;
        cfg.mmu.vmIdentityHost = mode.value() == vm::HostMode::Identity;
        cfg.mmu.hostPageSize = size.value();
    }
    if (hasL3()) {
        const auto mode = l3::l3ModeFromName(l3Mode);
        if (!mode.ok())
            eat_fatal("scenario ", id, ": ", mode.status().message());
        if (!l3Policy.empty()) {
            const auto policy = l3::l3InsertPolicyFromName(l3Policy);
            if (!policy.ok())
                eat_fatal("scenario ", id, ": ",
                          policy.status().message());
            cfg.mmu.l3Cache.policy = policy.value();
        }
        if (l3PromoteStreak > 0)
            cfg.mmu.l3Cache.promoteStreak = l3PromoteStreak;
        // After the Lite overrides above: enableL3 scales the active
        // epsilon, so it must see the scenario's final Lite schedule.
        cfg.mmu.enableL3(mode.value());
    }
    return cfg;
}

mc::McConfig
Scenario::toMcConfig() const
{
    mc::McConfig cfg;
    cfg.base = toSimConfig();
    cfg.cores = cores;
    if (mixSpec.empty()) {
        cfg.mix = {cfg.base.workload};
    } else {
        auto mix = mc::parseMixSpec(mixSpec);
        if (!mix.ok())
            eat_fatal("scenario ", id, ": ", mix.status().message());
        cfg.mix = std::move(mix.value());
    }
    cfg.sharedAddressSpace = sharedSpace;
    cfg.ctxFlush = ctxFlush;
    cfg.quantumInstructions = quantum;
    cfg.remapInterval = remapInterval;
    cfg.faultCore = faultCore;
    if (!coherence.empty()) {
        const auto mode = mc::coherenceModeFromName(coherence);
        if (!mode.ok())
            eat_fatal("scenario ", id, ": ", mode.status().message());
        cfg.coherence = mode.value();
    }
    return cfg;
}

std::string
Scenario::toJson() const
{
    obs::JsonObject json;
    json.put("schema", kScenarioSchema);
    json.put("v", kScenarioVersion);
    json.put("id", id);
    json.put("workload", workload);
    json.put("org", core::orgName(org));
    json.put("instructions", simInstructions);
    json.put("fast_forward", fastForward);
    json.put("seed", seed);
    json.put("timeline_interval", timelineInterval);
    json.put("eager_ranges", eagerRanges);
    json.put("combined_l1", combinedL1);
    json.put("lite_interval", liteInterval);
    json.put("lite_epsilon", liteEpsilon);
    json.put("lite_full_act_prob", liteFullActProb);
    json.put("fault_spec", faultSpec);
    if (multicore()) {
        json.put("cores", cores);
        json.put("mix", mixSpec);
        json.put("shared_space", sharedSpace);
        json.put("ctx_flush", ctxFlush);
        json.put("quantum", quantum);
        json.put("remap_interval", remapInterval);
        json.put("fault_core", faultCore);
        if (!coherence.empty())
            json.put("coherence", coherence);
    }
    if (!vmMode.empty()) {
        json.put("vm", vmMode);
        json.put("host_pages", hostPages);
    }
    if (hasL3()) {
        json.put("l3", l3Mode);
        if (!l3Policy.empty())
            json.put("l3_policy", l3Policy);
        if (l3PromoteStreak > 0)
            json.put("l3_promote_streak", l3PromoteStreak);
    }
    return json.str();
}

std::string
Scenario::describe() const
{
    std::ostringstream os;
    os << "scenario " << id << ": " << workload << " x "
       << core::orgName(org) << ", " << simInstructions << " instr";
    if (fastForward > 0)
        os << " (+" << fastForward << " ff)";
    os << ", seed " << seed;
    if (combinedL1)
        os << ", combined-l1";
    if (liteInterval > 0)
        os << ", lite-interval " << liteInterval;
    if (eagerRanges > 0)
        os << ", eager-ranges " << eagerRanges;
    if (!faultSpec.empty())
        os << ", faults '" << faultSpec << "'";
    if (multicore()) {
        os << ", " << cores << " cores";
        if (!mixSpec.empty())
            os << " [" << mixSpec << "]";
        os << (sharedSpace ? ", shared" : ", private");
        if (ctxFlush)
            os << ", ctx-flush";
        if (remapInterval > 0)
            os << ", remap-interval " << remapInterval;
        if (!coherence.empty())
            os << ", coherence " << coherence;
    }
    if (!vmMode.empty()) {
        os << ", vm " << vmMode;
        if (vmMode == "paged")
            os << '/' << hostPages;
    }
    if (hasL3()) {
        os << ", l3 " << l3Mode;
        if (!l3Policy.empty())
            os << '/' << l3Policy;
        if (l3PromoteStreak > 0)
            os << "/streak" << l3PromoteStreak;
    }
    return os.str();
}

Result<core::MmuOrg>
parseOrgName(std::string_view name)
{
    for (const auto org : core::allOrgs()) {
        if (name == core::orgName(org))
            return org;
    }
    return Status::error("unknown organization '", std::string(name), "'");
}

namespace
{

/** Fetch a required numeric member of @p json. */
Result<double>
number(const obs::JsonValue &json, std::string_view key)
{
    const auto *v = json.find(key);
    if (!v || !v->isNumber())
        return Status::error("scenario: missing numeric field '",
                             std::string(key), "'");
    return v->number;
}

/** Fetch a required string member of @p json. */
Result<std::string>
string(const obs::JsonValue &json, std::string_view key)
{
    const auto *v = json.find(key);
    if (!v || !v->isString())
        return Status::error("scenario: missing string field '",
                             std::string(key), "'");
    return v->string;
}

} // namespace

Result<Scenario>
scenarioFromJson(std::string_view text)
{
    const auto parsed = obs::parseJson(text);
    if (!parsed.ok())
        return parsed.status();
    const auto &json = parsed.value();
    if (!json.isObject())
        return Status::error("scenario: not a JSON object");

    const auto schema = string(json, "schema");
    if (!schema.ok())
        return schema.status();
    if (schema.value() != kScenarioSchema)
        return Status::error("scenario: schema '", schema.value(),
                             "' is not '", kScenarioSchema, "'");
    const auto version = number(json, "v");
    if (!version.ok())
        return version.status();
    if (static_cast<int>(version.value()) != kScenarioVersion) {
        return Status::error("scenario: version ",
                             static_cast<int>(version.value()),
                             " is not ", kScenarioVersion);
    }

    Scenario s;
    const auto workload = string(json, "workload");
    if (!workload.ok())
        return workload.status();
    s.workload = workload.value();
    if (!workloads::findWorkload(s.workload))
        return Status::error("scenario: unknown workload '", s.workload,
                             "'");

    const auto orgText = string(json, "org");
    if (!orgText.ok())
        return orgText.status();
    const auto org = parseOrgName(orgText.value());
    if (!org.ok())
        return org.status();
    s.org = org.value();

    auto u64 = [&json](std::string_view key,
                       std::uint64_t &out) -> Status {
        const auto v = number(json, key);
        if (!v.ok())
            return v.status();
        if (v.value() < 0)
            return Status::error("scenario: negative '", std::string(key),
                                 "'");
        out = static_cast<std::uint64_t>(v.value());
        return Status();
    };
    if (auto st = u64("id", s.id); !st.ok())
        return st;
    if (auto st = u64("instructions", s.simInstructions); !st.ok())
        return st;
    if (s.simInstructions == 0)
        return Status::error("scenario: empty measured window");
    if (auto st = u64("fast_forward", s.fastForward); !st.ok())
        return st;
    if (auto st = u64("seed", s.seed); !st.ok())
        return st;
    if (auto st = u64("timeline_interval", s.timelineInterval); !st.ok())
        return st;
    std::uint64_t eager = 0;
    if (auto st = u64("eager_ranges", eager); !st.ok())
        return st;
    s.eagerRanges = static_cast<unsigned>(eager);
    if (auto st = u64("lite_interval", s.liteInterval); !st.ok())
        return st;

    const auto *combined = json.find("combined_l1");
    if (!combined || !combined->isBool())
        return Status::error("scenario: missing bool field 'combined_l1'");
    s.combinedL1 = combined->boolean;

    const auto epsilon = number(json, "lite_epsilon");
    if (!epsilon.ok())
        return epsilon.status();
    s.liteEpsilon = epsilon.value();
    const auto prob = number(json, "lite_full_act_prob");
    if (!prob.ok())
        return prob.status();
    s.liteFullActProb = prob.value();

    const auto faultSpec = string(json, "fault_spec");
    if (!faultSpec.ok())
        return faultSpec.status();
    s.faultSpec = faultSpec.value();
    if (!s.faultSpec.empty()) {
        const auto specs = check::parseFaultSpecs(s.faultSpec);
        if (!specs.ok())
            return Status::error("scenario: bad fault_spec: ",
                                 specs.status().message());
    }

    // Multicore fields are optional (absent in pre-multicore seeds;
    // the defaults describe exactly the single-core run they meant).
    auto optU64 = [&json, &u64](std::string_view key,
                                std::uint64_t &out) -> Status {
        if (!json.find(key))
            return Status();
        return u64(key, out);
    };
    auto optBool = [&json](std::string_view key, bool &out) -> Status {
        const auto *v = json.find(key);
        if (!v)
            return Status();
        if (!v->isBool())
            return Status::error("scenario: non-bool field '",
                                 std::string(key), "'");
        out = v->boolean;
        return Status();
    };
    std::uint64_t coreCount = s.cores;
    if (auto st = optU64("cores", coreCount); !st.ok())
        return st;
    if (coreCount < 1 || coreCount > mc::kMaxCores) {
        return Status::error("scenario: core count ", coreCount,
                             " out of range (1..", mc::kMaxCores, ")");
    }
    s.cores = static_cast<unsigned>(coreCount);
    if (const auto *mix = json.find("mix")) {
        if (!mix->isString())
            return Status::error("scenario: non-string field 'mix'");
        s.mixSpec = mix->string;
        if (!s.mixSpec.empty()) {
            const auto parsedMix = mc::parseMixSpec(s.mixSpec);
            if (!parsedMix.ok())
                return Status::error("scenario: ",
                                     parsedMix.status().message());
        }
    }
    if (auto st = optBool("shared_space", s.sharedSpace); !st.ok())
        return st;
    if (auto st = optBool("ctx_flush", s.ctxFlush); !st.ok())
        return st;
    if (auto st = optU64("quantum", s.quantum); !st.ok())
        return st;
    if (s.quantum == 0)
        return Status::error("scenario: empty scheduler quantum");
    if (auto st = optU64("remap_interval", s.remapInterval); !st.ok())
        return st;
    std::uint64_t faultCore = s.faultCore;
    if (auto st = optU64("fault_core", faultCore); !st.ok())
        return st;
    if (faultCore >= s.cores) {
        return Status::error("scenario: fault core ", faultCore,
                             " beyond core count ", s.cores);
    }
    s.faultCore = static_cast<unsigned>(faultCore);

    // Virtualization fields are likewise optional (absent in
    // pre-virtualization seeds).
    if (const auto *vmField = json.find("vm")) {
        if (!vmField->isString())
            return Status::error("scenario: non-string field 'vm'");
        s.vmMode = vmField->string;
        if (!s.vmMode.empty()) {
            const auto mode = vm::hostModeFromName(s.vmMode);
            if (!mode.ok())
                return Status::error("scenario: ",
                                     mode.status().message());
        }
    }
    if (const auto *pages = json.find("host_pages")) {
        if (!pages->isString())
            return Status::error("scenario: non-string field "
                                 "'host_pages'");
        if (s.vmMode.empty()) {
            return Status::error(
                "scenario: 'host_pages' without 'vm'");
        }
        s.hostPages = pages->string;
        const auto size = vm::hostPageSizeFromName(s.hostPages);
        if (!size.ok())
            return Status::error("scenario: ", size.status().message());
    }
    if (const auto *coh = json.find("coherence")) {
        if (!coh->isString())
            return Status::error("scenario: non-string field "
                                 "'coherence'");
        s.coherence = coh->string;
        if (!s.coherence.empty()) {
            const auto mode = mc::coherenceModeFromName(s.coherence);
            if (!mode.ok())
                return Status::error("scenario: ",
                                     mode.status().message());
        }
    }

    // L3-tier fields are likewise optional (absent in pre-L3 seeds).
    // Tuning fields without the mode are orphans: they describe nothing
    // and almost certainly mean a typo'd seed, so reject loudly.
    if (const auto *l3Field = json.find("l3")) {
        if (!l3Field->isString())
            return Status::error("scenario: non-string field 'l3'");
        s.l3Mode = l3Field->string;
        if (!s.l3Mode.empty()) {
            const auto mode = l3::l3ModeFromName(s.l3Mode);
            if (!mode.ok())
                return Status::error("scenario: ",
                                     mode.status().message());
        }
    }
    if (const auto *policy = json.find("l3_policy")) {
        if (!policy->isString())
            return Status::error("scenario: non-string field "
                                 "'l3_policy'");
        if (s.l3Mode != "cache") {
            return Status::error("scenario: 'l3_policy' without "
                                 "'l3': 'cache'");
        }
        s.l3Policy = policy->string;
        const auto parsedPolicy = l3::l3InsertPolicyFromName(s.l3Policy);
        if (!parsedPolicy.ok())
            return Status::error("scenario: ",
                                 parsedPolicy.status().message());
    }
    if (json.find("l3_promote_streak")) {
        if (s.l3Policy != "promote") {
            return Status::error("scenario: 'l3_promote_streak' without "
                                 "'l3_policy': 'promote'");
        }
        std::uint64_t streak = 0;
        if (auto st = u64("l3_promote_streak", streak); !st.ok())
            return st;
        if (streak == 0)
            return Status::error("scenario: zero 'l3_promote_streak'");
        s.l3PromoteStreak = static_cast<unsigned>(streak);
    }

    // The scenario must describe a constructible machine.
    const auto cfg = s.toSimConfig();
    if (auto st = cfg.mmu.validate(); !st.ok())
        return Status::error("scenario: invalid MMU config: ",
                             st.message());
    return s;
}

Result<Scenario>
loadScenario(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open seed file '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = scenarioFromJson(text.str());
    if (!parsed.ok())
        return Status::error(path, ": ", parsed.status().message());
    return parsed;
}

Status
saveScenario(const Scenario &scenario, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return Status::error("cannot write seed file '", path, "'");
    out << scenario.toJson() << '\n';
    out.flush();
    if (!out.good())
        return Status::error("error writing seed file '", path, "'");
    return Status();
}

} // namespace eat::qa
