/**
 * @file
 * Greedy scenario minimization.
 *
 * When a scenario violates an oracle, the raw reproducer is noisy: a
 * large measured window, fast-forward, telemetry sampling, a
 * multi-clause fault plan. The shrinker walks a fixed candidate list —
 * halve the window, zero the fast-forward, strip optional features,
 * drop fault clauses one at a time — and keeps each simplification only
 * if the caller-supplied predicate confirms the scenario *still fails*.
 * It iterates to a fixpoint, so the seed file checked into the corpus
 * is a local minimum: removing any single remaining feature makes the
 * failure disappear.
 *
 * The predicate re-runs the full oracle suite per attempt, so shrinking
 * costs a bounded number of extra simulations (ShrinkOptions::
 * maxAttempts caps it).
 */

#ifndef EAT_QA_SHRINKER_HH
#define EAT_QA_SHRINKER_HH

#include <functional>

#include "qa/scenario.hh"

namespace eat::qa
{

struct ShrinkOptions
{
    /** Cap on predicate evaluations (each one is a simulation). */
    unsigned maxAttempts = 64;

    /** Smallest measured window the shrinker will try. */
    std::uint64_t minInstructions = 10'000;
};

struct ShrinkResult
{
    /** The minimized scenario (== input if nothing could be removed). */
    Scenario scenario;

    /** Predicate evaluations spent. */
    unsigned attempts = 0;

    /** Simplifications that kept the scenario failing. */
    unsigned accepted = 0;
};

/** Does this (simplified) scenario still violate an oracle? */
using FailsFn = std::function<bool(const Scenario &)>;

/**
 * Minimize @p failing, keeping only simplifications for which
 * @p stillFails holds. @p failing itself is assumed to fail.
 */
ShrinkResult shrinkScenario(const Scenario &failing,
                            const FailsFn &stillFails,
                            const ShrinkOptions &options = {});

} // namespace eat::qa

#endif // EAT_QA_SHRINKER_HH
