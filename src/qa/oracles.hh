/**
 * @file
 * Metamorphic and invariant oracles over full simulations.
 *
 * Each oracle states a property that must hold for *every* scenario the
 * generator can emit — no golden outputs, no per-workload expectations:
 *
 *  - replay determinism: two runs of the same scenario produce
 *    bit-identical results (compared via resultDigest());
 *  - checker activity: a Full-level shadow checker always performs
 *    translation checks;
 *  - checker silence: with no fault plan, the differential checker
 *    reports zero mismatches;
 *  - fault detection: a fault plan that lands enough ppn-flips must
 *    make the checker fire (silent corruption is itself a bug);
 *  - energy conservation: the accounted category totals equal the sum
 *    over per-structure rows, and the event-count identities
 *    (mem ops == hits by source, L2 lookups == L1 misses, walk memory
 *    references == the walk-memory row, ...) all balance;
 *  - way-mask monotonicity (LRU inclusion): shrinking the L1 4 KB TLB
 *    from 64x4 to 32x2 to 16x1 — same set count, so identical per-set
 *    reference streams — never gains hits and never changes any
 *    translation result;
 *  - nested-walk accounting: under a paged host every guest walk
 *    reference plus the data address takes one host walk
 *    (hostWalks == walkMemRefs + l2Misses), the host-PWC is probed
 *    once per host walk, and flat/identity runs keep the host
 *    dimension at zero;
 *  - vm-identity equivalence: an identity host table is
 *    digest-identical to bare metal;
 *  - coherence equivalence: `--coherence=hw` changes only the cost
 *    book — its architectural outcome digest equals the IPI twin's —
 *    and each mode's book conserves exactly while the other's stays
 *    zero.
 *
 * runOracles() can apply a deliberate Mutation to prove the oracles
 * have teeth: each mutation must be caught, and the self-test in
 * tools/eatfuzz fails if one slips through.
 */

#ifndef EAT_QA_ORACLES_HH
#define EAT_QA_ORACLES_HH

#include <string>
#include <vector>

#include "mc/mc_simulator.hh"
#include "qa/scenario.hh"
#include "sim/simulator.hh"

namespace eat::qa
{

/** Deliberate defects used to self-test the oracle suite. */
enum class Mutation
{
    None,
    /** Drop part of one structure's accounted read energy. */
    SkipEnergyCharge,
    /** Corrupt TLB fills without declaring a fault plan. */
    CorruptTlbFill,
};

/** The outcome of running every applicable oracle on one scenario. */
struct OracleVerdict
{
    /** Oracles evaluated (a scenario never exercises all of them). */
    std::vector<std::string> checked;

    /** Violations, each "oracle-name: detail". Empty = pass. */
    std::vector<std::string> violations;

    /** Digest of the primary run, for cross-run comparisons. */
    std::string digest;

    bool passed() const { return violations.empty(); }
};

/**
 * Deterministic digest of everything a simulation computed, excluding
 * wall-clock fields, so two runs of one scenario can be compared for
 * bit-identity.
 */
std::string resultDigest(const sim::SimResult &result);

/**
 * Deterministic digest of a multicore run: the per-core digests plus
 * the multicore-only state resultDigest() does not see (context-switch
 * and shootdown counters, both coherence cost books, per-task facts).
 */
std::string mcResultDigest(const mc::McResult &result);

/**
 * Architectural-outcome digest of a multicore run: everything
 * mcResultDigest() covers except the remap-propagation cost books
 * (IPI shootdown cycles/energy and hw coherence probes/cycles/energy)
 * and the run's declared coherence mode. Two runs that differ only in
 * `--coherence` must produce identical outcome digests — the modes
 * charge different costs for the *same* invalidations.
 */
std::string mcOutcomeDigest(const mc::McResult &result);

/** Run every applicable oracle on @p scenario. */
OracleVerdict runOracles(const Scenario &scenario,
                         Mutation mutation = Mutation::None);

} // namespace eat::qa

#endif // EAT_QA_ORACLES_HH
