#include "qa/shrinker.hh"

#include <string>
#include <vector>

namespace eat::qa
{

namespace
{

/** Split a fault plan on commas into its clauses. */
std::vector<std::string>
splitClauses(const std::string &spec)
{
    std::vector<std::string> clauses;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const auto comma = spec.find(',', start);
        if (comma == std::string::npos) {
            clauses.push_back(spec.substr(start));
            break;
        }
        clauses.push_back(spec.substr(start, comma - start));
        start = comma + 1;
    }
    return clauses;
}

std::string
joinClauses(const std::vector<std::string> &clauses, std::size_t skip)
{
    std::string spec;
    for (std::size_t i = 0; i < clauses.size(); ++i) {
        if (i == skip)
            continue;
        if (!spec.empty())
            spec += ',';
        spec += clauses[i];
    }
    return spec;
}

/**
 * Candidate simplifications of @p s, most aggressive first so accepted
 * candidates shed the most weight early in the attempt budget.
 */
std::vector<Scenario>
candidates(const Scenario &s, std::uint64_t minInstructions)
{
    std::vector<Scenario> out;
    auto with = [&out, &s](auto &&tweak) {
        Scenario c = s;
        tweak(c);
        out.push_back(std::move(c));
    };

    if (s.simInstructions / 2 >= minInstructions) {
        with([](Scenario &c) { c.simInstructions /= 2; });
    } else if (s.simInstructions > minInstructions) {
        with([minInstructions](Scenario &c) {
            c.simInstructions = minInstructions;
        });
    }
    if (s.fastForward > 0) {
        with([](Scenario &c) { c.fastForward = 0; });
        if (s.fastForward >= 2'000)
            with([](Scenario &c) { c.fastForward /= 2; });
    }
    if (s.timelineInterval > 0)
        with([](Scenario &c) { c.timelineInterval = 0; });
    if (s.eagerRanges > 0)
        with([](Scenario &c) { c.eagerRanges = 0; });
    if (s.combinedL1)
        with([](Scenario &c) { c.combinedL1 = false; });
    if (s.liteInterval > 0)
        with([](Scenario &c) { c.liteInterval = 0; });
    if (s.liteEpsilon >= 0.0)
        with([](Scenario &c) { c.liteEpsilon = -1.0; });
    if (s.liteFullActProb >= 0.0)
        with([](Scenario &c) { c.liteFullActProb = -1.0; });

    if (!s.faultSpec.empty()) {
        const auto clauses = splitClauses(s.faultSpec);
        if (clauses.size() > 1) {
            for (std::size_t i = 0; i < clauses.size(); ++i) {
                with([&clauses, i](Scenario &c) {
                    c.faultSpec = joinClauses(clauses, i);
                });
            }
        } else {
            // A failure that survives with no faults at all is a much
            // stronger reproducer (the fault plan was incidental).
            with([](Scenario &c) { c.faultSpec.clear(); });
        }
    }
    return out;
}

} // namespace

ShrinkResult
shrinkScenario(const Scenario &failing, const FailsFn &stillFails,
               const ShrinkOptions &options)
{
    ShrinkResult result;
    result.scenario = failing;

    bool progressed = true;
    while (progressed && result.attempts < options.maxAttempts) {
        progressed = false;
        for (const auto &candidate :
             candidates(result.scenario, options.minInstructions)) {
            if (result.attempts >= options.maxAttempts)
                break;
            ++result.attempts;
            if (stillFails(candidate)) {
                result.scenario = candidate;
                ++result.accepted;
                progressed = true;
                // Restart from the simplified scenario: its candidate
                // list has changed.
                break;
            }
        }
    }
    return result;
}

} // namespace eat::qa
