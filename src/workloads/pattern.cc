#include "workloads/pattern.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::workloads
{

namespace
{

/** Align generated addresses to 8 bytes (word accesses). */
constexpr Addr
wordAlign(Addr a)
{
    return a & ~Addr{7};
}

std::vector<double>
buildCdf(const std::vector<double> &weights)
{
    eat_assert(!weights.empty(), "empty weight vector");
    double total = 0.0;
    for (double w : weights) {
        eat_assert(w >= 0.0, "negative weight");
        total += w;
    }
    eat_assert(total > 0.0, "all weights zero");
    std::vector<double> cdf;
    cdf.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
        acc += w / total;
        cdf.push_back(acc);
    }
    cdf.back() = 1.0;
    return cdf;
}

std::size_t
pickFromCdf(const std::vector<double> &cdf, Rng &rng)
{
    // First bucket with cdf >= u — a forward scan, since mixture CDFs
    // hold a handful of entries and the early buckets carry most of
    // the weight. Same pick as a lower_bound over the sorted CDF.
    const double u = rng.real();
    const std::size_t n = cdf.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (u <= cdf[i])
            return i;
    }
    return n - 1;
}

} // namespace

// --------------------------------------------------------------------- Span

Span::Span(std::vector<Extent> extents) : extents_(std::move(extents))
{
    starts_.reserve(extents_.size());
    for (const auto &e : extents_) {
        eat_assert(e.bytes > 0, "empty extent in span");
        starts_.push_back(total_);
        total_ += e.bytes;
    }
}

Span
Span::fromRegions(const std::vector<vm::Region> &regions)
{
    std::vector<Extent> extents;
    extents.reserve(regions.size());
    for (const auto &r : regions)
        extents.push_back({r.vbase, r.bytes});
    return Span(std::move(extents));
}

Addr
Span::addrAt(std::uint64_t offset) const
{
    eat_assert(offset < total_, "span offset out of bounds");
    // Offsets arrive with the pattern's locality, so the extent that
    // served the previous call usually serves this one; fall back to
    // the binary search only when the memo misses.
    const std::size_t last = lastExtent_;
    if (offset >= starts_[last] &&
        offset - starts_[last] < extents_[last].bytes) {
        return extents_[last].base + (offset - starts_[last]);
    }
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    const auto idx = static_cast<std::size_t>(it - starts_.begin()) - 1;
    lastExtent_ = idx;
    return extents_[idx].base + (offset - starts_[idx]);
}

// ------------------------------------------------------- UniformRandom

UniformRandomPattern::UniformRandomPattern(Span span) : span_(std::move(span))
{
    eat_assert(!span_.empty(), "uniform pattern over empty span");
}

Addr
UniformRandomPattern::next(Rng &rng, InstrCount)
{
    return wordAlign(span_.addrAt(rng.below(span_.bytes())));
}

// ----------------------------------------------------------- WorkingSet

WorkingSetPattern::WorkingSetPattern(Span span, std::vector<WsLevel> levels)
    : span_(std::move(span)), levels_(std::move(levels))
{
    eat_assert(!span_.empty(), "working-set pattern over empty span");
    eat_assert(!levels_.empty(), "working-set pattern needs levels");
    std::vector<double> weights;
    for (auto &l : levels_) {
        l.bytes = std::min<std::uint64_t>(l.bytes, span_.bytes());
        eat_assert(l.bytes > 0, "zero-byte working-set level");
        weights.push_back(l.weight);
    }
    const auto cdf = buildCdf(weights);
    for (std::size_t i = 0; i < levels_.size(); ++i)
        levels_[i].weight = cdf[i];
}

Addr
WorkingSetPattern::next(Rng &rng, InstrCount)
{
    const double u = rng.real();
    std::size_t pick = levels_.size() - 1;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        if (u <= levels_[i].weight) {
            pick = i;
            break;
        }
    }
    return wordAlign(span_.addrAt(rng.below(levels_[pick].bytes)));
}

// ----------------------------------------------------------- Sequential

SequentialPattern::SequentialPattern(Span span, std::uint64_t strideBytes)
    : span_(std::move(span)), stride_(strideBytes)
{
    eat_assert(!span_.empty(), "sequential pattern over empty span");
    eat_assert(stride_ > 0, "zero stride");
}

Addr
SequentialPattern::next(Rng &, InstrCount)
{
    const Addr a = span_.addrAt(cursor_);
    cursor_ = (cursor_ + stride_) % span_.bytes();
    return wordAlign(a);
}

// -------------------------------------------------------------- Strided

StridedPattern::StridedPattern(Span span, std::uint64_t strideBytes)
    : span_(std::move(span)), stride_(strideBytes)
{
    eat_assert(!span_.empty(), "strided pattern over empty span");
    eat_assert(stride_ > 0, "zero stride");
}

Addr
StridedPattern::next(Rng &, InstrCount)
{
    const Addr a = span_.addrAt((cursor_ + phase_) % span_.bytes());
    cursor_ += stride_;
    if (cursor_ >= span_.bytes()) {
        cursor_ = 0;
        phase_ = (phase_ + 64) % stride_; // next sweep, next element
    }
    return wordAlign(a);
}

// ------------------------------------------------------------ LocalWalk

LocalWalkPattern::LocalWalkPattern(Span span, std::uint64_t maxStepBytes,
                                   double jumpProbability)
    : span_(std::move(span)),
      maxStep_(maxStepBytes),
      jumpProb_(jumpProbability)
{
    eat_assert(!span_.empty(), "local-walk pattern over empty span");
    eat_assert(maxStep_ > 0, "zero step bound");
    maxStep_ = std::min<std::uint64_t>(maxStep_, span_.bytes() - 1);
    maxStep_ = std::max<std::uint64_t>(maxStep_, 1);
}

Addr
LocalWalkPattern::next(Rng &rng, InstrCount)
{
    if (rng.chance(jumpProb_)) {
        pos_ = rng.below(span_.bytes());
    } else {
        const std::uint64_t step = rng.below(2 * maxStep_ + 1);
        const std::uint64_t size = span_.bytes();
        // Signed step in [-maxStep_, +maxStep_], wrapped over the span.
        pos_ = (pos_ + size + step - maxStep_) % size;
    }
    return wordAlign(span_.addrAt(pos_));
}

// -------------------------------------------------------- RegionHotset

RegionHotsetPattern::RegionHotsetPattern(std::vector<vm::Region> regions,
                                         std::size_t hotRegions,
                                         double hotProb,
                                         std::uint64_t windowBytes)
    : regions_(std::move(regions)),
      hotRegions_(std::min(hotRegions, regions_.size())),
      hotProb_(hotProb),
      windowBytes_(windowBytes)
{
    eat_assert(!regions_.empty(), "region hotset over no regions");
    eat_assert(hotRegions_ >= 1, "need at least one hot region");
}

std::uint64_t
RegionHotsetPattern::windowOffset(std::size_t i, std::uint64_t regionBytes,
                                  std::uint64_t windowBytes)
{
    if (windowBytes >= regionBytes)
        return 0;
    const std::uint64_t room = regionBytes - windowBytes;
    // Page-aligned golden-ratio-ish stagger: regions are 2 MB aligned,
    // so identical offsets would alias into identical TLB sets.
    const std::uint64_t offset = (i * 37 + 11) * 4096;
    return (offset % (room + 1)) & ~std::uint64_t{4095};
}

Addr
RegionHotsetPattern::next(Rng &rng, InstrCount)
{
    const std::size_t count =
        rng.chance(hotProb_) ? hotRegions_ : regions_.size();
    const std::size_t idx = rng.below(count);
    const auto &r = regions_[idx];
    if (windowBytes_ == 0 || windowBytes_ >= r.bytes)
        return wordAlign(r.vbase + rng.below(r.bytes));
    const std::uint64_t base = windowOffset(idx, r.bytes, windowBytes_);
    return wordAlign(r.vbase + base + rng.below(windowBytes_));
}

// -------------------------------------------------------------- Mixture

MixturePattern::MixturePattern(std::vector<PatternPtr> children,
                               std::vector<double> weights)
    : children_(std::move(children)), cdf_(buildCdf(weights))
{
    eat_assert(!children_.empty(), "mixture with no children");
    eat_assert(children_.size() == cdf_.size(),
               "mixture weights/children size mismatch");
    for (const auto &c : children_)
        eat_assert(c != nullptr, "null mixture child");
}

Addr
MixturePattern::next(Rng &rng, InstrCount now)
{
    return children_[pickFromCdf(cdf_, rng)]->next(rng, now);
}

// --------------------------------------------------------------- Phased

PhasedPattern::PhasedPattern(std::vector<PatternPtr> children,
                             InstrCount phaseInstructions)
    : children_(std::move(children)), phaseLen_(phaseInstructions)
{
    eat_assert(!children_.empty(), "phased pattern with no children");
    eat_assert(phaseLen_ > 0, "zero phase length");
    for (const auto &c : children_)
        eat_assert(c != nullptr, "null phase child");
}

Addr
PhasedPattern::next(Rng &rng, InstrCount now)
{
    const std::size_t phase =
        static_cast<std::size_t>((now / phaseLen_) % children_.size());
    return children_[phase]->next(rng, now);
}

} // namespace eat::workloads
