/**
 * @file
 * The named workload models.
 *
 * Substitution note (see DESIGN.md): the paper traced real SPEC 2006,
 * BioBench, and PARSEC binaries with Pin. This module models each
 * workload as a deterministic synthetic generator calibrated to the
 * published footprint (Table 4) and to the qualitative TLB behaviour
 * the paper reports (Figures 4, 10, 11; Table 5): the MPKI band with
 * 4 KB pages, how much huge pages help, the resting way-count Lite
 * settles at, and the L1-range-TLB hit share under RMM_Lite.
 */

#ifndef EAT_WORKLOADS_SUITE_HH
#define EAT_WORKLOADS_SUITE_HH

#include <optional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace eat::workloads
{

/** The eight TLB-intensive workloads of the main evaluation (Table 4). */
const std::vector<WorkloadSpec> &tlbIntensiveSuite();

/** The remaining SPEC 2006 workloads (Figure 12, top/middle). */
const std::vector<WorkloadSpec> &spec2006OtherSuite();

/** The remaining PARSEC workloads (Figure 12, bottom). */
const std::vector<WorkloadSpec> &parsecOtherSuite();

/** Every workload in every suite. */
std::vector<WorkloadSpec> allWorkloads();

/** Find a workload by name across all suites. */
std::optional<WorkloadSpec> findWorkload(const std::string &name);

} // namespace eat::workloads

#endif // EAT_WORKLOADS_SUITE_HH
