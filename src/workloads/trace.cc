#include "workloads/trace.hh"

#include <array>
#include <cstring>

#include "base/logging.hh"

namespace eat::workloads
{

namespace
{

constexpr char kMagic[8] = {'E', 'A', 'T', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::array<char, 4> buf;
    for (int i = 0; i < 4; ++i)
        buf[static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
    os.write(buf.data(), buf.size());
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
    os.write(buf.data(), buf.size());
}

std::uint32_t
getU32(std::istream &is)
{
    std::array<unsigned char, 4> buf{};
    is.read(reinterpret_cast<char *>(buf.data()), buf.size());
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | buf[static_cast<std::size_t>(i)];
    return v;
}

std::uint64_t
getU64(std::istream &is)
{
    std::array<unsigned char, 8> buf{};
    is.read(reinterpret_cast<char *>(buf.data()), buf.size());
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | buf[static_cast<std::size_t>(i)];
    return v;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path)
{
    if (!out_)
        eat_fatal("cannot open trace file for writing: ", path);
    out_.write(kMagic, sizeof(kMagic));
    putU32(out_, kVersion);
    putU32(out_, 0); // record count, patched in close()
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const MemOp &op)
{
    eat_assert(!closed_, "write after close on trace ", path_);
    eat_assert(op.instrGap <= UINT32_MAX, "instruction gap overflow");
    putU64(out_, op.vaddr);
    putU32(out_, static_cast<std::uint32_t>(op.instrGap));
    ++records_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_.seekp(sizeof(kMagic) + 4);
    eat_assert(records_ <= UINT32_MAX, "trace too long for format v1");
    putU32(out_, static_cast<std::uint32_t>(records_));
    out_.close();
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        eat_fatal("cannot open trace file: ", path);
    char magic[8];
    in_.read(magic, sizeof(magic));
    if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        eat_fatal("not an EAT trace file: ", path);
    const std::uint32_t version = getU32(in_);
    if (version != kVersion)
        eat_fatal("unsupported trace version ", version, " in ", path);
    total_ = getU32(in_);
}

std::optional<MemOp>
TraceReader::next()
{
    if (read_ >= total_)
        return std::nullopt;
    MemOp op;
    op.vaddr = getU64(in_);
    op.instrGap = getU32(in_);
    if (!in_)
        eat_fatal("truncated trace file");
    ++read_;
    return op;
}

} // namespace eat::workloads
