#include "workloads/trace.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "base/logging.hh"

namespace eat::workloads
{

namespace
{

constexpr char kMagic[8] = {'E', 'A', 'T', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

constexpr std::size_t kRecordBytes = 12; // vaddr u64 + gap u32, LE
/** Records per buffered I/O block (just under 64 KiB). */
constexpr std::size_t kBlockRecords = (64 * 1024) / kRecordBytes;
constexpr std::size_t kBlockBytes = kBlockRecords * kRecordBytes;

/** Append @p v little-endian to @p buf. */
void
appendU32(std::vector<char> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendU64(std::vector<char> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t
decodeU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

std::uint64_t
decodeU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::array<char, 4> buf;
    for (int i = 0; i < 4; ++i)
        buf[static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
    os.write(buf.data(), buf.size());
}

std::uint32_t
getU32(std::istream &is)
{
    std::array<unsigned char, 4> buf{};
    is.read(reinterpret_cast<char *>(buf.data()), buf.size());
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | buf[static_cast<std::size_t>(i)];
    return v;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path)
{
    if (!out_)
        eat_fatal("cannot open trace file for writing: ", path);
    buffer_.reserve(kBlockBytes + kRecordBytes);
    out_.write(kMagic, sizeof(kMagic));
    putU32(out_, kVersion);
    putU32(out_, 0); // record count, patched in close()
}

TraceWriter::~TraceWriter()
{
    if (const auto s = close(); !s.ok())
        eat_warn(s.message());
}

void
TraceWriter::write(const MemOp &op)
{
    eat_assert(!closed_, "write after close on trace ", path_);
    eat_assert(op.instrGap <= UINT32_MAX, "instruction gap overflow");
    appendU64(buffer_, op.vaddr);
    appendU32(buffer_, static_cast<std::uint32_t>(op.instrGap));
    ++records_;
    if (buffer_.size() >= kBlockBytes)
        flushBuffer();
}

void
TraceWriter::flushBuffer()
{
    if (buffer_.empty())
        return;
    // A failed write poisons the stream state, which close() reports;
    // buffering changes when bytes hit the stream, not the guarantee.
    out_.write(buffer_.data(),
               static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
}

Status
TraceWriter::close()
{
    if (closed_)
        return Status();
    flushBuffer();
    closed_ = true;
    eat_assert(records_ <= UINT32_MAX, "trace too long for format v1");
    // seekp/write on an already-failed stream are no-ops, so a record
    // write that failed earlier (disk full) is still visible here.
    out_.seekp(sizeof(kMagic) + 4);
    putU32(out_, static_cast<std::uint32_t>(records_));
    out_.flush();
    const bool failed = !out_;
    out_.close();
    if (failed || !out_) {
        return Status::error("write failure on trace file ", path_,
                             " after ", records_,
                             " records (disk full?); the file is invalid");
    }
    return Status();
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        eat_fatal("cannot open trace file: ", path);
    char magic[8];
    in_.read(magic, sizeof(magic));
    if (!in_ || in_.gcount() != sizeof(magic))
        eat_fatal("trace file ", path, " too short for the 16-byte header");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        eat_fatal("not an EAT trace file (bad magic): ", path);
    const std::uint32_t version = getU32(in_);
    if (!in_ || version != kVersion) {
        eat_fatal("unsupported trace version ", version, " in ", path,
                  " (this build reads version ", kVersion, ")");
    }
    total_ = getU32(in_);
    if (!in_)
        eat_fatal("trace file ", path, " too short for the 16-byte header");

    // Cross-check the header's record count against the actual file
    // size, so truncation (or trailing garbage) is a loud, precise
    // error up front instead of a silently shorter replay.
    const auto headerEnd = in_.tellg();
    in_.seekg(0, std::ios::end);
    const auto fileSize = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(headerEnd);
    const std::uint64_t kHeaderBytes = sizeof(kMagic) + 8;
    const std::uint64_t kRecordBytes = 12;
    const std::uint64_t expected = kHeaderBytes + kRecordBytes * total_;
    if (fileSize < expected) {
        eat_fatal("truncated trace file ", path, ": header promises ",
                  total_, " records (", expected, " bytes) but the file "
                  "has only ", fileSize, " bytes");
    }
    if (fileSize > expected) {
        eat_fatal("corrupt trace file ", path, ": ", fileSize - expected,
                  " trailing bytes after the ", total_,
                  " records the header promises");
    }
}

void
TraceReader::refill()
{
    const std::uint64_t remaining = total_ - read_;
    const std::size_t records = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, kBlockRecords));
    buffer_.resize(records * kRecordBytes);
    bufferPos_ = 0;
    in_.read(buffer_.data(),
             static_cast<std::streamsize>(buffer_.size()));
    if (!in_ || static_cast<std::size_t>(in_.gcount()) !=
                    buffer_.size()) {
        eat_fatal("truncated trace file: read failed at record ", read_,
                  " of ", total_);
    }
}

std::optional<MemOp>
TraceReader::next()
{
    if (read_ >= total_)
        return std::nullopt;
    if (bufferPos_ >= buffer_.size())
        refill();
    const char *p = buffer_.data() + bufferPos_;
    MemOp op;
    op.vaddr = decodeU64(p);
    op.instrGap = decodeU32(p + 8);
    bufferPos_ += kRecordBytes;
    ++read_;
    return op;
}

} // namespace eat::workloads
