/**
 * @file
 * Workload specification and the deterministic memory-operation
 * generator that feeds the MMU.
 */

#ifndef EAT_WORKLOADS_WORKLOAD_HH
#define EAT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "vm/memory_manager.hh"
#include "workloads/pattern.hh"

namespace eat::workloads
{

/** One allocation the workload performs at startup. */
struct AllocSpec
{
    std::uint64_t bytes = 0;
    unsigned count = 1; ///< number of identical regions to mmap
};

/**
 * A declarative workload model: its allocations, its access-pattern
 * recipe (built once the regions are mapped), and its density of memory
 * operations.
 */
struct WorkloadSpec
{
    std::string name;
    std::string suite;        ///< "SPEC 2006", "PARSEC", "BioBench"
    bool tlbIntensive = false;///< > 5 L1 TLB MPKI with 4 KB pages (paper)
    unsigned memOpsPerKiloInstr = 300;
    std::vector<AllocSpec> allocs;

    /**
     * Build the access pattern over the mapped regions. The regions
     * arrive in allocation order: allocs[0].count regions first, then
     * allocs[1].count, and so on.
     */
    std::function<PatternPtr(const std::vector<vm::Region> &)> buildPattern;

    /** Total footprint in bytes. */
    std::uint64_t footprintBytes() const;
};

/** One generated memory operation. */
struct MemOp
{
    Addr vaddr = 0;
    /** Instructions retired since the previous memory operation
     *  (>= 1; includes this operation's instruction). */
    InstrCount instrGap = 1;
};

/**
 * Drives a WorkloadSpec: performs its allocations against a
 * MemoryManager and then produces the deterministic operation stream.
 */
class WorkloadGenerator
{
  public:
    /**
     * Allocates the workload's regions through @p mm and builds the
     * pattern. The same (spec, seed) pair always yields bit-identical
     * streams regardless of the OS policy in @p mm.
     */
    WorkloadGenerator(const WorkloadSpec &spec, vm::MemoryManager &mm,
                      std::uint64_t seed);

    /** The next memory operation. */
    MemOp
    next()
    {
        const InstrCount gap = nextGap();
        now_ += gap;
        return MemOp{pattern_->next(rng_, now_), gap};
    }

    /** Fast-forward roughly @p instructions instructions of execution. */
    void skip(InstrCount instructions);

    /** Instructions retired so far (including gaps already emitted). */
    InstrCount instructionsRetired() const { return now_; }

    const std::vector<vm::Region> &regions() const { return regions_; }

  private:
    /** gap = ceil-or-floor of 1000/opsPerKilo with an error accumulator,
     *  so the average is exact and the stream is deterministic. */
    InstrCount
    nextGap()
    {
        gapCarry_ += gapNumerator_;
        const std::uint64_t gap = gapCarry_ / gapDenominator_;
        gapCarry_ %= gapDenominator_;
        return gap > 0 ? gap : 1;
    }

    PatternPtr pattern_;
    std::vector<vm::Region> regions_;
    Rng rng_;
    InstrCount now_ = 0;

    // Fixed-point gap accumulator: emits gaps whose long-run average is
    // exactly 1000 / memOpsPerKiloInstr instructions.
    std::uint64_t gapNumerator_;   ///< 1000
    std::uint64_t gapDenominator_; ///< memOpsPerKiloInstr
    std::uint64_t gapCarry_ = 0;
};

} // namespace eat::workloads

#endif // EAT_WORKLOADS_WORKLOAD_HH
