#include "workloads/suite.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::workloads
{

namespace
{

using vm::Region;

// =====================================================================
// Span helpers
// =====================================================================

/** Span over whole regions [from, to). */
Span
wholeSpan(const std::vector<Region> &regions, std::size_t from,
          std::size_t to)
{
    eat_assert(from < to && to <= regions.size(), "bad region slice");
    std::vector<Extent> extents;
    for (std::size_t i = from; i < to; ++i)
        extents.push_back({regions[i].vbase, regions[i].bytes});
    return Span(std::move(extents));
}

/**
 * Span over one staggered window of @p windowBytes per region in
 * [from, to). The stagger keeps the identically aligned regions from
 * aliasing into the same TLB sets (see RegionHotsetPattern).
 */
Span
windowSpan(const std::vector<Region> &regions, std::size_t from,
           std::size_t to, std::uint64_t windowBytes)
{
    eat_assert(from < to && to <= regions.size(), "bad region slice");
    std::vector<Extent> extents;
    for (std::size_t i = from; i < to; ++i) {
        const auto &r = regions[i];
        const std::uint64_t bytes = std::min(windowBytes, r.bytes);
        const std::uint64_t off =
            RegionHotsetPattern::windowOffset(i, r.bytes, bytes);
        extents.push_back({r.vbase + off, bytes});
    }
    return Span(std::move(extents));
}

/**
 * Span of one contiguous @p pagesPerRegion-page window per region,
 * positioned so that consecutive regions' windows tile the 16 sets of
 * the L1-4KB TLB uniformly (window k starts at set k*pagesPerRegion
 * mod 16).
 *
 * Exact set coverage matters for page-cycled traffic: under true LRU,
 * cycling over N pages per set of an N-way TLB hits at full depth
 * (the deep-LRU utility signal Lite reads), while N+1 pages per set
 * never hit at all.
 */
Span
setCoverSpan(const std::vector<Region> &regions, std::size_t from,
             std::size_t to, unsigned pagesPerRegion,
             unsigned startSet = 0)
{
    constexpr std::uint64_t kSets = 16; // 64-entry 4-way L1-4KB TLB
    eat_assert(from < to && to <= regions.size(), "bad region slice");
    eat_assert(pagesPerRegion >= 1, "empty set-cover window");
    std::vector<Extent> extents;
    for (std::size_t i = from; i < to; ++i) {
        const auto &r = regions[i];
        const std::size_t idx = i - from;
        const std::uint64_t vpn = r.vbase >> 12;
        const std::uint64_t targetSet =
            (startSet + idx * pagesPerRegion) % kSets;
        // Offset (in pages) aligning this window to its target set,
        // plus a varying whole-cover stride so windows are not all at
        // the region start.
        std::uint64_t offPages =
            (targetSet + kSets - (vpn % kSets)) % kSets +
            kSets * (idx % 3);
        std::uint64_t bytes = std::uint64_t{pagesPerRegion} * 4096;
        if ((offPages * 4096) + bytes > r.bytes)
            offPages %= kSets;
        eat_assert(offPages * 4096 + bytes <= r.bytes,
                   "set-cover window does not fit region");
        extents.push_back({r.vbase + offPages * 4096, bytes});
    }
    return Span(std::move(extents));
}

/** Span over @p bytes of one region starting at @p offset. */
Span
subSpan(const Region &region, std::uint64_t offset, std::uint64_t bytes)
{
    eat_assert(offset + bytes <= region.bytes, "sub-span out of region");
    return Span({Extent{region.vbase + offset, bytes}});
}

// =====================================================================
// Pattern helpers
// =====================================================================

/**
 * Page-granular cyclic sweep: every access touches a new 4 KB page of
 * the span, wrapping around. Sized at exactly k pages per set (via
 * k * 64 KB contiguous buffers or setCoverSpan), this is the knob that
 * sets the resting way count Lite converges to (Table 5): k pages per
 * set hit at deep LRU distance and are lost if fewer than k ways stay
 * active.
 */
PatternPtr
cyclicPages(Span span)
{
    return std::make_unique<SequentialPattern>(std::move(span), 4096);
}

PatternPtr
uniform(Span span)
{
    return std::make_unique<UniformRandomPattern>(std::move(span));
}

/** Shorthand for a nested working-set pattern over a span. */
PatternPtr
ws(Span span, std::vector<WsLevel> levels)
{
    return std::make_unique<WorkingSetPattern>(std::move(span),
                                               std::move(levels));
}

/**
 * Hot scratch traffic: uniform over small set-distinct windows of a few
 * regions. The windows are hot enough that their pages sit at the MRU
 * end of their sets — near-zero misses even direct-mapped, so this
 * traffic never blocks Lite's way-disabling as long as it occupies
 * sets the page-cycled traffic leaves at less than full depth
 * (@p startSet places it).
 */
PatternPtr
hotScratch(const std::vector<Region> &regions, std::size_t from,
           std::size_t to, unsigned pagesPerRegion = 2,
           unsigned startSet = 0)
{
    return uniform(
        setCoverSpan(regions, from, to, pagesPerRegion, startSet));
}

PatternPtr
scatter(const std::vector<Region> &regions, std::size_t from,
        std::size_t to, std::size_t hot, double hotProb,
        std::uint64_t windowBytes)
{
    return std::make_unique<RegionHotsetPattern>(
        std::vector<Region>(regions.begin() +
                                static_cast<std::ptrdiff_t>(from),
                            regions.begin() +
                                static_cast<std::ptrdiff_t>(to)),
        hot, hotProb, windowBytes);
}

/** Variadic mixture (initializer lists cannot move unique_ptrs). */
template <typename... Patterns>
PatternPtr
mixp(std::vector<double> weights, Patterns &&...patterns)
{
    std::vector<PatternPtr> children;
    children.reserve(sizeof...(patterns));
    (children.push_back(std::forward<Patterns>(patterns)), ...);
    return std::make_unique<MixturePattern>(std::move(children),
                                            std::move(weights));
}

// =====================================================================
// The eight TLB-intensive workloads (Table 4).
//
// Model discipline (rationale in DESIGN.md):
//  - big arenas carry the nested working-set traffic that sets the
//    4KB-config L1/L2 MPKI bands and is captured by 2 MB pages (THP)
//    and by range translations (RMM);
//  - sub-2MB "buffer" regions stay 4 KB-mapped under every policy and
//    carry the page-cycled traffic whose exact pages-per-set count
//    sets the resting way count Lite converges to (Table 5);
//  - hot scratch windows (set-distinct, MRU-resident) model stack-like
//    4 KB traffic that never blocks way-disabling;
//  - phases vary the cycled footprint to reproduce the mixed
//    way-residency the paper reports;
//  - the number of small regions a workload spreads its 4 KB traffic
//    over sets the L1-range-TLB hit share under RMM_Lite (each region
//    is one range).
// =====================================================================

WorkloadSpec
makeAstar()
{
    WorkloadSpec spec;
    spec.name = "astar";
    spec.suite = "SPEC 2006";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // ~350 MB: graph arena + path buffer + per-search scratch.
    spec.allocs = {{288_MiB, 1}, {1_MiB, 1}, {1536_KiB, 24}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        // Phase A: broad search, 3 cycled pages per set (Lite holds all
        // 4 ways). Phases B: tight search, 24 cycled pages tile sets
        // 0-7 twice and 8-15 once, with hot scratch on the half-depth
        // sets — rests at 2 ways without any band-2 utility. Figure 4
        // shows astar needing different configurations over time.
        auto phase = [&](double scratchW, unsigned cycPages) {
            return mixp(
                {1.0 - 0.14 - scratchW, 0.14, scratchW},
                // The 1.5 MB warm set misses the L1-4KB TLB but lives
                // in the L2 TLB with 4 KB pages; THP folds it into one
                // hot 2 MB page. This is the traffic that makes huge
                // pages cut miss cycles ~5x while the extra L1-2MB
                // lookups keep the energy roughly flat (Figs. 2a/2b).
                ws(wholeSpan(r, 0, 1),
                   {{48_KiB, 0.775}, {1280_KiB, 0.213}, {36_MiB, 0.008},
                    {288_MiB, 0.002}}),
                cyclicPages(setCoverSpan(r, 1, 2, cycPages)),
                // per-search scratch over 4 small regions on sets 8-15
                // (the half-depth sets of the 24-page phases): under
                // RMM_Lite these 4+ ranges rotate through the L1-range
                // TLB, so part of this traffic is served by the L1-4KB
                // TLB even at 1 way (Table 5's 4K hit share)
                hotScratch(r, 2, 6, 2, 8));
        };
        std::vector<PatternPtr> phases;
        phases.push_back(phase(0.10, 48)); // 3 pages/set: 4-way
        phases.push_back(phase(0.08, 24)); // rest at 2 ways
        phases.push_back(phase(0.08, 24));
        return std::make_unique<PhasedPattern>(std::move(phases),
                                               8'000'000);
    };
    return spec;
}

WorkloadSpec
makeCactusAdm()
{
    WorkloadSpec spec;
    spec.name = "cactusADM";
    spec.suite = "SPEC 2006";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // ~690 MB: four stencil grids.
    spec.allocs = {{168_MiB, 4}, {1_MiB, 2}, {1536_KiB, 10}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        return mixp(
            {0.06, 0.015, 0.82, 0.105},
            // stencil sweep with a 16 KB stride: every access a new
            // 4 KB page (page-walk bound with 4 KB pages), but 128
            // consecutive MRU hits per 2 MB page under THP — with no
            // other 2M-resident data, cactusADM's L1-2MB TLB rests at
            // 1 way (Table 5)
            std::make_unique<StridedPattern>(wholeSpan(r, 0, 4), 16_KiB),
            // boundary-exchange sweep striding past 2 MB: misses every
            // TLB level under every page size (cactusADM keeps real
            // page walks even with huge pages)
            std::make_unique<StridedPattern>(wholeSpan(r, 0, 4),
                                             2_MiB + 16_KiB),
            // per-point coefficient tables: 8 hot pages on sets 0-7
            uniform(setCoverSpan(r, 4, 5, 8, 0)),
            // 8 cycled pages on sets 8-15: together exactly one page
            // per set, so the L1-4KB TLB also rests at 1 way
            cyclicPages(setCoverSpan(r, 5, 6, 8, 8)));
    };
    return spec;
}

WorkloadSpec
makeGemsFdtd()
{
    WorkloadSpec spec;
    spec.name = "GemsFDTD";
    spec.suite = "SPEC 2006";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // ~860 MB: six field arrays.
    spec.allocs = {{140_MiB, 6}, {1_MiB, 1}, {1536_KiB, 10}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        auto sweep = [&](std::size_t from, std::size_t to,
                         unsigned cycPages) {
            return mixp(
                {0.26, 0.62, 0.12},
                // FDTD update: sequential field traversal
                std::make_unique<SequentialPattern>(wholeSpan(r, from, to),
                                                    128),
                ws(wholeSpan(r, from, to),
                   {{48_KiB, 0.775}, {1280_KiB, 0.2175}, {48_MiB, 0.005},
                    {560_MiB, 0.0015}}),
                cyclicPages(setCoverSpan(r, 6, 7, cycPages)));
        };
        std::vector<PatternPtr> phases;
        phases.push_back(sweep(0, 3, 48)); // E-field: 3/set, 4-way
        phases.push_back(sweep(3, 6, 32)); // H-field: 2/set, 2-way
        phases.push_back(sweep(0, 6, 12)); // output: 1-way
        return std::make_unique<PhasedPattern>(std::move(phases),
                                               8'000'000);
    };
    return spec;
}

WorkloadSpec
makeMcf()
{
    WorkloadSpec spec;
    spec.name = "mcf";
    spec.suite = "SPEC 2006";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // 1.7 GB: the network arena plus auxiliary arrays.
    spec.allocs = {{1600_MiB, 1}, {96_MiB, 1}, {1_MiB, 1}, {1536_KiB, 12}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        // Pointer-chasing over nested working sets with a heavy tail:
        // the paper's most page-walk-bound workload with 4 KB pages;
        // the 44 MB warm set fits the 32-entry L1-2MB TLB under THP.
        auto chase = [&](double warm, unsigned cycPages, double cycW) {
            return mixp(
                {0.88 - cycW, 0.12, cycW},
                ws(wholeSpan(r, 0, 1),
                   {{40_KiB, 0.86 - warm}, {1200_KiB, 0.10}, {44_MiB, warm},
                    {1600_MiB, 0.04}}),
                ws(wholeSpan(r, 1, 2), {{32_KiB, 0.92}, {96_MiB, 0.08}}),
                cyclicPages(setCoverSpan(r, 2, 3, cycPages)));
        };
        std::vector<PatternPtr> phases;
        phases.push_back(chase(0.10, 48, 0.08)); // 3/set: 4-way phase
        phases.push_back(chase(0.12, 32, 0.05)); // 2/set: 2-way phase
        phases.push_back(chase(0.14, 12, 0.02)); // 1-way phase
        phases.push_back(chase(0.14, 12, 0.02));
        return std::make_unique<PhasedPattern>(std::move(phases),
                                               5'500'000);
    };
    return spec;
}

WorkloadSpec
makeOmnetpp()
{
    WorkloadSpec spec;
    spec.name = "omnetpp";
    spec.suite = "SPEC 2006";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // ~165 MB as many ~1 MB module/event allocations (never
    // THP-promoted) plus one message arena. The many small regions are
    // what pressures the 4-entry L1-range TLB under RMM_Lite (range
    // share only ~51%, Table 5).
    spec.allocs = {{1_MiB, 96}, {64_MiB, 1}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        return mixp(
            {0.37, 0.28, 0.22, 0.13},
            // FES heap and hot module state: 3 regions (these ranges
            // stay L1-range resident under RMM_Lite)
            uniform(windowSpan(r, 0, 3, 32_KiB)),
            // warm module state page-cycled across 16 cool regions at
            // exactly 4 pages/set: deep-LRU utility the range TLB
            // cannot cover -> omnetpp keeps all 4 ways active even
            // under RMM_Lite
            cyclicPages(setCoverSpan(r, 3, 19, 4)),
            // event scatter across many modules (hits the L2 TLB)
            scatter(r, 0, 60, 24, 0.9, 8_KiB),
            // message payload arena
            ws(wholeSpan(r, 96, 97),
               {{64_KiB, 0.80}, {1536_KiB, 0.17}, {64_MiB, 0.03}}));
    };
    return spec;
}

WorkloadSpec
makeZeusmp()
{
    WorkloadSpec spec;
    spec.name = "zeusmp";
    spec.suite = "SPEC 2006";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // ~530 MB: CFD blocks.
    spec.allocs = {{128_MiB, 4}, {1_MiB, 1}, {1536_KiB, 8}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        auto phase = [&](unsigned cycPages) {
            return mixp(
                {0.30, 0.56, 0.14},
                std::make_unique<SequentialPattern>(wholeSpan(r, 0, 4),
                                                    128),
                ws(wholeSpan(r, 0, 4),
                   {{48_KiB, 0.775}, {1280_KiB, 0.2175}, {48_MiB, 0.005},
                    {512_MiB, 0.0015}}),
                cyclicPages(setCoverSpan(r, 4, 5, cycPages)));
        };
        std::vector<PatternPtr> phases;
        phases.push_back(phase(48)); // 3/set: 4-way phase
        phases.push_back(phase(32)); // 2/set: 2-way phase
        phases.push_back(phase(12)); // 1-way phase
        return std::make_unique<PhasedPattern>(std::move(phases),
                                               8'000'000);
    };
    return spec;
}

WorkloadSpec
makeMummer()
{
    WorkloadSpec spec;
    spec.name = "mummer";
    spec.suite = "BioBench";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // ~470 MB: suffix tree plus query sequence.
    spec.allocs = {{384_MiB, 1}, {72_MiB, 1}, {1_MiB, 1}, {1536_KiB, 6}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        auto walkPhase = [&](unsigned cycPages, double cycW) {
            return mixp(
                {0.12, 0.68 - cycW, 0.20, cycW},
                // suffix-tree descent: localized pointer walk — each
                // step lands on a fresh page (L1 misses) but the walk
                // is bounded to an L2-TLB-resident neighbourhood
                std::make_unique<LocalWalkPattern>(
                    subSpan(r[0], 64_MiB, 1536_KiB), 32_KiB, 0.004),
                // node cache
                ws(wholeSpan(r, 0, 1),
                   {{40_KiB, 0.775}, {1280_KiB, 0.2175}, {32_MiB, 0.005},
                    {384_MiB, 0.0015}}),
                // streaming over the query sequence
                std::make_unique<SequentialPattern>(wholeSpan(r, 1, 2),
                                                    64),
                // match bookkeeping, 2 pages/set: 2-way resting
                cyclicPages(setCoverSpan(r, 2, 3, cycPages)));
        };
        std::vector<PatternPtr> phases;
        phases.push_back(walkPhase(48, 0.13)); // 3/set: 4-way phase
        phases.push_back(walkPhase(32, 0.12)); // 2/set: 2-way phase
        phases.push_back(walkPhase(32, 0.12));
        return std::make_unique<PhasedPattern>(std::move(phases),
                                               8'000'000);
    };
    return spec;
}

WorkloadSpec
makeCanneal()
{
    WorkloadSpec spec;
    spec.name = "canneal";
    spec.suite = "PARSEC";
    spec.tlbIntensive = true;
    spec.memOpsPerKiloInstr = 400;
    // ~780 MB of netlist elements: big cold slabs plus many small warm
    // buffers. The miss traffic lives in the small (4 KB-backed)
    // buffers, so huge pages cannot remove it — THP only adds L1-2MB
    // lookup energy, which is why canneal shows the paper's largest
    // energy *increase* under THP (Figure 2a).
    spec.allocs = {{19_MiB, 38}, {1_MiB, 24}, {1536_KiB, 3}};
    spec.buildPattern = [](const std::vector<Region> &r) {
        return mixp(
            {0.52, 0.275, 0.12, 0.065, 0.02},
            // hot netlist partitions: 3 small regions (the L1-range TLB
            // captures these under RMM_Lite)
            uniform(windowSpan(r, 62, 65, 32_KiB)),
            // warm elements page-cycled across 16 small regions at
            // exactly 4 pages/set: full 4-way utility the range TLB
            // cannot cover
            cyclicPages(setCoverSpan(r, 38, 54, 4)),
            // random element swaps across the small element buffers
            // (4 KB-mapped under every policy)
            uniform(windowSpan(r, 38, 62, 32_KiB)),
            // swaps within the hot cold-slabs (2 MB-backed under THP)
            uniform(windowSpan(r, 0, 3, 96_KiB)),
            // cold-element touches in the small element buffers: the
            // page-walk source that huge pages cannot remove (their
            // ranges stay L2-range resident, so RMM recovers exactly
            // these walks)
            scatter(r, 38, 62, 24, 1.0, 0));
    };
    return spec;
}

// =====================================================================
// Figure 12: the remaining SPEC 2006 and PARSEC workloads. These
// stress the TLBs far less; a shared mild template parameterized by
// footprint and locality is sufficient.
// =====================================================================

struct MildParams
{
    const char *name;
    const char *suite;
    std::uint64_t footprintMiB;
    std::uint64_t hotKiB;   ///< L1-TLB-resident working set
    std::uint64_t warmKiB;  ///< L2-TLB-resident working set
    double warmWeight;      ///< access share of the warm set
    double tailWeight;      ///< access share of the full footprint
    unsigned cyclicPagesPerSet; ///< resting way count knob (0 = none)
};

WorkloadSpec
makeMild(const MildParams &p)
{
    WorkloadSpec spec;
    spec.name = p.name;
    spec.suite = p.suite;
    spec.tlbIntensive = false;
    const std::uint64_t bytes =
        std::max<std::uint64_t>(p.footprintMiB, 3) * 1_MiB;
    spec.allocs = {{bytes, 1}, {1_MiB, 8}};
    const MildParams params = p;
    spec.buildPattern = [params](const std::vector<Region> &r) {
        std::vector<PatternPtr> children;
        std::vector<double> weights;
        const double cyclicWeight = params.cyclicPagesPerSet ? 0.10 : 0.0;
        const double scratchWeight = 0.05;
        const double wsWeight = 1.0 - cyclicWeight - scratchWeight;

        // The mid level keeps a little deep reuse in the L1-2MB TLB
        // under THP (a dozen 2 MB pages), so Lite rests it at 2 ways
        // rather than 1 for most mild workloads.
        const std::uint64_t midBytes =
            std::min<std::uint64_t>(24_MiB, r[0].bytes);
        children.push_back(
            ws(wholeSpan(r, 0, 1),
               {{params.hotKiB * 1_KiB,
                 wsWeight - params.warmWeight - params.tailWeight -
                     0.004},
                {params.warmKiB * 1_KiB, params.warmWeight},
                {midBytes, 0.004},
                {r[0].bytes, params.tailWeight}}));
        weights.push_back(wsWeight);
        if (params.cyclicPagesPerSet) {
            // Cycled pages in ONE small (4 KB-backed) region at
            // cyclicPagesPerSet pages per L1-4KB-TLB set: real way
            // utility under THP, but a single hot range under eager
            // paging — so RMM_Lite still downsizes. No scratch: it
            // would share sets with the cycled pages and distort the
            // utility profile.
            children.push_back(cyclicPages(subSpan(
                r[1], 0, params.cyclicPagesPerSet * 64_KiB)));
            weights.push_back(cyclicWeight + scratchWeight);
        } else {
            children.push_back(hotScratch(r, 1, 4));
            weights.push_back(scratchWeight);
        }
        return std::make_unique<MixturePattern>(std::move(children),
                                                std::move(weights));
    };
    return spec;
}

// Footprints follow the published SPEC 2006 / PARSEC reference-input
// memory sizes (rounded); locality chosen so every workload stays under
// ~5 L1 TLB MPKI with 4 KB pages, matching the paper's "other
// workloads" split. The cyclic knob varies the resting way count so
// the suite-wide TLB_Lite saving averages out like the paper's.
const MildParams kSpecOther[] = {
    {"bwaves", "SPEC 2006", 880, 48, 512, 0.010, 0.0020, 4},
    {"bzip2", "SPEC 2006", 850, 56, 768, 0.012, 0.0015, 2},
    {"dealII", "SPEC 2006", 510, 48, 384, 0.008, 0.0010, 4},
    {"gamess", "SPEC 2006", 680, 32, 256, 0.005, 0.0005, 0},
    {"gcc", "SPEC 2006", 890, 64, 1024, 0.014, 0.0025, 4},
    {"gobmk", "SPEC 2006", 28, 40, 512, 0.010, 0.0030, 4},
    {"gromacs", "SPEC 2006", 14, 32, 256, 0.006, 0.0010, 0},
    {"h264ref", "SPEC 2006", 65, 48, 384, 0.008, 0.0012, 4},
    {"hmmer", "SPEC 2006", 41, 32, 192, 0.004, 0.0005, 0},
    {"lbm", "SPEC 2006", 410, 56, 640, 0.011, 0.0018, 2},
    {"leslie3d", "SPEC 2006", 125, 48, 512, 0.010, 0.0015, 4},
    {"libquantum", "SPEC 2006", 100, 24, 128, 0.003, 0.0004, 0},
    {"milc", "SPEC 2006", 680, 64, 1024, 0.016, 0.0030, 4},
    {"namd", "SPEC 2006", 46, 32, 256, 0.005, 0.0008, 2},
    {"perlbench", "SPEC 2006", 580, 56, 768, 0.012, 0.0020, 2},
    {"povray", "SPEC 2006", 3, 24, 128, 0.004, 0.0005, 0},
    {"sjeng", "SPEC 2006", 172, 40, 384, 0.008, 0.0012, 4},
    {"soplex", "SPEC 2006", 440, 64, 1024, 0.015, 0.0028, 2},
    {"sphinx3", "SPEC 2006", 45, 40, 320, 0.007, 0.0010, 2},
    {"tonto", "SPEC 2006", 45, 32, 256, 0.005, 0.0008, 0},
    {"wrf", "SPEC 2006", 680, 56, 768, 0.012, 0.0020, 4},
    {"xalancbmk", "SPEC 2006", 420, 64, 896, 0.014, 0.0024, 4},
};

const MildParams kParsecOther[] = {
    {"blackscholes", "PARSEC", 610, 32, 256, 0.005, 0.0006, 2},
    {"bodytrack", "PARSEC", 34, 40, 384, 0.008, 0.0010, 4},
    {"dedup", "PARSEC", 1590, 64, 1024, 0.016, 0.0030, 4},
    {"facesim", "PARSEC", 310, 48, 512, 0.010, 0.0015, 4},
    {"ferret", "PARSEC", 100, 48, 512, 0.010, 0.0014, 2},
    {"fluidanimate", "PARSEC", 630, 56, 640, 0.011, 0.0018, 2},
    {"freqmine", "PARSEC", 990, 64, 1024, 0.015, 0.0028, 4},
    {"raytrace", "PARSEC", 1290, 48, 512, 0.009, 0.0014, 2},
    {"streamcluster", "PARSEC", 110, 40, 384, 0.008, 0.0012, 4},
    {"swaptions", "PARSEC", 6, 24, 128, 0.003, 0.0004, 0},
    {"vips", "PARSEC", 32, 40, 320, 0.007, 0.0010, 2},
    {"x264", "PARSEC", 180, 48, 512, 0.010, 0.0015, 4},
};

} // namespace

const std::vector<WorkloadSpec> &
tlbIntensiveSuite()
{
    static const std::vector<WorkloadSpec> suite = [] {
        std::vector<WorkloadSpec> v;
        v.push_back(makeAstar());
        v.push_back(makeCactusAdm());
        v.push_back(makeGemsFdtd());
        v.push_back(makeMcf());
        v.push_back(makeOmnetpp());
        v.push_back(makeZeusmp());
        v.push_back(makeMummer());
        v.push_back(makeCanneal());
        return v;
    }();
    return suite;
}

const std::vector<WorkloadSpec> &
spec2006OtherSuite()
{
    static const std::vector<WorkloadSpec> suite = [] {
        std::vector<WorkloadSpec> v;
        for (const auto &p : kSpecOther)
            v.push_back(makeMild(p));
        return v;
    }();
    return suite;
}

const std::vector<WorkloadSpec> &
parsecOtherSuite()
{
    static const std::vector<WorkloadSpec> suite = [] {
        std::vector<WorkloadSpec> v;
        for (const auto &p : kParsecOther)
            v.push_back(makeMild(p));
        return v;
    }();
    return suite;
}

std::vector<WorkloadSpec>
allWorkloads()
{
    std::vector<WorkloadSpec> all;
    for (const auto &w : tlbIntensiveSuite())
        all.push_back(w);
    for (const auto &w : spec2006OtherSuite())
        all.push_back(w);
    for (const auto &w : parsecOtherSuite())
        all.push_back(w);
    return all;
}

std::optional<WorkloadSpec>
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    return std::nullopt;
}

} // namespace eat::workloads
