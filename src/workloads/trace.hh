/**
 * @file
 * Binary trace recording and replay.
 *
 * Generated operation streams can be captured to a compact binary file
 * and replayed later, decoupling workload generation from simulation
 * (the role Pin trace files played for the paper's infrastructure).
 *
 * Format: 16-byte header ("EATTRACE", version, record count), then one
 * record per operation: vaddr (8 bytes LE) + instruction gap (4 bytes
 * LE).
 */

#ifndef EAT_WORKLOADS_TRACE_HH
#define EAT_WORKLOADS_TRACE_HH

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "base/status.hh"
#include "workloads/workload.hh"

namespace eat::workloads
{

/** Writes a memory-operation trace file. */
class TraceWriter
{
  public:
    /** Open @p path for writing; truncates an existing file. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one operation. */
    void write(const MemOp &op);

    /**
     * Finalize the header and flush. Returns an error if any write
     * failed (disk full, I/O error) — without this check a truncated
     * trace would replay silently as a shorter run. The destructor
     * closes too but can only warn; call close() to observe failures.
     */
    Status close();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    void flushBuffer();

    std::ofstream out_;
    std::string path_;
    /** Records are encoded here and written in ~64 KiB blocks; one
     *  ofstream call per record was a visible fraction of record
     *  time. */
    std::vector<char> buffer_;
    std::uint64_t records_ = 0;
    bool closed_ = false;
};

/** Reads a memory-operation trace file. */
class TraceReader
{
  public:
    /** Open @p path; throws (fatal) on a missing or malformed file. */
    explicit TraceReader(const std::string &path);

    /** The next operation, or std::nullopt at end of trace. */
    std::optional<MemOp> next();

    std::uint64_t totalRecords() const { return total_; }
    std::uint64_t recordsRead() const { return read_; }

  private:
    /** Pull the next ~64 KiB block of records into the buffer. */
    void refill();

    std::ifstream in_;
    std::vector<char> buffer_;
    std::size_t bufferPos_ = 0; ///< decode cursor into buffer_
    std::uint64_t total_ = 0;
    std::uint64_t read_ = 0;
};

} // namespace eat::workloads

#endif // EAT_WORKLOADS_TRACE_HH
