/**
 * @file
 * Composable synthetic access-pattern primitives.
 *
 * The paper drove its TLB simulator with Pin traces of SPEC2006,
 * BioBench, and PARSEC. This reproduction substitutes deterministic
 * generators built from the primitives below; what matters to the TLB
 * hierarchy is the page-granularity reuse behaviour of the address
 * stream, which the per-workload models in suite.cc calibrate to the
 * published footprints (Table 4) and MPKI bands (Figure 11).
 *
 * Primitives:
 *  - UniformRandomPattern : uniform over a weighted set of extents.
 *  - WorkingSetPattern    : nested working-set levels (the classic
 *    hierarchical-locality model; produces smooth miss-ratio curves).
 *  - SequentialPattern    : streaming with a fixed stride.
 *  - StridedPattern       : large-stride scans (stencil sweeps).
 *  - LocalWalkPattern     : bounded random walk with occasional jumps.
 *  - RegionHotsetPattern  : hot subset of many distinct regions
 *    (allocation-heavy codes; drives range-TLB pressure under RMM).
 *  - MixturePattern       : weighted choice per access.
 *  - PhasedPattern        : rotates children on an instruction clock.
 */

#ifndef EAT_WORKLOADS_PATTERN_HH
#define EAT_WORKLOADS_PATTERN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "vm/memory_manager.hh"

namespace eat::workloads
{

/** A contiguous virtual extent a pattern may touch. */
struct Extent
{
    Addr base = 0;
    std::uint64_t bytes = 0;
};

/** A set of extents addressable as one concatenated span. */
class Span
{
  public:
    Span() = default;
    explicit Span(std::vector<Extent> extents);

    /** Build a span from mapped regions. */
    static Span fromRegions(const std::vector<vm::Region> &regions);

    std::uint64_t bytes() const { return total_; }
    bool empty() const { return total_ == 0; }
    std::size_t numExtents() const { return extents_.size(); }
    const Extent &extent(std::size_t i) const { return extents_.at(i); }

    /** The virtual address at @p offset into the concatenated span. */
    Addr addrAt(std::uint64_t offset) const;

  private:
    std::vector<Extent> extents_;
    std::vector<std::uint64_t> starts_; ///< prefix offsets per extent
    std::uint64_t total_ = 0;
    /** Extent that served the last addrAt() (pure lookup memo). */
    mutable std::size_t lastExtent_ = 0;
};

/** Base class of every access-pattern primitive. */
class AccessPattern
{
  public:
    virtual ~AccessPattern() = default;

    /**
     * The next virtual address to access.
     * @param rng the workload's deterministic generator.
     * @param now the current instruction count (drives phases).
     */
    virtual Addr next(Rng &rng, InstrCount now) = 0;
};

using PatternPtr = std::unique_ptr<AccessPattern>;

/** Uniform random over a span. */
class UniformRandomPattern final : public AccessPattern
{
  public:
    explicit UniformRandomPattern(Span span);
    Addr next(Rng &rng, InstrCount now) override;

  private:
    Span span_;
};

/** One nested working-set level: the first @c bytes of the span. */
struct WsLevel
{
    std::uint64_t bytes; ///< level size (levels need not be sorted)
    double weight;       ///< relative access probability
};

/**
 * Hierarchical working sets: with each level's probability, access
 * uniformly within the first level.bytes of the span. Small inner
 * levels model L1-TLB-resident hot data; outer levels model the
 * heavy tail that stresses the L2 TLB and the page walker.
 */
class WorkingSetPattern final : public AccessPattern
{
  public:
    WorkingSetPattern(Span span, std::vector<WsLevel> levels);
    Addr next(Rng &rng, InstrCount now) override;

  private:
    Span span_;
    std::vector<WsLevel> levels_; ///< weights normalized to a CDF
};

/** Streaming access with a fixed stride, wrapping over the span. */
class SequentialPattern final : public AccessPattern
{
  public:
    SequentialPattern(Span span, std::uint64_t strideBytes);
    Addr next(Rng &rng, InstrCount now) override;

  private:
    Span span_;
    std::uint64_t stride_;
    std::uint64_t cursor_ = 0;
};

/**
 * Large-stride scan (stencil sweep): the cursor advances by the stride
 * and shifts its phase by one element on each wrap, so successive
 * sweeps touch different cache lines of the same page sequence.
 */
class StridedPattern final : public AccessPattern
{
  public:
    StridedPattern(Span span, std::uint64_t strideBytes);
    Addr next(Rng &rng, InstrCount now) override;

  private:
    Span span_;
    std::uint64_t stride_;
    std::uint64_t cursor_ = 0;
    std::uint64_t phase_ = 0;
};

/** Bounded random walk with occasional long-distance jumps. */
class LocalWalkPattern final : public AccessPattern
{
  public:
    LocalWalkPattern(Span span, std::uint64_t maxStepBytes,
                     double jumpProbability);
    Addr next(Rng &rng, InstrCount now) override;

  private:
    Span span_;
    std::uint64_t maxStep_;
    double jumpProb_;
    std::uint64_t pos_ = 0;
};

/**
 * Many-region hotset: with @c hotProb access one of the first
 * @c hotRegions regions, else any region; uniform within the region
 * (or within a small staggered per-region window when @c windowBytes
 * is nonzero — real allocations touch objects at varying offsets, and
 * the stagger avoids pathological set aliasing between the identically
 * aligned regions). Under RMM each region is (at least) one range
 * translation, so this pattern controls range-TLB pressure directly.
 */
class RegionHotsetPattern final : public AccessPattern
{
  public:
    RegionHotsetPattern(std::vector<vm::Region> regions,
                        std::size_t hotRegions, double hotProb,
                        std::uint64_t windowBytes = 0);
    Addr next(Rng &rng, InstrCount now) override;

    /**
     * The staggered window offset used for region index @p i of
     * @p regionBytes with windows of @p windowBytes (page aligned;
     * exposed for windowed spans and tests).
     */
    static std::uint64_t windowOffset(std::size_t i,
                                      std::uint64_t regionBytes,
                                      std::uint64_t windowBytes);

  private:
    std::vector<vm::Region> regions_;
    std::size_t hotRegions_;
    double hotProb_;
    std::uint64_t windowBytes_;
};

/** Weighted per-access choice among child patterns. */
class MixturePattern final : public AccessPattern
{
  public:
    MixturePattern(std::vector<PatternPtr> children,
                   std::vector<double> weights);
    Addr next(Rng &rng, InstrCount now) override;

  private:
    std::vector<PatternPtr> children_;
    std::vector<double> cdf_;
};

/** Rotates among child patterns every @c phaseInstructions. */
class PhasedPattern final : public AccessPattern
{
  public:
    PhasedPattern(std::vector<PatternPtr> children,
                  InstrCount phaseInstructions);
    Addr next(Rng &rng, InstrCount now) override;

  private:
    std::vector<PatternPtr> children_;
    InstrCount phaseLen_;
};

} // namespace eat::workloads

#endif // EAT_WORKLOADS_PATTERN_HH
