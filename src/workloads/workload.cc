#include "workloads/workload.hh"

#include "base/logging.hh"

namespace eat::workloads
{

std::uint64_t
WorkloadSpec::footprintBytes() const
{
    std::uint64_t total = 0;
    for (const auto &a : allocs)
        total += a.bytes * a.count;
    return total;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec &spec,
                                     vm::MemoryManager &mm,
                                     std::uint64_t seed)
    : rng_(seed),
      gapNumerator_(1000),
      gapDenominator_(spec.memOpsPerKiloInstr)
{
    eat_assert(spec.memOpsPerKiloInstr >= 1 &&
                   spec.memOpsPerKiloInstr <= 1000,
               spec.name, ": memOpsPerKiloInstr must be in [1, 1000]");
    eat_assert(!spec.allocs.empty(), spec.name, ": no allocations");
    eat_assert(spec.buildPattern != nullptr, spec.name, ": no pattern");

    for (const auto &a : spec.allocs) {
        for (unsigned i = 0; i < a.count; ++i)
            regions_.push_back(mm.mmap(a.bytes));
    }
    pattern_ = spec.buildPattern(regions_);
    eat_assert(pattern_ != nullptr, spec.name, ": pattern builder failed");
}


void
WorkloadGenerator::skip(InstrCount instructions)
{
    const InstrCount target = now_ + instructions;
    while (now_ < target)
        (void)next();
}

} // namespace eat::workloads
