/**
 * @file
 * Online differential checker for the MMU datapath.
 *
 * The MMU reports the outcome of every translation (which structure
 * served it, the physical address and page size it produced); the
 * checker replays the lookup against the golden ShadowTranslator and
 * counts disagreements instead of trusting the TLB hierarchy. At the
 * Full level it additionally audits Lite's way masks: active-way counts
 * must stay powers of two within the physical associativity, and
 * disabled ways must hold no valid entries (a dropped invalidation is
 * exactly the stale-translation hazard way-disabling must never create,
 * paper §4.2.3).
 *
 * The checker is passive — it charges no energy and mutates no modeled
 * state — so enabling it cannot change simulation results, only vet
 * them.
 */

#ifndef EAT_CHECK_SHADOW_CHECKER_HH
#define EAT_CHECK_SHADOW_CHECKER_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "base/status.hh"
#include "check/shadow_translator.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::obs
{
class MetricRegistry;
class TraceWriter;
} // namespace eat::obs

namespace eat::check
{

/** How much cross-checking the simulation performs. */
enum class CheckLevel
{
    Off,   ///< no checking (fastest)
    Paddr, ///< verify physical address + page size of every translation
    Full,  ///< Paddr plus hit-source legality and way-mask audits
};

std::string_view checkLevelName(CheckLevel level);

/** Parse "off" | "paddr" | "full". */
Result<CheckLevel> parseCheckLevel(std::string_view text);

/** Mismatch counters, by the invariant that failed. */
struct CheckStats
{
    std::uint64_t translationChecks = 0; ///< translations cross-checked
    std::uint64_t wayMaskAudits = 0;     ///< structures audited

    std::uint64_t paddrMismatches = 0;  ///< wrong physical address
    std::uint64_t sizeMismatches = 0;   ///< wrong page size
    std::uint64_t sourceViolations = 0; ///< illegal hit source
    std::uint64_t wayMaskViolations = 0;

    std::uint64_t
    mismatches() const
    {
        return paddrMismatches + sizeMismatches + sourceViolations +
               wayMaskViolations;
    }
};

/** The per-run differential checker. */
class ShadowChecker
{
  public:
    /**
     * @param level checking depth (constructing with Off is allowed
     *        but pointless; callers normally skip construction).
     * @param pageTable / @p rangeTable the authoritative OS tables the
     *        golden snapshot is derived from.
     */
    ShadowChecker(CheckLevel level, const vm::PageTable &pageTable,
                  const vm::RangeTable *rangeTable);

    /**
     * Register the golden tables of another address space (multicore
     * private mode: one context per task). The constructor's tables are
     * context 0; translations are always checked against the currently
     * active context (setActiveAsid).
     */
    void addContext(tlb::Asid asid, const vm::PageTable &pageTable,
                    const vm::RangeTable *rangeTable);

    /** Follow the MMU's context switch; @p asid must be registered. */
    void setActiveAsid(tlb::Asid asid);

    /** Re-snapshot one context's tables (after a remap). */
    void rebuildContext(tlb::Asid asid);

    tlb::Asid activeAsid() const { return activeAsid_; }

    /**
     * Prefix mismatch messages with @p label (e.g. "core2: ") so
     * multicore logs attribute each disagreement to the core that
     * observed it. Single-core runs leave this empty, keeping their
     * messages (and result digests) unchanged.
     */
    void setCoreLabel(std::string label) { coreLabel_ = std::move(label); }

    /**
     * The MMU produced @p paddr for @p vaddr from a page entry of
     * @p size. @p sourceName labels the serving structure in messages.
     */
    void
    onPageTranslation(Addr vaddr, Addr paddr, vm::PageSize size,
                      std::string_view sourceName)
    {
        if (level_ == CheckLevel::Off)
            return;
        ++stats_.translationChecks;
        const auto golden = active_->translatePage(vaddr);
        if (golden && golden->size == size &&
            golden->paddr(vaddr) == paddr) {
            return;
        }
        pageMismatch(vaddr, paddr, size, sourceName, golden);
    }

    /** The MMU produced @p paddr for @p vaddr from a range entry. */
    void
    onRangeTranslation(Addr vaddr, Addr paddr, std::string_view sourceName)
    {
        if (level_ == CheckLevel::Off)
            return;
        ++stats_.translationChecks;
        const auto golden = active_->translateRange(vaddr);
        if (golden && golden->paddr(vaddr) == paddr)
            return;
        rangeMismatch(vaddr, paddr, sourceName, golden);
    }

    /** Audit one structure's way mask (Full level). */
    void auditWayMask(const tlb::SetAssocTlb &tlb);

    CheckLevel level() const { return level_; }
    const CheckStats &stats() const { return stats_; }

    /** Human-readable description of the first mismatch (or empty). */
    const std::string &firstMismatch() const { return firstMismatch_; }

    /** Ok iff no mismatch has been observed. */
    Status verdict() const;

    /** Register the check.* counters into @p registry (bindings only;
     *  the registry must not outlive this checker). Multicore runs
     *  pass a @p prefix (e.g. "core2.") to keep names distinct. */
    void registerMetrics(obs::MetricRegistry &registry,
                         const std::string &prefix = "") const;

    /** Attach a tracer (not owned; null detaches): every mismatch
     *  becomes an instant event on the checker track, placed under
     *  @p core's process in multicore traces. */
    void setTrace(obs::TraceWriter *trace, unsigned core = 0);

  private:
    void recordMismatch(std::uint64_t &counter, std::string message);

    /** Classify and record a failed page-translation check. */
    void pageMismatch(Addr vaddr, Addr paddr, vm::PageSize size,
                      std::string_view sourceName,
                      const std::optional<vm::Translation> &golden);

    /** Classify and record a failed range-translation check. */
    void rangeMismatch(Addr vaddr, Addr paddr, std::string_view sourceName,
                       const std::optional<vm::RangeTranslation> &golden);

    CheckLevel level_;
    ShadowTranslator golden_; ///< context 0 (the only one single-core)
    std::map<tlb::Asid, ShadowTranslator> contexts_; ///< asids > 0
    ShadowTranslator *active_ = nullptr;
    tlb::Asid activeAsid_ = 0;
    std::string coreLabel_;
    CheckStats stats_;
    std::string firstMismatch_;
    unsigned warningsEmitted_ = 0;

    obs::TraceWriter *trace_ = nullptr;
    unsigned traceTrack_ = 0;
};

} // namespace eat::check

#endif // EAT_CHECK_SHADOW_CHECKER_HH
