/**
 * @file
 * Seeded fault injection into TLB state.
 *
 * The injector perturbs the translation hardware the way real silicon
 * or a buggy coherence protocol would — tag/PPN bit flips, dropped
 * invalidations on way-disable, spurious way re-enables — to prove the
 * shadow checker actually detects corruption (a checker nobody has seen
 * fire is untested insurance).
 *
 * Faults are described by a spec string:
 *
 *     SPEC   := FAULT (',' FAULT)*
 *     FAULT  := KIND ['@' TARGET] [':' PROB]
 *     KIND   := tag-flip | ppn-flip | drop-inv | spurious-enable
 *     TARGET := l1-4k | l1-2m | l1-1g | l2 | l1-range | l2-range | any
 *     PROB   := per-memory-operation probability (default 1e-4)
 *
 * e.g. "ppn-flip@l1-4k:1e-4,drop-inv:0.001". Injection draws from one
 * seeded Rng, so a (spec, seed) pair yields a bit-identical fault
 * stream.
 */

#ifndef EAT_CHECK_FAULT_INJECTOR_HH
#define EAT_CHECK_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.hh"
#include "base/status.hh"
#include "tlb/range_tlb.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::obs
{
class MetricRegistry;
class TraceWriter;
} // namespace eat::obs

namespace eat::check
{

/** The fault classes the injector can produce. */
enum class FaultKind
{
    TagFlip,          ///< flip a tag bit of a valid entry
    PpnFlip,          ///< flip a PPN bit of a valid entry
    DropInvalidation, ///< next way-disable skips invalidating victims
    SpuriousEnable,   ///< force an illegal active-way count
};

std::string_view faultKindName(FaultKind kind);

/** Which structure a fault targets. */
enum class FaultTarget
{
    L1Tlb4K,
    L1Tlb2M,
    L1Tlb1G,
    L2Tlb,
    L1Range,
    L2Range,
    Any, ///< a random registered structure supporting the fault kind
};

/** One parsed fault clause. */
struct FaultSpec
{
    FaultKind kind = FaultKind::PpnFlip;
    FaultTarget target = FaultTarget::Any;
    double probability = 1e-4; ///< per injection opportunity (memory op)
};

/** Parse a spec string (see file comment for the grammar). */
Result<std::vector<FaultSpec>> parseFaultSpecs(const std::string &spec);

/** Injection counters, by fault kind. */
struct InjectStats
{
    std::uint64_t opportunities = 0; ///< tick() calls
    std::uint64_t tagFlips = 0;
    std::uint64_t ppnFlips = 0;
    std::uint64_t droppedInvalidations = 0; ///< armed drops
    std::uint64_t spuriousEnables = 0;

    std::uint64_t
    injected() const
    {
        return tagFlips + ppnFlips + droppedInvalidations + spuriousEnables;
    }
};

/** Drives a parsed fault spec against registered TLB structures. */
class FaultInjector
{
  public:
    FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed);

    /** Register a page TLB as @p target (ignored when null). */
    void registerPageTlb(tlb::SetAssocTlb *tlb, FaultTarget target);

    /** Register a range TLB as @p target (ignored when null). */
    void registerRangeTlb(tlb::RangeTlb *tlb, FaultTarget target);

    /** One injection opportunity (call once per memory operation). */
    void tick();

    const InjectStats &stats() const { return stats_; }

    /** Register the inject.* counters into @p registry (bindings only;
     *  the registry must not outlive this injector). Multicore runs
     *  pass a @p prefix (e.g. "core2.") to keep names distinct. */
    void registerMetrics(obs::MetricRegistry &registry,
                         const std::string &prefix = "") const;

    /** Attach a tracer (not owned; null detaches): every landed fault
     *  becomes an instant event on the injector track, placed under
     *  @p core's process in multicore traces. */
    void setTrace(obs::TraceWriter *trace, unsigned core = 0);

  private:
    struct PageTlbSlot
    {
        tlb::SetAssocTlb *tlb;
        FaultTarget target;
    };
    struct RangeTlbSlot
    {
        tlb::RangeTlb *tlb;
        FaultTarget target;
    };

    void inject(const FaultSpec &spec);
    tlb::SetAssocTlb *pickPageTlb(FaultTarget target);
    tlb::RangeTlb *pickRangeTlb(FaultTarget target);
    void traceFault(FaultKind kind, const std::string &structName);

    std::vector<FaultSpec> specs_;
    std::vector<PageTlbSlot> pageTlbs_;
    std::vector<RangeTlbSlot> rangeTlbs_;
    Rng rng_;
    InjectStats stats_;

    obs::TraceWriter *trace_ = nullptr;
    unsigned traceTrack_ = 0;
};

} // namespace eat::check

#endif // EAT_CHECK_FAULT_INJECTOR_HH
