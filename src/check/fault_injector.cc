#include "check/fault_injector.hh"

#include <algorithm>

#include "base/parse.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace eat::check
{

namespace
{

Result<FaultKind>
parseKind(std::string_view text)
{
    if (text == "tag-flip")
        return FaultKind::TagFlip;
    if (text == "ppn-flip")
        return FaultKind::PpnFlip;
    if (text == "drop-inv")
        return FaultKind::DropInvalidation;
    if (text == "spurious-enable")
        return FaultKind::SpuriousEnable;
    return Status::error("unknown fault kind '", std::string(text),
                         "' (expected tag-flip, ppn-flip, drop-inv, or "
                         "spurious-enable)");
}

Result<FaultTarget>
parseTarget(std::string_view text)
{
    if (text == "l1-4k")
        return FaultTarget::L1Tlb4K;
    if (text == "l1-2m")
        return FaultTarget::L1Tlb2M;
    if (text == "l1-1g")
        return FaultTarget::L1Tlb1G;
    if (text == "l2")
        return FaultTarget::L2Tlb;
    if (text == "l1-range")
        return FaultTarget::L1Range;
    if (text == "l2-range")
        return FaultTarget::L2Range;
    if (text == "any")
        return FaultTarget::Any;
    return Status::error("unknown fault target '", std::string(text),
                         "' (expected l1-4k, l1-2m, l1-1g, l2, l1-range, "
                         "l2-range, or any)");
}

bool
isRangeTarget(FaultTarget target)
{
    return target == FaultTarget::L1Range || target == FaultTarget::L2Range;
}

} // namespace

std::string_view
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TagFlip: return "tag-flip";
      case FaultKind::PpnFlip: return "ppn-flip";
      case FaultKind::DropInvalidation: return "drop-inv";
      case FaultKind::SpuriousEnable: return "spurious-enable";
    }
    return "?";
}

Result<std::vector<FaultSpec>>
parseFaultSpecs(const std::string &spec)
{
    std::vector<FaultSpec> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        std::string_view clause(spec.data() + pos, comma - pos);
        pos = comma + 1;
        if (clause.empty())
            return Status::error("empty fault clause in spec '", spec, "'");

        FaultSpec fault;
        // Split off ':PROB' first, then '@TARGET'.
        if (const auto colon = clause.find(':');
            colon != std::string_view::npos) {
            const auto prob = parseF64(clause.substr(colon + 1));
            if (!prob.ok())
                return prob.status();
            fault.probability = prob.value();
            if (fault.probability < 0.0 || fault.probability > 1.0) {
                return Status::error("fault probability ",
                                     fault.probability, " out of [0,1]");
            }
            clause = clause.substr(0, colon);
        }
        if (const auto at = clause.find('@');
            at != std::string_view::npos) {
            const auto target = parseTarget(clause.substr(at + 1));
            if (!target.ok())
                return target.status();
            fault.target = target.value();
            clause = clause.substr(0, at);
        }
        const auto kind = parseKind(clause);
        if (!kind.ok())
            return kind.status();
        fault.kind = kind.value();

        const bool structural = fault.kind == FaultKind::DropInvalidation ||
                                fault.kind == FaultKind::SpuriousEnable;
        if (structural && isRangeTarget(fault.target)) {
            return Status::error(faultKindName(fault.kind),
                                 " targets way-managed page TLBs, not "
                                 "range TLBs");
        }
        out.push_back(fault);
    }
    if (out.empty())
        return Status::error("empty fault spec");
    return out;
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs,
                             std::uint64_t seed)
    : specs_(std::move(specs)), rng_(seed ^ 0xfa017ab1eull)
{
}

void
FaultInjector::registerPageTlb(tlb::SetAssocTlb *tlb, FaultTarget target)
{
    if (tlb)
        pageTlbs_.push_back({tlb, target});
}

void
FaultInjector::registerRangeTlb(tlb::RangeTlb *tlb, FaultTarget target)
{
    if (tlb)
        rangeTlbs_.push_back({tlb, target});
}

tlb::SetAssocTlb *
FaultInjector::pickPageTlb(FaultTarget target)
{
    if (target == FaultTarget::Any) {
        if (pageTlbs_.empty())
            return nullptr;
        return pageTlbs_[rng_.below(pageTlbs_.size())].tlb;
    }
    for (const auto &slot : pageTlbs_) {
        if (slot.target == target)
            return slot.tlb;
    }
    return nullptr;
}

tlb::RangeTlb *
FaultInjector::pickRangeTlb(FaultTarget target)
{
    if (target == FaultTarget::Any) {
        if (rangeTlbs_.empty())
            return nullptr;
        return rangeTlbs_[rng_.below(rangeTlbs_.size())].tlb;
    }
    for (const auto &slot : rangeTlbs_) {
        if (slot.target == target)
            return slot.tlb;
    }
    return nullptr;
}

void
FaultInjector::registerMetrics(obs::MetricRegistry &registry,
                               const std::string &prefix) const
{
    auto name = [&prefix](const char *n) { return prefix + n; };
    registry.addCounter(name("inject.opportunities"),
                        &stats_.opportunities);
    registry.addCounter(name("inject.tag_flips"), &stats_.tagFlips);
    registry.addCounter(name("inject.ppn_flips"), &stats_.ppnFlips);
    registry.addCounter(name("inject.dropped_invalidations"),
                        &stats_.droppedInvalidations);
    registry.addCounter(name("inject.spurious_enables"),
                        &stats_.spuriousEnables);
}

void
FaultInjector::setTrace(obs::TraceWriter *trace, unsigned core)
{
    trace_ = trace;
    if (trace_)
        traceTrack_ = trace_->track("fault injector", core);
}

void
FaultInjector::traceFault(FaultKind kind, const std::string &structName)
{
    if (!trace_)
        return;
    obs::JsonObject args;
    args.put("target", structName);
    trace_->instant(traceTrack_, std::string(faultKindName(kind)),
                    args.str());
}

void
FaultInjector::inject(const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::TagFlip:
      case FaultKind::PpnFlip: {
        const bool flipTag = spec.kind == FaultKind::TagFlip;
        if (isRangeTarget(spec.target)) {
            if (auto *tlb = pickRangeTlb(spec.target);
                tlb && tlb->corruptRandomEntry(rng_.next(), flipTag)) {
                ++(flipTag ? stats_.tagFlips : stats_.ppnFlips);
                traceFault(spec.kind, tlb->name());
            }
            return;
        }
        if (auto *tlb = pickPageTlb(spec.target);
            tlb && tlb->corruptRandomEntry(rng_.next(), flipTag)) {
            ++(flipTag ? stats_.tagFlips : stats_.ppnFlips);
            traceFault(spec.kind, tlb->name());
        }
        return;
      }
      case FaultKind::DropInvalidation:
        if (auto *tlb = pickPageTlb(spec.target)) {
            tlb->armDropInvalidation();
            ++stats_.droppedInvalidations;
            traceFault(spec.kind, tlb->name());
        }
        return;
      case FaultKind::SpuriousEnable:
        if (auto *tlb = pickPageTlb(spec.target)) {
            // Force a non-power-of-two way count when one exists (the
            // audit invariant); 2-way structures only allow legal
            // counts, so nothing to glitch.
            const unsigned forced =
                std::min(tlb->ways(), tlb->activeWays() | 3u);
            if (forced != tlb->activeWays() && !isPowerOfTwo(forced)) {
                tlb->forceActiveWays(forced);
                ++stats_.spuriousEnables;
                traceFault(spec.kind, tlb->name());
            }
        }
        return;
    }
}

void
FaultInjector::tick()
{
    ++stats_.opportunities;
    for (const auto &spec : specs_) {
        if (rng_.chance(spec.probability))
            inject(spec);
    }
}

} // namespace eat::check
