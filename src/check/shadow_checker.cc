#include "check/shadow_checker.hh"

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace eat::check
{

namespace
{

/** Cap on eat_warn noise; counters keep counting past it. */
constexpr unsigned kMaxWarnings = 8;

} // namespace

std::string_view
checkLevelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off: return "off";
      case CheckLevel::Paddr: return "paddr";
      case CheckLevel::Full: return "full";
    }
    return "?";
}

Result<CheckLevel>
parseCheckLevel(std::string_view text)
{
    if (text == "off")
        return CheckLevel::Off;
    if (text == "paddr")
        return CheckLevel::Paddr;
    if (text == "full")
        return CheckLevel::Full;
    return Status::error("unknown check level '", std::string(text),
                         "' (expected off, paddr, or full)");
}

ShadowChecker::ShadowChecker(CheckLevel level,
                             const vm::PageTable &pageTable,
                             const vm::RangeTable *rangeTable)
    : level_(level), golden_(pageTable, rangeTable), active_(&golden_)
{
}

void
ShadowChecker::addContext(tlb::Asid asid, const vm::PageTable &pageTable,
                          const vm::RangeTable *rangeTable)
{
    eat_assert(asid != 0,
               "context 0 is the constructor's tables; register only "
               "additional address spaces");
    const auto [it, inserted] =
        contexts_.try_emplace(asid, pageTable, rangeTable);
    eat_assert(inserted, "asid ", asid, " registered twice");
    (void)it;
}

void
ShadowChecker::setActiveAsid(tlb::Asid asid)
{
    if (asid == activeAsid_)
        return;
    if (asid == 0) {
        active_ = &golden_;
    } else {
        const auto it = contexts_.find(asid);
        eat_assert(it != contexts_.end(),
                   "context switch to unregistered asid ", asid);
        active_ = &it->second;
    }
    activeAsid_ = asid;
}

void
ShadowChecker::rebuildContext(tlb::Asid asid)
{
    if (asid == 0) {
        golden_.rebuild();
        return;
    }
    const auto it = contexts_.find(asid);
    eat_assert(it != contexts_.end(),
               "rebuild of unregistered asid ", asid);
    it->second.rebuild();
}

void
ShadowChecker::registerMetrics(obs::MetricRegistry &registry,
                               const std::string &prefix) const
{
    auto name = [&prefix](const char *n) { return prefix + n; };
    registry.addCounter(name("check.translation_checks"),
                        &stats_.translationChecks);
    registry.addCounter(name("check.way_mask_audits"),
                        &stats_.wayMaskAudits);
    registry.addCounter(name("check.paddr_mismatches"),
                        &stats_.paddrMismatches);
    registry.addCounter(name("check.size_mismatches"),
                        &stats_.sizeMismatches);
    registry.addCounter(name("check.source_violations"),
                        &stats_.sourceViolations);
    registry.addCounter(name("check.way_mask_violations"),
                        &stats_.wayMaskViolations);
}

void
ShadowChecker::setTrace(obs::TraceWriter *trace, unsigned core)
{
    trace_ = trace;
    if (trace_)
        traceTrack_ = trace_->track("shadow checker", core);
}

void
ShadowChecker::recordMismatch(std::uint64_t &counter, std::string message)
{
    ++counter;
    if (!coreLabel_.empty())
        message = coreLabel_ + message;
    if (firstMismatch_.empty())
        firstMismatch_ = message;
    if (trace_) {
        obs::JsonObject args;
        args.put("detail", message);
        trace_->instant(traceTrack_, "mismatch", args.str());
    }
    if (warningsEmitted_ < kMaxWarnings) {
        ++warningsEmitted_;
        eat_warn("shadow-checker: ", message);
    }
}

void
ShadowChecker::pageMismatch(Addr vaddr, Addr paddr, vm::PageSize size,
                            std::string_view sourceName,
                            const std::optional<vm::Translation> &golden)
{
    if (!golden) {
        recordMismatch(
            stats_.sourceViolations,
            detail::cat(sourceName, " translated unmapped vaddr 0x",
                        std::hex, vaddr));
        return;
    }
    if (golden->size != size) {
        recordMismatch(
            stats_.sizeMismatches,
            detail::cat(sourceName, " served vaddr 0x", std::hex, vaddr,
                        " as a ", vm::pageSizeName(size), " page; the page"
                        " table maps it as ", vm::pageSizeName(golden->size)));
        return;
    }
    if (golden->paddr(vaddr) != paddr) {
        recordMismatch(
            stats_.paddrMismatches,
            detail::cat(sourceName, " translated vaddr 0x", std::hex, vaddr,
                        " to paddr 0x", paddr, "; golden model says 0x",
                        golden->paddr(vaddr)));
    }
}

void
ShadowChecker::rangeMismatch(Addr vaddr, Addr paddr,
                             std::string_view sourceName,
                             const std::optional<vm::RangeTranslation> &golden)
{
    if (!golden) {
        recordMismatch(
            stats_.sourceViolations,
            detail::cat(sourceName, " hit for vaddr 0x", std::hex, vaddr,
                        " but no range translation covers it"));
        return;
    }
    if (golden->paddr(vaddr) != paddr) {
        recordMismatch(
            stats_.paddrMismatches,
            detail::cat(sourceName, " translated vaddr 0x", std::hex, vaddr,
                        " to paddr 0x", paddr, "; golden range [0x",
                        golden->vbase, ", 0x", golden->vlimit,
                        ") says 0x", golden->paddr(vaddr)));
    }
}

void
ShadowChecker::auditWayMask(const tlb::SetAssocTlb &tlb)
{
    if (level_ != CheckLevel::Full)
        return;
    ++stats_.wayMaskAudits;

    if (!isPowerOfTwo(tlb.activeWays()) || tlb.activeWays() > tlb.ways()) {
        recordMismatch(
            stats_.wayMaskViolations,
            detail::cat(tlb.name(), ": illegal active-way count ",
                        tlb.activeWays(), " (physical ways ", tlb.ways(),
                        ")"));
        return;
    }
    const unsigned stale = tlb.validInDisabledWays();
    if (stale > 0) {
        recordMismatch(
            stats_.wayMaskViolations,
            detail::cat(tlb.name(), ": ", stale, " valid entries in "
                        "disabled ways (missed invalidation)"));
    }
}

Status
ShadowChecker::verdict() const
{
    if (stats_.mismatches() == 0)
        return Status();
    return Status::error("shadow checker observed ", stats_.mismatches(),
                         " mismatches; first: ", firstMismatch_);
}

} // namespace eat::check
