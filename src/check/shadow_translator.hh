/**
 * @file
 * Golden-model address translator for differential checking.
 *
 * An independent, deliberately simple implementation of translation:
 * per-page-size sorted run lists plus a sorted range list, built by
 * snapshotting the OS page and range tables. It shares no code with the
 * radix page-table walk, the TLB hierarchy, or the range-TLB datapath,
 * so agreement between the two is meaningful evidence of correctness —
 * and disagreement localizes a bug (or an injected fault) to the MMU
 * side.
 *
 * The snapshot visits the leaves in ascending vbase order and merges
 * mappings contiguous in both spaces into runs, so a large 4 KB-paged
 * process collapses from one entry per page to one entry per physical
 * extent. Lookups binary-search the run list and remember the last
 * translation served — checks arrive with page locality, and the memo
 * answers repeats without searching.
 */

#ifndef EAT_CHECK_SHADOW_TRANSLATOR_HH
#define EAT_CHECK_SHADOW_TRANSLATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "vm/page_table.hh"
#include "vm/range_table.hh"

namespace eat::check
{

/**
 * Sorted list of merged same-size mappings: [vbase, vlimit) maps
 * contiguously to pbase. Append-in-order build, binary-search lookup.
 */
class PageRunList
{
  public:
    struct Run
    {
        Addr vbase = 0;
        Addr vlimit = 0;
        Addr pbase = 0;
    };

    void
    clear()
    {
        runs_.clear();
        pages_ = 0;
    }

    /** Append @p count contiguous @p bytes-sized mappings starting at
     *  (@p vbase, @p pbase); @p vbase must be >= every earlier vlimit
     *  (ascending build order). */
    void
    add(Addr vbase, Addr pbase, Addr bytes, std::uint64_t count)
    {
        pages_ += count;
        const Addr span = bytes * count;
        if (!runs_.empty()) {
            Run &back = runs_.back();
            if (back.vlimit == vbase &&
                back.pbase + (back.vlimit - back.vbase) == pbase) {
                back.vlimit += span;
                return;
            }
        }
        runs_.push_back({vbase, vbase + span, pbase});
    }

    /** The run containing @p vaddr, or nullptr. */
    const Run *find(Addr vaddr) const;

    /** Number of mappings added (not runs). */
    std::size_t pages() const { return pages_; }

  private:
    std::vector<Run> runs_;
    std::size_t pages_ = 0;
};

/** A flat snapshot of one process's translations. */
class ShadowTranslator
{
  public:
    /**
     * Snapshot @p pageTable (and @p rangeTable when non-null) at
     * construction; call rebuild() after any later mapping change.
     */
    ShadowTranslator(const vm::PageTable &pageTable,
                     const vm::RangeTable *rangeTable);

    /** Re-snapshot the tables (after demotion/remapping). */
    void rebuild();

    /** Golden page translation of @p vaddr, or nullopt if unmapped. */
    std::optional<vm::Translation>
    translatePage(Addr vaddr) const
    {
        const Addr key = vm::pageBase(vaddr, vm::PageSize::Size4K);
        // Checks repeat the same page often enough (the data working
        // set's locality) that one always-cache-hot slot in front of
        // the direct-mapped table pays for itself: the table spans
        // megabytes and a random index usually misses cache.
        if (last_.key == key) {
            if (last_.mapped)
                return last_.t;
            return std::nullopt;
        }
        const PageMemo &memo =
            pageMemo_[(key >> 12) & (kPageMemoSlots - 1)];
        if (memo.key == key) {
            last_ = memo;
            if (memo.mapped)
                return memo.t;
            return std::nullopt;
        }
        return translatePageSearch(vaddr, key);
    }

    /** Golden range translation covering @p vaddr, if any. */
    std::optional<vm::RangeTranslation> translateRange(Addr vaddr) const;

    std::size_t pageCount() const;
    std::size_t rangeCount() const { return ranges_.size(); }

  private:
    const vm::PageTable &pageTable_;
    const vm::RangeTable *rangeTable_;

    /** Merged mappings, one list per page size. */
    PageRunList pages4K_, pages2M_, pages1G_;
    /** Sorted by vbase (ranges never overlap). */
    std::vector<vm::RangeTranslation> ranges_;

    /**
     * Direct-mapped memo of page translations, keyed by 4 KB page base
     * (covers every page size — any translation covers whole 4 KB
     * pages). translatePage() is a pure function of the snapshot, so
     * memoizing it is outcome-free; rebuild() resets the table. The
     * table (not a single slot) matters because checks arrive with the
     * working set's locality, not strict repetition.
     */
    struct PageMemo
    {
        Addr key = ~Addr{0};
        vm::Translation t{};
        bool mapped = false;
    };
    static constexpr std::size_t kPageMemoSlots = 65536;
    mutable std::vector<PageMemo> pageMemo_;

    /** One-entry memo in front of pageMemo_ (same lifecycle). */
    mutable PageMemo last_;

    /** Memo-miss path: binary-search the run lists and fill the slot. */
    std::optional<vm::Translation> translatePageSearch(Addr vaddr,
                                                       Addr key) const;

    /** Last range hit (checked before the binary search). */
    mutable std::optional<vm::RangeTranslation> lastRange_;
};

} // namespace eat::check

#endif // EAT_CHECK_SHADOW_TRANSLATOR_HH
