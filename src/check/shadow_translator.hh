/**
 * @file
 * Golden-model address translator for differential checking.
 *
 * An independent, deliberately simple implementation of translation:
 * flat hash maps (one per page size) plus a sorted range list, built by
 * snapshotting the OS page and range tables. It shares no code with the
 * radix page-table walk, the TLB hierarchy, or the range-TLB datapath,
 * so agreement between the two is meaningful evidence of correctness —
 * and disagreement localizes a bug (or an injected fault) to the MMU
 * side.
 */

#ifndef EAT_CHECK_SHADOW_TRANSLATOR_HH
#define EAT_CHECK_SHADOW_TRANSLATOR_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "vm/page_table.hh"
#include "vm/range_table.hh"

namespace eat::check
{

/** A flat snapshot of one process's translations. */
class ShadowTranslator
{
  public:
    /**
     * Snapshot @p pageTable (and @p rangeTable when non-null) at
     * construction; call rebuild() after any later mapping change.
     */
    ShadowTranslator(const vm::PageTable &pageTable,
                     const vm::RangeTable *rangeTable);

    /** Re-snapshot the tables (after demotion/remapping). */
    void rebuild();

    /** Golden page translation of @p vaddr, or nullopt if unmapped. */
    std::optional<vm::Translation> translatePage(Addr vaddr) const;

    /** Golden range translation covering @p vaddr, if any. */
    std::optional<vm::RangeTranslation> translateRange(Addr vaddr) const;

    std::size_t pageCount() const;
    std::size_t rangeCount() const { return ranges_.size(); }

  private:
    const vm::PageTable &pageTable_;
    const vm::RangeTable *rangeTable_;

    /** vbase -> pbase, one map per page size. */
    std::unordered_map<Addr, Addr> pages4K_, pages2M_, pages1G_;
    /** Sorted by vbase (ranges never overlap). */
    std::vector<vm::RangeTranslation> ranges_;
};

} // namespace eat::check

#endif // EAT_CHECK_SHADOW_TRANSLATOR_HH
