#include "check/shadow_translator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::check
{

ShadowTranslator::ShadowTranslator(const vm::PageTable &pageTable,
                                   const vm::RangeTable *rangeTable)
    : pageTable_(pageTable), rangeTable_(rangeTable)
{
    rebuild();
}

void
ShadowTranslator::rebuild()
{
    pages4K_.clear();
    pages2M_.clear();
    pages1G_.clear();
    ranges_.clear();

    pages4K_.reserve(
        static_cast<std::size_t>(pageTable_.pageCount(vm::PageSize::Size4K)));
    pages2M_.reserve(
        static_cast<std::size_t>(pageTable_.pageCount(vm::PageSize::Size2M)));

    pageTable_.forEachLeaf([this](const vm::Translation &t) {
        switch (t.size) {
          case vm::PageSize::Size4K: pages4K_[t.vbase] = t.pbase; break;
          case vm::PageSize::Size2M: pages2M_[t.vbase] = t.pbase; break;
          case vm::PageSize::Size1G: pages1G_[t.vbase] = t.pbase; break;
        }
    });

    if (rangeTable_) {
        ranges_.reserve(rangeTable_->size());
        for (const auto &[vbase, range] : *rangeTable_)
            ranges_.push_back(range);
        eat_assert(std::is_sorted(ranges_.begin(), ranges_.end(),
                                  [](const auto &a, const auto &b) {
                                      return a.vbase < b.vbase;
                                  }),
                   "range table iteration out of order");
    }
}

std::optional<vm::Translation>
ShadowTranslator::translatePage(Addr vaddr) const
{
    if (const auto it = pages4K_.find(vm::pageBase(vaddr, vm::PageSize::Size4K));
        it != pages4K_.end()) {
        return vm::Translation{it->first, it->second, vm::PageSize::Size4K};
    }
    if (const auto it = pages2M_.find(vm::pageBase(vaddr, vm::PageSize::Size2M));
        it != pages2M_.end()) {
        return vm::Translation{it->first, it->second, vm::PageSize::Size2M};
    }
    if (const auto it = pages1G_.find(vm::pageBase(vaddr, vm::PageSize::Size1G));
        it != pages1G_.end()) {
        return vm::Translation{it->first, it->second, vm::PageSize::Size1G};
    }
    return std::nullopt;
}

std::optional<vm::RangeTranslation>
ShadowTranslator::translateRange(Addr vaddr) const
{
    // First range with vbase > vaddr; the candidate is its predecessor.
    auto it = std::upper_bound(ranges_.begin(), ranges_.end(), vaddr,
                               [](Addr v, const vm::RangeTranslation &r) {
                                   return v < r.vbase;
                               });
    if (it == ranges_.begin())
        return std::nullopt;
    --it;
    if (it->contains(vaddr))
        return *it;
    return std::nullopt;
}

std::size_t
ShadowTranslator::pageCount() const
{
    return pages4K_.size() + pages2M_.size() + pages1G_.size();
}

} // namespace eat::check
