#include "check/shadow_translator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::check
{

const PageRunList::Run *
PageRunList::find(Addr vaddr) const
{
    const auto it = std::upper_bound(
        runs_.begin(), runs_.end(), vaddr,
        [](Addr v, const Run &r) { return v < r.vbase; });
    if (it == runs_.begin())
        return nullptr;
    const Run &run = *(it - 1);
    if (vaddr >= run.vbase && vaddr < run.vlimit)
        return &run;
    return nullptr;
}

ShadowTranslator::ShadowTranslator(const vm::PageTable &pageTable,
                                   const vm::RangeTable *rangeTable)
    : pageTable_(pageTable), rangeTable_(rangeTable)
{
    rebuild();
}

void
ShadowTranslator::rebuild()
{
    pages4K_.clear();
    pages2M_.clear();
    pages1G_.clear();
    ranges_.clear();
    pageMemo_.assign(kPageMemoSlots, PageMemo{});
    last_ = PageMemo{};
    lastRange_.reset();

    pageTable_.forEachLeafRun(
        [this](const vm::Translation &t, std::uint64_t count) {
            const Addr bytes = vm::pageBytes(t.size);
            switch (t.size) {
              case vm::PageSize::Size4K:
                pages4K_.add(t.vbase, t.pbase, bytes, count);
                break;
              case vm::PageSize::Size2M:
                pages2M_.add(t.vbase, t.pbase, bytes, count);
                break;
              case vm::PageSize::Size1G:
                pages1G_.add(t.vbase, t.pbase, bytes, count);
                break;
            }
        });

    if (rangeTable_) {
        ranges_.reserve(rangeTable_->size());
        for (const auto &[vbase, range] : *rangeTable_)
            ranges_.push_back(range);
        eat_assert(std::is_sorted(ranges_.begin(), ranges_.end(),
                                  [](const auto &a, const auto &b) {
                                      return a.vbase < b.vbase;
                                  }),
                   "range table iteration out of order");
    }
}

std::optional<vm::Translation>
ShadowTranslator::translatePageSearch(Addr vaddr, Addr key) const
{
    PageMemo &memo = pageMemo_[(key >> 12) & (kPageMemoSlots - 1)];
    std::optional<vm::Translation> result;
    if (const auto *run = pages4K_.find(vaddr)) {
        result = vm::Translation{key, run->pbase + (key - run->vbase),
                                 vm::PageSize::Size4K};
    } else if (const auto *run2 = pages2M_.find(vaddr)) {
        const Addr vb = vm::pageBase(vaddr, vm::PageSize::Size2M);
        result = vm::Translation{vb, run2->pbase + (vb - run2->vbase),
                                 vm::PageSize::Size2M};
    } else if (const auto *run1 = pages1G_.find(vaddr)) {
        const Addr vb = vm::pageBase(vaddr, vm::PageSize::Size1G);
        result = vm::Translation{vb, run1->pbase + (vb - run1->vbase),
                                 vm::PageSize::Size1G};
    }
    memo.key = key;
    memo.mapped = result.has_value();
    if (result)
        memo.t = *result;
    last_ = memo;
    return result;
}

std::optional<vm::RangeTranslation>
ShadowTranslator::translateRange(Addr vaddr) const
{
    if (lastRange_ && lastRange_->contains(vaddr))
        return lastRange_;

    // First range with vbase > vaddr; the candidate is its predecessor.
    auto it = std::upper_bound(ranges_.begin(), ranges_.end(), vaddr,
                               [](Addr v, const vm::RangeTranslation &r) {
                                   return v < r.vbase;
                               });
    if (it == ranges_.begin())
        return std::nullopt;
    --it;
    if (it->contains(vaddr)) {
        lastRange_ = *it;
        return *it;
    }
    return std::nullopt;
}

std::size_t
ShadowTranslator::pageCount() const
{
    return pages4K_.pages() + pages2M_.pages() + pages1G_.pages();
}

} // namespace eat::check
