/**
 * @file
 * The crash-resilient campaign engine.
 *
 * Every campaign-style driver in this repo (the eatbatch sweep runner,
 * the eatfuzz scenario campaign) used to talk to the fork-per-task
 * ProcessPool directly; the engine is the shared layer between them
 * and the pool that makes long campaigns survive the machine:
 *
 *  - **journaled checkpoints**: every settled task is appended to a
 *    CheckpointJournal (flushed per record), so a kill -9 of the
 *    parent loses at most the cells in flight. On resume, journaled
 *    outcomes are replayed through the caller's callback — in task
 *    order, before any live dispatch — instead of re-executing, and
 *    the caller decides per entry whether to accept it (eatbatch
 *    re-runs failed cells; eatfuzz trusts any settled verdict).
 *  - **retry with backoff + quarantine**: transient failures (spawn
 *    failure, signal death, watchdog timeout) are retried up to the
 *    budget with bounded exponential backoff between rounds; whatever
 *    still fails — and every persistent failure — is quarantined into
 *    a poisoned-cell JSONL file with full diagnostics, and the
 *    campaign keeps going.
 *  - **graceful shutdown**: SIGINT/SIGTERM stop dispatch, kill and
 *    reap every in-flight child, leave the journal flushed, and
 *    return with the interrupting signal recorded, so the tool can
 *    exit with resumable state instead of dying mid-write.
 *
 * Determinism contract: task outcomes are independent of the job
 * count, of retries of *other* tasks, and of kill/resume cycles — the
 * callback sees each task exactly once with its final outcome, so a
 * resumed campaign's merged output is byte-identical (modulo wall
 * clock) to an uninterrupted one.
 */

#ifndef EAT_CAMPAIGN_ENGINE_HH
#define EAT_CAMPAIGN_ENGINE_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/status.hh"
#include "campaign/retry.hh"
#include "sim/proc_pool.hh"

namespace eat::campaign
{

/** Schema identifier of the quarantine (poisoned-cell) file. */
inline constexpr std::string_view kQuarantineSchema =
    "eat.campaign.quarantine";
inline constexpr int kQuarantineVersion = 1;

/** One unit of campaign work with a stable identity. */
struct EngineTask
{
    /** Checkpoint key: must be unique and stable across invocations
     *  ("mcf:THP", "scenario-42"). */
    std::string key;

    /** Runs in a forked child; see ProcessPool::TaskFn. */
    sim::ProcessPool::TaskFn fn;
};

/** The final word on one task. */
struct TaskOutcome
{
    sim::ProcessPool::TaskState state =
        sim::ProcessPool::TaskState::SpawnFailed;
    FailureClass failure = FailureClass::None;
    std::string payload;    ///< what the child reported (state Done)
    int termSignal = 0;     ///< killing signal (Crashed)
    int exitCode = 0;       ///< child exit code (Done)
    std::string spawnError; ///< which call failed and why (SpawnFailed)
    unsigned attempts = 1;  ///< total attempts, retries included
    bool quarantined = false;   ///< recorded in the poisoned-cell file
    bool fromCheckpoint = false; ///< replayed from the journal
};

/**
 * Called once per task with its final outcome: first for journal
 * replays (in task order), then for live completions (in completion
 * order). @p inFlight counts children still running (0 for replays).
 * Return false to abort the campaign; remaining children are killed
 * and reaped and no further callbacks fire.
 */
using OutcomeFn = std::function<bool(std::size_t index,
                                     const TaskOutcome &outcome,
                                     std::size_t inFlight)>;

struct EngineOptions
{
    /** Children in flight at once; 0 = hardware concurrency. */
    unsigned jobs = 1;

    /** Per-attempt wall-clock watchdog; 0 disables it. */
    unsigned timeoutSeconds = 0;

    /** Transient-failure retry budget and backoff shape. */
    RetryPolicy retry;

    /** Checkpoint journal path; empty disables checkpointing. */
    std::string journalPath;

    /** Campaign identity for the journal meta record. Resuming under a
     *  different fingerprint is an error, not a silent mismatch. */
    std::string fingerprint;

    /** Replay the journal before dispatching (requires journalPath). */
    bool resume = false;

    /** Poisoned-cell file; empty disables quarantine records. */
    std::string quarantinePath;

    /** Caller's verdict on a cleanly exited child's payload; a payload
     *  this rejects is a persistent BadPayload failure. Default:
     *  accept anything. */
    std::function<bool(const std::string &payload)> payloadOk;

    /** Whether a journaled outcome satisfies its task on resume; a
     *  rejected entry re-runs. Default: accept successes only
     *  (failure == None). */
    std::function<bool(const TaskOutcome &outcome)> acceptCheckpoint;

    /**
     * Testing aid for the crash-resume suite: raise SIGKILL on this
     * process immediately after the Nth journal append — a real
     * parent death at a deterministic point. 0 = off.
     */
    unsigned killAfterCheckpoints = 0;
};

struct EngineSummary
{
    std::size_t executed = 0;    ///< tasks run (and settled) live
    std::size_t replayed = 0;    ///< tasks satisfied from the journal
    std::size_t retries = 0;     ///< extra attempts dispatched
    std::size_t quarantined = 0; ///< poisoned-cell records written
    bool aborted = false;        ///< the callback returned false

    /** SIGINT/SIGTERM that stopped dispatch; 0 = ran to completion. */
    int interruptSignal = 0;

    bool interrupted() const { return interruptSignal != 0; }
};

/**
 * Run every task to a final outcome (or until interrupted/aborted).
 * @p log receives one line per retry, quarantine, and recovery event.
 * Errors are reserved for unusable options and checkpoint problems;
 * per-task failures are outcomes, not errors.
 */
Result<EngineSummary> runEngine(const EngineOptions &options,
                                const std::vector<EngineTask> &tasks,
                                const OutcomeFn &onOutcome,
                                std::ostream &log);

} // namespace eat::campaign

#endif // EAT_CAMPAIGN_ENGINE_HH
