/**
 * @file
 * Crash-hardened JSON-Lines I/O for campaign state.
 *
 * Every long-running campaign file in this repo (the checkpoint
 * journal, the quarantine file, verdict streams, telemetry) is JSONL:
 * one self-describing JSON object per line, appended as the campaign
 * progresses. A parent killed mid-append (kill -9, OOM) leaves at most
 * one partial final line behind, so the rules here are:
 *
 *  - writers flush after every record, so the OS owns each line the
 *    moment append() returns — a dead parent loses only the record it
 *    was writing, never buffered history;
 *  - readers tolerate exactly one partial final record, report it, and
 *    keep everything before it. A malformed line anywhere *else* is a
 *    hard error: that is corruption, not an interrupted append.
 */

#ifndef EAT_CAMPAIGN_JSONL_HH
#define EAT_CAMPAIGN_JSONL_HH

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hh"
#include "obs/json.hh"

namespace eat::campaign
{

/** The readable contents of one JSONL file. */
struct JsonlFile
{
    /** Every complete, parseable record, in file order. */
    std::vector<obs::JsonValue> records;

    /**
     * Non-empty when the final line was cut short (no newline, or
     * unparseable): a one-line diagnostic describing what was dropped.
     * The records above are still complete and trustworthy.
     */
    std::string truncatedTail;

    bool truncated() const { return !truncatedTail.empty(); }
};

/**
 * Read a whole JSONL file, tolerating a partial final record (the
 * signature a crashed writer leaves). A missing file or a malformed
 * non-final line is an error.
 */
Result<JsonlFile> readJsonl(const std::string &path);

/** Appends one JSON document per line, flushed per record. */
class JsonlWriter
{
  public:
    enum class Mode
    {
        Truncate, ///< start the file over
        Append,   ///< keep existing records
    };

    JsonlWriter() = default;

    /** Open @p path for writing; the file is created if absent. */
    static Result<JsonlWriter> open(const std::string &path, Mode mode);

    /**
     * Write @p json as one line and flush it to the OS, so the record
     * survives any subsequent death of this process.
     */
    Status append(std::string_view json);

    bool isOpen() const { return out_.is_open(); }
    const std::string &path() const { return path_; }
    std::size_t appended() const { return appended_; }

  private:
    std::ofstream out_;
    std::string path_;
    std::size_t appended_ = 0;
};

} // namespace eat::campaign

#endif // EAT_CAMPAIGN_JSONL_HH
