#include "campaign/jsonl.hh"

namespace eat::campaign
{

namespace
{

/** @return a short preview of @p line safe for a one-line diagnostic. */
std::string
preview(const std::string &line)
{
    constexpr std::size_t kMax = 48;
    if (line.size() <= kMax)
        return line;
    return line.substr(0, kMax) + "...";
}

} // namespace

Result<JsonlFile>
readJsonl(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error("cannot open ", path);

    JsonlFile file;
    std::string line;
    std::size_t lineNo = 0;
    bool sawFinalNewline = true;
    while (std::getline(in, line)) {
        ++lineNo;
        // getline strips the '\n'; if we hit EOF without one, the last
        // line was mid-append when the writer died.
        sawFinalNewline = !in.eof();
        if (line.empty())
            continue;
        auto parsed = obs::parseJson(line);
        if (parsed.ok()) {
            file.records.push_back(std::move(parsed.value()));
            continue;
        }
        // Only the final line may be broken — that is the signature of
        // an interrupted append. Anything earlier is real corruption.
        if (in.peek() == std::ifstream::traits_type::eof()) {
            file.truncatedTail =
                "dropped truncated final record (line " +
                std::to_string(lineNo) + ": '" + preview(line) + "')";
            return file;
        }
        return Status::error(path, ":", lineNo, ": malformed record: ",
                             parsed.status().message());
    }
    if (!sawFinalNewline && !file.records.empty()) {
        // The last line parsed but had no newline: the writer died
        // between the record and its terminator. The record itself is
        // complete, so keep it and just note the condition.
        file.truncatedTail = "final record had no newline (line " +
                             std::to_string(lineNo) + ")";
    }
    return file;
}

Result<JsonlWriter>
JsonlWriter::open(const std::string &path, Mode mode)
{
    JsonlWriter writer;
    writer.path_ = path;
    writer.out_.open(path, mode == Mode::Truncate
                               ? std::ios::trunc
                               : (std::ios::app | std::ios::ate));
    if (!writer.out_)
        return Status::error("cannot open ", path, " for writing");
    return writer;
}

Status
JsonlWriter::append(std::string_view json)
{
    out_ << json << '\n';
    // Per-record flush: the line belongs to the OS before append()
    // returns, so a kill -9 of this process cannot take it back.
    out_.flush();
    if (!out_)
        return Status::error("write failure on ", path_, " (disk full?)");
    ++appended_;
    return Status();
}

} // namespace eat::campaign
