/**
 * @file
 * Failure classification and retry policy for campaign cells.
 *
 * A million-scenario campaign meets every way a forked child can fail:
 * the kernel refuses to spawn it (fork/pipe EAGAIN under load), a
 * signal kills it (OOM killer, a real crash), the watchdog times it
 * out, it exits nonzero, or it runs fine but reports garbage. Lumping
 * those into one "failed" bucket wastes exactly the information an
 * operator (or the retry machinery) needs, so every completed task is
 * classified here first.
 *
 * The classes split into two policies:
 *
 *  - *transient* (spawn failure, signal death, timeout): the same cell
 *    may well succeed on a quieter machine, so it is retried up to the
 *    campaign's budget with bounded exponential backoff;
 *  - *persistent* (nonzero exit, bad payload): deterministic by
 *    construction in this codebase, so retrying only burns time — the
 *    cell is quarantined immediately with full diagnostics.
 *
 * Either way, a failure that sticks is quarantined — recorded and
 * stepped around — rather than aborting or silently truncating the
 * campaign.
 */

#ifndef EAT_CAMPAIGN_RETRY_HH
#define EAT_CAMPAIGN_RETRY_HH

#include <string_view>

#include "base/status.hh"
#include "sim/proc_pool.hh"

namespace eat::campaign
{

/** Why a task's final (or intermediate) attempt did not succeed. */
enum class FailureClass
{
    None,        ///< the task succeeded
    SpawnFailed, ///< pipe()/fork() failed; the child never existed
    Crashed,     ///< the child was killed by a signal
    TimedOut,    ///< the watchdog killed a hung child
    NonzeroExit, ///< the child exited with a nonzero status
    BadPayload,  ///< the child exited 0 but its payload was rejected
};

/** Stable machine-readable name ("signal", "timeout", ...). */
std::string_view failureClassName(FailureClass c);

/** Parse a failureClassName() string back (journal replay). */
Result<FailureClass> parseFailureClass(std::string_view name);

/** True for classes worth retrying (see the file comment). */
bool isTransient(FailureClass c);

/**
 * Classify one pool result. @p payloadOk is the caller's verdict on
 * the payload of a cleanly exited child (a payload-level failure is
 * deterministic — BadPayload, not retried).
 */
FailureClass classify(const sim::ProcessPool::TaskResult &result,
                      bool payloadOk);

/** Hard cap on --retries: beyond this, backoff outlives the campaign. */
inline constexpr unsigned kMaxRetries = 10;

/** How often and how patiently transient failures are retried. */
struct RetryPolicy
{
    /** Extra attempts after the first; 0 disables retrying. */
    unsigned maxRetries = 0;

    /** First backoff delay; doubles per retry. */
    unsigned backoffBaseMs = 200;

    /** Backoff ceiling, so retry 10 waits seconds, not hours. */
    unsigned backoffCapMs = 5'000;

    /**
     * Delay before retry @p retry (1-based): min(base * 2^(retry-1),
     * cap). Deterministic — no jitter — so retried campaigns stay
     * reproducible.
     */
    unsigned backoffMsForRetry(unsigned retry) const;
};

/** Parse and validate a --retries value: a count in [0, kMaxRetries]. */
Result<unsigned> parseRetries(std::string_view text);

} // namespace eat::campaign

#endif // EAT_CAMPAIGN_RETRY_HH
