/**
 * @file
 * The checkpoint journal: an append-only JSONL record of every settled
 * campaign cell, so a killed campaign resumes instead of restarting.
 *
 * Life cycle: a fresh campaign create()s the journal (one "meta"
 * record naming the campaign fingerprint), then append()s one "cell"
 * record — key, final state, diagnostics, and the child's payload —
 * per settled task, flushed per record. A resumed campaign load()s the
 * journal back: the fingerprint must match (resuming a different grid
 * silently corrupting results is the worst failure mode a checkpoint
 * can have), a truncated final record (the kill -9 signature) is
 * dropped and reported, duplicate keys resolve last-wins, and the file
 * is then *compacted* — rewritten through a temp file + rename with
 * only the surviving records — before appending resumes. Compaction
 * keeps the journal O(cells) across any number of interruptions and
 * guarantees the on-disk file is parseable end-to-end again.
 *
 * Record format (schema "eat.campaign.journal", v1), one per line:
 *
 *   {"schema": "eat.campaign.journal", "v": 1, "kind": "meta",
 *    "fingerprint": ...}
 *   {"schema": "eat.campaign.journal", "v": 1, "kind": "cell",
 *    "key": ..., "state": "done"|"signal"|"timeout"|"spawn-failed",
 *    "exit": N, "signal": N, "attempts": N, "quarantined": bool,
 *    "error": ..., "payload": ...}
 */

#ifndef EAT_CAMPAIGN_JOURNAL_HH
#define EAT_CAMPAIGN_JOURNAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "base/status.hh"
#include "campaign/jsonl.hh"

namespace eat::campaign
{

/** Schema identifier stamped into every journal record. */
inline constexpr std::string_view kJournalSchema = "eat.campaign.journal";
inline constexpr int kJournalVersion = 1;

/** One settled task, as the journal records it. */
struct JournalEntry
{
    std::string key;   ///< stable task identity ("mcf:THP", "scenario-7")
    std::string state; ///< "done", "signal", "timeout", "spawn-failed"
    int exitCode = 0;
    int termSignal = 0;
    unsigned attempts = 1;
    bool quarantined = false;
    std::string error;   ///< parent-side diagnostic (spawn errno, ...)
    std::string payload; ///< everything the child wrote to its pipe
};

/** The append-only checkpoint file; see the file comment. */
class CheckpointJournal
{
  public:
    /** What load() recovered from an interrupted campaign. */
    struct Recovered
    {
        /** Final entry per key, in first-seen order. */
        std::vector<JournalEntry> entries;

        /** Diagnostic when a truncated tail was dropped; else empty. */
        std::string truncatedTail;
    };

    CheckpointJournal() = default;

    /**
     * Start a fresh journal at @p path (truncating any previous one)
     * whose meta record carries @p fingerprint.
     */
    static Result<CheckpointJournal> create(const std::string &path,
                                            const std::string &fingerprint);

    /**
     * Resume from an existing journal: verify the fingerprint, recover
     * the settled entries into @p out, compact the file, and reopen it
     * for appending. A missing file degrades to create() — resuming a
     * campaign that never checkpointed just starts over.
     */
    static Result<CheckpointJournal> load(const std::string &path,
                                          const std::string &fingerprint,
                                          Recovered &out);

    /** Record one settled task, flushed before return. */
    Status append(const JournalEntry &entry);

    /** Cell records appended through this handle (testing/kill-after). */
    std::size_t appended() const { return cells_; }

    const std::string &path() const { return writer_.path(); }

  private:
    JsonlWriter writer_;
    std::size_t cells_ = 0;
};

} // namespace eat::campaign

#endif // EAT_CAMPAIGN_JOURNAL_HH
