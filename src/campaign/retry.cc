#include "campaign/retry.hh"

#include <algorithm>

#include "base/parse.hh"

namespace eat::campaign
{

std::string_view
failureClassName(FailureClass c)
{
    switch (c) {
      case FailureClass::None: return "none";
      case FailureClass::SpawnFailed: return "spawn-failed";
      case FailureClass::Crashed: return "signal";
      case FailureClass::TimedOut: return "timeout";
      case FailureClass::NonzeroExit: return "nonzero-exit";
      case FailureClass::BadPayload: return "bad-payload";
    }
    return "unknown";
}

Result<FailureClass>
parseFailureClass(std::string_view name)
{
    for (const FailureClass c :
         {FailureClass::None, FailureClass::SpawnFailed,
          FailureClass::Crashed, FailureClass::TimedOut,
          FailureClass::NonzeroExit, FailureClass::BadPayload}) {
        if (name == failureClassName(c))
            return c;
    }
    return Status::error("unknown failure class '", name, "'");
}

bool
isTransient(FailureClass c)
{
    return c == FailureClass::SpawnFailed || c == FailureClass::Crashed ||
           c == FailureClass::TimedOut;
}

FailureClass
classify(const sim::ProcessPool::TaskResult &result, bool payloadOk)
{
    using TaskState = sim::ProcessPool::TaskState;
    switch (result.state) {
      case TaskState::SpawnFailed:
        return FailureClass::SpawnFailed;
      case TaskState::TimedOut:
        return FailureClass::TimedOut;
      case TaskState::Crashed:
        return FailureClass::Crashed;
      case TaskState::Done:
        break;
    }
    if (result.exitCode != 0)
        return FailureClass::NonzeroExit;
    return payloadOk ? FailureClass::None : FailureClass::BadPayload;
}

unsigned
RetryPolicy::backoffMsForRetry(unsigned retry) const
{
    if (retry == 0)
        return 0;
    // Cap the shift too: 2^31 ms already dwarfs any sane cap.
    const unsigned shift = std::min(retry - 1, 31u);
    const std::uint64_t delay = std::uint64_t(backoffBaseMs) << shift;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(delay, backoffCapMs));
}

Result<unsigned>
parseRetries(std::string_view text)
{
    const auto parsed = parseU64(text);
    if (!parsed.ok())
        return Status::error("retries: ", parsed.status().message());
    if (parsed.value() > kMaxRetries) {
        return Status::error("retries: ", parsed.value(),
                             " exceeds the cap of ", kMaxRetries,
                             " (a cell that failed that often is not "
                             "coming back)");
    }
    return static_cast<unsigned>(parsed.value());
}

} // namespace eat::campaign
