#include "campaign/engine.hh"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <ostream>
#include <thread>
#include <unordered_map>

#include "campaign/journal.hh"

namespace eat::campaign
{

namespace
{

// ---- graceful shutdown ------------------------------------------------
//
// SIGINT/SIGTERM set a flag; the pool's sigtimedwait is interrupted
// (the handlers are installed without SA_RESTART), the engine notices
// via the pool's stop hook, kills and reaps the in-flight children,
// and returns with the journal flushed. async-signal-safety: the
// handler only stores to a volatile sig_atomic_t.

volatile std::sig_atomic_t g_shutdownSignal = 0;

void
onShutdownSignal(int sig)
{
    g_shutdownSignal = sig;
}

/** Installs the shutdown handlers for the engine's lifetime. */
class ShutdownGuard
{
  public:
    ShutdownGuard()
    {
        g_shutdownSignal = 0;
        struct sigaction action = {};
        action.sa_handler = onShutdownSignal;
        sigemptyset(&action.sa_mask);
        action.sa_flags = 0; // no SA_RESTART: must interrupt waits
        ::sigaction(SIGINT, &action, &previousInt_);
        ::sigaction(SIGTERM, &action, &previousTerm_);
    }

    ~ShutdownGuard()
    {
        ::sigaction(SIGINT, &previousInt_, nullptr);
        ::sigaction(SIGTERM, &previousTerm_, nullptr);
    }

    ShutdownGuard(const ShutdownGuard &) = delete;
    ShutdownGuard &operator=(const ShutdownGuard &) = delete;

    int signaled() const { return g_shutdownSignal; }

  private:
    struct sigaction previousInt_ = {};
    struct sigaction previousTerm_ = {};
};

/** Sleep @p ms, waking early if a shutdown signal arrives. */
void
interruptibleSleep(unsigned ms, const ShutdownGuard &guard)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (!guard.signaled() &&
           std::chrono::steady_clock::now() < deadline) {
        struct timespec nap = {0, 10'000'000}; // 10 ms
        ::nanosleep(&nap, nullptr);
    }
}

std::string
journalStateName(sim::ProcessPool::TaskState state)
{
    using TaskState = sim::ProcessPool::TaskState;
    switch (state) {
      case TaskState::Done: return "done";
      case TaskState::Crashed: return "signal";
      case TaskState::TimedOut: return "timeout";
      case TaskState::SpawnFailed: return "spawn-failed";
    }
    return "unknown";
}

Result<sim::ProcessPool::TaskState>
parseJournalState(const std::string &name)
{
    using TaskState = sim::ProcessPool::TaskState;
    for (const TaskState state :
         {TaskState::Done, TaskState::Crashed, TaskState::TimedOut,
          TaskState::SpawnFailed}) {
        if (name == journalStateName(state))
            return state;
    }
    return Status::error("unknown journal state '", name, "'");
}

JournalEntry
toJournalEntry(const std::string &key, const TaskOutcome &outcome)
{
    JournalEntry entry;
    entry.key = key;
    entry.state = journalStateName(outcome.state);
    entry.exitCode = outcome.exitCode;
    entry.termSignal = outcome.termSignal;
    entry.attempts = outcome.attempts;
    entry.quarantined = outcome.quarantined;
    entry.error = outcome.spawnError;
    entry.payload = outcome.payload;
    return entry;
}

Result<TaskOutcome>
fromJournalEntry(const JournalEntry &entry,
                 const EngineOptions &options)
{
    const auto state = parseJournalState(entry.state);
    if (!state.ok())
        return state.status();
    TaskOutcome outcome;
    outcome.state = state.value();
    outcome.payload = entry.payload;
    outcome.termSignal = entry.termSignal;
    outcome.exitCode = entry.exitCode;
    outcome.spawnError = entry.error;
    outcome.attempts = entry.attempts;
    outcome.quarantined = entry.quarantined;
    outcome.fromCheckpoint = true;
    const bool payloadGood =
        !options.payloadOk || options.payloadOk(outcome.payload);
    outcome.failure = classify(
        sim::ProcessPool::TaskResult{outcome.state, outcome.payload,
                                     outcome.termSignal, outcome.exitCode,
                                     outcome.spawnError},
        payloadGood);
    return outcome;
}

/** One-line diagnostic for logs and the quarantine file. */
std::string
describeFailure(const TaskOutcome &outcome)
{
    switch (outcome.failure) {
      case FailureClass::None:
        return "ok";
      case FailureClass::SpawnFailed:
        return outcome.spawnError.empty() ? "process spawn failed"
                                          : outcome.spawnError;
      case FailureClass::Crashed:
        return "child killed by signal " +
               std::to_string(outcome.termSignal);
      case FailureClass::TimedOut:
        return "killed by the watchdog";
      case FailureClass::NonzeroExit:
        return "child exited with status " +
               std::to_string(outcome.exitCode);
      case FailureClass::BadPayload:
        return "child payload rejected";
    }
    return "unknown failure";
}

unsigned
effectiveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

Result<EngineSummary>
runEngine(const EngineOptions &options,
          const std::vector<EngineTask> &tasks, const OutcomeFn &onOutcome,
          std::ostream &log)
{
    if (options.resume && options.journalPath.empty())
        return Status::error("resume requested without a checkpoint "
                             "journal");

    EngineSummary summary;
    ShutdownGuard guard;

    // Open (or resume) the checkpoint journal.
    CheckpointJournal journal;
    bool journaling = !options.journalPath.empty();
    std::unordered_map<std::string, JournalEntry> recovered;
    if (journaling) {
        if (options.resume) {
            CheckpointJournal::Recovered state;
            auto loaded = CheckpointJournal::load(
                options.journalPath, options.fingerprint, state);
            if (!loaded.ok())
                return loaded.status();
            journal = std::move(loaded.value());
            if (!state.truncatedTail.empty()) {
                log << "checkpoint: " << state.truncatedTail
                    << " (an in-flight record of the killed run)\n";
            }
            for (auto &entry : state.entries)
                recovered.emplace(entry.key, std::move(entry));
        } else {
            auto created = CheckpointJournal::create(options.journalPath,
                                                     options.fingerprint);
            if (!created.ok())
                return created.status();
            journal = std::move(created.value());
        }
    }

    // The quarantine file is created lazily on the first poisoned
    // cell; a stale one from a previous run must not linger and
    // masquerade as this run's.
    if (!options.quarantinePath.empty() && !options.resume)
        std::remove(options.quarantinePath.c_str());
    JsonlWriter quarantine;

    const auto acceptCheckpoint =
        [&options](const TaskOutcome &outcome) {
            return options.acceptCheckpoint
                       ? options.acceptCheckpoint(outcome)
                       : outcome.failure == FailureClass::None;
        };

    // Settle one final outcome: journal it, quarantine it if poisoned,
    // then hand it to the caller. Returns false to abort the campaign.
    Status settleError;
    const auto settle = [&](std::size_t index,
                            TaskOutcome &outcome,
                            std::size_t inFlight) -> bool {
        // Replayed outcomes keep the quarantined flag they were
        // journaled with; their quarantine records (if any) are
        // already on disk from the original run.
        if (!outcome.fromCheckpoint) {
            outcome.quarantined =
                outcome.failure != FailureClass::None &&
                !options.quarantinePath.empty();
        }
        if (outcome.quarantined && !outcome.fromCheckpoint) {
            if (!quarantine.isOpen()) {
                auto opened = JsonlWriter::open(
                    options.quarantinePath,
                    options.resume ? JsonlWriter::Mode::Append
                                   : JsonlWriter::Mode::Truncate);
                if (!opened.ok()) {
                    settleError = opened.status();
                    return false;
                }
                quarantine = std::move(opened.value());
            }
            obs::JsonObject record;
            record.put("schema", kQuarantineSchema);
            record.put("v", kQuarantineVersion);
            record.put("key", tasks[index].key);
            record.put("class",
                       failureClassName(outcome.failure));
            record.put("error", describeFailure(outcome));
            record.put("attempts", outcome.attempts);
            record.put("exit", outcome.exitCode);
            record.put("signal", outcome.termSignal);
            record.put("payload", outcome.payload);
            if (Status s = quarantine.append(record.str()); !s.ok()) {
                settleError = s;
                return false;
            }
            ++summary.quarantined;
            log << "quarantine: " << tasks[index].key << ": "
                << failureClassName(outcome.failure) << " after "
                << outcome.attempts << " attempt(s): "
                << describeFailure(outcome) << "\n";
        }
        if (journaling && !outcome.fromCheckpoint) {
            if (Status s = journal.append(
                    toJournalEntry(tasks[index].key, outcome));
                !s.ok()) {
                settleError = s;
                return false;
            }
            if (options.killAfterCheckpoints != 0 &&
                journal.appended() >= options.killAfterCheckpoints) {
                // Crash-resume testing aid: die exactly like a kill -9
                // of the parent — no unwinding, no flushes beyond what
                // already hit the OS.
                ::raise(SIGKILL);
            }
        }
        if (!onOutcome(index, outcome, inFlight)) {
            summary.aborted = true;
            return false;
        }
        return true;
    };

    // Replay the journal first, in task order: resumed work reaches
    // the caller exactly as it would have during the original run.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto it = recovered.find(tasks[i].key);
        if (it != recovered.end()) {
            auto outcome = fromJournalEntry(it->second, options);
            if (!outcome.ok()) {
                return Status::error("checkpoint journal ",
                                     options.journalPath, ": ",
                                     outcome.status().message());
            }
            if (acceptCheckpoint(outcome.value())) {
                ++summary.replayed;
                if (!settle(i, outcome.value(), 0)) {
                    if (!settleError.ok())
                        return settleError;
                    return summary;
                }
                continue;
            }
        }
        pending.push_back(i);
    }

    // Dispatch in retry rounds: round r re-runs what failed
    // transiently in round r-1, after a bounded exponential backoff.
    unsigned round = 0;
    while (!pending.empty()) {
        if (guard.signaled())
            break;
        if (round > 0) {
            const unsigned delayMs =
                options.retry.backoffMsForRetry(round);
            log << "retry: " << pending.size() << " task(s), attempt "
                << round + 1 << "/" << options.retry.maxRetries + 1
                << " after " << delayMs << " ms backoff\n";
            interruptibleSleep(delayMs, guard);
            if (guard.signaled())
                break;
        }

        std::vector<sim::ProcessPool::TaskFn> fns;
        fns.reserve(pending.size());
        for (const std::size_t index : pending)
            fns.push_back(tasks[index].fn);

        std::vector<std::size_t> retryNext;
        sim::ProcessPool::Config poolConfig;
        poolConfig.jobs = effectiveJobs(options.jobs);
        poolConfig.timeoutSeconds = options.timeoutSeconds;
        poolConfig.stopRequested = [&guard] {
            return guard.signaled() != 0;
        };
        sim::ProcessPool::run(
            poolConfig, fns,
            [&](std::size_t poolIndex,
                const sim::ProcessPool::TaskResult &result,
                std::size_t inFlight) {
                const std::size_t index = pending[poolIndex];
                const bool payloadGood =
                    result.state == sim::ProcessPool::TaskState::Done &&
                    result.exitCode == 0 &&
                    (!options.payloadOk ||
                     options.payloadOk(result.payload));
                const FailureClass failure =
                    classify(result, payloadGood);
                if (isTransient(failure) &&
                    round < options.retry.maxRetries) {
                    log << "transient: " << tasks[index].key << ": "
                        << failureClassName(failure) << " (attempt "
                        << round + 1 << "), will retry\n";
                    retryNext.push_back(index);
                    ++summary.retries;
                    return true;
                }
                TaskOutcome outcome;
                outcome.state = result.state;
                outcome.failure = failure;
                outcome.payload = result.payload;
                outcome.termSignal = result.termSignal;
                outcome.exitCode = result.exitCode;
                outcome.spawnError = result.spawnError;
                outcome.attempts = round + 1;
                ++summary.executed;
                return settle(index, outcome, inFlight);
            });
        if (!settleError.ok())
            return settleError;
        if (summary.aborted)
            return summary;
        pending = std::move(retryNext);
        ++round;
    }

    if (guard.signaled()) {
        summary.interruptSignal = guard.signaled();
        log << "interrupted by signal " << summary.interruptSignal
            << ": dispatch stopped, children reaped, checkpoint "
            << (journaling ? "flushed — rerun with --resume\n"
                           : "disabled — progress lost\n");
    }
    return summary;
}

} // namespace eat::campaign
