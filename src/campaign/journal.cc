#include "campaign/journal.hh"

#include <cstdio>
#include <map>

namespace eat::campaign
{

namespace
{

std::string
renderMeta(const std::string &fingerprint)
{
    obs::JsonObject json;
    json.put("schema", kJournalSchema);
    json.put("v", kJournalVersion);
    json.put("kind", "meta");
    json.put("fingerprint", fingerprint);
    return json.str();
}

std::string
renderEntry(const JournalEntry &entry)
{
    obs::JsonObject json;
    json.put("schema", kJournalSchema);
    json.put("v", kJournalVersion);
    json.put("kind", "cell");
    json.put("key", entry.key);
    json.put("state", entry.state);
    json.put("exit", entry.exitCode);
    json.put("signal", entry.termSignal);
    json.put("attempts", entry.attempts);
    json.put("quarantined", entry.quarantined);
    json.put("error", entry.error);
    json.put("payload", entry.payload);
    return json.str();
}

const std::string *
findString(const obs::JsonValue &record, std::string_view key)
{
    const obs::JsonValue *v = record.find(key);
    return (v && v->isString()) ? &v->string : nullptr;
}

/** Parse one journal line back into a JournalEntry. */
Result<JournalEntry>
parseEntry(const obs::JsonValue &record)
{
    JournalEntry entry;
    const std::string *key = findString(record, "key");
    const std::string *state = findString(record, "state");
    if (!key || key->empty() || !state)
        return Status::error("cell record lacks key/state");
    entry.key = *key;
    entry.state = *state;
    if (const auto *v = record.find("exit"); v && v->isNumber())
        entry.exitCode = static_cast<int>(v->number);
    if (const auto *v = record.find("signal"); v && v->isNumber())
        entry.termSignal = static_cast<int>(v->number);
    if (const auto *v = record.find("attempts"); v && v->isNumber())
        entry.attempts = static_cast<unsigned>(v->number);
    if (const auto *v = record.find("quarantined"); v && v->isBool())
        entry.quarantined = v->boolean;
    if (const std::string *s = findString(record, "error"))
        entry.error = *s;
    if (const std::string *s = findString(record, "payload"))
        entry.payload = *s;
    return entry;
}

} // namespace

Result<CheckpointJournal>
CheckpointJournal::create(const std::string &path,
                          const std::string &fingerprint)
{
    auto writer = JsonlWriter::open(path, JsonlWriter::Mode::Truncate);
    if (!writer.ok())
        return writer.status();
    CheckpointJournal journal;
    journal.writer_ = std::move(writer.value());
    if (Status s = journal.writer_.append(renderMeta(fingerprint));
        !s.ok()) {
        return s;
    }
    return journal;
}

Result<CheckpointJournal>
CheckpointJournal::load(const std::string &path,
                        const std::string &fingerprint, Recovered &out)
{
    out = Recovered{};
    {
        std::ifstream probe(path);
        if (!probe)
            return create(path, fingerprint); // nothing to resume from
    }

    auto file = readJsonl(path);
    if (!file.ok()) {
        return Status::error("checkpoint journal ", path, ": ",
                             file.status().message());
    }
    out.truncatedTail = file.value().truncatedTail;

    // Validate the meta record: resuming under the wrong grid would
    // stitch incompatible results together byte-for-byte convincingly.
    const auto &records = file.value().records;
    if (records.empty())
        return create(path, fingerprint); // header never landed
    {
        const std::string *kind = findString(records.front(), "kind");
        const std::string *schema = findString(records.front(), "schema");
        if (!schema || *schema != kJournalSchema || !kind ||
            *kind != "meta") {
            return Status::error("checkpoint journal ", path,
                                 ": not a campaign journal");
        }
        const std::string *fp = findString(records.front(), "fingerprint");
        if (!fp || *fp != fingerprint) {
            return Status::error(
                "checkpoint journal ", path,
                " belongs to a different campaign (recorded '",
                fp ? *fp : "", "', expected '", fingerprint,
                "'); pass a fresh --checkpoint or drop --resume");
        }
    }

    // Recover: last entry per key wins, first-seen order preserved.
    std::map<std::string, std::size_t> byKey;
    for (std::size_t i = 1; i < records.size(); ++i) {
        const std::string *kind = findString(records[i], "kind");
        if (!kind || *kind != "cell")
            continue;
        auto entry = parseEntry(records[i]);
        if (!entry.ok()) {
            return Status::error("checkpoint journal ", path, ": ",
                                 entry.status().message());
        }
        const auto it = byKey.find(entry.value().key);
        if (it == byKey.end()) {
            byKey.emplace(entry.value().key, out.entries.size());
            out.entries.push_back(std::move(entry.value()));
        } else {
            out.entries[it->second] = std::move(entry.value());
        }
    }

    // Compact: rewrite meta + surviving entries through a temp file and
    // rename into place. This drops the truncated tail and duplicate
    // keys, so the journal stays bounded and clean across any number of
    // kill/resume cycles.
    const std::string tmp = path + ".tmp";
    {
        auto writer = JsonlWriter::open(tmp, JsonlWriter::Mode::Truncate);
        if (!writer.ok())
            return writer.status();
        if (Status s = writer.value().append(renderMeta(fingerprint));
            !s.ok()) {
            return s;
        }
        for (const auto &entry : out.entries) {
            if (Status s = writer.value().append(renderEntry(entry));
                !s.ok()) {
                return s;
            }
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return Status::error("cannot rename ", tmp, " to ", path);

    auto writer = JsonlWriter::open(path, JsonlWriter::Mode::Append);
    if (!writer.ok())
        return writer.status();
    CheckpointJournal journal;
    journal.writer_ = std::move(writer.value());
    return journal;
}

Status
CheckpointJournal::append(const JournalEntry &entry)
{
    Status s = writer_.append(renderEntry(entry));
    if (s.ok())
        ++cells_;
    return s;
}

} // namespace eat::campaign
