/**
 * @file
 * Minimal JSON substrate for the observability subsystem.
 *
 * Two halves:
 *
 *  - composing: JsonObject builds one flat-or-nested JSON object as a
 *    string, with correct escaping and locale-independent number
 *    formatting. This is all the telemetry/trace writers need — no
 *    dependency, no DOM.
 *  - parsing: parseJson() is a strict recursive-descent reader used by
 *    the tests (every emitted line must round-trip) and by any tooling
 *    that wants to consume our own output without a third-party
 *    library.
 */

#ifndef EAT_OBS_JSON_HH
#define EAT_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hh"

namespace eat::obs
{

/** @return @p s quoted and escaped as a JSON string literal. */
std::string jsonQuote(std::string_view s);

/** @return @p v formatted the way JSON requires (locale-independent;
 *  non-finite values become 0, which JSON cannot express). */
std::string jsonNumber(double v);

/** Like jsonNumber() but with %.17g, which round-trips every finite
 *  double bit-exactly. Used where a reader must reconstruct the
 *  original value (provenance pJ, telemetry dynamic_pj). */
std::string jsonNumberExact(double v);

/** Incrementally builds one JSON object ("{...}"). */
class JsonObject
{
  public:
    void put(std::string_view key, std::string_view value);
    void put(std::string_view key, const char *value);
    void put(std::string_view key, bool value);
    void put(std::string_view key, double value);
    void put(std::string_view key, std::uint64_t value);
    void put(std::string_view key, std::int64_t value);
    void put(std::string_view key, int value);
    void put(std::string_view key, unsigned value);

    /** Add @p value with full round-trip precision (jsonNumberExact). */
    void putExact(std::string_view key, double value);

    /** Insert pre-rendered JSON (a nested object/array) verbatim. */
    void putRaw(std::string_view key, std::string_view json);

    bool empty() const { return body_.empty(); }

    /** Render "{...}". */
    std::string str() const;

  private:
    void key(std::string_view k);
    std::string body_;
};

/** A parsed JSON value (strict; no comments, no trailing commas). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered members. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;
};

/** Parse one complete JSON document (trailing junk is an error). */
Result<JsonValue> parseJson(std::string_view text);

} // namespace eat::obs

#endif // EAT_OBS_JSON_HH
