#include "obs/trace.hh"

#include <algorithm>
#include <fstream>

#include "base/logging.hh"
#include "obs/json.hh"

namespace eat::obs
{

TraceWriter::TraceWriter(std::size_t maxEvents) : maxEvents_(maxEvents)
{
}

unsigned
TraceWriter::track(const std::string &name)
{
    for (unsigned i = 0; i < tracks_.size(); ++i) {
        if (tracks_[i] == name)
            return i;
    }
    tracks_.push_back(name);
    return static_cast<unsigned>(tracks_.size() - 1);
}

void
TraceWriter::push(Event event)
{
    ++recorded_;
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void
TraceWriter::instant(unsigned track, std::string name, std::string argsJson)
{
    eat_assert(track < tracks_.size(), "unknown trace track ", track);
    push({now(), track, 'i', std::move(name),
          argsJson.empty() ? "{}" : std::move(argsJson)});
}

void
TraceWriter::counter(unsigned track, std::string name, double value)
{
    eat_assert(track < tracks_.size(), "unknown trace track ", track);
    JsonObject args;
    args.put("value", value);
    push({now(), track, 'C', std::move(name), args.str()});
}

void
TraceWriter::writeTo(std::ostream &out) const
{
    // Stable sort: events at the same instruction keep program order.
    std::vector<const Event *> ordered;
    ordered.reserve(events_.size());
    for (const auto &e : events_)
        ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event *a, const Event *b) {
                         return a->ts < b->ts;
                     });

    out << "{\"displayTimeUnit\":\"ms\",";
    if (dropped_ > 0)
        out << "\"eatDroppedEvents\":" << dropped_ << ",";
    out << "\"traceEvents\":[";

    bool first = true;
    auto emit = [&out, &first](const std::string &json) {
        if (!first)
            out << ",";
        first = false;
        out << "\n" << json;
    };

    // Track metadata first: names the rows in the viewer.
    for (unsigned i = 0; i < tracks_.size(); ++i) {
        JsonObject args;
        args.put("name", tracks_[i]);
        JsonObject meta;
        meta.put("name", "thread_name");
        meta.put("ph", "M");
        meta.put("pid", 1);
        meta.put("tid", i);
        meta.putRaw("args", args.str());
        emit(meta.str());
    }

    for (const Event *e : ordered) {
        JsonObject o;
        o.put("name", e->name);
        o.put("ph", std::string_view(&e->phase, 1));
        o.put("ts", e->ts);
        o.put("pid", 1);
        o.put("tid", e->track);
        if (e->phase == 'i')
            o.put("s", "t"); // instant scope: thread
        o.putRaw("args", e->args);
        emit(o.str());
    }

    out << "\n]}\n";
}

Status
TraceWriter::write(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return Status::error("cannot open trace file ", path);
    writeTo(out);
    out.flush();
    if (!out)
        return Status::error("write failure on trace file ", path);
    return Status();
}

} // namespace eat::obs
