#include "obs/trace.hh"

#include <algorithm>
#include <fstream>

#include "base/logging.hh"
#include "obs/json.hh"

namespace eat::obs
{

TraceWriter::TraceWriter(std::size_t maxEvents) : maxEvents_(maxEvents)
{
}

void
TraceWriter::registerClock(unsigned core, const std::uint64_t *clock)
{
    if (core >= clocks_.size())
        clocks_.resize(core + 1, nullptr);
    clocks_[core] = clock;
}

std::uint64_t
TraceWriter::nowFor(unsigned core) const
{
    return core < clocks_.size() && clocks_[core] ? *clocks_[core] : 0;
}

unsigned
TraceWriter::track(const std::string &name, unsigned core)
{
    for (unsigned i = 0; i < tracks_.size(); ++i) {
        if (tracks_[i].core == core && tracks_[i].name == name)
            return i;
    }
    tracks_.push_back({name, core});
    return static_cast<unsigned>(tracks_.size() - 1);
}

void
TraceWriter::push(Event event)
{
    ++recorded_;
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void
TraceWriter::instant(unsigned track, std::string name, std::string argsJson)
{
    eat_assert(track < tracks_.size(), "unknown trace track ", track);
    push({nowFor(tracks_[track].core), track, 'i', std::move(name),
          argsJson.empty() ? "{}" : std::move(argsJson)});
}

void
TraceWriter::counter(unsigned track, std::string name, double value)
{
    eat_assert(track < tracks_.size(), "unknown trace track ", track);
    JsonObject args;
    args.put("value", value);
    push({nowFor(tracks_[track].core), track, 'C', std::move(name),
          args.str()});
}

void
TraceWriter::writeTo(std::ostream &out) const
{
    // Stable sort: events at the same instruction keep program order.
    std::vector<const Event *> ordered;
    ordered.reserve(events_.size());
    for (const auto &e : events_)
        ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event *a, const Event *b) {
                         return a->ts < b->ts;
                     });

    out << "{\"displayTimeUnit\":\"ms\",";
    if (dropped_ > 0)
        out << "\"eatDroppedEvents\":" << dropped_ << ",";
    out << "\"traceEvents\":[";

    bool first = true;
    auto emit = [&out, &first](const std::string &json) {
        if (!first)
            out << ",";
        first = false;
        out << "\n" << json;
    };

    // Each core renders as its own process (pid = core + 1), so a
    // multicore trace groups per-core tracks instead of interleaving
    // them. Single-core traces stay byte-identical to the v1 output:
    // the process_name rows appear only when a second core exists.
    unsigned maxCore = 0;
    for (const Track &t : tracks_)
        maxCore = std::max(maxCore, t.core);
    if (maxCore > 0) {
        for (unsigned core = 0; core <= maxCore; ++core) {
            JsonObject args;
            args.put("name", "core " + std::to_string(core));
            JsonObject meta;
            meta.put("name", "process_name");
            meta.put("ph", "M");
            meta.put("pid", core + 1);
            meta.put("tid", 0);
            meta.putRaw("args", args.str());
            emit(meta.str());
        }
    }

    // Track metadata next: names the rows in the viewer.
    for (unsigned i = 0; i < tracks_.size(); ++i) {
        JsonObject args;
        args.put("name", tracks_[i].name);
        JsonObject meta;
        meta.put("name", "thread_name");
        meta.put("ph", "M");
        meta.put("pid", tracks_[i].core + 1);
        meta.put("tid", i);
        meta.putRaw("args", args.str());
        emit(meta.str());
    }

    for (const Event *e : ordered) {
        JsonObject o;
        o.put("name", e->name);
        o.put("ph", std::string_view(&e->phase, 1));
        o.put("ts", e->ts);
        o.put("pid", tracks_[e->track].core + 1);
        o.put("tid", e->track);
        if (e->phase == 'i')
            o.put("s", "t"); // instant scope: thread
        o.putRaw("args", e->args);
        emit(o.str());
    }

    out << "\n]}\n";
}

Status
TraceWriter::write(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return Status::error("cannot open trace file ", path);
    writeTo(out);
    out.flush();
    if (!out)
        return Status::error("write failure on trace file ", path);
    return Status();
}

} // namespace eat::obs
