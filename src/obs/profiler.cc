#include "obs/profiler.hh"

namespace eat::obs
{

double
StageTimings::seconds(std::string_view name) const
{
    for (const auto &s : stages) {
        if (s.name == name)
            return s.seconds;
    }
    return 0.0;
}

double
StageTimings::total() const
{
    double sum = 0.0;
    for (const auto &s : stages)
        sum += s.seconds;
    return sum;
}

double
simKips(std::uint64_t instructions, double seconds)
{
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(instructions) / 1000.0 / seconds;
}

void
StageProfiler::start(std::string name)
{
    stop();
    current_ = std::move(name);
    began_ = Clock::now();
    running_ = true;
}

void
StageProfiler::stop()
{
    if (!running_)
        return;
    const std::chrono::duration<double> elapsed = Clock::now() - began_;
    done_.stages.push_back({std::move(current_), elapsed.count()});
    running_ = false;
}

StageTimings
StageProfiler::timings()
{
    stop();
    return done_;
}

} // namespace eat::obs
