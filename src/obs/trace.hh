/**
 * @file
 * Chrome trace-event writer for simulator decision tracing.
 *
 * Emits the Trace Event Format JSON that chrome://tracing and Perfetto
 * load: every Lite way enable/disable, phase-change reset, fault
 * injection, and checker fire becomes an instant or counter event on a
 * named per-structure track, timestamped in *simulated instructions*
 * (rendered as microseconds, so 1 instruction == 1 us on screen).
 *
 * Components do not manage timestamps: the writer holds one shared
 * clock binding (the MMU's retired-instruction counter) and stamps each
 * event as it is recorded. Events are buffered and stably sorted by
 * timestamp before writing, so the output is well-formed for strict
 * consumers regardless of the order subsystems fire in. The buffer is
 * capped (events past the cap are counted, not stored) so a
 * pathological run cannot exhaust memory; the cap and drop count are
 * reported in the file's metadata.
 */

#ifndef EAT_OBS_TRACE_HH
#define EAT_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/status.hh"

namespace eat::obs
{

/** Buffers trace events and renders Chrome trace-event JSON. */
class TraceWriter
{
  public:
    /** @param maxEvents buffer cap; further events are dropped
     *  (counted). The default holds hours of interval-level activity. */
    explicit TraceWriter(std::size_t maxEvents = 1u << 20);

    /**
     * Bind the timestamp source of @p core (not owned; typically that
     * core's retired-instruction counter). Events on a core's tracks
     * are stamped from its own clock; tracks of a core with no clock
     * bound are stamped 0.
     */
    void registerClock(unsigned core, const std::uint64_t *clock);

    /** Single-core shorthand: bind core 0's clock. */
    void setClock(const std::uint64_t *clock) { registerClock(0, clock); }

    /** Core 0's current timestamp (simulated instructions). */
    std::uint64_t now() const { return nowFor(0); }

    /**
     * Create-or-get the track named @p name on @p core. Tracks render
     * as separate rows (threads) in the viewer; in multicore traces
     * each core becomes its own process, so its tracks group together
     * instead of interleaving (telemetry v2 "core" ↔ trace pid-1).
     */
    unsigned track(const std::string &name, unsigned core = 0);

    /** Record an instant event; @p argsJson is a pre-rendered JSON
     *  object ("{}" when empty). */
    void instant(unsigned track, std::string name,
                 std::string argsJson = {});

    /** Record a counter sample (renders as a step graph). */
    void counter(unsigned track, std::string name, double value);

    std::uint64_t eventsRecorded() const { return recorded_; }
    std::uint64_t eventsDropped() const { return dropped_; }

    /**
     * Render the whole trace:
     *   {"displayTimeUnit":"ms","traceEvents":[...]}
     * Events are emitted in nondecreasing-timestamp order with track
     * metadata first.
     */
    void writeTo(std::ostream &out) const;

    /** writeTo() a file at @p path (truncating). */
    Status write(const std::string &path) const;

  private:
    struct Track
    {
        std::string name;
        unsigned core;
    };

    struct Event
    {
        std::uint64_t ts;
        unsigned track;
        char phase; ///< 'i' instant, 'C' counter
        std::string name;
        std::string args; ///< pre-rendered JSON object
    };

    void push(Event event);
    std::uint64_t nowFor(unsigned core) const;

    /** Per-core clock bindings (index = core id). */
    std::vector<const std::uint64_t *> clocks_;
    std::vector<Track> tracks_;
    std::vector<Event> events_;
    std::size_t maxEvents_;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace eat::obs

#endif // EAT_OBS_TRACE_HH
