#include "obs/provenance.hh"

#include <cstdint>

#include "base/logging.hh"
#include "obs/json.hh"

namespace eat::obs
{

namespace
{

constexpr std::uint64_t kNoMiss = ~std::uint64_t(0);

constexpr std::string_view kStructNames[] = {
    "l1_tlb_4k", "l1_tlb_2m",     "l1_tlb_1g", "l2_tlb",
    "l1_range",  "l2_range",      "pwc_pde",   "pwc_pdpte",
    "pwc_pml4",  "walk_mem",      "range_walk_mem",
    "host_pwc",  "host_walk_mem", "l3_tlb",    "dram_tlb",
    "shootdown", "coherence",     "none",
};
static_assert(std::size(kStructNames) ==
              static_cast<std::size_t>(ProvStruct::Count));

constexpr std::string_view kKindNames[] = {
    "probe",    "fill",      "evict",    "walk_ref",
    "resize",   "interval",  "shootdown", "translation",
    "coh_probe",
};
static_assert(std::size(kKindNames) ==
              static_cast<std::size_t>(ProvKind::Count));

bool
isControl(ProvKind k)
{
    return k == ProvKind::Resize || k == ProvKind::Interval ||
           k == ProvKind::Shootdown || k == ProvKind::CohProbe;
}

} // namespace

std::string_view
provStructName(ProvStruct s)
{
    return kStructNames[static_cast<std::size_t>(s)];
}

ProvStruct
provStructFromName(std::string_view name)
{
    for (std::size_t i = 0; i < std::size(kStructNames); ++i)
        if (kStructNames[i] == name)
            return static_cast<ProvStruct>(i);
    return ProvStruct::Count;
}

std::string_view
provKindName(ProvKind k)
{
    return kKindNames[static_cast<std::size_t>(k)];
}

ProvKind
provKindFromName(std::string_view name)
{
    for (std::size_t i = 0; i < std::size(kKindNames); ++i)
        if (kKindNames[i] == name)
            return static_cast<ProvKind>(i);
    return ProvKind::Count;
}

std::size_t
provLog2Bucket(double v)
{
    std::size_t bucket = 0;
    while (v >= 1.0 && bucket < 63) {
        v /= 2.0;
        ++bucket;
    }
    return bucket;
}

PicoJoules
ProvCoreTotals::canonicalDynamicPj() const
{
    // Mirror Mmu::dynamicEnergyTotal(): per meter read + write energy,
    // meters added in enum (== member declaration) order. Shootdown
    // energy is deliberately excluded there and here.
    PicoJoules total = 0.0;
    for (const ProvStructTotals &s : structs)
        total += s.readPj + s.writePj;
    return total;
}

ProvenanceSink::ProvenanceSink(std::uint64_t sampleEvery)
{
    summary_.sampleEvery = sampleEvery < 1 ? 1 : sampleEvery;
    summary_.walkDepth.ensureBuckets(5);
}

Result<std::unique_ptr<ProvenanceSink>>
ProvenanceSink::open(const std::string &path, std::uint64_t sampleEvery)
{
    if (sampleEvery < 1)
        return Status::error("provenance sample rate must be >= 1");
    auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
    if (!*file)
        return Status::error("cannot open provenance file ", path);
    auto sink = std::make_unique<ProvenanceSink>(sampleEvery);
    sink->out_ = file.get();
    sink->file_ = std::move(file);
    return sink;
}

ProvCoreTotals &
ProvenanceSink::coreTotals(unsigned core)
{
    if (core >= summary_.cores.size())
        summary_.cores.resize(core + 1);
    return summary_.cores[core];
}

void
ProvenanceSink::beginTranslation(std::uint64_t instr, unsigned core,
                                 std::uint16_t asid, std::uint64_t vaddr)
{
    ++summary_.translations;
    sampled_ = (summary_.translations - 1) % summary_.sampleEvery == 0;
    if (sampled_)
        ++summary_.translationsSampled;
    inTranslation_ = true;
    curInstr_ = instr;
    curVaddr_ = vaddr;
    curCore_ = core;
    curAsid_ = asid;
    curPj_ = 0.0;
    curWalkRefs_ = 0;
}

void
ProvenanceSink::accumulate(const ProvEvent &e)
{
    ++summary_.events;
    ProvCoreTotals &ct = coreTotals(e.core);
    switch (e.kind) {
      case ProvKind::Probe:
      case ProvKind::WalkRef: {
        ProvStructTotals &s =
            ct.structs[static_cast<std::size_t>(e.structId)];
        ++s.reads;
        s.readPj += e.pj;
        break;
      }
      case ProvKind::Fill: {
        ProvStructTotals &s =
            ct.structs[static_cast<std::size_t>(e.structId)];
        ++s.writes;
        s.writePj += e.pj;
        break;
      }
      case ProvKind::Evict:
        ++ct.structs[static_cast<std::size_t>(e.structId)].evicts;
        break;
      case ProvKind::Shootdown:
        ++ct.shootdowns;
        ct.shootdownPj += e.pj;
        summary_.shootdownFanout.record(provLog2Bucket(double(e.aux1)));
        break;
      case ProvKind::CohProbe:
        ++ct.cohProbes;
        ct.cohPj += e.pj;
        summary_.shootdownFanout.record(provLog2Bucket(double(e.aux1)));
        break;
      default:
        break;
    }
    if (inTranslation_ &&
        (e.kind == ProvKind::Probe || e.kind == ProvKind::Fill ||
         e.kind == ProvKind::WalkRef)) {
        curPj_ += e.pj;
        if (e.kind == ProvKind::WalkRef &&
            e.structId == ProvStruct::WalkMem)
            ++curWalkRefs_;
    }
}

void
ProvenanceSink::writeEvent(const ProvEvent &e)
{
    JsonObject o;
    o.put("schema", kProvEventSchema);
    o.put("v", kProvEventVersion);
    o.put("i", e.instr);
    o.put("k", provKindName(e.kind));
    o.put("core", e.core);
    switch (e.kind) {
      case ProvKind::Probe:
        o.put("s", provStructName(e.structId));
        o.put("asid", unsigned(e.asid));
        o.put("ways", e.aux0);
        o.put("hit", e.hit);
        o.putExact("pj", e.pj);
        break;
      case ProvKind::Fill:
        o.put("s", provStructName(e.structId));
        o.put("asid", unsigned(e.asid));
        if (e.psShift)
            o.put("ps", unsigned(e.psShift));
        o.putExact("pj", e.pj);
        break;
      case ProvKind::Evict:
        o.put("s", provStructName(e.structId));
        o.put("asid", unsigned(e.asid));
        break;
      case ProvKind::WalkRef:
        o.put("s", provStructName(e.structId));
        o.put("asid", unsigned(e.asid));
        o.put("level", e.aux0);
        o.putExact("pj", e.pj);
        break;
      case ProvKind::Resize:
        o.put("s", provStructName(e.structId));
        o.put("from", e.aux0);
        o.put("to", e.aux1);
        break;
      case ProvKind::Interval:
        o.put("interval", e.addr);
        o.putExact("pj", e.pj);
        break;
      case ProvKind::Shootdown:
        o.put("asid", unsigned(e.asid));
        o.put("addr", e.addr);
        o.put("remote", e.aux0);
        o.put("entries", e.aux1);
        o.putExact("pj", e.pj);
        break;
      case ProvKind::CohProbe:
        o.put("asid", unsigned(e.asid));
        o.put("addr", e.addr);
        o.put("targets", e.aux0);
        o.put("entries", e.aux1);
        o.put("version", e.aux2);
        o.putExact("pj", e.pj);
        break;
      default:
        break;
    }
    *out_ << o.str() << "\n";
    ++summary_.eventsWritten;
}

void
ProvenanceSink::emit(const ProvEvent &e)
{
    accumulate(e);
    if (out_ && (isControl(e.kind) || (inTranslation_ && sampled_)))
        writeEvent(e);
}

void
ProvenanceSink::endTranslation(std::string_view source,
                               std::uint8_t psShift, bool l1Hit)
{
    if (!inTranslation_)
        return;
    inTranslation_ = false;

    summary_.walkDepth.record(curWalkRefs_);
    summary_.translationPj.record(provLog2Bucket(curPj_));
    if (!l1Hit) {
        if (curCore_ >= lastMissInstr_.size())
            lastMissInstr_.resize(curCore_ + 1, kNoMiss);
        const std::uint64_t last = lastMissInstr_[curCore_];
        if (last != kNoMiss)
            summary_.reuseDistance.record(
                provLog2Bucket(double(curInstr_ - last)));
        lastMissInstr_[curCore_] = curInstr_;
    }

    ++summary_.events;
    if (out_ && sampled_) {
        JsonObject o;
        o.put("schema", kProvEventSchema);
        o.put("v", kProvEventVersion);
        o.put("i", curInstr_);
        o.put("k", provKindName(ProvKind::Translation));
        o.put("core", curCore_);
        o.put("asid", unsigned(curAsid_));
        o.put("addr", curVaddr_);
        o.put("src", source);
        if (psShift)
            o.put("ps", unsigned(psShift));
        o.putExact("pj", curPj_);
        *out_ << o.str() << "\n";
        ++summary_.eventsWritten;
    }
}

namespace
{

std::string
histToJson(const stats::Histogram &h)
{
    std::string out = "[";
    for (std::size_t i = 0; i < h.numBuckets(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(h.bucketCount(i));
    }
    out += ']';
    return out;
}

} // namespace

std::string
provSummaryToJson(const ProvSummary &s)
{
    JsonObject o;
    o.put("schema", kProvSummarySchema);
    o.put("v", kProvSummaryVersion);
    o.put("sample_every", s.sampleEvery);
    o.put("translations", s.translations);
    o.put("translations_sampled", s.translationsSampled);
    o.put("events", s.events);
    o.put("events_written", s.eventsWritten);

    std::string cores = "[";
    for (std::size_t c = 0; c < s.cores.size(); ++c) {
        const ProvCoreTotals &ct = s.cores[c];
        if (c)
            cores += ',';
        JsonObject co;
        co.put("core", std::uint64_t(c));
        std::string structs = "[";
        bool first = true;
        for (unsigned i = 0; i < kProvMeteredStructs; ++i) {
            const ProvStructTotals &st = ct.structs[i];
            if (st.reads == 0 && st.writes == 0 && st.evicts == 0)
                continue; // untouched structures are implied zero
            if (!first)
                structs += ',';
            first = false;
            JsonObject so;
            so.put("s", provStructName(static_cast<ProvStruct>(i)));
            so.put("reads", st.reads);
            so.put("writes", st.writes);
            so.put("evicts", st.evicts);
            so.putExact("read_pj", st.readPj);
            so.putExact("write_pj", st.writePj);
            structs += so.str();
        }
        structs += ']';
        co.putRaw("structs", structs);
        co.put("shootdowns", ct.shootdowns);
        co.putExact("shootdown_pj", ct.shootdownPj);
        co.put("coh_probes", ct.cohProbes);
        co.putExact("coh_pj", ct.cohPj);
        co.putExact("dynamic_pj", ct.canonicalDynamicPj());
        cores += co.str();
    }
    cores += ']';
    o.putRaw("cores", cores);

    JsonObject hist;
    hist.putRaw("walk_depth", histToJson(s.walkDepth));
    hist.putRaw("translation_pj_log2", histToJson(s.translationPj));
    hist.putRaw("reuse_log2", histToJson(s.reuseDistance));
    hist.putRaw("shootdown_fanout_log2", histToJson(s.shootdownFanout));
    o.putRaw("hist", hist.str());
    return o.str();
}

Status
ProvenanceSink::close()
{
    if (closed_)
        return Status();
    closed_ = true;
    if (!out_)
        return Status();
    *out_ << provSummaryToJson(summary_) << "\n";
    out_->flush();
    if (!*out_)
        return Status::error("provenance stream write failure");
    if (file_)
        file_->close();
    return Status();
}

} // namespace eat::obs
