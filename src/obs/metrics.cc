#include "obs/metrics.hh"

#include "base/logging.hh"
#include "obs/json.hh"

namespace eat::obs
{

bool
isValidMetricName(std::string_view name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool prevDot = false;
    for (const char c : name) {
        if (c == '.') {
            if (prevDot)
                return false;
            prevDot = true;
            continue;
        }
        prevDot = false;
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '_';
        if (!ok)
            return false;
    }
    return true;
}

MetricRegistry::Metric &
MetricRegistry::insert(std::string name, Kind kind)
{
    eat_assert(isValidMetricName(name),
               "malformed metric name '", name, "'");
    const auto [it, inserted] = metrics_.try_emplace(std::move(name));
    eat_assert(inserted, "duplicate metric '", it->first, "'");
    it->second.kind = kind;
    return it->second;
}

void
MetricRegistry::addCounter(std::string name, const std::uint64_t *src)
{
    eat_assert(src != nullptr, "null counter source for '", name, "'");
    addCounter(std::move(name), [src] { return *src; });
}

void
MetricRegistry::addCounter(std::string name, CounterFn fn)
{
    eat_assert(fn != nullptr, "null counter fn for '", name, "'");
    insert(std::move(name), Kind::Counter).counter = std::move(fn);
}

void
MetricRegistry::addGauge(std::string name, GaugeFn fn)
{
    eat_assert(fn != nullptr, "null gauge fn for '", name, "'");
    insert(std::move(name), Kind::Gauge).gauge = std::move(fn);
}

void
MetricRegistry::addHistogram(std::string name, const stats::Histogram *src)
{
    eat_assert(src != nullptr, "null histogram source for '", name, "'");
    insert(std::move(name), Kind::Histogram).histogram = src;
}

bool
MetricRegistry::contains(std::string_view name) const
{
    return metrics_.find(name) != metrics_.end();
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto &[name, metric] : metrics_)
        out.push_back(name);
    return out; // std::map iterates sorted
}

const MetricRegistry::Metric &
MetricRegistry::lookup(std::string_view name, Kind kind) const
{
    const auto it = metrics_.find(name);
    eat_assert(it != metrics_.end(), "unknown metric '", name, "'");
    eat_assert(it->second.kind == kind,
               "metric '", name, "' read with the wrong kind");
    return it->second;
}

std::uint64_t
MetricRegistry::counterValue(std::string_view name) const
{
    return lookup(name, Kind::Counter).counter();
}

double
MetricRegistry::gaugeValue(std::string_view name) const
{
    return lookup(name, Kind::Gauge).gauge();
}

void
MetricRegistry::writeJson(std::ostream &out) const
{
    JsonObject values;
    for (const auto &[name, metric] : metrics_) {
        switch (metric.kind) {
          case Kind::Counter:
            values.put(name, metric.counter());
            break;
          case Kind::Gauge:
            values.put(name, metric.gauge());
            break;
          case Kind::Histogram: {
            std::string buckets = "[";
            for (std::size_t b = 0; b < metric.histogram->numBuckets();
                 ++b) {
                if (b > 0)
                    buckets += ',';
                buckets += std::to_string(metric.histogram->bucketCount(b));
            }
            buckets += ']';
            JsonObject h;
            h.putRaw("buckets", buckets);
            h.put("total", metric.histogram->total());
            values.putRaw(name, h.str());
            break;
          }
        }
    }

    JsonObject doc;
    doc.put("schema", kMetricsSchema);
    doc.put("version", kMetricsVersion);
    doc.putRaw("metrics", values.str());
    out << doc.str() << "\n";
}

} // namespace eat::obs
