/**
 * @file
 * Hierarchically named metric registry (gem5/Prometheus style).
 *
 * Every simulated component registers its statistics under a dotted
 * name ("l1.tlb4k.hits", "lite.way_disable_events", ...). The registry
 * does not own or accumulate anything on the hot path: a metric is a
 * *binding* — a pointer to the component's own counter, or a closure —
 * so registration costs nothing per simulated event and the registry is
 * simply one coherent view over state the components already keep (the
 * paper-style text tables are another view over the same state).
 *
 * Lifetime contract: bindings are non-owning. The registry must not be
 * read after the components it observes are destroyed; in practice the
 * registry lives inside one simulation run, is snapshotted to JSON at
 * the end, and dies with the run.
 */

#ifndef EAT_OBS_METRICS_HH
#define EAT_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.hh"

namespace eat::obs
{

/** Schema identifier stamped into every metrics dump. */
inline constexpr std::string_view kMetricsSchema = "eat.metrics";
inline constexpr int kMetricsVersion = 1;

/**
 * @return true iff @p name is a legal metric name: one or more
 * non-empty segments of [a-z0-9_] separated by single dots.
 */
bool isValidMetricName(std::string_view name);

/** The registry of one simulation run's metrics. */
class MetricRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;

    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * Register a counter bound to @p src (not owned). Panics on a
     * duplicate or malformed @p name — metric names are API.
     */
    void addCounter(std::string name, const std::uint64_t *src);

    /** Register a counter computed by @p fn at read time. */
    void addCounter(std::string name, CounterFn fn);

    /** Register a floating-point gauge computed by @p fn. */
    void addGauge(std::string name, GaugeFn fn);

    /** Register a histogram bound to @p src (not owned). */
    void addHistogram(std::string name, const stats::Histogram *src);

    bool contains(std::string_view name) const;
    std::size_t size() const { return metrics_.size(); }

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Read one counter; panics when absent or not a counter. */
    std::uint64_t counterValue(std::string_view name) const;

    /** Read one gauge; panics when absent or not a gauge. */
    double gaugeValue(std::string_view name) const;

    /**
     * Snapshot every metric as one JSON document:
     *   {"schema":"eat.metrics","version":1,"metrics":{name:value,...}}
     * Counters render as integers, gauges as numbers, histograms as
     * {"buckets":[...],"total":N}. Names are emitted sorted.
     */
    void writeJson(std::ostream &out) const;

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    struct Metric
    {
        Kind kind;
        CounterFn counter;
        GaugeFn gauge;
        const stats::Histogram *histogram = nullptr;
    };

    Metric &insert(std::string name, Kind kind);
    const Metric &lookup(std::string_view name, Kind kind) const;

    std::map<std::string, Metric, std::less<>> metrics_;
};

} // namespace eat::obs

#endif // EAT_OBS_METRICS_HH
