#include "obs/telemetry.hh"

#include "obs/json.hh"

namespace eat::obs
{

Result<std::unique_ptr<TelemetrySink>>
TelemetrySink::open(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
    if (!*file)
        return Status::error("cannot open telemetry file ", path);
    std::unique_ptr<TelemetrySink> sink(new TelemetrySink());
    sink->out_ = file.get();
    sink->file_ = std::move(file);
    return sink;
}

void
TelemetrySink::emit(const IntervalRecord &r)
{
    JsonObject o;
    o.put("schema", kTelemetrySchema);
    o.put("v", kTelemetryVersion);
    o.put("core", r.core);
    o.put("interval", r.interval);
    o.put("start_instr", r.startInstr);
    o.put("instructions", r.instructions);
    o.put("mem_ops", r.memOps);
    o.put("l1_hits", r.l1Hits);
    o.put("l1_misses", r.l1Misses);
    o.put("l2_hits", r.l2Hits);
    o.put("l2_misses", r.l2Misses);
    o.put("host_walk_refs", r.hostWalkRefs);
    o.put("l3_probes", r.l3Probes);
    o.put("l3_hits", r.l3Hits);
    o.put("miss_cycles", r.missCycles);
    // Exact: the provenance reconciliation oracle re-derives this value
    // from traced events and demands bit-identity after a round-trip.
    o.putExact("dynamic_pj", r.dynamicPj);
    o.put("l1_mpki", r.l1Mpki);
    o.put("l2_mpki", r.l2Mpki);
    o.put("l1_hit_ratio", r.l1HitRatio);
    o.put("l2_hit_ratio", r.l2HitRatio);

    JsonObject mask;
    for (const auto &[name, ways] : r.wayMask)
        mask.put(name, ways);
    o.putRaw("way_mask", mask.str());

    o.put("check_mismatches", r.checkMismatches);
    o.put("faults_injected", r.faultsInjected);

    // Flush per record: a child killed mid-run (watchdog, crash, the
    // campaign engine's retry SIGKILL) must leave at most one torn
    // final line behind, never a silently truncated stream.
    *out_ << o.str() << "\n";
    out_->flush();
    ++records_;
}

Status
TelemetrySink::close()
{
    out_->flush();
    if (!*out_)
        return Status::error("telemetry stream write failure");
    if (file_)
        file_->close();
    return Status();
}

} // namespace eat::obs
