/**
 * @file
 * Energy provenance: per-translation structured event tracing.
 *
 * The telemetry stream answers "how much energy did this interval
 * spend"; provenance answers "on what, exactly". Every energy-bearing
 * micro-event of a translation — each TLB/PWC probe with its active-way
 * mask, each fill and the eviction it caused, each page-walk memory
 * reference with its level, Lite resizes, and multicore shootdown
 * broadcasts — is recorded with the *exact* picojoule value the energy
 * meter was charged, plus core id, ASID, page size, and the
 * simulated-instruction timestamp.
 *
 * Load-bearing guarantee: with sampling off, summing the traced event
 * energy per (core, structure) is bit-identical to the aggregate
 * energy meters and to the telemetry dynamic_pj rows. The sink
 * accumulates in the same IEEE order the meters charge, and the JSONL
 * writer uses round-trip (%.17g) formatting, so reconciliation is an
 * exact == — no epsilon. The qa oracle and tools/eatreport both check
 * this identity.
 *
 * Sampling (1-in-N translations) drops *written* path events but still
 * accumulates every event into the in-memory summary, so summary
 * totals stay exact under sampling; only the JSONL stream becomes a
 * sample. Control events (Resize/Interval/Shootdown) are always
 * written. The stream is versioned: every line carries
 * {"schema":"eat.prov.event","v":1}, and the stream ends with one
 * {"schema":"eat.prov.summary","v":1} record holding the exact totals.
 *
 * Compile-out: building with EAT_PROVENANCE=OFF defines
 * EAT_NO_PROVENANCE, which turns every instrumentation hook into dead
 * code (the hooks are written `if (EAT_PROV_ENABLED && prov_)`), so
 * the fast path carries no trace of the feature.
 */

#ifndef EAT_OBS_PROVENANCE_HH
#define EAT_OBS_PROVENANCE_HH

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"
#include "obs/prov_ids.hh"
#include "stats/histogram.hh"

#ifdef EAT_NO_PROVENANCE
#define EAT_PROV_ENABLED 0
#else
#define EAT_PROV_ENABLED 1
#endif

namespace eat::obs
{

/** True when this build carries the provenance hooks. */
inline constexpr bool kProvenanceCompiledIn = EAT_PROV_ENABLED != 0;

inline constexpr std::string_view kProvEventSchema = "eat.prov.event";
inline constexpr int kProvEventVersion = 1;
inline constexpr std::string_view kProvSummarySchema = "eat.prov.summary";
inline constexpr int kProvSummaryVersion = 1;

/** One traced micro-event. Field meaning varies slightly by kind:
 *  aux0 = active-way mask (Probe/Fill), walk level (WalkRef),
 *         previous active ways (Resize), remote cores (Shootdown),
 *         targeted sharer cores (CohProbe), interval index (Interval);
 *  aux1 = new active ways (Resize), entries invalidated
 *         (Shootdown/CohProbe). */
struct ProvEvent
{
    std::uint64_t instr = 0; ///< simulated instructions retired
    std::uint64_t addr = 0;  ///< vaddr (Translation) / vbase (Shootdown)
    PicoJoules pj = 0.0;     ///< exact energy charged by this event
    ProvKind kind = ProvKind::Count;
    ProvStruct structId = ProvStruct::None;
    unsigned core = 0;
    std::uint16_t asid = 0;
    std::uint8_t psShift = 0; ///< log2 page size; 0 = not applicable
    bool hit = false;         ///< Probe outcome
    std::uint32_t aux0 = 0;
    std::uint32_t aux1 = 0;
    std::uint64_t aux2 = 0;   ///< translation version (CohProbe)
};

/** Exact per-structure accumulators, summed in event-arrival order. */
struct ProvStructTotals
{
    std::uint64_t reads = 0;  ///< Probe + WalkRef events
    std::uint64_t writes = 0; ///< Fill events
    std::uint64_t evicts = 0; ///< Evict events (no energy)
    PicoJoules readPj = 0.0;
    PicoJoules writePj = 0.0;
};

/** Per-core totals; structs[] is indexed by ProvStruct. */
struct ProvCoreTotals
{
    std::array<ProvStructTotals, kProvMeteredStructs> structs{};
    std::uint64_t shootdowns = 0;
    PicoJoules shootdownPj = 0.0;
    std::uint64_t cohProbes = 0;  ///< hw-coherence filter probes
    PicoJoules cohPj = 0.0;       ///< hw-coherence energy (own book)

    /**
     * Dynamic energy re-derived from events, added in the exact order
     * Mmu::dynamicEnergyTotal() sums its meters (per struct:
     * read + write; across structs: enum order). Bit-identical to the
     * meter total when sampling is off.
     */
    PicoJoules canonicalDynamicPj() const;
};

/** Everything the sink knows at close(); also written as the trailing
 *  eat.prov.summary JSONL record. */
struct ProvSummary
{
    std::uint64_t sampleEvery = 1;
    std::uint64_t translations = 0;
    std::uint64_t translationsSampled = 0; ///< path events written
    std::uint64_t events = 0;              ///< seen (incl. unsampled)
    std::uint64_t eventsWritten = 0;

    /** Indexed by core id; grown on first event from that core. */
    std::vector<ProvCoreTotals> cores;

    // Streaming histograms, maintained for every translation whether
    // sampled or not.
    stats::Histogram walkDepth;       ///< page-walk memory refs (0..4)
    stats::Histogram translationPj;   ///< log2(pJ) per translation
    stats::Histogram reuseDistance;   ///< log2(instr) between L1 misses
    stats::Histogram shootdownFanout; ///< log2(entries invalidated)
};

/** Bucket helper shared by the sink and eatreport: 0 stays 0,
 *  otherwise 1 + floor(log2(v)). */
std::size_t provLog2Bucket(double v);

/**
 * The tracer. One sink per simulation; in multicore runs all cores
 * share it (the simulation is single-threaded, and accumulators are
 * per-core, so per-core charge order is preserved).
 *
 * Producers bracket each translation with beginTranslation() /
 * endTranslation() and emit() the path events in charge order.
 * Control events may be emitted outside a translation at any time.
 */
class ProvenanceSink
{
  public:
    /** Accumulate-only sink (no stream) — used by the qa oracle. */
    explicit ProvenanceSink(std::uint64_t sampleEvery = 1);

    /** Stream JSONL to @p path (truncating); @p sampleEvery >= 1. */
    static Result<std::unique_ptr<ProvenanceSink>>
    open(const std::string &path, std::uint64_t sampleEvery = 1);

    void beginTranslation(std::uint64_t instr, unsigned core,
                          std::uint16_t asid, std::uint64_t vaddr);

    /** Record one event. Accumulates always; writes JSONL when the
     *  enclosing translation is sampled or the kind is a control
     *  event. */
    void emit(const ProvEvent &event);

    /** Close the open translation: emits its Translation record and
     *  updates the per-translation histograms. @p source names who
     *  produced the final translation ("l1", "l2", "l2-range",
     *  "walk"). */
    void endTranslation(std::string_view source, std::uint8_t psShift,
                        bool l1Hit);

    const ProvSummary &summary() const { return summary_; }
    bool sampling() const { return summary_.sampleEvery > 1; }
    std::uint64_t eventsWritten() const { return summary_.eventsWritten; }

    /** Write the trailing summary record, flush, report health. */
    Status close();

  private:
    void writeEvent(const ProvEvent &event);
    void accumulate(const ProvEvent &event);
    ProvCoreTotals &coreTotals(unsigned core);

    std::unique_ptr<std::ofstream> file_;
    std::ostream *out_ = nullptr; ///< null for accumulate-only sinks
    bool closed_ = false;

    ProvSummary summary_;

    // State of the translation currently in flight.
    bool inTranslation_ = false;
    bool sampled_ = false;
    std::uint64_t curInstr_ = 0;
    std::uint64_t curVaddr_ = 0;
    unsigned curCore_ = 0;
    std::uint16_t curAsid_ = 0;
    PicoJoules curPj_ = 0.0;   ///< energy of this translation so far
    unsigned curWalkRefs_ = 0; ///< page-walk memory refs this translation

    /** Instruction stamp of each core's previous L1 miss (reuse
     *  distance); UINT64_MAX = no miss seen yet. */
    std::vector<std::uint64_t> lastMissInstr_;
};

/** Render the summary as the eat.prov.summary JSONL line (exact
 *  totals via %.17g). Exposed so tests can golden-check it. */
std::string provSummaryToJson(const ProvSummary &summary);

} // namespace eat::obs

#endif // EAT_OBS_PROVENANCE_HH
