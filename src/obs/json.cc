#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eat::obs
{

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0; // JSON has no Inf/NaN literal
    char buf[64];
    // %.17g round-trips any double but is noisy; %.12g keeps every
    // digit our picojoule/MPKI magnitudes can meaningfully carry.
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string
jsonNumberExact(double v)
{
    if (!std::isfinite(v))
        v = 0.0; // JSON has no Inf/NaN literal
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonObject::key(std::string_view k)
{
    if (!body_.empty())
        body_ += ',';
    body_ += jsonQuote(k);
    body_ += ':';
}

void
JsonObject::put(std::string_view k, std::string_view value)
{
    key(k);
    body_ += jsonQuote(value);
}

void
JsonObject::put(std::string_view k, const char *value)
{
    put(k, std::string_view(value));
}

void
JsonObject::put(std::string_view k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
}

void
JsonObject::put(std::string_view k, double value)
{
    key(k);
    body_ += jsonNumber(value);
}

void
JsonObject::put(std::string_view k, std::uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
}

void
JsonObject::put(std::string_view k, std::int64_t value)
{
    key(k);
    body_ += std::to_string(value);
}

void
JsonObject::put(std::string_view k, int value)
{
    put(k, static_cast<std::int64_t>(value));
}

void
JsonObject::put(std::string_view k, unsigned value)
{
    put(k, static_cast<std::uint64_t>(value));
}

void
JsonObject::putExact(std::string_view k, double value)
{
    key(k);
    body_ += jsonNumberExact(value);
}

void
JsonObject::putRaw(std::string_view k, std::string_view json)
{
    key(k);
    body_ += json;
}

std::string
JsonObject::str() const
{
    return "{" + body_ + "}";
}

const JsonValue *
JsonValue::find(std::string_view k) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object) {
        if (name == k)
            return &value;
    }
    return nullptr;
}

namespace
{

/** Recursive-descent JSON reader over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<JsonValue>
    parse()
    {
        auto v = value();
        if (!v.ok())
            return v;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON document");
        return v;
    }

  private:
    Status
    fail(std::string_view what) const
    {
        return Status::error("JSON parse error at offset ", pos_, ": ",
                             std::string(what));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view w)
    {
        if (text_.substr(pos_, w.size()) == w) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    Result<JsonValue>
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return objectValue();
        if (c == '[')
            return arrayValue();
        if (c == '"')
            return stringValue();
        if (consumeWord("true")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        if (consumeWord("null"))
            return JsonValue{};
        return numberValue();
    }

    Result<JsonValue>
    stringValue()
    {
        auto s = rawString();
        if (!s.ok())
            return s.status();
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = std::move(s.value());
        return v;
    }

    Result<std::string>
    rawString()
    {
        if (!consume('"'))
            return fail("expected '\"'");
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("dangling escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    // Our own writers only escape control characters;
                    // encode the code point as UTF-8 for completeness.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape character");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    Result<JsonValue>
    numberValue()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        return v;
    }

    Result<JsonValue>
    arrayValue()
    {
        consume('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return v;
        for (;;) {
            auto item = value();
            if (!item.ok())
                return item;
            v.array.push_back(std::move(item.value()));
            skipWs();
            if (consume(']'))
                return v;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    Result<JsonValue>
    objectValue()
    {
        consume('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return v;
        for (;;) {
            skipWs();
            auto name = rawString();
            if (!name.ok())
                return name.status();
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            auto member = value();
            if (!member.ok())
                return member;
            v.object.emplace_back(std::move(name.value()),
                                  std::move(member.value()));
            skipWs();
            if (consume('}'))
                return v;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Result<JsonValue>
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace eat::obs
