/**
 * @file
 * Identifier enums shared by the provenance tracer and its producers.
 *
 * Split out of provenance.hh so low-level headers (energy/account.hh
 * tags its per-structure rows with a ProvStruct) can name the ids
 * without pulling in the sink, histograms, or any I/O.
 */

#ifndef EAT_OBS_PROV_IDS_HH
#define EAT_OBS_PROV_IDS_HH

#include <cstdint>
#include <string_view>

namespace eat::obs
{

/**
 * Every energy-bearing structure of the translation datapath.
 *
 * The first fifteen ids are listed in the exact order
 * core::Mmu::dynamicEnergyTotal() sums its meters; reconciliation
 * reproduces that sum by adding per-structure totals in this enum
 * order, which keeps the IEEE-double result bit-identical.
 */
enum class ProvStruct : std::uint8_t
{
    L1Tlb4K,      ///< L1 4KB / mixed / combined page TLB
    L1Tlb2M,
    L1Tlb1G,
    L2Tlb,
    L1Range,
    L2Range,
    PwcPde,
    PwcPdpte,
    PwcPml4,
    WalkMem,      ///< page-walk memory references
    RangeWalkMem, ///< range-table-walk memory references
    HostPwc,      ///< host (EPT) paging-structure cache, lumped probe
    HostWalkMem,  ///< host-walk memory references (nested paging)
    L3Tlb,        ///< cache-resident L3 TLB (--l3=cache)
    DramTlb,      ///< in-DRAM TLB incl. its SRAM tag cache (--l3=dram)
    Shootdown,    ///< IPI broadcast cost (outside dynamicEnergyTotal)
    Coherence,    ///< hw-coherence filter probe (outside the sum too)
    None,         ///< control events with no structure
    Count
};

/** Number of structures carrying dynamic energy (meter-backed). */
inline constexpr unsigned kProvMeteredStructs =
    static_cast<unsigned>(ProvStruct::Shootdown);

/** Short stable token used in JSONL ("l1_tlb_4k", ...). */
std::string_view provStructName(ProvStruct s);

/** Parse a provStructName() token; ProvStruct::Count when unknown. */
ProvStruct provStructFromName(std::string_view name);

/** What one provenance event records. */
enum class ProvKind : std::uint8_t
{
    Probe,       ///< a TLB / PWC lookup charged read energy
    Fill,        ///< a TLB / PWC install charged write energy
    Evict,       ///< a fill displaced a live entry (no energy)
    WalkRef,     ///< one page/range-walk memory reference
    Resize,      ///< Lite changed a TLB's active-way mask
    Interval,    ///< telemetry interval boundary marker
    Shootdown,   ///< initiator-side shootdown broadcast charge
    Translation, ///< one translation's closing record
    CohProbe,    ///< initiator-side hw-coherence filter probe charge
    Count
};

std::string_view provKindName(ProvKind k);

/** Parse a provKindName() token; ProvKind::Count when unknown. */
ProvKind provKindFromName(std::string_view name);

} // namespace eat::obs

#endif // EAT_OBS_PROV_IDS_HH
