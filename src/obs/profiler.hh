/**
 * @file
 * Wall-clock self-profiling of the simulator's stages.
 *
 * A batch sweep over millions of runs is only schedulable if every run
 * reports where its wall time went and how fast it simulated. The
 * StageProfiler times named, strictly sequential stages (setup,
 * fast-forward, simulate, report) and the resulting StageTimings ride
 * along in SimResult; simKips() turns the measured window into a
 * simulated-KIPS throughput figure (kilo simulated instructions per
 * wall second).
 *
 * Timings are observational only: they never feed back into modeled
 * behaviour, so determinism of simulation results is untouched.
 */

#ifndef EAT_OBS_PROFILER_HH
#define EAT_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eat::obs
{

/** One completed stage's wall-clock cost. */
struct StageTiming
{
    std::string name;
    double seconds = 0.0;
};

/** The per-run stage breakdown (plain data; copyable into results). */
struct StageTimings
{
    std::vector<StageTiming> stages;

    /** Seconds of the stage named @p name; 0 when absent. */
    double seconds(std::string_view name) const;

    /** Total wall seconds across all stages. */
    double total() const;
};

/** @return kilo simulated instructions per wall second (0 if unknown). */
double simKips(std::uint64_t instructions, double seconds);

/** Times a sequence of named stages. */
class StageProfiler
{
  public:
    /** Close the running stage (if any) and open @p name. */
    void start(std::string name);

    /** Close the running stage (if any). */
    void stop();

    /** Stop and return everything measured so far. */
    StageTimings timings();

  private:
    using Clock = std::chrono::steady_clock;

    StageTimings done_;
    std::string current_;
    Clock::time_point began_{};
    bool running_ = false;
};

} // namespace eat::obs

#endif // EAT_OBS_PROFILER_HH
