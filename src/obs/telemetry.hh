/**
 * @file
 * Per-interval telemetry stream (JSON Lines).
 *
 * The paper's interval-level claims (Figure 4 MPKI phases, Figure 7
 * way-mask dynamics, Figure 10 energy deltas) are invisible in
 * end-of-run aggregates. The TelemetrySink therefore emits one
 * self-describing JSON record per Lite interval — MPKI, per-level hit
 * ratios, the active way-mask of every monitored TLB, the interval's
 * dynamic energy, walk cycles, and checker/injector activity — so a
 * wrong Figure-10 bar can be localized to the interval where behaviour
 * diverged instead of reconstructed from printf archaeology.
 *
 * Format: one JSON object per line ("JSONL"); every record carries
 * {"schema":"eat.telemetry","v":2} so consumers can reject streams
 * they do not understand. Fields are deltas over the closed interval
 * unless suffixed _total.
 *
 * v2 adds the "core" field (which core emitted the record). Readers of
 * v1 streams should treat a missing "core" as core 0 — v1 was emitted
 * by single-core simulations only.
 *
 * v3 adds "host_walk_refs", the interval's host (EPT) walk memory
 * references under nested paging. Always present; 0 in flat and
 * identity-host runs, so pre-vm readers can simply ignore it.
 *
 * v4 adds "l3_probes" and "l3_hits", the interval's L3 translation-tier
 * activity. Always present; 0 with --l3=none, so pre-l3 readers can
 * ignore them the same way.
 */

#ifndef EAT_OBS_TELEMETRY_HH
#define EAT_OBS_TELEMETRY_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"

namespace eat::obs
{

/** Schema identifier stamped into every telemetry record. */
inline constexpr std::string_view kTelemetrySchema = "eat.telemetry";
inline constexpr int kTelemetryVersion = 4;

/** One closed interval's worth of simulation telemetry. */
struct IntervalRecord
{
    unsigned core = 0;             ///< emitting core (always 0 pre-v2)
    std::uint64_t interval = 0;    ///< 0-based interval index
    InstrCount startInstr = 0;     ///< instructions retired at open
    InstrCount instructions = 0;   ///< instructions in the interval

    // Interval deltas of the core event counters.
    std::uint64_t memOps = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0; ///< page walks
    std::uint64_t hostWalkRefs = 0; ///< host-walk references (nested paging)
    std::uint64_t l3Probes = 0; ///< L3-tier probes (0 with --l3=none)
    std::uint64_t l3Hits = 0;   ///< L3-tier hits
    Cycles missCycles = 0;      ///< L1-miss + walk cycles
    PicoJoules dynamicPj = 0.0;

    // Derived per-interval rates.
    double l1Mpki = 0.0;
    double l2Mpki = 0.0;
    double l1HitRatio = 0.0; ///< l1Hits / memOps
    double l2HitRatio = 0.0; ///< l2Hits / (l2Hits + l2Misses)

    /** Active way-mask after this interval's Lite decision:
     *  (TLB name, active ways). Empty when no resizable TLBs exist. */
    std::vector<std::pair<std::string, unsigned>> wayMask;

    // Self-check activity in the interval.
    std::uint64_t checkMismatches = 0;
    std::uint64_t faultsInjected = 0;
};

/** Streams IntervalRecords as JSONL to a file or caller-owned stream. */
class TelemetrySink
{
  public:
    /** Stream to @p out (not owned; must outlive the sink). */
    explicit TelemetrySink(std::ostream &out) : out_(&out) {}

    /** Open @p path for writing (truncating). */
    static Result<std::unique_ptr<TelemetrySink>>
    open(const std::string &path);

    /** Append one record as a single JSON line. */
    void emit(const IntervalRecord &record);

    std::uint64_t recordsEmitted() const { return records_; }

    /** Flush and report stream health. */
    Status close();

  private:
    TelemetrySink() = default;

    std::unique_ptr<std::ofstream> file_; ///< set when open() created us
    std::ostream *out_ = nullptr;
    std::uint64_t records_ = 0;
};

} // namespace eat::obs

#endif // EAT_OBS_TELEMETRY_HH
