#include "stats/csv.hh"

namespace eat::stats
{

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needsQuoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needsQuoting)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

} // namespace eat::stats
