#include "stats/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace eat::stats
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    eat_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    eat_assert(cells.size() == headers_.size(),
               "row has ", cells.size(), " cells, table has ",
               headers_.size(), " columns");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::percent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << '%';
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << "  ";
            // Left-align the first column (labels), right-align numbers.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << '\n';
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace eat::stats
