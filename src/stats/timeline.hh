/**
 * @file
 * Interval time-series recorder (used by the Figure 4 MPKI timelines).
 */

#ifndef EAT_STATS_TIMELINE_HH
#define EAT_STATS_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eat::stats
{

/**
 * Records one double sample per fixed-size instruction interval, e.g.
 * the L1 TLB MPKI of each 1 M-instruction window.
 */
class Timeline
{
  public:
    Timeline() = default;

    /** @param interval_instructions the width of each sample window. */
    explicit Timeline(std::uint64_t interval_instructions);

    /** Close the current window with sample value @p v. */
    void record(double v);

    std::uint64_t intervalInstructions() const { return interval_; }
    std::size_t numSamples() const { return samples_.size(); }
    double sample(std::size_t i) const { return samples_.at(i); }
    const std::vector<double> &samples() const { return samples_; }

    /** Arithmetic mean of all samples; 0 when empty. */
    double mean() const;

    /** Maximum sample; 0 when empty. */
    double max() const;

    /**
     * Downsample to at most @p points samples by averaging adjacent
     * windows (for compact bench output).
     */
    std::vector<double> downsample(std::size_t points) const;

  private:
    std::uint64_t interval_ = 0;
    std::vector<double> samples_;
};

} // namespace eat::stats

#endif // EAT_STATS_TIMELINE_HH
