/**
 * @file
 * Plain-text table formatting for the benchmark harness output.
 *
 * Every figure/table bench binary prints its rows through TextTable so the
 * reproduced tables and figures share one readable layout.
 */

#ifndef EAT_STATS_TABLE_HH
#define EAT_STATS_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace eat::stats
{

/** A column-aligned text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; it must have exactly one cell per column. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string percent(double fraction, int precision = 1);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

    /** Render the table (header, separator, rows) to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string (used by the tests). */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace eat::stats

#endif // EAT_STATS_TABLE_HH
