#include "stats/timeline.hh"

#include <algorithm>

namespace eat::stats
{

Timeline::Timeline(std::uint64_t interval_instructions)
    : interval_(interval_instructions)
{
}

void
Timeline::record(double v)
{
    samples_.push_back(v);
}

double
Timeline::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
Timeline::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

std::vector<double>
Timeline::downsample(std::size_t points) const
{
    if (points == 0 || samples_.empty())
        return {};
    if (samples_.size() <= points)
        return samples_;
    std::vector<double> out;
    out.reserve(points);
    const double stride =
        static_cast<double>(samples_.size()) / static_cast<double>(points);
    for (std::size_t p = 0; p < points; ++p) {
        const auto begin = static_cast<std::size_t>(p * stride);
        auto end = static_cast<std::size_t>((p + 1) * stride);
        end = std::min(std::max(end, begin + 1), samples_.size());
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            sum += samples_[i];
        out.push_back(sum / static_cast<double>(end - begin));
    }
    return out;
}

} // namespace eat::stats
