/**
 * @file
 * Simple event counters with interval snapshot support.
 *
 * The simulator accumulates most of its raw statistics in Counter objects.
 * Lite's interval logic needs "events since the last interval boundary",
 * which SnapshotCounter provides without a second accumulator.
 */

#ifndef EAT_STATS_COUNTER_HH
#define EAT_STATS_COUNTER_HH

#include <cstdint>

namespace eat::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void add(std::uint64_t n) { value_ += n; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }
    operator std::uint64_t() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A counter that can report the delta since its last snapshot while the
 * lifetime total keeps accumulating.
 */
class SnapshotCounter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void add(std::uint64_t n) { value_ += n; }

    /** Lifetime total. */
    std::uint64_t value() const { return value_; }

    /** Events since the previous snapshot() call. */
    std::uint64_t sinceSnapshot() const { return value_ - snapshot_; }

    /** Mark an interval boundary and return the closed interval's delta. */
    std::uint64_t
    snapshot()
    {
        const std::uint64_t delta = value_ - snapshot_;
        snapshot_ = value_;
        return delta;
    }

  private:
    std::uint64_t value_ = 0;
    std::uint64_t snapshot_ = 0;
};

/** Misses per kilo-instruction given raw miss and instruction counts. */
inline double
mpki(std::uint64_t misses, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(misses) * 1000.0 /
           static_cast<double>(instructions);
}

} // namespace eat::stats

#endif // EAT_STATS_COUNTER_HH
