/**
 * @file
 * Fixed-bucket histogram used for way-activity and distance statistics.
 */

#ifndef EAT_STATS_HISTOGRAM_HH
#define EAT_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eat::stats
{

/**
 * A histogram over a small fixed set of integer buckets.
 *
 * Used e.g. to record how many L1 TLB lookups were performed with each
 * active-way configuration (Table 5 of the paper).
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Create a histogram with @p buckets zeroed buckets. */
    explicit Histogram(std::size_t buckets);

    /** Grow (never shrink) to at least @p buckets buckets. */
    void
    ensureBuckets(std::size_t buckets)
    {
        if (counts_.size() < buckets)
            counts_.resize(buckets, 0);
    }

    /** Add @p weight samples to @p bucket (growing if needed). */
    void
    record(std::size_t bucket, std::uint64_t weight = 1)
    {
        ensureBuckets(bucket + 1);
        counts_[bucket] += weight;
        total_ += weight;
    }

    std::uint64_t bucketCount(std::size_t bucket) const;
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in @p bucket; 0 when the histogram is empty. */
    double fraction(std::size_t bucket) const;

    void reset();

    /** Render "b0:n0 b1:n1 ..." for debugging. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace eat::stats

#endif // EAT_STATS_HISTOGRAM_HH
