#include "stats/histogram.hh"

#include <sstream>

namespace eat::stats
{

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0) {}

std::uint64_t
Histogram::bucketCount(std::size_t bucket) const
{
    return bucket < counts_.size() ? counts_[bucket] : 0;
}

double
Histogram::fraction(std::size_t bucket) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bucketCount(bucket)) /
           static_cast<double>(total_);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << i << ':' << counts_[i];
    }
    return os.str();
}

} // namespace eat::stats
