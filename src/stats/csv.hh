/**
 * @file
 * CSV emission so bench output can be re-plotted outside the harness.
 */

#ifndef EAT_STATS_CSV_HH
#define EAT_STATS_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace eat::stats
{

/**
 * Minimal CSV writer (RFC-4180 quoting for cells containing commas,
 * quotes, or newlines).
 */
class CsvWriter
{
  public:
    /** Write rows to @p os; the writer does not own the stream. */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit one row. */
    void writeRow(const std::vector<std::string> &cells);

    /** Quote a single cell per RFC 4180 if necessary. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &os_;
};

} // namespace eat::stats

#endif // EAT_STATS_CSV_HH
