/**
 * @file
 * Strict numeric parsing for command-line and spec-string values.
 *
 * std::strtoull silently turns garbage into 0 and wraps on overflow;
 * these helpers reject anything that is not exactly one well-formed
 * number, so "--instructions=abc" is an error instead of an empty run.
 */

#ifndef EAT_BASE_PARSE_HH
#define EAT_BASE_PARSE_HH

#include <cstdint>
#include <string_view>

#include "base/status.hh"

namespace eat
{

/** Parse a full decimal uint64; rejects empty/trailing text/overflow. */
Result<std::uint64_t> parseU64(std::string_view text);

/** Parse a finite double; rejects empty strings and trailing text. */
Result<double> parseF64(std::string_view text);

} // namespace eat

#endif // EAT_BASE_PARSE_HH
