/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator (workload address streams,
 * Lite's random full-activation) draws from an explicitly seeded Rng so
 * that runs are bit-identical across machines and reruns. The generator
 * is xoshiro256** seeded through splitmix64, which is both fast and has
 * no linear artifacts in the low bits.
 */

#ifndef EAT_BASE_RNG_HH
#define EAT_BASE_RNG_HH

#include <cstdint>

#include "base/logging.hh"

namespace eat
{

/** Deterministic xoshiro256** pseudo-random number generator. */
class Rng
{
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a value uniform in [0, bound); @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        eat_assert(bound != 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return a value uniform in [lo, hi]; requires lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        eat_assert(lo <= hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** @return a double uniform in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p (clamped to [0, 1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return real() < p;
    }

    /** Fork an independent stream (for per-component generators). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace eat

#endif // EAT_BASE_RNG_HH
