#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>

namespace eat
{

namespace
{

/** setLogLevel() override; empty means "defer to the environment". */
std::optional<LogLevel> gLogLevelOverride;

LogLevel
levelFromEnvironment()
{
    const char *value = std::getenv("EAT_LOG_LEVEL");
    if (value == nullptr)
        return LogLevel::Info;
    const std::string_view text(value);
    if (text == "silent")
        return LogLevel::Silent;
    if (text == "warn")
        return LogLevel::Warn;
    if (text == "info" || text.empty())
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: unrecognized EAT_LOG_LEVEL '%s' (expected silent, "
                 "warn, or info); using info\n",
                 value);
    return LogLevel::Info;
}

} // namespace

LogLevel
logLevel()
{
    if (gLogLevelOverride)
        return *gLogLevelOverride;
    // Read once: repeated getenv on hot warn paths would be waste, and
    // a mid-run environment change should not alter behaviour.
    static const LogLevel fromEnv = levelFromEnvironment();
    return fromEnv;
}

void
setLogLevel(LogLevel level)
{
    gLogLevelOverride = level;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets the death-test and property-test
    // suites observe panics without taking the process down.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace eat
