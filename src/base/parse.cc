#include "base/parse.hh"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace eat
{

Result<std::uint64_t>
parseU64(std::string_view text)
{
    if (text.empty())
        return Status::error("expected a number, got an empty string");
    for (const char c : text) {
        if (c < '0' || c > '9') {
            return Status::error("invalid number '", std::string(text),
                                 "': unexpected character '", c, "'");
        }
    }
    errno = 0;
    const std::string buf(text);
    char *end = nullptr;
    const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
    if (errno == ERANGE || end != buf.c_str() + buf.size())
        return Status::error("number '", buf, "' out of range for uint64");
    return static_cast<std::uint64_t>(v);
}

Result<double>
parseF64(std::string_view text)
{
    if (text.empty())
        return Status::error("expected a number, got an empty string");
    errno = 0;
    const std::string buf(text);
    char *end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size())
        return Status::error("invalid number '", buf, "'");
    if (errno == ERANGE || v != v)
        return Status::error("number '", buf, "' out of range");
    return v;
}

} // namespace eat
