/**
 * @file
 * Fundamental scalar types and unit helpers shared by all eat modules.
 */

#ifndef EAT_BASE_TYPES_HH
#define EAT_BASE_TYPES_HH

#include <cstdint>

namespace eat
{

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** A virtual page number at 4 KB granularity. */
using Vpn = std::uint64_t;

/** A physical frame number at 4 KB granularity. */
using Pfn = std::uint64_t;

/** A count of processor cycles. */
using Cycles = std::uint64_t;

/** A count of retired instructions. */
using InstrCount = std::uint64_t;

/** Dynamic energy in picojoules. */
using PicoJoules = double;

/** Leakage power in milliwatts. */
using MilliWatts = double;

constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** @return true iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return @p v rounded down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** @return @p v rounded up to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace eat

#endif // EAT_BASE_TYPES_HH
