/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors (bad configuration, invalid arguments). warn() and
 * inform() report conditions without stopping the simulation.
 */

#ifndef EAT_BASE_LOGGING_HH
#define EAT_BASE_LOGGING_HH

#include <sstream>
#include <string>
#include <string_view>

namespace eat
{

/**
 * Verbosity of the non-fatal channels. panic/fatal always print;
 * Silent suppresses warn() and inform(), Warn suppresses inform()
 * only, Info (the default) prints everything.
 */
enum class LogLevel
{
    Silent,
    Warn,
    Info,
};

/**
 * The effective log level. Defaults to the EAT_LOG_LEVEL environment
 * variable ("silent" | "warn" | "info", read once, case-sensitive;
 * unset or unrecognized means Info) until setLogLevel() overrides it.
 */
LogLevel logLevel();

/** Programmatic override of the log level (wins over EAT_LOG_LEVEL). */
void setLogLevel(LogLevel level);

namespace detail
{

/** Terminate with an internal-error message; never returns. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Terminate with a user-error message; never returns. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Stream-concatenate all arguments into a string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

#define eat_panic(...) \
    ::eat::detail::panicImpl(__FILE__, __LINE__, ::eat::detail::cat(__VA_ARGS__))

#define eat_fatal(...) \
    ::eat::detail::fatalImpl(__FILE__, __LINE__, ::eat::detail::cat(__VA_ARGS__))

#define eat_warn(...) \
    ::eat::detail::warnImpl(::eat::detail::cat(__VA_ARGS__))

#define eat_inform(...) \
    ::eat::detail::informImpl(::eat::detail::cat(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define eat_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::eat::detail::panicImpl(__FILE__, __LINE__,                  \
                ::eat::detail::cat("assertion '", #cond, "' failed: ",    \
                                   ##__VA_ARGS__));                       \
        }                                                                 \
    } while (0)

} // namespace eat

#endif // EAT_BASE_LOGGING_HH
