/**
 * @file
 * Recoverable error reporting for library code.
 *
 * Status is the return type of operations that can fail for reasons the
 * caller may want to handle (bad configuration, I/O failure, malformed
 * input), as opposed to eat_panic/eat_fatal which unwind immediately.
 * Library code returns Status (or Result<T> when there is a value);
 * boundaries that cannot recover convert with eat_check_fatal.
 */

#ifndef EAT_BASE_STATUS_HH
#define EAT_BASE_STATUS_HH

#include <string>
#include <utility>

#include "base/logging.hh"

namespace eat
{

/** The outcome of a fallible operation; success or an error message. */
class [[nodiscard]] Status
{
  public:
    /** Default-constructed Status is success. */
    Status() = default;

    /** Build a failure from stream-concatenated message parts. */
    template <typename... Args>
    static Status
    error(Args &&...args)
    {
        Status s;
        s.failed_ = true;
        s.message_ = detail::cat(std::forward<Args>(args)...);
        return s;
    }

    bool ok() const { return !failed_; }
    const std::string &message() const { return message_; }

  private:
    bool failed_ = false;
    std::string message_;
};

/** A value of type T, or the Status explaining why there is none. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}

    Result(Status status) : status_(std::move(status))
    {
        eat_assert(!status_.ok(), "Result built from a success Status");
    }

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    const T &
    value() const
    {
        eat_assert(ok(), "Result::value() on error: ", status_.message());
        return value_;
    }

    T &
    value()
    {
        eat_assert(ok(), "Result::value() on error: ", status_.message());
        return value_;
    }

  private:
    Status status_;
    T value_{};
};

} // namespace eat

/** Convert a recoverable error into a fatal one at a boundary that
 *  cannot handle it (evaluates @p expr exactly once). */
#define eat_check_fatal(expr)                                             \
    do {                                                                  \
        const ::eat::Status eat_check_status_ = (expr);                   \
        if (!eat_check_status_.ok())                                      \
            eat_fatal(eat_check_status_.message());                       \
    } while (0)

#endif // EAT_BASE_STATUS_HH
