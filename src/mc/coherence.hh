/**
 * @file
 * Hardware translation coherence (HATRIC-style, after Yan et al.).
 *
 * The PR 5 shootdown model broadcasts an IPI to every core on each
 * remap, charging initiator cycles plus per-core energy whether or not
 * a core ever cached a translation of the remapped space. HATRIC's
 * observation is that translations can be tagged with their owning
 * address space and a version, so a directory-style coherence filter
 * can deliver invalidations only to the cores that actually share the
 * space — turning an O(cores) broadcast into an O(sharers) probe.
 *
 * This module is the cost model's directory: it tracks, per address
 * space, which cores have scheduled the space (and may therefore hold
 * tagged translations) and a monotonically increasing version bumped
 * by every remap. The *architectural* invalidation work is identical
 * to IPI mode — every core still drops the remapped range — so the two
 * coherence modes produce bit-identical translation outcomes and
 * differ only in their cycle/energy books. The differential tests in
 * tests/test_translation_coherence.cc pin exactly that property.
 */

#ifndef EAT_MC_COHERENCE_HH
#define EAT_MC_COHERENCE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "tlb/tlb_entry.hh"

namespace eat::mc
{

/** What one coherence-filter probe resolved. */
struct CohProbe
{
    std::uint32_t sharers = 0;   ///< core bitmask that may cache the space
    std::uint64_t version = 0;   ///< space version after this invalidation
};

/** Directory of translation sharers, one per simulated machine. */
class CoherenceFilter
{
  public:
    explicit CoherenceFilter(unsigned cores);

    /**
     * Note that @p core is about to run address space @p asid and may
     * cache its translations from now on. Called at every scheduling
     * decision; idempotent.
     */
    void noteScheduled(tlb::Asid asid, unsigned core);

    /**
     * Resolve the sharer set for a remap of @p asid and bump the
     * space's version (the new version is what re-tagged translations
     * carry). The sharer set is *not* cleared: cores keep their tagged
     * entries until they are invalidated lazily, so the filter stays
     * conservative, exactly like a real directory with silent evictions.
     */
    CohProbe probe(tlb::Asid asid);

    /** Current version of @p asid's translations (0 until remapped). */
    std::uint64_t versionOf(tlb::Asid asid) const;

    /** Cores currently registered as sharers of @p asid. */
    std::uint32_t sharersOf(tlb::Asid asid) const;

    unsigned cores() const { return cores_; }

  private:
    void grow(tlb::Asid asid);

    unsigned cores_;
    std::vector<std::uint32_t> sharers_;  ///< indexed by asid
    std::vector<std::uint64_t> versions_; ///< indexed by asid
};

/** Number of set bits in a sharer mask. */
unsigned sharerCount(std::uint32_t mask);

} // namespace eat::mc

#endif // EAT_MC_COHERENCE_HH
