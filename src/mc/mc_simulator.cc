#include "mc/mc_simulator.hh"

#include <algorithm>
#include <fstream>
#include <memory>

#include "base/logging.hh"
#include "core/mmu.hh"
#include "mc/coherence.hh"
#include "mc/mix.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "stats/counter.hh"
#include "vm/memory_manager.hh"

namespace eat::mc
{

namespace
{

/** One scheduled task: a workload stream bound to an address space. */
struct Task
{
    workloads::WorkloadSpec spec;
    tlb::Asid asid = 0;
    vm::MemoryManager *mm = nullptr; ///< not owned (shared mode aliases)
    const vm::RangeTable *rangeTable = nullptr;
    std::unique_ptr<workloads::WorkloadGenerator> gen;
    InstrCount retired = 0;    ///< measured instructions, all cores
    InstrCount sinceChurn = 0; ///< instructions since the last OS pass
    bool demoteNext = true;    ///< THP churn alternates demote/promote
    std::uint64_t remapEvents = 0;
};

/** The seed of task @p t's generator; task 0 keeps the config seed so
 *  a one-task run replays the single-core driver bit for bit. */
std::uint64_t
taskSeed(const McConfig &config, unsigned t)
{
    return config.base.seed + t * 0x9e3779b97f4a7c15ull;
}

/** The OS policy of the configured organization (same override hook as
 *  the single-core driver). */
vm::OsPolicy
policyOf(const McConfig &config)
{
    auto policy = config.base.mmu.osPolicy();
    if (config.base.eagerRangesPerRegion > 0)
        policy.eagerRangesPerRegion = config.base.eagerRangesPerRegion;
    return policy;
}

/** Footprint-derived physical pool size (single-core formula). */
std::uint64_t
defaultPhysBytes(std::uint64_t footprint)
{
    return alignUp(footprint + footprint / 4 + 256_MiB, 2_MiB);
}

/**
 * One OS churn pass over @p task's largest region: THP policies
 * alternate demotion and promotion; everything else attempts a
 * compaction (which fails gracefully when no contiguous block fits).
 * Any page-table rewrite fires the remap listener, i.e. the shootdown.
 */
void
churnTask(Task &task)
{
    const auto &regions = task.gen->regions();
    if (regions.empty())
        return;
    const vm::Region *target = &regions[0];
    for (const auto &r : regions) {
        if (r.bytes > target->bytes)
            target = &r;
    }
    bool changed = false;
    if (task.mm->policy().transparentHugePages) {
        changed = task.demoteNext ? task.mm->demoteRegion(*target) > 0
                                  : task.mm->promoteRegion(*target) > 0;
        task.demoteNext = !task.demoteNext;
    } else {
        changed = task.mm->compactRegion(*target);
    }
    if (changed)
        ++task.remapEvents;
}

} // namespace

Result<McConfig::CoherenceMode>
coherenceModeFromName(std::string_view name)
{
    if (name == "ipi")
        return McConfig::CoherenceMode::Ipi;
    if (name == "hw")
        return McConfig::CoherenceMode::Hw;
    return Status::error("unknown coherence mode '", name,
                         "' (expected ipi or hw)");
}

std::string_view
coherenceModeName(McConfig::CoherenceMode mode)
{
    return mode == McConfig::CoherenceMode::Hw ? "hw" : "ipi";
}

McResult
mcSimulate(const McConfig &config)
{
    eat_assert(config.cores >= 1 && config.cores <= kMaxCores,
               "core count ", config.cores, " out of range");
    eat_assert(!config.mix.empty(), "empty workload mix");
    eat_assert(config.base.simulateInstructions > 0,
               "empty measured window");
    eat_assert(config.quantumInstructions > 0, "empty scheduler quantum");
    eat_assert(config.faultCore < config.cores,
               "fault core ", config.faultCore, " beyond core count");

    obs::StageProfiler profiler;
    profiler.start("setup");

    const unsigned cores = config.cores;
    const unsigned numTasks = static_cast<unsigned>(
        std::max<std::size_t>(cores, config.mix.size()));
    const bool wantRange =
        config.base.mmu.hasL1Range || config.base.mmu.hasL2Range;

    // --- address spaces. Private mode: one per task, every one
    // starting at the same virtual base, so the spaces overlap and the
    // ASID tags are load-bearing. Shared mode: one space, every task
    // in its own region of it.
    std::vector<std::unique_ptr<vm::MemoryManager>> spaces;
    if (config.sharedAddressSpace) {
        std::uint64_t physBytes = config.base.physBytes;
        if (physBytes == 0) {
            std::uint64_t need = 0;
            for (unsigned t = 0; t < numTasks; ++t) {
                const std::uint64_t fp =
                    config.mix[t % config.mix.size()].footprintBytes();
                need += fp + fp / 4;
            }
            physBytes = alignUp(need + 256_MiB, 2_MiB);
        }
        spaces.push_back(std::make_unique<vm::MemoryManager>(
            policyOf(config), physBytes,
            config.base.seed ^ 0x05f5e0ffull));
    } else {
        for (unsigned t = 0; t < numTasks; ++t) {
            std::uint64_t physBytes = config.base.physBytes;
            if (physBytes == 0) {
                physBytes = defaultPhysBytes(
                    config.mix[t % config.mix.size()].footprintBytes());
            }
            spaces.push_back(std::make_unique<vm::MemoryManager>(
                policyOf(config), physBytes,
                taskSeed(config, t) ^ 0x05f5e0ffull));
        }
    }

    std::vector<Task> tasks(numTasks);
    for (unsigned t = 0; t < numTasks; ++t) {
        Task &task = tasks[t];
        task.spec = config.mix[t % config.mix.size()];
        task.asid =
            config.sharedAddressSpace ? 0 : static_cast<tlb::Asid>(t);
        task.mm = config.sharedAddressSpace ? spaces[0].get()
                                            : spaces[t].get();
        task.gen = std::make_unique<workloads::WorkloadGenerator>(
            task.spec, *task.mm, taskSeed(config, t));
        task.rangeTable = wantRange ? &task.mm->rangeTable() : nullptr;
    }

    // --- cores. Every core starts pointed at task 0's tables; the
    // first quantum's switchContext retargets it (free for core 0).
    // Hw coherence swaps the cost book the MMUs keep for remap
    // invalidations; the invalidations themselves are identical.
    const bool hwCoherence =
        config.coherence == McConfig::CoherenceMode::Hw;
    core::MmuConfig mmuCfg = config.base.mmu;
    mmuCfg.hwCoherence = hwCoherence;
    std::vector<std::unique_ptr<core::Mmu>> mmus;
    for (unsigned c = 0; c < cores; ++c) {
        auto mmu = std::make_unique<core::Mmu>(
            mmuCfg, tasks[0].mm->pageTable(), tasks[0].rangeTable);
        mmu->setCoreId(c);
        mmus.push_back(std::move(mmu));
    }

    // --- per-core checkers: fault attribution falls out of having one
    // checker per core (the core whose checker fires is the core that
    // observed the corruption).
    std::vector<std::unique_ptr<check::ShadowChecker>> checkers(cores);
    for (unsigned c = 0; c < cores; ++c) {
        if (config.base.checkLevel == check::CheckLevel::Off)
            continue;
        auto checker = std::make_unique<check::ShadowChecker>(
            config.base.checkLevel, tasks[0].mm->pageTable(),
            tasks[0].rangeTable);
        if (!config.sharedAddressSpace) {
            for (unsigned t = 1; t < numTasks; ++t) {
                checker->addContext(tasks[t].asid,
                                    tasks[t].mm->pageTable(),
                                    tasks[t].rangeTable);
            }
        }
        if (cores > 1)
            checker->setCoreLabel("core" + std::to_string(c) + ": ");
        mmus[c]->setChecker(checker.get());
        checkers[c] = std::move(checker);
    }

    // --- fault injector, wired to exactly one core's structures.
    std::unique_ptr<check::FaultInjector> injector;
    if (!config.base.faultSpec.empty()) {
        auto specs = check::parseFaultSpecs(config.base.faultSpec);
        if (!specs.ok())
            eat_fatal(specs.status().message());
        injector = std::make_unique<check::FaultInjector>(
            std::move(specs.value()), config.base.seed);
        core::Mmu &target = *mmus[config.faultCore];
        injector->registerPageTlb(&target.l1Tlb4K(),
                                  check::FaultTarget::L1Tlb4K);
        injector->registerPageTlb(target.l1Tlb2M(),
                                  check::FaultTarget::L1Tlb2M);
        injector->registerPageTlb(target.l1Tlb1G(),
                                  check::FaultTarget::L1Tlb1G);
        injector->registerPageTlb(&target.l2Tlb(),
                                  check::FaultTarget::L2Tlb);
        injector->registerRangeTlb(target.l1RangeTlb(),
                                   check::FaultTarget::L1Range);
        injector->registerRangeTlb(target.l2RangeTlb(),
                                   check::FaultTarget::L2Range);
    }
    // The front cache must not replay around an armed injector's
    // corruption; only the targeted core's structures are at risk.
    for (unsigned c = 0; c < cores; ++c) {
        mmus[c]->setFrontCacheEnabled(
            config.base.frontCache &&
            !(injector && c == config.faultCore));
    }

    // --- shared observability outputs. One telemetry stream (records
    // carry the emitting core's id) and one trace for all cores.
    std::unique_ptr<obs::TelemetrySink> telemetry;
    std::unique_ptr<obs::TraceWriter> trace;
    if (!config.base.telemetryPath.empty()) {
        auto sink = obs::TelemetrySink::open(config.base.telemetryPath);
        if (!sink.ok())
            eat_fatal(sink.status().message());
        telemetry = std::move(sink.value());
        for (auto &mmu : mmus)
            mmu->setTelemetry(telemetry.get());
        if (injector)
            mmus[config.faultCore]->setInjectStats(&injector->stats());
    }
    if (!config.base.traceOutPath.empty()) {
        trace = std::make_unique<obs::TraceWriter>();
        for (unsigned c = 0; c < cores; ++c) {
            mmus[c]->setTrace(trace.get());
            if (checkers[c])
                checkers[c]->setTrace(trace.get(), c);
        }
        if (injector)
            injector->setTrace(trace.get(), config.faultCore);
    }

    // One provenance sink shared by every core: events carry the core
    // id, and the summary's per-core totals reconcile against each
    // core's meters independently.
    std::unique_ptr<obs::ProvenanceSink> provenance;
    eat_assert(config.base.provenanceSampleEvery >= 1,
               "provenance sample rate must be >= 1");
    if (!config.base.provenancePath.empty()) {
        if (!obs::kProvenanceCompiledIn) {
            eat_fatal("this build has no provenance hooks "
                      "(EAT_PROVENANCE=OFF); cannot write '",
                      config.base.provenancePath, "'");
        }
        auto sink = obs::ProvenanceSink::open(
            config.base.provenancePath, config.base.provenanceSampleEvery);
        if (!sink.ok())
            eat_fatal(sink.status().message());
        provenance = std::move(sink.value());
    } else if (config.base.provenanceEnabled &&
               obs::kProvenanceCompiledIn) {
        provenance = std::make_unique<obs::ProvenanceSink>(
            config.base.provenanceSampleEvery);
    }
    if (provenance) {
        for (auto &mmu : mmus)
            mmu->setProvenance(provenance.get());
    }

    // --- shootdown broadcast. Every page-table rewrite invalidates the
    // affected span on every core (the initiator's invalidation is part
    // of the remap), and every checker re-snapshots the rewritten
    // space. Who pays depends on the coherence mode: under IPI the
    // initiator is charged a full broadcast; under hw coherence it pays
    // one filter probe plus a per-sharer message, and only the sharer
    // cores the filter names take an invalidation receipt.
    CoherenceFilter filter(cores);
    unsigned activeCore = 0;
    std::uint64_t shootdownEvents = 0;
    std::uint64_t shootdownInvalidations = 0;
    std::uint64_t coherenceProbes = 0;
    std::uint64_t coherenceTargetedCores = 0;
    auto broadcast = [&](tlb::Asid asid, const vm::RemapEvent &event) {
        unsigned invalidated = 0;
        for (unsigned c = 0; c < cores; ++c) {
            invalidated += mmus[c]->shootdownInvalidate(
                event.vbase, event.vlimit, asid, c == activeCore);
        }
        if (cores > 1) {
            if (hwCoherence) {
                const auto probe = filter.probe(asid);
                const std::uint32_t remote =
                    probe.sharers & ~(1u << activeCore);
                const unsigned targets = sharerCount(remote);
                mmus[activeCore]->chargeCoherenceProbe(
                    targets, invalidated, probe.version, event.vbase);
                for (unsigned c = 0; c < cores; ++c) {
                    if (remote & (1u << c))
                        mmus[c]->receiveCoherenceInvalidation();
                }
                ++coherenceProbes;
                coherenceTargetedCores += targets;
            } else {
                mmus[activeCore]->chargeShootdown(cores - 1, invalidated);
            }
        }
        for (unsigned c = 0; c < cores; ++c) {
            if (checkers[c])
                checkers[c]->rebuildContext(asid);
        }
        ++shootdownEvents;
        shootdownInvalidations += invalidated;
    };
    for (auto &space : spaces) {
        // One listener per distinct space; all tasks of a shared space
        // run as ASID 0, so the space's ASID is its first task's.
        tlb::Asid spaceAsid = 0;
        for (const auto &task : tasks) {
            if (task.mm == space.get()) {
                spaceAsid = task.asid;
                break;
            }
        }
        space->setRemapListener(
            [&broadcast, spaceAsid](const vm::RemapEvent &event) {
                broadcast(spaceAsid, event);
            });
    }

    // --- fast-forward every task (cold TLBs at the measured window,
    // exactly as single-core).
    if (config.base.fastForwardInstructions > 0) {
        profiler.start("fast-forward");
        for (auto &task : tasks)
            task.gen->skip(config.base.fastForwardInstructions);
    }

    // --- measured window: round-robin quanta until every core has
    // retired its budget.
    profiler.start("simulate");
    const InstrCount budget = config.base.simulateInstructions;
    std::vector<InstrCount> coreRetired(cores, 0);

    std::vector<stats::Timeline> timelines;
    for (unsigned c = 0; c < cores; ++c)
        timelines.emplace_back(config.base.timelineInterval);
    std::vector<InstrCount> nextSample(
        cores, config.base.timelineInterval ? config.base.timelineInterval
                                            : 0);
    std::vector<std::uint64_t> missesAtSample(cores, 0);
    std::vector<InstrCount> instrAtSample(cores, 0);

    std::uint64_t round = 0;
    while (true) {
        bool anyActive = false;
        for (unsigned c = 0; c < cores; ++c) {
            if (coreRetired[c] >= budget)
                continue;
            anyActive = true;
            Task &task = tasks[(round + c) % numTasks];
            activeCore = c;
            filter.noteScheduled(task.asid, c);
            mmus[c]->switchContext(task.asid, task.mm->pageTable(),
                                   task.rangeTable, config.ctxFlush);
            if (config.remapInterval > 0 &&
                task.sinceChurn >= config.remapInterval) {
                task.sinceChurn = 0;
                churnTask(task);
            }

            const InstrCount quantumEnd =
                std::min(coreRetired[c] + config.quantumInstructions,
                         budget);
            while (coreRetired[c] < quantumEnd) {
                const auto op = task.gen->next();
                if (injector && c == config.faultCore)
                    injector->tick();
                mmus[c]->tick(op.instrGap);
                mmus[c]->access(op.vaddr);
                coreRetired[c] += op.instrGap;
                task.retired += op.instrGap;
                task.sinceChurn += op.instrGap;

                if (config.base.timelineInterval) {
                    const InstrCount elapsed = coreRetired[c];
                    while (nextSample[c] && elapsed >= nextSample[c]) {
                        const auto &s = mmus[c]->stats();
                        const std::uint64_t dMiss =
                            s.l1Misses - missesAtSample[c];
                        const InstrCount dInstr =
                            s.instructions - instrAtSample[c];
                        timelines[c].record(stats::mpki(dMiss, dInstr));
                        missesAtSample[c] = s.l1Misses;
                        instrAtSample[c] = s.instructions;
                        nextSample[c] += config.base.timelineInterval;
                    }
                }
            }
        }
        if (!anyActive)
            break;
        ++round;
    }

    // Flush the final partial timeline windows.
    if (config.base.timelineInterval) {
        for (unsigned c = 0; c < cores; ++c) {
            const auto &s = mmus[c]->stats();
            const std::uint64_t dMiss = s.l1Misses - missesAtSample[c];
            const InstrCount dInstr = s.instructions - instrAtSample[c];
            if (dInstr > 0)
                timelines[c].record(stats::mpki(dMiss, dInstr));
        }
    }

    profiler.start("report");
    McResult result;
    result.cores = cores;
    result.mixName = mixName(config.mix);
    result.sharedAddressSpace = config.sharedAddressSpace;
    result.ctxFlush = config.ctxFlush;
    result.quantumInstructions = config.quantumInstructions;
    result.coherence = config.coherence;
    result.shootdownEvents = shootdownEvents;
    result.shootdownInvalidations = shootdownInvalidations;
    result.coherenceProbes = coherenceProbes;
    result.coherenceTargetedCores = coherenceTargetedCores;

    // OS facts summed over the distinct address spaces (one space:
    // exactly the single-core numbers).
    std::uint64_t pages4K = 0;
    std::uint64_t pages2M = 0;
    std::uint64_t numRanges = 0;
    std::uint64_t coveredBytes = 0;
    std::uint64_t mappedBytes = 0;
    for (const auto &space : spaces) {
        pages4K += space->pageTable().pageCount(vm::PageSize::Size4K);
        pages2M += space->pageTable().pageCount(vm::PageSize::Size2M);
        numRanges += space->rangeTable().size();
        coveredBytes += space->rangeTable().coveredBytes();
        mappedBytes += space->mappedBytes();
    }
    const double rangeCoverage =
        mappedBytes > 0 ? static_cast<double>(coveredBytes) /
                              static_cast<double>(mappedBytes)
                        : 0.0;

    std::uint64_t telemetryRecords = 0;
    std::uint64_t traceEvents = 0;
    std::uint64_t traceEventsDropped = 0;
    if (telemetry) {
        telemetryRecords = telemetry->recordsEmitted();
        eat_check_fatal(telemetry->close());
    }
    if (trace) {
        traceEvents = trace->eventsRecorded();
        traceEventsDropped = trace->eventsDropped();
        eat_check_fatal(trace->write(config.base.traceOutPath));
    }
    if (provenance) {
        eat_check_fatal(provenance->close());
        result.provenanceEnabled = true;
        result.provenance = provenance->summary();
    }

    for (unsigned c = 0; c < cores; ++c) {
        sim::SimResult r;
        r.workloadName = result.mixName;
        r.org = config.base.mmu.org;
        r.stats = mmus[c]->stats();
        r.frontCacheHits = mmus[c]->frontCacheHits();
        r.energy = mmus[c]->energyReport();
        if (mmus[c]->lite()) {
            r.lite = mmus[c]->lite()->stats();
            r.liteEnabled = true;
        }
        r.checkLevel = config.base.checkLevel;
        if (checkers[c]) {
            r.check = checkers[c]->stats();
            r.firstMismatch = checkers[c]->firstMismatch();
        }
        if (injector && c == config.faultCore)
            r.inject = injector->stats();
        r.mpkiTimeline = std::move(timelines[c]);
        r.telemetryRecords = telemetryRecords;
        r.traceEvents = traceEvents;
        r.traceEventsDropped = traceEventsDropped;
        r.pages4K = pages4K;
        r.pages2M = pages2M;
        r.numRanges = numRanges;
        r.rangeCoverage = rangeCoverage;
        result.perCore.push_back(std::move(r));
    }

    for (unsigned t = 0; t < numTasks; ++t) {
        TaskResult tr;
        tr.workload = tasks[t].spec.name;
        tr.asid = tasks[t].asid;
        tr.instructions = tasks[t].retired;
        tr.remapEvents = tasks[t].remapEvents;
        const vm::MemoryManager &mm = *tasks[t].mm;
        tr.pages4K = mm.pageTable().pageCount(vm::PageSize::Size4K);
        tr.pages2M = mm.pageTable().pageCount(vm::PageSize::Size2M);
        tr.numRanges = mm.rangeTable().size();
        tr.rangeCoverage = mm.rangeCoverage();
        result.tasks.push_back(std::move(tr));
    }

    if (!config.base.metricsPath.empty()) {
        obs::MetricRegistry registry;
        for (unsigned c = 0; c < cores; ++c) {
            const std::string prefix =
                cores > 1 ? "core" + std::to_string(c) + "." : "";
            mmus[c]->registerMetrics(registry, prefix);
            if (checkers[c])
                checkers[c]->registerMetrics(registry, prefix);
            if (injector && c == config.faultCore)
                injector->registerMetrics(registry, prefix);
        }
        std::ofstream out(config.base.metricsPath,
                          std::ios::out | std::ios::trunc);
        if (!out) {
            eat_fatal("cannot open metrics file '",
                      config.base.metricsPath, "'");
        }
        registry.writeJson(out);
        out << '\n';
        out.flush();
        if (!out.good()) {
            eat_fatal("error writing metrics file '",
                      config.base.metricsPath, "'");
        }
    }

    result.profile = profiler.timings();
    for (auto &r : result.perCore)
        r.profile = result.profile;
    return result;
}

InstrCount
McResult::totalInstructions() const
{
    InstrCount total = 0;
    for (const auto &r : perCore)
        total += r.stats.instructions;
    return total;
}

PicoJoules
McResult::totalEnergyPj() const
{
    PicoJoules total = 0.0;
    for (const auto &r : perCore) {
        total += r.totalEnergy() + r.stats.shootdownEnergyPj +
                 r.stats.cohEnergyPj;
    }
    return total;
}

double
McResult::energyPerKiloInstr() const
{
    const InstrCount instr = totalInstructions();
    if (instr == 0)
        return 0.0;
    return totalEnergyPj() * 1000.0 / static_cast<double>(instr);
}

double
McResult::aggregateMpki() const
{
    const InstrCount instr = totalInstructions();
    std::uint64_t misses = 0;
    for (const auto &r : perCore)
        misses += r.stats.l1Misses;
    return instr == 0 ? 0.0
                      : static_cast<double>(misses) * 1000.0 /
                            static_cast<double>(instr);
}

double
McResult::missCyclesPerKiloInstr() const
{
    const InstrCount instr = totalInstructions();
    Cycles cycles = 0;
    for (const auto &r : perCore) {
        cycles += r.stats.tlbMissCycles() + r.stats.shootdownCycles +
                  r.stats.cohCycles;
    }
    return instr == 0 ? 0.0
                      : static_cast<double>(cycles) * 1000.0 /
                            static_cast<double>(instr);
}

double
McResult::simKips() const
{
    return obs::simKips(totalInstructions(), profile.total());
}

stats::TextTable
mcPerCoreTable(const McResult &result)
{
    stats::TextTable table({"core", "instructions", "pJ/KI", "L1 MPKI",
                            "miss-cyc/KI", "ctx-switch", "sd-init",
                            "sd-recv", "sd-inval", "coh-probe",
                            "coh-recv"});
    for (unsigned c = 0; c < result.perCore.size(); ++c) {
        const auto &r = result.perCore[c];
        const auto &s = r.stats;
        const double instr = static_cast<double>(s.instructions);
        const double epki =
            instr > 0.0 ? (r.totalEnergy() + s.shootdownEnergyPj +
                           s.cohEnergyPj) *
                              1000.0 / instr
                        : 0.0;
        const double missCyc =
            instr > 0.0 ? static_cast<double>(s.tlbMissCycles() +
                                              s.shootdownCycles +
                                              s.cohCycles) *
                              1000.0 / instr
                        : 0.0;
        table.addRow({"core" + std::to_string(c),
                      std::to_string(s.instructions),
                      stats::TextTable::num(epki, 1),
                      stats::TextTable::num(s.l1Mpki(), 3),
                      stats::TextTable::num(missCyc, 2),
                      std::to_string(s.contextSwitches),
                      std::to_string(s.shootdownsInitiated),
                      std::to_string(s.shootdownsReceived),
                      std::to_string(s.shootdownInvalidations),
                      std::to_string(s.cohProbes),
                      std::to_string(s.cohInvalidationsReceived)});
    }
    std::uint64_t ctx = 0;
    std::uint64_t sdInit = 0;
    std::uint64_t sdRecv = 0;
    std::uint64_t sdInval = 0;
    std::uint64_t cohProbe = 0;
    std::uint64_t cohRecv = 0;
    for (const auto &r : result.perCore) {
        ctx += r.stats.contextSwitches;
        sdInit += r.stats.shootdownsInitiated;
        sdRecv += r.stats.shootdownsReceived;
        sdInval += r.stats.shootdownInvalidations;
        cohProbe += r.stats.cohProbes;
        cohRecv += r.stats.cohInvalidationsReceived;
    }
    table.addRow({"all", std::to_string(result.totalInstructions()),
                  stats::TextTable::num(result.energyPerKiloInstr(), 1),
                  stats::TextTable::num(result.aggregateMpki(), 3),
                  stats::TextTable::num(result.missCyclesPerKiloInstr(),
                                        2),
                  std::to_string(ctx), std::to_string(sdInit),
                  std::to_string(sdRecv), std::to_string(sdInval),
                  std::to_string(cohProbe), std::to_string(cohRecv)});
    return table;
}

stats::TextTable
mcOrgTable(const std::vector<McResult> &runs)
{
    eat_assert(!runs.empty(), "no runs to tabulate");
    stats::TextTable table({"mix: " + runs[0].mixName, "pJ/KI",
                            "norm-energy", "miss-cyc/KI", "norm-cycles",
                            "L1 MPKI", "ctx-switch", "shootdowns"});
    const double baseEnergy = runs[0].energyPerKiloInstr();
    const double baseCycles = runs[0].missCyclesPerKiloInstr();
    for (const auto &run : runs) {
        eat_assert(!run.perCore.empty(), "run without cores");
        std::uint64_t ctx = 0;
        for (const auto &r : run.perCore)
            ctx += r.stats.contextSwitches;
        const double energy = run.energyPerKiloInstr();
        const double cycles = run.missCyclesPerKiloInstr();
        table.addRow(
            {std::string(core::orgName(run.perCore[0].org)),
             stats::TextTable::num(energy, 1),
             stats::TextTable::num(
                 baseEnergy > 0.0 ? energy / baseEnergy : 0.0, 3),
             stats::TextTable::num(cycles, 2),
             stats::TextTable::num(
                 baseCycles > 0.0 ? cycles / baseCycles : 0.0, 3),
             stats::TextTable::num(run.aggregateMpki(), 3),
             std::to_string(ctx),
             std::to_string(run.shootdownEvents)});
    }
    return table;
}

} // namespace eat::mc
