#include "mc/mix.hh"

#include "base/parse.hh"
#include "workloads/suite.hh"

namespace eat::mc
{

Result<std::vector<workloads::WorkloadSpec>>
parseMixSpec(std::string_view text)
{
    if (text.empty())
        return Status::error("empty mix (expected workload[,workload...])");

    std::vector<workloads::WorkloadSpec> mix;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string_view name =
            text.substr(pos, comma == std::string_view::npos
                                 ? std::string_view::npos
                                 : comma - pos);
        if (name.empty()) {
            return Status::error("empty workload name in mix '",
                                 std::string(text), "'");
        }
        const auto spec = workloads::findWorkload(std::string(name));
        if (!spec) {
            return Status::error("unknown workload '", std::string(name),
                                 "' in mix (see --list for the suite)");
        }
        mix.push_back(*spec);
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
        if (pos == text.size()) {
            return Status::error("empty workload name in mix '",
                                 std::string(text), "'");
        }
    }
    return mix;
}

Result<unsigned>
parseCoreCount(std::string_view text)
{
    const auto n = parseU64(text);
    if (!n.ok())
        return n.status();
    if (n.value() < 1 || n.value() > kMaxCores) {
        return Status::error("core count ", n.value(),
                             " out of range (1..", kMaxCores, ")");
    }
    return static_cast<unsigned>(n.value());
}

std::string
mixName(const std::vector<workloads::WorkloadSpec> &mix)
{
    std::string name;
    for (const auto &w : mix) {
        if (!name.empty())
            name += ',';
        name += w.name;
    }
    return name;
}

} // namespace eat::mc
