#include "mc/coherence.hh"

#include "base/logging.hh"

namespace eat::mc
{

CoherenceFilter::CoherenceFilter(unsigned cores) : cores_(cores)
{
    eat_assert(cores >= 1, "coherence filter needs at least one core");
}

void
CoherenceFilter::grow(tlb::Asid asid)
{
    if (asid >= sharers_.size()) {
        sharers_.resize(asid + 1, 0);
        versions_.resize(asid + 1, 0);
    }
}

void
CoherenceFilter::noteScheduled(tlb::Asid asid, unsigned core)
{
    eat_assert(core < cores_, "core id out of range");
    grow(asid);
    sharers_[asid] |= (1u << core);
}

CohProbe
CoherenceFilter::probe(tlb::Asid asid)
{
    grow(asid);
    CohProbe result;
    result.sharers = sharers_[asid];
    result.version = ++versions_[asid];
    return result;
}

std::uint64_t
CoherenceFilter::versionOf(tlb::Asid asid) const
{
    return asid < versions_.size() ? versions_[asid] : 0;
}

std::uint32_t
CoherenceFilter::sharersOf(tlb::Asid asid) const
{
    return asid < sharers_.size() ? sharers_[asid] : 0;
}

unsigned
sharerCount(std::uint32_t mask)
{
    unsigned count = 0;
    for (; mask != 0; mask &= mask - 1)
        ++count;
    return count;
}

} // namespace eat::mc
