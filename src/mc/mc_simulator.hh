/**
 * @file
 * The multicore simulation driver.
 *
 * Layers a multiprogrammed system model on the per-core Mmu:
 *
 *  - N cores, each a full Mmu (and Lite controller) of one
 *    organization, fed by a deterministic round-robin scheduler that
 *    interleaves T = max(cores, mix size) tasks in fixed instruction
 *    quanta. In round r, core c runs task (r + c) % T — tasks migrate
 *    between cores but never run on two cores at once, and a task's
 *    operation stream continues wherever it is scheduled.
 *
 *  - Address-space sharing is configurable. Private mode gives every
 *    task its own MemoryManager (its own page/range tables) and the
 *    ASID equal to its task index; because every address space starts
 *    at the same base address, tasks overlap virtually and the ASID
 *    tags are what keep their TLB entries apart. Shared mode maps all
 *    tasks into one address space (distinct regions, ASID 0 for
 *    everyone), modeling a multithreaded process — context switches
 *    are then free at the MMU.
 *
 *  - Context-switch cost is configurable: by default TLBs are
 *    ASID-tagged and survive switches (only the untagged
 *    paging-structure caches flush); --ctx-flush models cores without
 *    tags, where every real switch invalidates every TLB.
 *
 *  - TLB shootdowns: every page-table rewrite the OS performs
 *    (demotion, promotion, compaction — driven at a configurable
 *    per-task instruction interval) broadcasts invalidations to every
 *    core, and the initiating core is charged the broadcast's cycle
 *    and energy cost (config shootdown* knobs).
 *
 * With cores=1, a single-workload mix, and churn off (the defaults),
 * the scheduler degenerates to the single-core driver: the quantum
 * boundaries re-enter the same context (a free switch) and the
 * operation stream, harness wiring, and therefore every result bit
 * match sim::simulate() exactly. A regression test holds this
 * equivalence.
 */

#ifndef EAT_MC_MC_SIMULATOR_HH
#define EAT_MC_MC_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "stats/table.hh"
#include "tlb/tlb_entry.hh"
#include "workloads/workload.hh"

namespace eat::mc
{

/** Everything one multicore run needs. */
struct McConfig
{
    /**
     * The per-core configuration: MMU organization, measurement
     * windows (per core), seed, check level, fault spec, and the
     * observability paths (shared by all cores). The workload field is
     * ignored — the mix supplies the workloads.
     */
    sim::SimConfig base;

    /** Number of cores (1 .. kMaxCores). */
    unsigned cores = 1;

    /** The multiprogrammed mix; replicated cyclically over
     *  max(cores, mix.size()) tasks. Must not be empty. */
    std::vector<workloads::WorkloadSpec> mix;

    /** One address space for all tasks (threads) instead of one per
     *  task (processes). */
    bool sharedAddressSpace = false;

    /** Model cores without ASID tags: flush all TLBs on every real
     *  context switch. */
    bool ctxFlush = false;

    /** Scheduler quantum in instructions. */
    InstrCount quantumInstructions = 100'000;

    /**
     * Per-task instructions between OS churn passes (demote/promote
     * for THP policies, compaction otherwise), each of which triggers
     * a TLB shootdown. 0 disables churn — and with it, shootdowns.
     */
    InstrCount remapInterval = 0;

    /** Core whose operation stream drives base.faultSpec (the fault
     *  campaign targets exactly one core's TLBs). */
    unsigned faultCore = 0;

    /** How remap invalidations reach remote cores. The architectural
     *  invalidations are identical in both modes — only the cost book
     *  differs (see mc/coherence.hh). */
    enum class CoherenceMode { Ipi, Hw };
    CoherenceMode coherence = CoherenceMode::Ipi;
};

/** Parse "ipi" / "hw" (the `--coherence=` argument). */
Result<McConfig::CoherenceMode> coherenceModeFromName(std::string_view name);

/** Canonical printable name. */
std::string_view coherenceModeName(McConfig::CoherenceMode mode);

/** Per-address-space facts of one task. */
struct TaskResult
{
    std::string workload;
    tlb::Asid asid = 0;
    InstrCount instructions = 0;     ///< retired across all cores
    std::uint64_t remapEvents = 0;   ///< OS churn rewrites of its space
    std::uint64_t pages4K = 0;
    std::uint64_t pages2M = 0;
    std::uint64_t numRanges = 0;
    double rangeCoverage = 0.0;
};

/** The result of one multicore run. */
struct McResult
{
    unsigned cores = 1;
    std::string mixName;
    bool sharedAddressSpace = false;
    bool ctxFlush = false;
    InstrCount quantumInstructions = 0;

    /**
     * One full SimResult per core. The OS-level fields (pages4K,
     * pages2M, numRanges, rangeCoverage) hold the sum/blend over every
     * address space and are identical on every core; workloadName
     * holds the mix.
     */
    std::vector<sim::SimResult> perCore;

    /** One entry per task (>= cores entries). */
    std::vector<TaskResult> tasks;

    /** The coherence mode the run used. */
    McConfig::CoherenceMode coherence = McConfig::CoherenceMode::Ipi;

    /** Remap broadcasts performed (all cores invalidate per event). */
    std::uint64_t shootdownEvents = 0;

    /** TLB entries dropped by those broadcasts, summed over cores. */
    std::uint64_t shootdownInvalidations = 0;

    /** Hw mode: filter probes issued (== shootdownEvents there) and
     *  sharer cores targeted, summed over probes. Zero in IPI mode. */
    std::uint64_t coherenceProbes = 0;
    std::uint64_t coherenceTargetedCores = 0;

    /** Exact provenance totals/histograms over the whole run (the sink
     *  is shared by all cores; the summary's cores array is indexed by
     *  core id). Empty unless provenance was on and compiled in. */
    bool provenanceEnabled = false;
    obs::ProvSummary provenance;

    /** Wall-clock stage timings of the whole run. */
    obs::StageTimings profile;

    // --- aggregates over cores ---
    InstrCount totalInstructions() const;
    PicoJoules totalEnergyPj() const;      ///< dynamic, incl. shootdowns
    double energyPerKiloInstr() const;
    double aggregateMpki() const;          ///< L1 misses per kilo-instr
    double missCyclesPerKiloInstr() const;
    double simKips() const;                ///< all cores, wall-clock
};

/** Run one multicore simulation. */
McResult mcSimulate(const McConfig &config);

/** Per-core summary table (energy, MPKI, switches, shootdowns). */
stats::TextTable mcPerCoreTable(const McResult &result);

/**
 * Figure-10-style comparison across organizations of one mix: one row
 * per run, energy and miss-cycles normalized to the first run.
 */
stats::TextTable mcOrgTable(const std::vector<McResult> &runs);

} // namespace eat::mc

#endif // EAT_MC_MC_SIMULATOR_HH
