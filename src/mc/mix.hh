/**
 * @file
 * Multiprogrammed workload mixes.
 *
 * A mix spec is the command-line form of a multiprogrammed run: a
 * comma-separated list of workload names ("mcf,canneal,omnetpp,astar"),
 * each resolved against the built-in suite. The same parser backs
 * eatsim, eatbatch, and eatfuzz so a spec accepted by one tool means
 * the same thing everywhere.
 */

#ifndef EAT_MC_MIX_HH
#define EAT_MC_MIX_HH

#include <string_view>
#include <vector>

#include "base/status.hh"
#include "workloads/workload.hh"

namespace eat::mc
{

/** Largest core count the multicore model accepts. */
constexpr unsigned kMaxCores = 16;

/**
 * Parse a comma-separated list of workload names into specs.
 *
 * Strict: an empty spec, an empty element (",," or trailing comma), or
 * a name not in the suite is an error naming the offending element.
 */
Result<std::vector<workloads::WorkloadSpec>>
parseMixSpec(std::string_view text);

/** Parse and range-check a core count (1 .. kMaxCores). */
Result<unsigned> parseCoreCount(std::string_view text);

/** "a,b,c" — the canonical printable form of a parsed mix. */
std::string mixName(const std::vector<workloads::WorkloadSpec> &mix);

} // namespace eat::mc

#endif // EAT_MC_MIX_HH
