/**
 * @file
 * Lite's lru-distance-counters (Figure 6 of the paper).
 *
 * For an n-way TLB, Lite keeps log2(n)+1 counters. On every hit, the
 * counter selected by the hit's distance from the LRU position is
 * incremented; bands cover the power-of-two way groups that
 * way-disabling can remove:
 *
 *   8-way example: distance 7 -> counter[0] (the MRU way)
 *                  distance 6 -> counter[1]
 *                  distance 4-5 -> counter[2]
 *                  distance 0-3 -> counter[3]
 *
 * By the LRU stack property, the sum of the counters whose bands fall
 * below a target way count is *exactly* the number of additional misses
 * the same access stream would have suffered with that many ways — the
 * quantity the decision algorithm needs.
 */

#ifndef EAT_LITE_LRU_PROFILER_HH
#define EAT_LITE_LRU_PROFILER_HH

#include <cstdint>
#include <vector>

namespace eat::lite
{

/** The per-TLB lru-distance-counters of the Lite mechanism. */
class LruDistanceProfiler
{
  public:
    /** @param maxWays the TLB's physical associativity (power of two). */
    explicit LruDistanceProfiler(unsigned maxWays);

    /**
     * Record a hit at @p distance from the LRU position (0 = LRU,
     * @p activeWays - 1 = MRU) while @p activeWays ways are active.
     */
    void recordHit(unsigned distance, unsigned activeWays);

    /**
     * Additional misses this interval would have suffered with
     * @p targetWays instead of @p activeWays active ways (both powers of
     * two, targetWays <= activeWays).
     */
    std::uint64_t lostHits(unsigned activeWays, unsigned targetWays) const;

    /** Total hits recorded this interval. */
    std::uint64_t totalHits() const { return totalHits_; }

    /** Clear all counters (interval boundary). */
    void reset();

    /**
     * The band a hit at @p distance maps to when @p activeWays ways are
     * active (exposed for tests; see the file comment for the layout).
     */
    static unsigned band(unsigned distance, unsigned activeWays);

    const std::vector<std::uint64_t> &counters() const { return counters_; }

  private:
    std::vector<std::uint64_t> counters_;
    std::uint64_t totalHits_ = 0;
};

} // namespace eat::lite

#endif // EAT_LITE_LRU_PROFILER_HH
