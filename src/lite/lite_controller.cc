#include "lite/lite_controller.hh"

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "obs/trace.hh"
#include "stats/counter.hh"

namespace eat::lite
{

LiteController::LiteController(const LiteParams &params,
                               std::vector<tlb::SetAssocTlb *> tlbs)
    : params_(params), tlbs_(std::move(tlbs)), rng_(params.seed)
{
    eat_assert(params_.intervalInstructions > 0,
               "Lite interval must be nonzero");
    eat_assert(params_.minWays >= 1, "minWays must be >= 1");
    profilers_.reserve(tlbs_.size());
    for (auto *t : tlbs_) {
        eat_assert(t != nullptr, "null TLB handed to Lite");
        eat_assert(isPowerOfTwo(t->ways()),
                   t->name(), ": Lite requires power-of-two ways");
        profilers_.emplace_back(t->ways());
    }
}

void
LiteController::onTlbHit(std::size_t tlbIndex, unsigned distance,
                         bool soleProvider)
{
    eat_assert(tlbIndex < tlbs_.size(), "bad TLB index");
    // Redundant hits (the range TLB also covered the lookup) carry no
    // utility: losing them to way-disabling creates no additional miss.
    if (!soleProvider)
        return;
    profilers_[tlbIndex].recordHit(distance,
                                   tlbs_[tlbIndex]->activeWays());
}

bool
LiteController::withinThreshold(double potentialMpki,
                                double referenceMpki) const
{
    if (params_.mode == ThresholdMode::Relative)
        return potentialMpki <= referenceMpki * (1.0 + params_.epsilonRelative);
    return potentialMpki <= referenceMpki + params_.epsilonAbsoluteMpki;
}

void
LiteController::registerMetrics(obs::MetricRegistry &registry,
                                const std::string &prefix) const
{
    registry.addCounter(prefix + "lite.intervals", &liteStats_.intervals);
    registry.addCounter(prefix + "lite.way_disable_events",
                        &liteStats_.wayDisableEvents);
    registry.addCounter(prefix + "lite.degradation_activations",
                        &liteStats_.degradationActivations);
    registry.addCounter(prefix + "lite.random_activations",
                        &liteStats_.randomActivations);
}

void
LiteController::setTrace(obs::TraceWriter *trace, unsigned core)
{
    trace_ = trace;
    tlbTracks_.clear();
    if (!trace_)
        return;
    liteTrack_ = trace_->track("Lite controller", core);
    for (std::size_t i = 0; i < tlbs_.size(); ++i) {
        tlbTracks_.push_back(trace_->track(tlbs_[i]->name(), core));
        traceWayCounter(i); // initial mask, so the step graph starts full
    }
}

void
LiteController::setProvenance(obs::ProvenanceSink *sink, unsigned core,
                              const std::uint64_t *instrClock,
                              std::vector<obs::ProvStruct> ids)
{
    prov_ = sink;
    provCore_ = core;
    provClock_ = instrClock;
    provIds_ = std::move(ids);
    if (prov_) {
        eat_assert(provIds_.size() == tlbs_.size(),
                   "one ProvStruct id per monitored TLB required");
        eat_assert(provClock_ != nullptr,
                   "provenance needs an instruction clock");
    }
}

void
LiteController::provResize(std::size_t i, unsigned fromWays, unsigned toWays)
{
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({*provClock_, 0, 0.0, obs::ProvKind::Resize,
                     provIds_[i], provCore_, 0, 0, false, fromWays, toWays});
    }
}

void
LiteController::traceWayCounter(std::size_t i)
{
    if (trace_) {
        trace_->counter(tlbTracks_[i], "active_ways",
                        tlbs_[i]->activeWays());
    }
}

void
LiteController::activateAllWays()
{
    for (std::size_t i = 0; i < tlbs_.size(); ++i) {
        tlb::SetAssocTlb *t = tlbs_[i];
        if (t->activeWays() != t->ways()) {
            const unsigned from = t->activeWays();
            t->setActiveWays(t->ways());
            traceWayCounter(i);
            provResize(i, from, t->ways());
        }
    }
}

void
LiteController::onIntervalEnd(std::uint64_t instructions)
{
    if (instructions == 0)
        return;
    ++liteStats_.intervals;

    const double actualMpki = stats::mpki(actualMisses_, instructions);

    if (havePrevious_ && !withinThreshold(actualMpki, previousMpki_)) {
        // Performance degraded past the threshold (phase change, THP
        // breakup, ...): re-activate everything and re-learn.
        if (trace_) {
            obs::JsonObject args;
            args.put("actual_mpki", actualMpki);
            args.put("previous_mpki", previousMpki_);
            trace_->instant(liteTrack_, "phase-change reset", args.str());
        }
        activateAllWays();
        ++liteStats_.degradationActivations;
    } else {
        // Per-TLB way-disabling decision.
        for (std::size_t i = 0; i < tlbs_.size(); ++i) {
            tlb::SetAssocTlb &t = *tlbs_[i];
            const unsigned active = t.activeWays();
            unsigned best = active;
            for (unsigned target = active / 2; target >= params_.minWays;
                 target /= 2) {
                const std::uint64_t lost =
                    profilers_[i].lostHits(active, target);
                const double potentialMpki =
                    stats::mpki(actualMisses_ + lost, instructions);
                if (!withinThreshold(potentialMpki, actualMpki))
                    break;
                best = target;
            }
            if (best < active) {
                t.setActiveWays(best);
                ++liteStats_.wayDisableEvents;
                if (trace_) {
                    obs::JsonObject args;
                    args.put("from_ways", active);
                    args.put("to_ways", best);
                    trace_->instant(tlbTracks_[i], "way-disable",
                                    args.str());
                    traceWayCounter(i);
                }
                provResize(i, active, best);
            }
        }
    }

    // Random exploration: occasionally turn everything back on so the
    // next interval can observe the utility of currently disabled ways.
    if (rng_.chance(params_.fullActivationProbability)) {
        if (trace_)
            trace_->instant(liteTrack_, "random re-activation");
        activateAllWays();
        ++liteStats_.randomActivations;
    }

    previousMpki_ = actualMpki;
    havePrevious_ = true;
    actualMisses_ = 0;
    for (auto &p : profilers_)
        p.reset();
}

const LruDistanceProfiler &
LiteController::profiler(std::size_t i) const
{
    eat_assert(i < profilers_.size(), "bad profiler index");
    return profilers_[i];
}

} // namespace eat::lite
