/**
 * @file
 * The Lite decision mechanism (paper §4.2, Figure 7).
 *
 * Lite divides execution into fixed instruction intervals. During an
 * interval it tracks (i) the actual number of L1 TLB misses of the core
 * (the actual-misses-counter) and (ii) the utility of the active ways of
 * every L1 page TLB (lru-distance-counters). At each interval end it:
 *
 *  1. re-activates all ways if the actual MPKI degraded past the
 *     threshold relative to the previous interval (phase change, THP
 *     breakup, ...);
 *  2. otherwise, per TLB, disables ways in powers of two as long as the
 *     *potential* MPKI (actual misses + hits the smaller configuration
 *     would have lost) stays within the threshold of the actual MPKI;
 *  3. with a small probability re-activates all ways anyway, so the
 *     mechanism can observe utility it cannot measure in disabled ways
 *     and avoids synchronizing with unrepresentative phases.
 *
 * The threshold is either relative (12.5% for TLB_Lite) or absolute
 * (0.1 MPKI for RMM_Lite).
 */

#ifndef EAT_LITE_LITE_CONTROLLER_HH
#define EAT_LITE_LITE_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "lite/lru_profiler.hh"
#include "obs/prov_ids.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::obs
{
class MetricRegistry;
class ProvenanceSink;
class TraceWriter;
} // namespace eat::obs

namespace eat::lite
{

/** How the epsilon threshold of the decision algorithm is interpreted. */
enum class ThresholdMode
{
    Relative, ///< potential MPKI <= actual * (1 + epsilon)
    Absolute, ///< potential MPKI <= actual + epsilon
};

/** Tunable parameters of the Lite mechanism. */
struct LiteParams
{
    /** Interval length in instructions. */
    std::uint64_t intervalInstructions = 1'000'000;

    ThresholdMode mode = ThresholdMode::Relative;

    /** Relative threshold (used in Relative mode); 0.125 in the paper. */
    double epsilonRelative = 0.125;

    /** Absolute MPKI threshold (Absolute mode); 0.1 in the paper. */
    double epsilonAbsoluteMpki = 0.1;

    /** Probability of re-activating all ways at an interval end. */
    double fullActivationProbability = 1.0 / 64.0;

    /** Lite never goes below this many active ways (1 in the paper:
     *  TLBs are downsized but never fully turned off). */
    unsigned minWays = 1;

    /** Deterministic seed for the random full activation. */
    std::uint64_t seed = 0x11feu;
};

/** Aggregate statistics of Lite's behaviour over a run. */
struct LiteStats
{
    std::uint64_t intervals = 0;
    std::uint64_t wayDisableEvents = 0;    ///< TLBs shrunk at interval ends
    std::uint64_t degradationActivations = 0;
    std::uint64_t randomActivations = 0;
};

/**
 * The per-core Lite controller. It owns one LruDistanceProfiler per
 * monitored L1 page TLB and drives their way-disabling.
 */
class LiteController
{
  public:
    /**
     * @param params tunables.
     * @param tlbs the L1 page TLBs to monitor and resize (not owned;
     *        must outlive the controller). Each must have power-of-two
     *        associativity.
     */
    LiteController(const LiteParams &params,
                   std::vector<tlb::SetAssocTlb *> tlbs);

    /** The monitoring hook: an L1 TLB miss triggered an L2 access. */
    void
    onL1Miss()
    {
        ++actualMisses_;
    }

    /**
     * The monitoring hook: TLB @p tlbIndex hit at @p distance from the
     * LRU position. @p soleProvider is false when another L1 structure
     * (the L1-range TLB) hit the same lookup — such redundant hits carry
     * no utility, since disabling the way would not create a miss.
     */
    void onTlbHit(std::size_t tlbIndex, unsigned distance,
                  bool soleProvider);

    /**
     * Interval boundary: run the decision algorithm over the closed
     * interval of @p instructions instructions and reset the counters.
     */
    void onIntervalEnd(std::uint64_t instructions);

    const LiteParams &params() const { return params_; }
    const LiteStats &stats() const { return liteStats_; }
    std::uint64_t actualMisses() const { return actualMisses_; }

    /** Register the lite.* counters into @p registry (bindings only;
     *  the registry must not outlive this controller). Multicore runs
     *  pass a per-core @p prefix ("core2."). */
    void registerMetrics(obs::MetricRegistry &registry,
                         const std::string &prefix = "") const;

    /**
     * Attach a decision tracer (not owned; null detaches). Every way
     * disable, phase-change reset, and random re-activation becomes a
     * Chrome-trace event on the owning TLB's track. @p core places the
     * tracks under that core's process in multicore traces.
     */
    void setTrace(obs::TraceWriter *trace, unsigned core = 0);

    /**
     * Attach a provenance sink (not owned; null detaches). Every
     * interval resize — way disable, phase-change reset, random
     * re-activation — becomes a Resize event per resized TLB, tagged
     * with the owning core, stamped from @p instrClock, and identified
     * by @p ids (one ProvStruct per monitored TLB, same order as the
     * tlbs vector handed to the constructor).
     */
    void setProvenance(obs::ProvenanceSink *sink, unsigned core,
                       const std::uint64_t *instrClock,
                       std::vector<obs::ProvStruct> ids);

    /** The profiler of TLB @p i (exposed for tests). */
    const LruDistanceProfiler &profiler(std::size_t i) const;

  private:
    /** potential <= threshold(reference)? */
    bool withinThreshold(double potentialMpki, double referenceMpki) const;

    void activateAllWays();

    /** Emit an active_ways counter sample for TLB @p i (if tracing). */
    void traceWayCounter(std::size_t i);

    /** Emit a provenance Resize event for TLB @p i (if attached). */
    void provResize(std::size_t i, unsigned fromWays, unsigned toWays);

    LiteParams params_;
    std::vector<tlb::SetAssocTlb *> tlbs_;
    std::vector<LruDistanceProfiler> profilers_;
    Rng rng_;

    obs::TraceWriter *trace_ = nullptr;
    std::vector<unsigned> tlbTracks_;
    unsigned liteTrack_ = 0;

    obs::ProvenanceSink *prov_ = nullptr;
    unsigned provCore_ = 0;
    const std::uint64_t *provClock_ = nullptr;
    std::vector<obs::ProvStruct> provIds_;

    std::uint64_t actualMisses_ = 0;   ///< the actual-misses-counter
    double previousMpki_ = 0.0;        ///< the previous-misses-counter
    bool havePrevious_ = false;

    LiteStats liteStats_;
};

} // namespace eat::lite

#endif // EAT_LITE_LITE_CONTROLLER_HH
