#include "lite/lru_profiler.hh"

#include "base/logging.hh"
#include "base/types.hh"

namespace eat::lite
{

LruDistanceProfiler::LruDistanceProfiler(unsigned maxWays)
    : counters_(floorLog2(maxWays) + 1, 0)
{
    eat_assert(isPowerOfTwo(maxWays),
               "profiled TLB associativity must be a power of two");
}

unsigned
LruDistanceProfiler::band(unsigned distance, unsigned activeWays)
{
    eat_assert(isPowerOfTwo(activeWays), "active ways must be power of two");
    eat_assert(distance < activeWays,
               "distance ", distance, " out of range for ", activeWays,
               " ways");
    // gap = how far below the MRU position the hit landed.
    const unsigned gap = activeWays - 1 - distance;
    if (gap == 0)
        return 0;
    return floorLog2(gap) + 1;
}

void
LruDistanceProfiler::recordHit(unsigned distance, unsigned activeWays)
{
    const unsigned b = band(distance, activeWays);
    eat_assert(b < counters_.size(), "band out of range");
    ++counters_[b];
    ++totalHits_;
}

std::uint64_t
LruDistanceProfiler::lostHits(unsigned activeWays, unsigned targetWays) const
{
    eat_assert(isPowerOfTwo(activeWays) && isPowerOfTwo(targetWays),
               "way counts must be powers of two");
    eat_assert(targetWays <= activeWays, "cannot lose hits by growing");
    // Dropping from activeWays to targetWays loses the hits whose
    // distance was below activeWays - targetWays ... i.e. the bands
    // strictly above log2(targetWays).
    std::uint64_t lost = 0;
    for (unsigned j = floorLog2(targetWays) + 1;
         j <= floorLog2(activeWays) && j < counters_.size(); ++j) {
        lost += counters_[j];
    }
    return lost;
}

void
LruDistanceProfiler::reset()
{
    for (auto &c : counters_)
        c = 0;
    totalHits_ = 0;
}

} // namespace eat::lite
