/**
 * @file
 * Hardware page-table walker.
 *
 * On an L2 TLB miss, the walker resolves the translation from the
 * authoritative page table and models the cost: the MMU caches are
 * probed in parallel and determine how many page-table levels must be
 * fetched from the memory hierarchy (1-4 references).
 */

#ifndef EAT_TLB_PAGE_WALKER_HH
#define EAT_TLB_PAGE_WALKER_HH

#include "tlb/mmu_cache.hh"
#include "vm/page_table.hh"

namespace eat::tlb
{

/** The outcome of one hardware page walk. */
struct WalkResult
{
    vm::Translation translation{};
    MmuCacheOutcome cache{};
};

/** The per-core hardware page-table walker. */
class PageWalker
{
  public:
    /**
     * @param pageTable the process's page table (authoritative).
     * @param mmuCache the per-core paging-structure caches.
     */
    PageWalker(const vm::PageTable &pageTable, MmuCache &mmuCache)
        : pageTable_(&pageTable), mmuCache_(mmuCache)
    {
    }

    /**
     * Walk the page table for @p vaddr. Accessing unmapped memory is a
     * simulation bug (workloads only touch mmap()ed regions) and panics.
     */
    WalkResult walk(Addr vaddr);

    /** Point the walker at another address space's page table (a
     *  context switch reloading CR3). */
    void setPageTable(const vm::PageTable &pageTable)
    {
        pageTable_ = &pageTable;
    }

  private:
    const vm::PageTable *pageTable_;
    MmuCache &mmuCache_;
};

} // namespace eat::tlb

#endif // EAT_TLB_PAGE_WALKER_HH
