/**
 * @file
 * MMU paging-structure caches (Intel-style, after [Bhattacharjee'13]).
 *
 * Three small caches hold intermediate page-table entries at the PDE,
 * PDPTE, and PML4 levels. All three are probed in parallel after an L2
 * TLB miss; a hit at level L lets the page walk skip every level at or
 * above L, so a walk costs between 1 and 4 memory references for 4 KB
 * pages (1-3 for 2 MB, 1-2 for 1 GB; leaf entries are never cached here
 * — that is the TLB's job).
 */

#ifndef EAT_TLB_MMU_CACHE_HH
#define EAT_TLB_MMU_CACHE_HH

#include "tlb/set_assoc_tlb.hh"
#include "vm/page_size.hh"

namespace eat::tlb
{

/** Geometry of the three paging-structure caches. */
struct MmuCacheConfig
{
    unsigned pdeEntries = 32;
    unsigned pdeWays = 2;
    unsigned pdpteEntries = 4; ///< fully associative
    unsigned pml4Entries = 2;  ///< fully associative
};

/** What one walk's interaction with the paging-structure caches did. */
struct MmuCacheOutcome
{
    /** Page-walk memory references required (leaf fetch included). */
    unsigned memRefs = 0;
    bool hitPde = false; ///< probe outcomes (provenance per-level view)
    bool hitPdpte = false;
    bool hitPml4 = false;
    bool filledPde = false;
    bool filledPdpte = false;
    bool filledPml4 = false;

    unsigned
    fills() const
    {
        return (filledPde ? 1u : 0u) + (filledPdpte ? 1u : 0u) +
               (filledPml4 ? 1u : 0u);
    }
};

/** The per-core MMU cache backing the TLB hierarchy. */
class MmuCache
{
  public:
    explicit MmuCache(const MmuCacheConfig &config = {});

    /**
     * Model the walk for @p vaddr whose leaf is a @p leafSize mapping:
     * probe all three structures, compute the memory references the
     * walk needs, and install the entries the walk fetched.
     */
    MmuCacheOutcome walkAccess(Addr vaddr, vm::PageSize leafSize);

    /** The page-table level of a @p size leaf: 1 = PT, 2 = PD,
     *  3 = PDPT. */
    static constexpr unsigned
    leafLevel(vm::PageSize size)
    {
        switch (size) {
          case vm::PageSize::Size4K: return 1;
          case vm::PageSize::Size2M: return 2;
          case vm::PageSize::Size1G: return 3;
        }
        return 1;
    }

    void flush();

    /** Structure accessors (the MMU charges their lookup energy). */
    SetAssocTlb &pde() { return pde_; }
    SetAssocTlb &pdpte() { return pdpte_; }
    SetAssocTlb &pml4() { return pml4_; }
    const SetAssocTlb &pde() const { return pde_; }
    const SetAssocTlb &pdpte() const { return pdpte_; }
    const SetAssocTlb &pml4() const { return pml4_; }

  private:
    /** Covered-region shifts: PDE entries span 2 MB, PDPTE 1 GB,
     *  PML4 512 GB. */
    static constexpr unsigned kPdeShift = 21;
    static constexpr unsigned kPdpteShift = 30;
    static constexpr unsigned kPml4Shift = 39;

    SetAssocTlb pde_;
    SetAssocTlb pdpte_;
    SetAssocTlb pml4_;
};

} // namespace eat::tlb

#endif // EAT_TLB_MMU_CACHE_HH
