#include "tlb/mmu_cache.hh"

#include "base/logging.hh"
#include "tlb/tlb_entry.hh"

namespace eat::tlb
{

namespace
{

TlbEntry
regionEntry(Addr vaddr, unsigned shift)
{
    return TlbEntry{alignDown(vaddr, Addr{1} << shift), 0,
                    vm::PageSize::Size4K, shift};
}

} // namespace

MmuCache::MmuCache(const MmuCacheConfig &config)
    : pde_("MMU-cache-PDE", config.pdeEntries, config.pdeWays, kPdeShift),
      pdpte_("MMU-cache-PDPTE", config.pdpteEntries, config.pdpteEntries,
             kPdpteShift),
      pml4_("MMU-cache-PML4", config.pml4Entries, config.pml4Entries,
            kPml4Shift)
{
}

MmuCacheOutcome
MmuCache::walkAccess(Addr vaddr, vm::PageSize leafSize)
{
    // All three structures are probed in parallel (LRU updated on every
    // hit; the caller charges three reads of lookup energy).
    const bool pdeHit = pde_.lookup(vaddr).hit;
    const bool pdpteHit = pdpte_.lookup(vaddr).hit;
    const bool pml4Hit = pml4_.lookup(vaddr).hit;

    const unsigned leaf = leafLevel(leafSize);

    // A hit in the cache of level L (PDE = 2, PDPTE = 3, PML4 = 4)
    // supplies the pointer fetched at level L, so the walk reads levels
    // L-1 .. leaf from memory: L - leaf references. The caches never
    // hold leaf entries, so only hits strictly above the leaf count.
    unsigned startLevel = 5; // 5 - leaf refs == full walk
    if (pdeHit && 2 > leaf)
        startLevel = 2;
    else if (pdpteHit && 3 > leaf)
        startLevel = 3;
    else if (pml4Hit && 4 > leaf)
        startLevel = 4;

    MmuCacheOutcome out;
    out.hitPde = pdeHit;
    out.hitPdpte = pdpteHit;
    out.hitPml4 = pml4Hit;
    out.memRefs = startLevel - leaf;
    eat_assert(out.memRefs >= 1 && out.memRefs <= 4,
               "impossible walk length ", out.memRefs);

    // Install every non-leaf entry the walk fetched from memory:
    // levels startLevel-1 down to leaf+1.
    for (unsigned level = startLevel - 1; level > leaf; --level) {
        switch (level) {
          case 2:
            pde_.fill(regionEntry(vaddr, kPdeShift));
            out.filledPde = true;
            break;
          case 3:
            pdpte_.fill(regionEntry(vaddr, kPdpteShift));
            out.filledPdpte = true;
            break;
          case 4:
            pml4_.fill(regionEntry(vaddr, kPml4Shift));
            out.filledPml4 = true;
            break;
          default:
            eat_panic("unexpected page-table level ", level);
        }
    }
    return out;
}

void
MmuCache::flush()
{
    pde_.invalidateAll();
    pdpte_.invalidateAll();
    pml4_.invalidateAll();
}

} // namespace eat::tlb
