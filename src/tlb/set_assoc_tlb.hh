/**
 * @file
 * Set-associative TLB with true LRU replacement and way-disabling.
 *
 * This single structure models the per-page-size L1 TLBs, the L2 TLB,
 * the MMU paging-structure caches (with a non-page shift), the mixed
 * 4KB/2MB TLBs of TLB_PP (per-lookup index shift), and — with
 * ways == entries — fully associative TLBs.
 *
 * Two features exist specifically for the Lite mechanism:
 *
 *  - lookups report the hit's LRU *distance* among the active ways
 *    (0 = LRU position, activeWays-1 = MRU), feeding the Figure-6
 *    lru-distance-counters;
 *  - setActiveWays() disables/enables physical ways in powers of two;
 *    disabling invalidates the victims (TLBs hold no dirty data), and
 *    lookups search only active ways, which is what saves energy.
 *
 * Storage is structure-of-arrays: the per-slot fields live in flat
 * parallel arrays laid out set-major (slot index = set * ways + way),
 * so the probe touches only the fields it compares — tag, ASID, shift,
 * validity — as contiguous runs instead of striding across whole entry
 * objects. The probe accumulates a branchless per-way hit mask and the
 * LRU-distance/victim scans run over the flat stamp array.
 */

#ifndef EAT_TLB_SET_ASSOC_TLB_HH
#define EAT_TLB_SET_ASSOC_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "tlb/tlb_entry.hh"

namespace eat::tlb
{

/** The outcome of one TLB lookup. */
struct TlbLookupResult
{
    bool hit = false;
    /** LRU distance of the hit among active ways (valid iff hit). */
    unsigned lruDistance = 0;
    TlbEntry entry{};
    /** Location of the hit (valid iff hit) — lets a front cache
     *  remember where the translation lives and replay it later. */
    unsigned set = 0;
    unsigned way = 0;
};

/** A set-associative TLB (see file comment for the roles it plays). */
class SetAssocTlb
{
  public:
    /**
     * @param name for reports and error messages.
     * @param entries total entry count (sets * ways).
     * @param ways associativity; ways == entries gives full
     *             associativity (one set).
     * @param shift log2 of the region one entry covers; also selects
     *              the index bits (index = (vaddr >> shift) & (sets-1)).
     */
    SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                unsigned shift);

    /** Look up @p vaddr (LRU updated on hit), indexing with @p shift.
     *  The tag match requires @p asid equality; asid 0 (the default)
     *  reproduces the untagged single-core behavior. */
    TlbLookupResult
    lookup(Addr vaddr, Asid asid = 0)
    {
        return lookupWithShift(vaddr, shift_, asid);
    }

    /**
     * Mixed-TLB lookup (TLB_PP): index with @p idxShift (the predicted
     * page size's shift); the tag match still uses each entry's own
     * covered region (and ASID).
     */
    TlbLookupResult lookupWithShift(Addr vaddr, unsigned idxShift,
                                    Asid asid = 0);

    /** State-preserving hit test (no LRU update, no counters). */
    bool probe(Addr vaddr, Asid asid = 0) const;

    /** Install @p entry (its own shift selects the set, its own asid
     *  tags it). Replaces LRU.
     *  @return true when a live entry was evicted (LRU replacement, as
     *  opposed to an in-place refill or an invalid slot). */
    bool fill(const TlbEntry &entry);

    /** Invalidate everything (all ways, active or not). */
    void invalidateAll();

    /**
     * Invalidate every entry tagged @p asid (all ways, active or not).
     * Models the ASID reuse / address-space teardown case.
     * @return number of entries invalidated.
     */
    unsigned invalidateAsid(Asid asid);

    /**
     * Shootdown receiver: invalidate entries tagged @p asid whose
     * covered region overlaps [@p vbase, @p vlimit). Disabled ways are
     * scanned too — a remap must never leave a stale translation that a
     * later way re-enable could expose.
     * @return number of entries invalidated.
     */
    unsigned invalidateRange(Addr vbase, Addr vlimit, Asid asid);

    /**
     * Way-disabling / re-enabling. @p w must be a power of two in
     * [1, ways]. Shrinking invalidates the entries in disabled ways;
     * growing exposes empty (previously invalidated) ways.
     */
    void setActiveWays(unsigned w);

    const std::string &name() const { return name_; }
    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    unsigned activeWays() const { return activeWays_; }
    /** floorLog2(activeWays()), cached: it indexes the energy
     *  coefficient tables on every charge, so it must not be
     *  recomputed per access. */
    unsigned logActiveWays() const { return logActiveWays_; }
    unsigned entries() const { return sets_ * ways_; }
    unsigned activeEntries() const { return sets_ * activeWays_; }
    unsigned shift() const { return shift_; }
    bool fullyAssociative() const { return sets_ == 1; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }
    std::uint64_t resizes() const { return resizes_; }

    /** Number of currently valid entries (for tests). */
    unsigned validCount() const;

    /** Valid entries sitting in disabled ways (must be 0; a nonzero
     *  count means an invalidation was lost — see auditWayMask). */
    unsigned validInDisabledWays() const;

    // --- front-cache replay hooks (core::Mmu's last-translation cache;
    // --- never called by tests of the modeled datapath semantics) ---

    /**
     * Would replaying a remembered hit at (@p set, @p way) for
     * (@p vaddr, @p asid) be indistinguishable from a full probe? True
     * iff the slot is an active-way valid entry covering @p vaddr under
     * @p asid AND is the MRU of its set — the only position whose LRU
     * distance is a constant (activeWays-1), so the replay needs no
     * per-way scan. No state is touched.
     *
     * The MRU test compares the slot's stamp against the set's
     * monotone stamp high-water mark instead of scanning the ways; the
     * mark can only overstate the true maximum (invalidations never
     * lower it), so the test errs exclusively toward "no" — a safe
     * front-cache miss, never a wrong replay.
     */
    bool
    peekReplayHit(unsigned set, unsigned way, Addr vaddr, Asid asid) const
    {
        if (way >= activeWays_)
            return false;
        const unsigned i = set * ways_ + way;
        return valid_[i] && asids_[i] == asid &&
               (vaddr >> shifts_[i]) == vtags_[i] &&
               stamps_[i] >= setMaxStamp_[set];
    }

    /**
     * Apply the hit side effects a full lookup of the slot checked by
     * peekReplayHit() would apply: MRU restamp and hit count.
     * @return the hit's LRU distance (activeWays-1 by construction).
     */
    unsigned
    commitReplayHit(unsigned set, unsigned way)
    {
        stamps_[set * ways_ + way] = ++clock_;
        setMaxStamp_[set] = clock_;
        ++hits_;
        return activeWays_ - 1;
    }

    /** Apply the miss side effect of a probe whose outcome (a miss) is
     *  already known, without scanning the set. */
    void noteMiss() { ++misses_; }

    /** The entry stored at (@p set, @p way), read fresh — a replayed
     *  hit must observe fills and fault-injected corruption exactly as
     *  a full probe would. */
    TlbEntry
    entryAt(unsigned set, unsigned way) const
    {
        return entryAt(set * ways_ + way);
    }

    // --- fault-injection hooks (check::FaultInjector and tests only;
    // --- never called by the modeled datapath) ---

    /**
     * Corrupt one pseudo-random valid entry: flip a tag bit above the
     * index field (@p flipTag) or a PPN bit (!@p flipTag). @p rnd picks
     * the slot and the bit. @return false if no entry is valid.
     */
    bool corruptRandomEntry(std::uint64_t rnd, bool flipTag);

    /**
     * Make the next way-disabling setActiveWays() skip invalidating the
     * victims — the "dropped invalidation" fault the shadow checker's
     * way-mask audit must catch.
     */
    void armDropInvalidation() { dropNextInvalidation_ = true; }

    /**
     * Raw way-mask override: no power-of-two requirement, no
     * invalidation. Models a spurious way re-enable glitch.
     */
    void forceActiveWays(unsigned w);

  private:
    unsigned
    indexOf(Addr vaddr, unsigned idxShift) const
    {
        return static_cast<unsigned>((vaddr >> idxShift) & (sets_ - 1));
    }

    /** Reassemble the entry stored at flat slot @p i. */
    TlbEntry
    entryAt(unsigned i) const
    {
        return TlbEntry{vbases_[i], pbases_[i], sizes_[i], shifts_[i],
                        asids_[i]};
    }

    std::string name_;
    unsigned sets_;
    unsigned ways_;
    unsigned activeWays_;
    unsigned logActiveWays_;
    unsigned shift_;

    // Parallel per-slot arrays, set-major: slot i = set * ways_ + way.
    // vtags_ caches vbase >> shift so the probe's tag compare is one
    // shift of the probe address and one load, never a recompute of
    // the entry's own alignment.
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> shifts_;
    std::vector<Asid> asids_;
    std::vector<Addr> vtags_;
    std::vector<Addr> vbases_;
    std::vector<Addr> pbases_;
    std::vector<vm::PageSize> sizes_;
    std::vector<std::uint64_t> stamps_;

    /** Per-set high-water mark of stamps_ (monotone: stamping raises
     *  it, invalidation leaves it). peekReplayHit()'s O(1) MRU test. */
    std::vector<std::uint64_t> setMaxStamp_;

    std::uint64_t clock_ = 0;
    bool dropNextInvalidation_ = false;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
    std::uint64_t resizes_ = 0;
};

} // namespace eat::tlb

#endif // EAT_TLB_SET_ASSOC_TLB_HH
