/**
 * @file
 * Set-associative TLB with true LRU replacement and way-disabling.
 *
 * This single structure models the per-page-size L1 TLBs, the L2 TLB,
 * the MMU paging-structure caches (with a non-page shift), the mixed
 * 4KB/2MB TLBs of TLB_PP (per-lookup index shift), and — with
 * ways == entries — fully associative TLBs.
 *
 * Two features exist specifically for the Lite mechanism:
 *
 *  - lookups report the hit's LRU *distance* among the active ways
 *    (0 = LRU position, activeWays-1 = MRU), feeding the Figure-6
 *    lru-distance-counters;
 *  - setActiveWays() disables/enables physical ways in powers of two;
 *    disabling invalidates the victims (TLBs hold no dirty data), and
 *    lookups search only active ways, which is what saves energy.
 */

#ifndef EAT_TLB_SET_ASSOC_TLB_HH
#define EAT_TLB_SET_ASSOC_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "tlb/tlb_entry.hh"

namespace eat::tlb
{

/** The outcome of one TLB lookup. */
struct TlbLookupResult
{
    bool hit = false;
    /** LRU distance of the hit among active ways (valid iff hit). */
    unsigned lruDistance = 0;
    TlbEntry entry{};
};

/** A set-associative TLB (see file comment for the roles it plays). */
class SetAssocTlb
{
  public:
    /**
     * @param name for reports and error messages.
     * @param entries total entry count (sets * ways).
     * @param ways associativity; ways == entries gives full
     *             associativity (one set).
     * @param shift log2 of the region one entry covers; also selects
     *              the index bits (index = (vaddr >> shift) & (sets-1)).
     */
    SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                unsigned shift);

    /** Look up @p vaddr (LRU updated on hit), indexing with @p shift.
     *  The tag match requires @p asid equality; asid 0 (the default)
     *  reproduces the untagged single-core behavior. */
    TlbLookupResult
    lookup(Addr vaddr, Asid asid = 0)
    {
        return lookupWithShift(vaddr, shift_, asid);
    }

    /**
     * Mixed-TLB lookup (TLB_PP): index with @p idxShift (the predicted
     * page size's shift); the tag match still uses each entry's own
     * covered region (and ASID).
     */
    TlbLookupResult lookupWithShift(Addr vaddr, unsigned idxShift,
                                    Asid asid = 0);

    /** State-preserving hit test (no LRU update, no counters). */
    bool probe(Addr vaddr, Asid asid = 0) const;

    /** Install @p entry (its own shift selects the set, its own asid
     *  tags it). Replaces LRU.
     *  @return true when a live entry was evicted (LRU replacement, as
     *  opposed to an in-place refill or an invalid slot). */
    bool fill(const TlbEntry &entry);

    /** Invalidate everything (all ways, active or not). */
    void invalidateAll();

    /**
     * Invalidate every entry tagged @p asid (all ways, active or not).
     * Models the ASID reuse / address-space teardown case.
     * @return number of entries invalidated.
     */
    unsigned invalidateAsid(Asid asid);

    /**
     * Shootdown receiver: invalidate entries tagged @p asid whose
     * covered region overlaps [@p vbase, @p vlimit). Disabled ways are
     * scanned too — a remap must never leave a stale translation that a
     * later way re-enable could expose.
     * @return number of entries invalidated.
     */
    unsigned invalidateRange(Addr vbase, Addr vlimit, Asid asid);

    /**
     * Way-disabling / re-enabling. @p w must be a power of two in
     * [1, ways]. Shrinking invalidates the entries in disabled ways;
     * growing exposes empty (previously invalidated) ways.
     */
    void setActiveWays(unsigned w);

    const std::string &name() const { return name_; }
    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    unsigned activeWays() const { return activeWays_; }
    /** floorLog2(activeWays()), cached: it indexes the energy
     *  coefficient tables on every charge, so it must not be
     *  recomputed per access. */
    unsigned logActiveWays() const { return logActiveWays_; }
    unsigned entries() const { return sets_ * ways_; }
    unsigned activeEntries() const { return sets_ * activeWays_; }
    unsigned shift() const { return shift_; }
    bool fullyAssociative() const { return sets_ == 1; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }
    std::uint64_t resizes() const { return resizes_; }

    /** Number of currently valid entries (for tests). */
    unsigned validCount() const;

    /** Valid entries sitting in disabled ways (must be 0; a nonzero
     *  count means an invalidation was lost — see auditWayMask). */
    unsigned validInDisabledWays() const;

    // --- fault-injection hooks (check::FaultInjector and tests only;
    // --- never called by the modeled datapath) ---

    /**
     * Corrupt one pseudo-random valid entry: flip a tag bit above the
     * index field (@p flipTag) or a PPN bit (!@p flipTag). @p rnd picks
     * the slot and the bit. @return false if no entry is valid.
     */
    bool corruptRandomEntry(std::uint64_t rnd, bool flipTag);

    /**
     * Make the next way-disabling setActiveWays() skip invalidating the
     * victims — the "dropped invalidation" fault the shadow checker's
     * way-mask audit must catch.
     */
    void armDropInvalidation() { dropNextInvalidation_ = true; }

    /**
     * Raw way-mask override: no power-of-two requirement, no
     * invalidation. Models a spurious way re-enable glitch.
     */
    void forceActiveWays(unsigned w);

  private:
    struct Slot
    {
        bool valid = false;
        TlbEntry entry{};
        std::uint64_t stamp = 0;
    };

    Slot *slotsOfSet(unsigned set) { return &slots_[set * ways_]; }
    const Slot *slotsOfSet(unsigned set) const { return &slots_[set * ways_]; }

    unsigned
    indexOf(Addr vaddr, unsigned idxShift) const
    {
        return static_cast<unsigned>((vaddr >> idxShift) & (sets_ - 1));
    }

    std::string name_;
    unsigned sets_;
    unsigned ways_;
    unsigned activeWays_;
    unsigned logActiveWays_;
    unsigned shift_;
    std::vector<Slot> slots_;
    /** Lookup scratch (pre-hit stamps); sized ways_, reused to keep
     *  the hot path allocation-free. */
    std::vector<std::uint64_t> stampScratch_;
    std::uint64_t clock_ = 0;
    bool dropNextInvalidation_ = false;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
    std::uint64_t resizes_ = 0;
};

} // namespace eat::tlb

#endif // EAT_TLB_SET_ASSOC_TLB_HH
