#include "tlb/range_tlb.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::tlb
{

RangeTlb::RangeTlb(std::string name, unsigned entries)
    : name_(std::move(name)), slots_(entries)
{
    eat_assert(entries >= 1, name_, ": range TLB needs >= 1 entry");
    index_.reserve(entries);
}

void
RangeTlb::rebuildIndex()
{
    index_.clear();
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].valid)
            index_.push_back(i);
    }
    std::sort(index_.begin(), index_.end(),
              [this](unsigned a, unsigned b) {
                  const Slot &sa = slots_[a];
                  const Slot &sb = slots_[b];
                  if (sa.asid != sb.asid)
                      return sa.asid < sb.asid;
                  return sa.range.vbase < sb.range.vbase;
              });
    indexDirty_ = false;
}

std::optional<vm::RangeTranslation>
RangeTlb::lookup(Addr vaddr, Asid asid)
{
    if (corrupted_) {
        // Overlapping (corrupted) ranges make first-match order
        // observable; keep the historical scan.
        for (unsigned i = 0; i < slots_.size(); ++i) {
            Slot &s = slots_[i];
            if (s.valid && s.asid == asid && s.range.contains(vaddr)) {
                s.stamp = ++clock_;
                ++hits_;
                lastHitSlot_ = i;
                return s.range;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    if (indexDirty_)
        rebuildIndex();

    // The only candidate is the predecessor: the last range of this
    // asid starting at or before vaddr (cached ranges are disjoint per
    // address space).
    const auto it = std::upper_bound(
        index_.begin(), index_.end(), vaddr,
        [this, asid](Addr v, unsigned slot) {
            const Slot &s = slots_[slot];
            if (asid != s.asid)
                return asid < s.asid;
            return v < s.range.vbase;
        });
    if (it != index_.begin()) {
        const unsigned i = *(it - 1);
        Slot &s = slots_[i];
        if (s.asid == asid && s.range.contains(vaddr)) {
            s.stamp = ++clock_;
            ++hits_;
            lastHitSlot_ = i;
            return s.range;
        }
    }
    ++misses_;
    return std::nullopt;
}

bool
RangeTlb::probe(Addr vaddr, Asid asid) const
{
    for (const auto &s : slots_) {
        if (s.valid && s.asid == asid && s.range.contains(vaddr))
            return true;
    }
    return false;
}

bool
RangeTlb::fill(const vm::RangeTranslation &range, Asid asid)
{
    Slot *victim = nullptr;
    for (auto &s : slots_) {
        if (s.valid && s.asid == asid && s.range == range) {
            // Already present (e.g. racing refills); just touch it.
            s.stamp = ++clock_;
            return false;
        }
        if (!s.valid && !victim)
            victim = &s;
    }
    bool evicted = false;
    if (!victim) {
        victim = &slots_[0];
        for (auto &s : slots_) {
            if (s.stamp < victim->stamp)
                victim = &s;
        }
        evicted = true;
    }
    victim->valid = true;
    victim->range = range;
    victim->stamp = ++clock_;
    victim->asid = asid;
    ++fills_;
    indexDirty_ = true;
    return evicted;
}

void
RangeTlb::invalidateAll()
{
    for (auto &s : slots_)
        s.valid = false;
    indexDirty_ = true;
}

unsigned
RangeTlb::invalidateAsid(Asid asid)
{
    unsigned n = 0;
    for (auto &s : slots_) {
        if (s.valid && s.asid == asid) {
            s.valid = false;
            ++n;
        }
    }
    if (n > 0)
        indexDirty_ = true;
    return n;
}

unsigned
RangeTlb::invalidateRange(Addr vbase, Addr vlimit, Asid asid)
{
    unsigned n = 0;
    for (auto &s : slots_) {
        if (s.valid && s.asid == asid && s.range.vbase < vlimit &&
            s.range.vlimit > vbase) {
            s.valid = false;
            ++n;
        }
    }
    if (n > 0)
        indexDirty_ = true;
    return n;
}

bool
RangeTlb::corruptRandomEntry(std::uint64_t rnd, bool flipTag)
{
    const std::size_t total = slots_.size();
    const std::size_t start = static_cast<std::size_t>(rnd % total);
    for (std::size_t i = 0; i < total; ++i) {
        Slot &s = slots_[(start + i) % total];
        if (!s.valid)
            continue;
        const unsigned bit = 12 + (rnd >> 32) % 4;
        if (flipTag) {
            // Grow the claimed range: the entry now covers pages the
            // real range translation does not.
            s.range.vlimit += Addr{1} << bit;
        } else {
            s.range.pbase ^= Addr{1} << bit;
        }
        corrupted_ = true;
        return true;
    }
    return false;
}

bool
RangeTlb::peekReplayHit(unsigned slot, Addr vaddr, Asid asid) const
{
    if (slot >= slots_.size())
        return false;
    const Slot &s = slots_[slot];
    if (!s.valid || s.asid != asid || !s.range.contains(vaddr))
        return false;
    for (const auto &other : slots_) {
        if (other.valid && other.stamp > s.stamp)
            return false;
    }
    return true;
}

unsigned
RangeTlb::validCount() const
{
    unsigned n = 0;
    for (const auto &s : slots_)
        n += s.valid ? 1 : 0;
    return n;
}

} // namespace eat::tlb
