#include "tlb/range_tlb.hh"

#include "base/logging.hh"

namespace eat::tlb
{

RangeTlb::RangeTlb(std::string name, unsigned entries)
    : name_(std::move(name)), slots_(entries)
{
    eat_assert(entries >= 1, name_, ": range TLB needs >= 1 entry");
}

std::optional<vm::RangeTranslation>
RangeTlb::lookup(Addr vaddr, Asid asid)
{
    for (auto &s : slots_) {
        if (s.valid && s.asid == asid && s.range.contains(vaddr)) {
            s.stamp = ++clock_;
            ++hits_;
            return s.range;
        }
    }
    ++misses_;
    return std::nullopt;
}

bool
RangeTlb::probe(Addr vaddr, Asid asid) const
{
    for (const auto &s : slots_) {
        if (s.valid && s.asid == asid && s.range.contains(vaddr))
            return true;
    }
    return false;
}

bool
RangeTlb::fill(const vm::RangeTranslation &range, Asid asid)
{
    Slot *victim = nullptr;
    for (auto &s : slots_) {
        if (s.valid && s.asid == asid && s.range == range) {
            // Already present (e.g. racing refills); just touch it.
            s.stamp = ++clock_;
            return false;
        }
        if (!s.valid && !victim)
            victim = &s;
    }
    bool evicted = false;
    if (!victim) {
        victim = &slots_[0];
        for (auto &s : slots_) {
            if (s.stamp < victim->stamp)
                victim = &s;
        }
        evicted = true;
    }
    victim->valid = true;
    victim->range = range;
    victim->stamp = ++clock_;
    victim->asid = asid;
    ++fills_;
    return evicted;
}

void
RangeTlb::invalidateAll()
{
    for (auto &s : slots_)
        s.valid = false;
}

unsigned
RangeTlb::invalidateAsid(Asid asid)
{
    unsigned n = 0;
    for (auto &s : slots_) {
        if (s.valid && s.asid == asid) {
            s.valid = false;
            ++n;
        }
    }
    return n;
}

unsigned
RangeTlb::invalidateRange(Addr vbase, Addr vlimit, Asid asid)
{
    unsigned n = 0;
    for (auto &s : slots_) {
        if (s.valid && s.asid == asid && s.range.vbase < vlimit &&
            s.range.vlimit > vbase) {
            s.valid = false;
            ++n;
        }
    }
    return n;
}

bool
RangeTlb::corruptRandomEntry(std::uint64_t rnd, bool flipTag)
{
    const std::size_t total = slots_.size();
    const std::size_t start = static_cast<std::size_t>(rnd % total);
    for (std::size_t i = 0; i < total; ++i) {
        Slot &s = slots_[(start + i) % total];
        if (!s.valid)
            continue;
        const unsigned bit = 12 + (rnd >> 32) % 4;
        if (flipTag) {
            // Grow the claimed range: the entry now covers pages the
            // real range translation does not.
            s.range.vlimit += Addr{1} << bit;
        } else {
            s.range.pbase ^= Addr{1} << bit;
        }
        return true;
    }
    return false;
}

unsigned
RangeTlb::validCount() const
{
    unsigned n = 0;
    for (const auto &s : slots_)
        n += s.valid ? 1 : 0;
    return n;
}

} // namespace eat::tlb
