/**
 * @file
 * The entry format shared by page TLBs and MMU paging-structure caches.
 */

#ifndef EAT_TLB_TLB_ENTRY_HH
#define EAT_TLB_TLB_ENTRY_HH

#include "base/types.hh"
#include "vm/page_size.hh"

namespace eat::tlb
{

/**
 * One cached translation. @c shift defines the region the entry covers
 * (page shift for TLBs, paging-structure granularity for MMU caches), so
 * one structure can hold mixed page sizes (TLB_PP).
 */
struct TlbEntry
{
    Addr vbase = 0;  ///< covered region base (aligned to 1 << shift)
    Addr pbase = 0;  ///< physical base (unused by MMU caches)
    vm::PageSize size = vm::PageSize::Size4K;
    unsigned shift = 12; ///< log2 of the covered region size

    /** True iff @p vaddr falls in the region this entry covers. */
    bool
    covers(Addr vaddr) const
    {
        return (vaddr >> shift) == (vbase >> shift);
    }

    /** Translate an address inside the covered region. */
    Addr
    paddr(Addr vaddr) const
    {
        return pbase + (vaddr & ((Addr{1} << shift) - 1));
    }
};

/** Build a page-TLB entry covering @p vaddr. */
inline TlbEntry
makePageEntry(Addr vaddr, Addr pbase, vm::PageSize size)
{
    const unsigned shift = vm::pageShift(size);
    return TlbEntry{alignDown(vaddr, Addr{1} << shift), pbase, size, shift};
}

} // namespace eat::tlb

#endif // EAT_TLB_TLB_ENTRY_HH
