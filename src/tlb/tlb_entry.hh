/**
 * @file
 * The entry format shared by page TLBs and MMU paging-structure caches.
 */

#ifndef EAT_TLB_TLB_ENTRY_HH
#define EAT_TLB_TLB_ENTRY_HH

#include <cstdint>

#include "base/types.hh"
#include "vm/page_size.hh"

namespace eat::tlb
{

/**
 * Address-space identifier tagging TLB entries. Single-core runs leave
 * every entry (and every lookup) at asid 0, which keeps their behavior
 * bit-identical to the untagged model; multicore runs with private
 * address spaces assign one ASID per task so a context switch does not
 * have to flush.
 */
using Asid = std::uint16_t;

/**
 * One cached translation. @c shift defines the region the entry covers
 * (page shift for TLBs, paging-structure granularity for MMU caches), so
 * one structure can hold mixed page sizes (TLB_PP).
 */
struct TlbEntry
{
    Addr vbase = 0;  ///< covered region base (aligned to 1 << shift)
    Addr pbase = 0;  ///< physical base (unused by MMU caches)
    vm::PageSize size = vm::PageSize::Size4K;
    unsigned shift = 12; ///< log2 of the covered region size
    Asid asid = 0;   ///< owning address space

    /** True iff @p vaddr falls in the region this entry covers. */
    bool
    covers(Addr vaddr) const
    {
        return (vaddr >> shift) == (vbase >> shift);
    }

    /** Translate an address inside the covered region. */
    Addr
    paddr(Addr vaddr) const
    {
        return pbase + (vaddr & ((Addr{1} << shift) - 1));
    }
};

/** Build a page-TLB entry covering @p vaddr. */
inline TlbEntry
makePageEntry(Addr vaddr, Addr pbase, vm::PageSize size, Asid asid = 0)
{
    const unsigned shift = vm::pageShift(size);
    return TlbEntry{alignDown(vaddr, Addr{1} << shift), pbase, size, shift,
                    asid};
}

} // namespace eat::tlb

#endif // EAT_TLB_TLB_ENTRY_HH
