#include "tlb/set_assoc_tlb.hh"

#include "base/logging.hh"

namespace eat::tlb
{

SetAssocTlb::SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                         unsigned shift)
    : name_(std::move(name)),
      sets_(entries / (ways ? ways : 1)),
      ways_(ways),
      activeWays_(ways),
      logActiveWays_(static_cast<unsigned>(floorLog2(ways ? ways : 1))),
      shift_(shift),
      slots_(entries),
      stampScratch_(ways)
{
    eat_assert(ways >= 1, name_, ": ways must be >= 1");
    eat_assert(entries % ways == 0,
               name_, ": entries (", entries, ") not divisible by ways (",
               ways, ")");
    eat_assert(isPowerOfTwo(sets_),
               name_, ": set count (", sets_, ") must be a power of two");
}

TlbLookupResult
SetAssocTlb::lookupWithShift(Addr vaddr, unsigned idxShift, Asid asid)
{
    const unsigned set = indexOf(vaddr, idxShift);
    Slot *slots = slotsOfSet(set);

    // Single pass over the set: find the hit and its LRU distance
    // among the active ways — the number of ways older than the hit,
    // where invalid ways count as older (they sit at the LRU end of
    // the stack). Ways scanned before the hit is known buffer their
    // stamps (stamps are unique: every touch draws from one clock) and
    // are classified right after the walk; ways after it compare
    // directly. One traversal of the slot array total, however large
    // the associativity.
    Slot *hit = nullptr;
    std::uint64_t hitStamp = 0;
    unsigned older = 0;        // ways already known older than the hit
    unsigned buffered = 0;     // pre-hit valid stamps in stampScratch_
    for (unsigned way = 0; way < activeWays_; ++way) {
        Slot &s = slots[way];
        if (hit == nullptr) {
            if (s.valid && s.entry.asid == asid && s.entry.covers(vaddr)) {
                hit = &s;
                hitStamp = s.stamp;
            } else if (s.valid) {
                stampScratch_[buffered++] = s.stamp;
            } else {
                ++older;
            }
        } else if (!s.valid || s.stamp < hitStamp) {
            ++older;
        }
    }

    if (hit == nullptr) {
        ++misses_;
        return TlbLookupResult{};
    }

    for (unsigned i = 0; i < buffered; ++i) {
        if (stampScratch_[i] < hitStamp)
            ++older;
    }
    eat_assert(older < activeWays_, "corrupt recency stamps");
    const unsigned distance = older;

    hit->stamp = ++clock_;
    ++hits_;
    return TlbLookupResult{true, distance, hit->entry};
}

bool
SetAssocTlb::probe(Addr vaddr, Asid asid) const
{
    const unsigned set = indexOf(vaddr, shift_);
    const Slot *slots = slotsOfSet(set);
    for (unsigned way = 0; way < activeWays_; ++way) {
        if (slots[way].valid && slots[way].entry.asid == asid &&
            slots[way].entry.covers(vaddr)) {
            return true;
        }
    }
    return false;
}

bool
SetAssocTlb::fill(const TlbEntry &entry)
{
    const unsigned set = indexOf(entry.vbase, entry.shift);
    Slot *slots = slotsOfSet(set);

    // Reuse a slot already covering the region (refill), else an
    // invalid slot, else evict the LRU. One pass tracks all three
    // candidates, so finding no invalid slot costs no second walk.
    Slot *invalid = nullptr;
    Slot *lru = nullptr;
    Slot *victim = nullptr;
    bool evicted = false;
    for (unsigned way = 0; way < activeWays_; ++way) {
        Slot &s = slots[way];
        if (s.valid && s.entry.asid == entry.asid &&
            s.entry.covers(entry.vbase)) {
            victim = &s; // refill in place
            break;
        }
        if (!s.valid) {
            if (!invalid)
                invalid = &s;
        } else if (!lru || s.stamp < lru->stamp) {
            lru = &s;
        }
    }
    if (!victim) {
        victim = invalid ? invalid : lru;
        evicted = victim == lru && !invalid;
    }

    victim->valid = true;
    victim->entry = entry;
    victim->stamp = ++clock_;
    ++fills_;
    return evicted;
}

void
SetAssocTlb::invalidateAll()
{
    for (auto &s : slots_)
        s.valid = false;
}

unsigned
SetAssocTlb::invalidateAsid(Asid asid)
{
    unsigned n = 0;
    for (auto &s : slots_) {
        if (s.valid && s.entry.asid == asid) {
            s.valid = false;
            ++n;
        }
    }
    return n;
}

unsigned
SetAssocTlb::invalidateRange(Addr vbase, Addr vlimit, Asid asid)
{
    unsigned n = 0;
    for (auto &s : slots_) {
        if (!s.valid || s.entry.asid != asid)
            continue;
        const Addr entryBase = alignDown(s.entry.vbase, Addr{1} << s.entry.shift);
        const Addr entryEnd = entryBase + (Addr{1} << s.entry.shift);
        if (entryBase < vlimit && entryEnd > vbase) {
            s.valid = false;
            ++n;
        }
    }
    return n;
}

void
SetAssocTlb::setActiveWays(unsigned w)
{
    eat_assert(isPowerOfTwo(w) && w >= 1 && w <= ways_,
               name_, ": invalid active-way count ", w);
    if (w == activeWays_)
        return;
    if (w < activeWays_) {
        // Disabling ways: invalidate their entries so re-activation
        // never exposes stale translations (consistency, paper §4.2.3).
        // An armed drop-invalidation fault skips exactly this step.
        if (dropNextInvalidation_) {
            dropNextInvalidation_ = false;
        } else {
            for (unsigned set = 0; set < sets_; ++set) {
                Slot *slots = slotsOfSet(set);
                for (unsigned way = w; way < activeWays_; ++way)
                    slots[way].valid = false;
            }
        }
    }
    activeWays_ = w;
    logActiveWays_ = static_cast<unsigned>(floorLog2(w));
    ++resizes_;
}

unsigned
SetAssocTlb::validCount() const
{
    unsigned n = 0;
    for (const auto &s : slots_)
        n += s.valid ? 1 : 0;
    return n;
}

unsigned
SetAssocTlb::validInDisabledWays() const
{
    unsigned n = 0;
    for (unsigned set = 0; set < sets_; ++set) {
        const Slot *slots = slotsOfSet(set);
        for (unsigned way = activeWays_; way < ways_; ++way)
            n += slots[way].valid ? 1 : 0;
    }
    return n;
}

bool
SetAssocTlb::corruptRandomEntry(std::uint64_t rnd, bool flipTag)
{
    const unsigned total = sets_ * ways_;
    const unsigned start = static_cast<unsigned>(rnd % total);
    for (unsigned i = 0; i < total; ++i) {
        Slot &s = slots_[(start + i) % total];
        if (!s.valid)
            continue;
        if (flipTag) {
            // Flip a tag bit above the index field so the entry stays
            // in its set but claims a different (aliased) region.
            const unsigned bit =
                s.entry.shift + floorLog2(sets_) + (rnd >> 32) % 4;
            s.entry.vbase ^= Addr{1} << bit;
        } else {
            // Flip a PPN bit: the next hit returns a wrong paddr.
            const unsigned bit = s.entry.shift + (rnd >> 32) % 4;
            s.entry.pbase ^= Addr{1} << bit;
        }
        return true;
    }
    return false;
}

void
SetAssocTlb::forceActiveWays(unsigned w)
{
    eat_assert(w >= 1 && w <= ways_,
               name_, ": forced active-way count ", w, " out of range");
    activeWays_ = w;
    logActiveWays_ = static_cast<unsigned>(floorLog2(w));
}

} // namespace eat::tlb
