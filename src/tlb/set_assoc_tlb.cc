#include "tlb/set_assoc_tlb.hh"

#include <bit>

#include "base/logging.hh"

namespace eat::tlb
{

SetAssocTlb::SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                         unsigned shift)
    : name_(std::move(name)),
      sets_(entries / (ways ? ways : 1)),
      ways_(ways),
      activeWays_(ways),
      logActiveWays_(static_cast<unsigned>(floorLog2(ways ? ways : 1))),
      shift_(shift),
      valid_(entries, 0),
      shifts_(entries, 0),
      asids_(entries, 0),
      vtags_(entries, 0),
      vbases_(entries, 0),
      pbases_(entries, 0),
      sizes_(entries, vm::PageSize::Size4K),
      stamps_(entries, 0),
      setMaxStamp_(sets_, 0)
{
    eat_assert(ways >= 1, name_, ": ways must be >= 1");
    eat_assert(entries % ways == 0,
               name_, ": entries (", entries, ") not divisible by ways (",
               ways, ")");
    eat_assert(isPowerOfTwo(sets_),
               name_, ": set count (", sets_, ") must be a power of two");
    eat_assert(ways <= 64,
               name_, ": associativity (", ways,
               ") exceeds the 64-way probe mask");
}

TlbLookupResult
SetAssocTlb::lookupWithShift(Addr vaddr, unsigned idxShift, Asid asid)
{
    const unsigned set = indexOf(vaddr, idxShift);
    const unsigned base = set * ways_;
    const std::uint8_t *valid = &valid_[base];
    const std::uint8_t *shifts = &shifts_[base];
    const Asid *asids = &asids_[base];
    const Addr *vtags = &vtags_[base];
    const std::uint64_t *stamps = &stamps_[base];

    // Branchless probe: one compare per active way folded into a hit
    // mask; the hit is the lowest matching way, exactly the first
    // match a way-order walk would take.
    std::uint64_t mask = 0;
    for (unsigned way = 0; way < activeWays_; ++way) {
        const bool match = valid[way] && asids[way] == asid &&
                           (vaddr >> shifts[way]) == vtags[way];
        mask |= static_cast<std::uint64_t>(match) << way;
    }
    if (mask == 0) {
        ++misses_;
        return TlbLookupResult{};
    }
    const unsigned hitWay =
        static_cast<unsigned>(std::countr_zero(mask));
    const std::uint64_t hitStamp = stamps[hitWay];

    // LRU distance: the number of other active ways older than the
    // hit, where invalid ways count as older (they sit at the LRU end
    // of the stack). Stamps are unique — every touch draws from one
    // clock — so a plain comparison sum over the flat array suffices.
    unsigned older = 0;
    for (unsigned way = 0; way < activeWays_; ++way) {
        older += static_cast<unsigned>(
            way != hitWay &&
            (!valid[way] || stamps[way] < hitStamp));
    }
    eat_assert(older < activeWays_, "corrupt recency stamps");

    stamps_[base + hitWay] = ++clock_;
    setMaxStamp_[set] = clock_;
    ++hits_;
    TlbLookupResult result{true, older, entryAt(base + hitWay)};
    result.set = set;
    result.way = hitWay;
    return result;
}

bool
SetAssocTlb::probe(Addr vaddr, Asid asid) const
{
    const unsigned base = indexOf(vaddr, shift_) * ways_;
    for (unsigned way = 0; way < activeWays_; ++way) {
        const unsigned i = base + way;
        if (valid_[i] && asids_[i] == asid &&
            (vaddr >> shifts_[i]) == vtags_[i]) {
            return true;
        }
    }
    return false;
}

bool
SetAssocTlb::fill(const TlbEntry &entry)
{
    const unsigned set = indexOf(entry.vbase, entry.shift);
    const unsigned base = set * ways_;

    // Reuse a slot already covering the region (refill), else an
    // invalid slot, else evict the LRU. One pass over the flat arrays
    // tracks all three candidates.
    const unsigned none = activeWays_;
    unsigned victim = none;
    unsigned invalid = none;
    unsigned lru = none;
    std::uint64_t lruStamp = 0;
    for (unsigned way = 0; way < activeWays_; ++way) {
        const unsigned i = base + way;
        if (valid_[i] && asids_[i] == entry.asid &&
            (entry.vbase >> shifts_[i]) == vtags_[i]) {
            victim = way; // refill in place
            break;
        }
        if (!valid_[i]) {
            if (invalid == none)
                invalid = way;
        } else if (lru == none || stamps_[i] < lruStamp) {
            lru = way;
            lruStamp = stamps_[i];
        }
    }
    bool evicted = false;
    if (victim == none) {
        victim = invalid != none ? invalid : lru;
        evicted = invalid == none;
    }

    const unsigned i = base + victim;
    valid_[i] = 1;
    shifts_[i] = static_cast<std::uint8_t>(entry.shift);
    asids_[i] = entry.asid;
    vtags_[i] = entry.vbase >> entry.shift;
    vbases_[i] = entry.vbase;
    pbases_[i] = entry.pbase;
    sizes_[i] = entry.size;
    stamps_[i] = ++clock_;
    setMaxStamp_[set] = clock_;
    ++fills_;
    return evicted;
}

void
SetAssocTlb::invalidateAll()
{
    std::fill(valid_.begin(), valid_.end(), 0);
}

unsigned
SetAssocTlb::invalidateAsid(Asid asid)
{
    unsigned n = 0;
    for (unsigned i = 0; i < valid_.size(); ++i) {
        if (valid_[i] && asids_[i] == asid) {
            valid_[i] = 0;
            ++n;
        }
    }
    return n;
}

unsigned
SetAssocTlb::invalidateRange(Addr vbase, Addr vlimit, Asid asid)
{
    unsigned n = 0;
    for (unsigned i = 0; i < valid_.size(); ++i) {
        if (!valid_[i] || asids_[i] != asid)
            continue;
        const Addr span = Addr{1} << shifts_[i];
        const Addr entryBase = alignDown(vbases_[i], span);
        const Addr entryEnd = entryBase + span;
        if (entryBase < vlimit && entryEnd > vbase) {
            valid_[i] = 0;
            ++n;
        }
    }
    return n;
}

void
SetAssocTlb::setActiveWays(unsigned w)
{
    eat_assert(isPowerOfTwo(w) && w >= 1 && w <= ways_,
               name_, ": invalid active-way count ", w);
    if (w == activeWays_)
        return;
    if (w < activeWays_) {
        // Disabling ways: invalidate their entries so re-activation
        // never exposes stale translations (consistency, paper §4.2.3).
        // An armed drop-invalidation fault skips exactly this step.
        if (dropNextInvalidation_) {
            dropNextInvalidation_ = false;
        } else {
            for (unsigned set = 0; set < sets_; ++set) {
                const unsigned base = set * ways_;
                for (unsigned way = w; way < activeWays_; ++way)
                    valid_[base + way] = 0;
            }
        }
    }
    activeWays_ = w;
    logActiveWays_ = static_cast<unsigned>(floorLog2(w));
    ++resizes_;
}

unsigned
SetAssocTlb::validCount() const
{
    unsigned n = 0;
    for (const std::uint8_t v : valid_)
        n += v ? 1 : 0;
    return n;
}

unsigned
SetAssocTlb::validInDisabledWays() const
{
    if (activeWays_ == ways_)
        return 0; // no disabled ways to hold stale entries
    unsigned n = 0;
    for (unsigned set = 0; set < sets_; ++set) {
        const unsigned base = set * ways_;
        for (unsigned way = activeWays_; way < ways_; ++way)
            n += valid_[base + way] ? 1 : 0;
    }
    return n;
}

bool
SetAssocTlb::corruptRandomEntry(std::uint64_t rnd, bool flipTag)
{
    const unsigned total = sets_ * ways_;
    const unsigned start = static_cast<unsigned>(rnd % total);
    for (unsigned n = 0; n < total; ++n) {
        const unsigned i = (start + n) % total;
        if (!valid_[i])
            continue;
        if (flipTag) {
            // Flip a tag bit above the index field so the entry stays
            // in its set but claims a different (aliased) region; the
            // cached tag must track the corrupted base, exactly as a
            // real tag array would hold the flipped bit.
            const unsigned bit =
                shifts_[i] + floorLog2(sets_) + (rnd >> 32) % 4;
            vbases_[i] ^= Addr{1} << bit;
            vtags_[i] = vbases_[i] >> shifts_[i];
        } else {
            // Flip a PPN bit: the next hit returns a wrong paddr.
            const unsigned bit = shifts_[i] + (rnd >> 32) % 4;
            pbases_[i] ^= Addr{1} << bit;
        }
        return true;
    }
    return false;
}

void
SetAssocTlb::forceActiveWays(unsigned w)
{
    eat_assert(w >= 1 && w <= ways_,
               name_, ": forced active-way count ", w, " out of range");
    activeWays_ = w;
    logActiveWays_ = static_cast<unsigned>(floorLog2(w));
}

} // namespace eat::tlb
