#include "tlb/set_assoc_tlb.hh"

#include "base/logging.hh"

namespace eat::tlb
{

SetAssocTlb::SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                         unsigned shift)
    : name_(std::move(name)),
      sets_(entries / (ways ? ways : 1)),
      ways_(ways),
      activeWays_(ways),
      shift_(shift),
      slots_(entries)
{
    eat_assert(ways >= 1, name_, ": ways must be >= 1");
    eat_assert(entries % ways == 0,
               name_, ": entries (", entries, ") not divisible by ways (",
               ways, ")");
    eat_assert(isPowerOfTwo(sets_),
               name_, ": set count (", sets_, ") must be a power of two");
}

TlbLookupResult
SetAssocTlb::lookupWithShift(Addr vaddr, unsigned idxShift)
{
    const unsigned set = indexOf(vaddr, idxShift);
    Slot *slots = slotsOfSet(set);

    for (unsigned way = 0; way < activeWays_; ++way) {
        Slot &s = slots[way];
        if (!s.valid || !s.entry.covers(vaddr))
            continue;

        // LRU distance among the active ways: number of valid active
        // entries older than the hit (invalid ways count as older, i.e.
        // they sit at the LRU end of the stack).
        unsigned moreRecent = 0;
        for (unsigned w = 0; w < activeWays_; ++w) {
            if (w != way && slots[w].valid && slots[w].stamp > s.stamp)
                ++moreRecent;
        }
        eat_assert(moreRecent < activeWays_, "corrupt recency stamps");
        const unsigned distance = activeWays_ - 1 - moreRecent;

        s.stamp = ++clock_;
        ++hits_;
        return TlbLookupResult{true, distance, s.entry};
    }

    ++misses_;
    return TlbLookupResult{};
}

bool
SetAssocTlb::probe(Addr vaddr) const
{
    const unsigned set = indexOf(vaddr, shift_);
    const Slot *slots = slotsOfSet(set);
    for (unsigned way = 0; way < activeWays_; ++way) {
        if (slots[way].valid && slots[way].entry.covers(vaddr))
            return true;
    }
    return false;
}

void
SetAssocTlb::fill(const TlbEntry &entry)
{
    const unsigned set = indexOf(entry.vbase, entry.shift);
    Slot *slots = slotsOfSet(set);

    // Reuse a slot already covering the region (refill), else an invalid
    // slot, else evict the LRU among the active ways.
    Slot *victim = nullptr;
    for (unsigned way = 0; way < activeWays_; ++way) {
        Slot &s = slots[way];
        if (s.valid && s.entry.covers(entry.vbase)) {
            victim = &s;
            break;
        }
        if (!s.valid && !victim)
            victim = &s;
    }
    if (!victim) {
        victim = &slots[0];
        for (unsigned way = 1; way < activeWays_; ++way) {
            if (slots[way].stamp < victim->stamp)
                victim = &slots[way];
        }
    }

    victim->valid = true;
    victim->entry = entry;
    victim->stamp = ++clock_;
    ++fills_;
}

void
SetAssocTlb::invalidateAll()
{
    for (auto &s : slots_)
        s.valid = false;
}

void
SetAssocTlb::setActiveWays(unsigned w)
{
    eat_assert(isPowerOfTwo(w) && w >= 1 && w <= ways_,
               name_, ": invalid active-way count ", w);
    if (w == activeWays_)
        return;
    if (w < activeWays_) {
        // Disabling ways: invalidate their entries so re-activation
        // never exposes stale translations (consistency, paper §4.2.3).
        // An armed drop-invalidation fault skips exactly this step.
        if (dropNextInvalidation_) {
            dropNextInvalidation_ = false;
        } else {
            for (unsigned set = 0; set < sets_; ++set) {
                Slot *slots = slotsOfSet(set);
                for (unsigned way = w; way < activeWays_; ++way)
                    slots[way].valid = false;
            }
        }
    }
    activeWays_ = w;
    ++resizes_;
}

unsigned
SetAssocTlb::validCount() const
{
    unsigned n = 0;
    for (const auto &s : slots_)
        n += s.valid ? 1 : 0;
    return n;
}

unsigned
SetAssocTlb::validInDisabledWays() const
{
    unsigned n = 0;
    for (unsigned set = 0; set < sets_; ++set) {
        const Slot *slots = slotsOfSet(set);
        for (unsigned way = activeWays_; way < ways_; ++way)
            n += slots[way].valid ? 1 : 0;
    }
    return n;
}

bool
SetAssocTlb::corruptRandomEntry(std::uint64_t rnd, bool flipTag)
{
    const unsigned total = sets_ * ways_;
    const unsigned start = static_cast<unsigned>(rnd % total);
    for (unsigned i = 0; i < total; ++i) {
        Slot &s = slots_[(start + i) % total];
        if (!s.valid)
            continue;
        if (flipTag) {
            // Flip a tag bit above the index field so the entry stays
            // in its set but claims a different (aliased) region.
            const unsigned bit =
                s.entry.shift + floorLog2(sets_) + (rnd >> 32) % 4;
            s.entry.vbase ^= Addr{1} << bit;
        } else {
            // Flip a PPN bit: the next hit returns a wrong paddr.
            const unsigned bit = s.entry.shift + (rnd >> 32) % 4;
            s.entry.pbase ^= Addr{1} << bit;
        }
        return true;
    }
    return false;
}

void
SetAssocTlb::forceActiveWays(unsigned w)
{
    eat_assert(w >= 1 && w <= ways_,
               name_, ": forced active-way count ", w, " out of range");
    activeWays_ = w;
}

} // namespace eat::tlb
