#include "tlb/range_walker.hh"

// RangeTableWalker is header-only; this translation unit anchors the
// module in the library.

namespace eat::tlb
{
} // namespace eat::tlb
