/**
 * @file
 * Range TLB: a fully associative cache of range translations.
 *
 * Each entry maps an *arbitrarily large* range of pages contiguous in
 * both virtual and physical address space, so a tiny structure (4
 * entries at L1, 32 at L2) can cover most of a process's address space.
 * Lookups perform two comparisons per entry (base <= vaddr < limit),
 * which is why the paper charges the range TLB the energy of a page TLB
 * with twice the tag bits.
 *
 * The modeled hardware probes all entries in parallel; the simulator
 * resolves lookups by binary search over a lazily rebuilt index of the
 * valid slots sorted by (asid, vbase). Ranges cached from the OS range
 * table are disjoint per address space, so the predecessor range is
 * the only possible container and the search is outcome-identical to
 * the historical linear first-match scan. Fault injection can corrupt
 * a cached vlimit into overlapping a neighbor — where first-match
 * order *is* observable — so the first corruption permanently drops
 * the structure back to the linear scan.
 */

#ifndef EAT_TLB_RANGE_TLB_HH
#define EAT_TLB_RANGE_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "tlb/tlb_entry.hh"
#include "vm/range_table.hh"

namespace eat::tlb
{

/** A fully associative TLB over range translations (LRU replacement).
 *  Entries are ASID-tagged like page-TLB entries; asid 0 everywhere
 *  reproduces the untagged single-core behavior. */
class RangeTlb
{
  public:
    RangeTlb(std::string name, unsigned entries);

    /** Find the cached range containing @p vaddr (LRU updated on hit). */
    std::optional<vm::RangeTranslation> lookup(Addr vaddr, Asid asid = 0);

    /** State-preserving hit test. */
    bool probe(Addr vaddr, Asid asid = 0) const;

    /** Install a range translation (deduplicates; replaces LRU).
     *  @return true when a live entry was evicted. */
    bool fill(const vm::RangeTranslation &range, Asid asid = 0);

    void invalidateAll();

    /** Invalidate every entry tagged @p asid.
     *  @return number invalidated. */
    unsigned invalidateAsid(Asid asid);

    /**
     * Shootdown receiver: invalidate entries tagged @p asid whose range
     * overlaps [@p vbase, @p vlimit).
     * @return number invalidated.
     */
    unsigned invalidateRange(Addr vbase, Addr vlimit, Asid asid);

    const std::string &name() const { return name_; }
    unsigned entries() const { return static_cast<unsigned>(slots_.size()); }
    unsigned validCount() const;

    /**
     * Fault-injection hook (check::FaultInjector and tests only):
     * corrupt one pseudo-random valid entry by flipping a bit of its
     * virtual bounds (@p flipTag) or of its physical base (!@p flipTag).
     * Also retires the binary-search index for the rest of this TLB's
     * life (see file comment). @return false if no entry is valid.
     */
    bool corruptRandomEntry(std::uint64_t rnd, bool flipTag);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }

    // --- front-cache replay hooks (core::Mmu's last-translation
    // --- cache) ---

    /** Slot index of the most recent lookup() hit (valid until the
     *  next fill or invalidation). */
    unsigned lastHitSlot() const { return lastHitSlot_; }

    /** Would replaying a remembered hit in @p slot for (@p vaddr,
     *  @p asid) match a full probe? True iff the slot is valid, tagged
     *  @p asid, contains @p vaddr, and is the MRU entry. */
    bool peekReplayHit(unsigned slot, Addr vaddr, Asid asid) const;

    /** Apply the hit side effects of the slot checked by
     *  peekReplayHit() and return its translation, read fresh. */
    vm::RangeTranslation
    commitReplayHit(unsigned slot)
    {
        Slot &s = slots_[slot];
        s.stamp = ++clock_;
        ++hits_;
        return s.range;
    }

    /** Apply the miss side effect of a probe whose outcome (a miss) is
     *  already known, without scanning the slots. */
    void noteMiss() { ++misses_; }

  private:
    struct Slot
    {
        bool valid = false;
        vm::RangeTranslation range{};
        std::uint64_t stamp = 0;
        Asid asid = 0;
    };

    void rebuildIndex();

    std::string name_;
    std::vector<Slot> slots_;
    /** Valid slot indices sorted by (asid, range.vbase); rebuilt
     *  lazily when indexDirty_. Unused once corrupted_. */
    std::vector<unsigned> index_;
    bool indexDirty_ = true;
    bool corrupted_ = false;
    unsigned lastHitSlot_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
};

} // namespace eat::tlb

#endif // EAT_TLB_RANGE_TLB_HH
