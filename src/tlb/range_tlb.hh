/**
 * @file
 * Range TLB: a fully associative cache of range translations.
 *
 * Each entry maps an *arbitrarily large* range of pages contiguous in
 * both virtual and physical address space, so a tiny structure (4
 * entries at L1, 32 at L2) can cover most of a process's address space.
 * Lookups perform two comparisons per entry (base <= vaddr < limit),
 * which is why the paper charges the range TLB the energy of a page TLB
 * with twice the tag bits.
 */

#ifndef EAT_TLB_RANGE_TLB_HH
#define EAT_TLB_RANGE_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "tlb/tlb_entry.hh"
#include "vm/range_table.hh"

namespace eat::tlb
{

/** A fully associative TLB over range translations (LRU replacement).
 *  Entries are ASID-tagged like page-TLB entries; asid 0 everywhere
 *  reproduces the untagged single-core behavior. */
class RangeTlb
{
  public:
    RangeTlb(std::string name, unsigned entries);

    /** Find the cached range containing @p vaddr (LRU updated on hit). */
    std::optional<vm::RangeTranslation> lookup(Addr vaddr, Asid asid = 0);

    /** State-preserving hit test. */
    bool probe(Addr vaddr, Asid asid = 0) const;

    /** Install a range translation (deduplicates; replaces LRU).
     *  @return true when a live entry was evicted. */
    bool fill(const vm::RangeTranslation &range, Asid asid = 0);

    void invalidateAll();

    /** Invalidate every entry tagged @p asid.
     *  @return number invalidated. */
    unsigned invalidateAsid(Asid asid);

    /**
     * Shootdown receiver: invalidate entries tagged @p asid whose range
     * overlaps [@p vbase, @p vlimit).
     * @return number invalidated.
     */
    unsigned invalidateRange(Addr vbase, Addr vlimit, Asid asid);

    const std::string &name() const { return name_; }
    unsigned entries() const { return static_cast<unsigned>(slots_.size()); }
    unsigned validCount() const;

    /**
     * Fault-injection hook (check::FaultInjector and tests only):
     * corrupt one pseudo-random valid entry by flipping a bit of its
     * virtual bounds (@p flipTag) or of its physical base (!@p flipTag).
     * @return false if no entry is valid.
     */
    bool corruptRandomEntry(std::uint64_t rnd, bool flipTag);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }

  private:
    struct Slot
    {
        bool valid = false;
        vm::RangeTranslation range{};
        std::uint64_t stamp = 0;
        Asid asid = 0;
    };

    std::string name_;
    std::vector<Slot> slots_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
};

} // namespace eat::tlb

#endif // EAT_TLB_RANGE_TLB_HH
