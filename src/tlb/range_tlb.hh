/**
 * @file
 * Range TLB: a fully associative cache of range translations.
 *
 * Each entry maps an *arbitrarily large* range of pages contiguous in
 * both virtual and physical address space, so a tiny structure (4
 * entries at L1, 32 at L2) can cover most of a process's address space.
 * Lookups perform two comparisons per entry (base <= vaddr < limit),
 * which is why the paper charges the range TLB the energy of a page TLB
 * with twice the tag bits.
 */

#ifndef EAT_TLB_RANGE_TLB_HH
#define EAT_TLB_RANGE_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "vm/range_table.hh"

namespace eat::tlb
{

/** A fully associative TLB over range translations (LRU replacement). */
class RangeTlb
{
  public:
    RangeTlb(std::string name, unsigned entries);

    /** Find the cached range containing @p vaddr (LRU updated on hit). */
    std::optional<vm::RangeTranslation> lookup(Addr vaddr);

    /** State-preserving hit test. */
    bool probe(Addr vaddr) const;

    /** Install a range translation (deduplicates; replaces LRU). */
    void fill(const vm::RangeTranslation &range);

    void invalidateAll();

    const std::string &name() const { return name_; }
    unsigned entries() const { return static_cast<unsigned>(slots_.size()); }
    unsigned validCount() const;

    /**
     * Fault-injection hook (check::FaultInjector and tests only):
     * corrupt one pseudo-random valid entry by flipping a bit of its
     * virtual bounds (@p flipTag) or of its physical base (!@p flipTag).
     * @return false if no entry is valid.
     */
    bool corruptRandomEntry(std::uint64_t rnd, bool flipTag);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }

  private:
    struct Slot
    {
        bool valid = false;
        vm::RangeTranslation range{};
        std::uint64_t stamp = 0;
    };

    std::string name_;
    std::vector<Slot> slots_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
};

} // namespace eat::tlb

#endif // EAT_TLB_RANGE_TLB_HH
