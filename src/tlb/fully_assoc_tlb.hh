/**
 * @file
 * Fully associative TLB.
 *
 * A fully associative TLB is a SetAssocTlb with a single set (ways ==
 * entries). Lite treats its entries as pseudo-ways and resizes it in
 * powers of two exactly like a set-associative TLB (paper §4.4).
 */

#ifndef EAT_TLB_FULLY_ASSOC_TLB_HH
#define EAT_TLB_FULLY_ASSOC_TLB_HH

#include "tlb/set_assoc_tlb.hh"

namespace eat::tlb
{

/** A fully associative TLB (CAM search over all entries). */
class FullyAssocTlb : public SetAssocTlb
{
  public:
    /**
     * @param name for reports.
     * @param entries entry count (also the associativity).
     * @param shift log2 of the covered region per entry.
     */
    FullyAssocTlb(std::string name, unsigned entries, unsigned shift);
};

} // namespace eat::tlb

#endif // EAT_TLB_FULLY_ASSOC_TLB_HH
