#include "tlb/page_walker.hh"

#include "base/logging.hh"

namespace eat::tlb
{

WalkResult
PageWalker::walk(Addr vaddr)
{
    auto t = pageTable_->translate(vaddr);
    if (!t)
        eat_panic("page walk of unmapped address ", vaddr);
    WalkResult result;
    result.translation = *t;
    result.cache = mmuCache_.walkAccess(vaddr, t->size);
    return result;
}

} // namespace eat::tlb
