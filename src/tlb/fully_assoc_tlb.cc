#include "tlb/fully_assoc_tlb.hh"

namespace eat::tlb
{

FullyAssocTlb::FullyAssocTlb(std::string name, unsigned entries,
                             unsigned shift)
    : SetAssocTlb(std::move(name), entries, entries, shift)
{
}

} // namespace eat::tlb
