/**
 * @file
 * Hardware range-table walker (RMM).
 *
 * On an L2 TLB miss in RMM configurations, the range-table walker
 * searches the software range table in the background: it adds dynamic
 * energy (a few memory references, B-tree depth) but no execution
 * cycles (paper §5).
 */

#ifndef EAT_TLB_RANGE_WALKER_HH
#define EAT_TLB_RANGE_WALKER_HH

#include <optional>

#include "vm/range_table.hh"

namespace eat::tlb
{

/** The outcome of one background range-table walk. */
struct RangeWalkResult
{
    std::optional<vm::RangeTranslation> range;
    unsigned memRefs = 0;
};

/** The per-core hardware range-table walker. */
class RangeTableWalker
{
  public:
    explicit RangeTableWalker(const vm::RangeTable &table) : table_(&table) {}

    /** Search the range table for @p vaddr. */
    RangeWalkResult
    walk(Addr vaddr) const
    {
        return RangeWalkResult{table_->lookup(vaddr), table_->walkRefs()};
    }

    /** Point the walker at another address space's range table (a
     *  context switch reloading the range-table base register). */
    void setRangeTable(const vm::RangeTable &table) { table_ = &table; }

  private:
    const vm::RangeTable *table_;
};

} // namespace eat::tlb

#endif // EAT_TLB_RANGE_WALKER_HH
