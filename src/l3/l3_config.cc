#include "l3/l3_config.hh"

namespace eat::l3
{

std::string_view
l3ModeName(L3Mode mode)
{
    switch (mode) {
      case L3Mode::None:
        return "none";
      case L3Mode::Cache:
        return "cache";
      case L3Mode::Dram:
        return "dram";
    }
    return "none";
}

Result<L3Mode>
l3ModeFromName(std::string_view name)
{
    if (name == "none")
        return L3Mode::None;
    if (name == "cache")
        return L3Mode::Cache;
    if (name == "dram")
        return L3Mode::Dram;
    return Status::error("unknown l3 mode '", std::string(name),
                         "' (expected none|cache|dram)");
}

std::string_view
l3InsertPolicyName(L3InsertPolicy policy)
{
    switch (policy) {
      case L3InsertPolicy::WalkFill:
        return "walk";
      case L3InsertPolicy::PtePromote:
        return "promote";
    }
    return "walk";
}

Result<L3InsertPolicy>
l3InsertPolicyFromName(std::string_view name)
{
    if (name == "walk")
        return L3InsertPolicy::WalkFill;
    if (name == "promote")
        return L3InsertPolicy::PtePromote;
    return Status::error("unknown l3 insertion policy '",
                         std::string(name), "' (expected walk|promote)");
}

} // namespace eat::l3
