#include "l3/dram_tlb.hh"

#include "base/logging.hh"
#include "energy/cacti_lite.hh"
#include "vm/page_size.hh"

namespace eat::l3
{

DramTlb::DramTlb(const DramTlbConfig &cfg, const energy::CactiLite &cacti)
    : cfg_(cfg),
      storage_("DRAM TLB", cfg.entries, cfg.ways,
               vm::pageShift(vm::PageSize::Size4K)),
      tagCache_(cfg.tagCacheEntries)
{
    eat_assert(isPowerOfTwo(cfg_.tagCacheEntries),
               "tag-cache entry count must be a power of two");
    tagCoeff_ = cacti.estimate(energy::StructClass::L2Tlb4K,
                               cfg_.tagCacheEntries, 1);
    dramCoeff_.read = cfg_.dramReadPj;
    dramCoeff_.write = cfg_.dramWritePj;
    // The DRAM array carries no SRAM leakage term; mirror the tag
    // cache's so the meter's gated (index 0) and full (last index)
    // leakage lookups both land on the tier's real leakage.
    dramCoeff_.leakage = tagCoeff_.leakage;
}

DramProbeResult
DramTlb::probe(Addr vaddr, tlb::Asid asid)
{
    DramProbeResult r;
    const unsigned set = setOf(vaddr);
    TagSlot &slot = slotOf(set);
    r.tagCacheHit = slot.gen == generation_ && slot.set == set;
    if (r.tagCacheHit)
        ++tagHits_;
    else
        ++tagMisses_;

    if (r.tagCacheHit && !storage_.probe(vaddr, asid)) {
        // The cached tags prove the translation absent: a known miss
        // with the DRAM array never touched.
        storage_.noteMiss();
        return r;
    }

    // Either the tags are cold (DRAM must be read to learn them) or
    // they promise a hit (DRAM must be read for the translation).
    r.dramAccessed = true;
    ++dramAccesses_;
    const tlb::TlbLookupResult res = storage_.lookup(vaddr, asid);
    r.hit = res.hit;
    r.entry = res.entry;
    // The DRAM read brought the set's tags past the SRAM cache.
    slot = TagSlot{generation_, set};
    return r;
}

bool
DramTlb::fill(const tlb::TlbEntry &entry)
{
    eat_assert(entry.size == vm::PageSize::Size4K,
               "the in-DRAM TLB holds 4KB translations only");
    const bool evicted = storage_.fill(entry);
    const unsigned set = setOf(entry.vbase);
    slotOf(set) = TagSlot{generation_, set};
    return evicted;
}

void
DramTlb::invalidateAll()
{
    storage_.invalidateAll();
    ++generation_;
}

unsigned
DramTlb::invalidateAsid(tlb::Asid asid)
{
    const unsigned n = storage_.invalidateAsid(asid);
    if (n > 0)
        ++generation_;
    return n;
}

unsigned
DramTlb::invalidateRange(Addr vbase, Addr vlimit, tlb::Asid asid)
{
    const unsigned n = storage_.invalidateRange(vbase, vlimit, asid);
    if (n > 0)
        ++generation_;
    return n;
}

} // namespace eat::l3
