/**
 * @file
 * Configuration types of the L3 translation tier.
 *
 * The tier adds a third translation level behind the L2 TLBs and ahead
 * of the page walker, in one of two substrates:
 *
 *  - `cache`: a Victima-style L3 TLB that parks translations in
 *    modeled last-level-cache lines (CacheTlb + CacheCapacityModel);
 *  - `dram`: a large set-associative in-DRAM TLB fronted by a small
 *    SRAM tag cache (DramTlb), per the die-stacked DRAM-cache study.
 *
 * Split into its own header so core/config.hh can embed the knobs
 * without pulling in the structures.
 */

#ifndef EAT_L3_L3_CONFIG_HH
#define EAT_L3_L3_CONFIG_HH

#include <cstdint>
#include <string_view>

#include "base/status.hh"
#include "base/types.hh"

namespace eat::l3
{

/** Which substrate (if any) backs the L3 translation tier. */
enum class L3Mode
{
    None,  ///< no third level: L2 miss goes straight to the walker
    Cache, ///< cache-resident TLB in modeled LLC capacity (Victima)
    Dram,  ///< in-DRAM TLB with an SRAM tag cache (die-stacked study)
};

/** Stable token ("none", "cache", "dram") used by CLI and scenarios. */
std::string_view l3ModeName(L3Mode mode);

/** Parse an l3ModeName() token. */
Result<L3Mode> l3ModeFromName(std::string_view name);

/** When a walked translation is inserted into the L3 tier. */
enum class L3InsertPolicy
{
    WalkFill,   ///< every completed page walk fills the L3
    PtePromote, ///< fill only during L2-TLB-miss streaks (hot PTEs)
};

std::string_view l3InsertPolicyName(L3InsertPolicy policy);

/** Parse an l3InsertPolicyName() token ("walk", "promote"). */
Result<L3InsertPolicy> l3InsertPolicyFromName(std::string_view name);

/** Geometry of the modeled last-level cache the CacheTlb lives in. */
struct CacheCapacityConfig
{
    std::uint64_t capacityBytes = 8ull << 20; ///< 8 MiB LLC
    unsigned ways = 16;
    unsigned lineBytes = 64;

    std::uint64_t lines() const { return capacityBytes / lineBytes; }
};

/** The cache-resident L3 TLB (--l3=cache). */
struct CacheTlbConfig
{
    /** Translation entries parked in LLC lines. 64 Ki entries at 8
     *  PTEs per 64 B line occupy 8 Ki lines — 1/16 of the 8 MiB LLC. */
    unsigned entries = 65536;
    unsigned ways = 8;

    /** PTEs packed per LLC line (64 B line / 8 B PTE). */
    unsigned ptesPerLine = 8;

    /** LLC access latency charged per L3 probe (well under the 50-cycle
     *  walk it short-circuits). */
    Cycles probeLatency = 30;

    L3InsertPolicy policy = L3InsertPolicy::WalkFill;

    /** PtePromote: consecutive L2 misses required before a walked
     *  translation is deemed hot enough to park in the LLC. */
    unsigned promoteStreak = 2;

    CacheCapacityConfig llc{};
};

/** The in-DRAM L3 TLB (--l3=dram). */
struct DramTlbConfig
{
    /** Entries in die-stacked DRAM; capacity is nearly free there, so
     *  the default reach is 1 GiB of 4 KB mappings. */
    unsigned entries = 262144;
    unsigned ways = 16;

    /** Direct-mapped SRAM tag cache over the DRAM TLB's sets; a hit
     *  answers "present?" without touching DRAM on misses. */
    unsigned tagCacheEntries = 4096;

    /** SRAM tag-cache probe latency (charged on every L3 probe). */
    Cycles tagLatency = 2;

    /** DRAM array access latency (charged only when DRAM is touched). */
    Cycles dramLatency = 90;

    /** Per-access DRAM row/column energy (pJ); far above any SRAM
     *  probe, which is why the tag cache earns its keep. */
    double dramReadPj = 2200.0;
    double dramWritePj = 2600.0;
};

} // namespace eat::l3

#endif // EAT_L3_L3_CONFIG_HH
