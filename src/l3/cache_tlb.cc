#include "l3/cache_tlb.hh"

#include "base/logging.hh"
#include "vm/page_size.hh"

namespace eat::l3
{

CacheTlb::CacheTlb(const CacheTlbConfig &cfg,
                   const energy::CactiLite &cacti)
    : cfg_(cfg),
      capacity_(cfg.llc, cacti,
                (cfg.entries + cfg.ptesPerLine - 1) / cfg.ptesPerLine),
      storage_("L3-cache TLB", cfg.entries, cfg.ways,
               vm::pageShift(vm::PageSize::Size4K))
{
    eat_assert(cfg_.ptesPerLine > 0, "ptesPerLine must be nonzero");
}

tlb::TlbLookupResult
CacheTlb::lookup(Addr vaddr, tlb::Asid asid)
{
    ++l2MissStreak_;
    return storage_.lookup(vaddr, asid);
}

bool
CacheTlb::fill(const tlb::TlbEntry &entry)
{
    eat_assert(entry.size == vm::PageSize::Size4K,
               "the cache-resident TLB holds 4KB translations only");
    const bool evicted = storage_.fill(entry);
    if (!evicted && validEntries_ < storage_.entries())
        ++validEntries_;
    updateOccupancy();
    return evicted;
}

void
CacheTlb::invalidateAll()
{
    storage_.invalidateAll();
    validEntries_ = 0;
    updateOccupancy();
}

unsigned
CacheTlb::invalidateAsid(tlb::Asid asid)
{
    const unsigned n = storage_.invalidateAsid(asid);
    validEntries_ = n < validEntries_ ? validEntries_ - n : 0;
    updateOccupancy();
    return n;
}

unsigned
CacheTlb::invalidateRange(Addr vbase, Addr vlimit, tlb::Asid asid)
{
    const unsigned n = storage_.invalidateRange(vbase, vlimit, asid);
    validEntries_ = n < validEntries_ ? validEntries_ - n : 0;
    updateOccupancy();
    return n;
}

void
CacheTlb::updateOccupancy()
{
    capacity_.setOccupiedLines(
        (validEntries_ + cfg_.ptesPerLine - 1) / cfg_.ptesPerLine);
}

} // namespace eat::l3
