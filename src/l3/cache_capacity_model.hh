/**
 * @file
 * Light last-level-cache capacity model backing the cache-resident TLB.
 *
 * The CacheTlb does not get free storage: every line it parks
 * translations in is a line the LLC cannot hold program data in. This
 * model makes that cost explicit and charges it honestly:
 *
 *  - per-access dynamic energy is the CACTI-Lite estimate of one access
 *    to the reserved *way partition* (the tier claims whole LLC ways,
 *    so a probe drives the tag match and line readout of the reserved
 *    ways only — with the default geometry, one way of sixteen — not
 *    the full 16-way array);
 *  - leakage is charged for the reserved share of the LLC capacity for
 *    the entire run (reserved-share model: the tier claims its maximum
 *    footprint up front and never gives it back, a deliberately
 *    conservative assumption that keeps leakage constant and therefore
 *    cacheable by the MMU's leakage memo);
 *  - occupancy is tracked so reports can show how much data capacity
 *    was actually displaced, but it does not modulate energy.
 */

#ifndef EAT_L3_CACHE_CAPACITY_MODEL_HH
#define EAT_L3_CACHE_CAPACITY_MODEL_HH

#include <cstdint>

#include "base/types.hh"
#include "energy/coefficients.hh"
#include "l3/l3_config.hh"

namespace eat::energy
{
class CactiLite;
}

namespace eat::l3
{

/** Occupancy and energy accounting of TLB-resident LLC lines. */
class CacheCapacityModel
{
  public:
    /**
     * @param cfg LLC geometry.
     * @param cacti coefficient source (read during construction only).
     * @param reservedLines LLC lines the TLB tier may claim at most;
     *        leakage is charged for this share unconditionally.
     */
    CacheCapacityModel(const CacheCapacityConfig &cfg,
                       const energy::CactiLite &cacti,
                       std::uint64_t reservedLines);

    /** One access to the reserved way partition (read or write) plus
     *  the reserved share's leakage, in EnergyCoefficients form for the
     *  MMU's meters. */
    const energy::EnergyCoefficients &
    accessCoefficients() const
    {
        return coeff_;
    }

    std::uint64_t totalLines() const { return cfg_.lines(); }
    std::uint64_t reservedLines() const { return reservedLines_; }

    /** Whole LLC ways the reserved lines occupy (ceil; >= 1). */
    unsigned reservedWays() const { return reservedWays_; }

    /** Fraction of LLC capacity the tier reserves (leakage share and
     *  the data capacity ceded to translations). */
    double
    reservedFraction() const
    {
        return double(reservedLines_) / double(totalLines());
    }

    /** Record the tier's current footprint (lines holding at least one
     *  valid translation). Stats only; clamped to reservedLines(). */
    void setOccupiedLines(std::uint64_t lines);

    std::uint64_t occupiedLines() const { return occupiedLines_; }
    std::uint64_t peakOccupiedLines() const { return peakOccupiedLines_; }

  private:
    CacheCapacityConfig cfg_;
    std::uint64_t reservedLines_;
    unsigned reservedWays_ = 1;
    energy::EnergyCoefficients coeff_{};
    std::uint64_t occupiedLines_ = 0;
    std::uint64_t peakOccupiedLines_ = 0;
};

} // namespace eat::l3

#endif // EAT_L3_CACHE_CAPACITY_MODEL_HH
