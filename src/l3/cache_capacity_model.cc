#include "l3/cache_capacity_model.hh"

#include "base/logging.hh"
#include "energy/cacti_lite.hh"

namespace eat::l3
{

CacheCapacityModel::CacheCapacityModel(const CacheCapacityConfig &cfg,
                                       const energy::CactiLite &cacti,
                                       std::uint64_t reservedLines)
    : cfg_(cfg), reservedLines_(reservedLines)
{
    eat_assert(cfg_.lineBytes > 0 && cfg_.capacityBytes % cfg_.lineBytes == 0,
               "LLC capacity must be a whole number of lines");
    eat_assert(reservedLines_ <= totalLines(),
               "TLB tier reserves more lines than the LLC has");

    // The reserved lines claim whole LLC ways (way-partitioning, as the
    // L3-TLB proposals do): 8 Ki reserved lines of a 16-way / 8 Ki-set
    // LLC are exactly one way across every set. A probe drives the tag
    // match and line readout of the reserved ways only, so its dynamic
    // energy is an access to that partition's geometry, not to the full
    // 16-way array.
    const std::uint64_t sets = totalLines() / cfg_.ways;
    std::uint64_t partWays = (reservedLines_ + sets - 1) / sets;
    if (partWays == 0)
        partWays = 1;
    if (partWays > cfg_.ways)
        partWays = cfg_.ways;
    reservedWays_ = static_cast<unsigned>(partWays);
    const energy::EnergyCoefficients part = cacti.estimate(
        energy::StructClass::L2Cache,
        static_cast<unsigned>(sets * partWays), reservedWays_);
    coeff_.read = part.read;
    coeff_.write = part.write;

    // Leakage stays capacity-proportional against the whole LLC: the
    // reserved share leaks whether or not it is ever probed.
    const energy::EnergyCoefficients llc = cacti.estimate(
        energy::StructClass::L2Cache,
        static_cast<unsigned>(totalLines()), cfg_.ways);
    coeff_.leakage = llc.leakage * reservedFraction();
}

void
CacheCapacityModel::setOccupiedLines(std::uint64_t lines)
{
    occupiedLines_ = lines < reservedLines_ ? lines : reservedLines_;
    if (occupiedLines_ > peakOccupiedLines_)
        peakOccupiedLines_ = occupiedLines_;
}

} // namespace eat::l3
