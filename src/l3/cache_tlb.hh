/**
 * @file
 * CacheTlb: a Victima-style L3 TLB resident in last-level-cache lines.
 *
 * Sits behind the L2 page/range TLBs and ahead of the page walker.
 * Translations are parked in LLC lines (ptesPerLine PTEs per line), so
 * every probe and fill pays an access to the reserved way partition
 * (CacheCapacityModel) and the tier's reserved lines displace modeled
 * data capacity.
 *
 * The tier holds 4 KB-granule translations only — the page-walk output
 * the paper's 4K-heavy organizations are reach-bound on. Larger pages
 * (THP 2 MB, 1 GB) already multiply reach by 512x per level and bypass
 * the tier.
 *
 * Two insertion policies:
 *  - WalkFill: every completed page walk parks its translation;
 *  - PtePromote: park only during L2-TLB-miss streaks (>= promoteStreak
 *    consecutive L2 misses), so one-shot walks do not pollute the LLC.
 */

#ifndef EAT_L3_CACHE_TLB_HH
#define EAT_L3_CACHE_TLB_HH

#include <cstdint>

#include "base/types.hh"
#include "l3/cache_capacity_model.hh"
#include "l3/l3_config.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::energy
{
class CactiLite;
}

namespace eat::l3
{

/** Cache-resident L3 TLB (see file comment). */
class CacheTlb
{
  public:
    CacheTlb(const CacheTlbConfig &cfg, const energy::CactiLite &cacti);

    /** Probe the tier for the 4 KB translation of @p vaddr. Every call
     *  is one L2-TLB miss, which is what the PtePromote streak counts. */
    tlb::TlbLookupResult lookup(Addr vaddr, tlb::Asid asid);

    /** Park a walked 4 KB translation (caller applies the insertion
     *  policy via admitOnWalk() first).
     *  @return true when a live entry was evicted. */
    bool fill(const tlb::TlbEntry &entry);

    /** Does the insertion policy admit the translation the walk just
     *  produced, given the current L2-miss streak? */
    bool
    admitOnWalk() const
    {
        return cfg_.policy == L3InsertPolicy::WalkFill ||
               l2MissStreak_ >= cfg_.promoteStreak;
    }

    /** An L2 TLB hit ends the miss streak PtePromote is watching. */
    void noteL2Hit() { l2MissStreak_ = 0; }

    void invalidateAll();
    unsigned invalidateAsid(tlb::Asid asid);
    unsigned invalidateRange(Addr vbase, Addr vlimit, tlb::Asid asid);

    /** Per-access LLC energy + reserved-share leakage. */
    const energy::EnergyCoefficients &
    coefficients() const
    {
        return capacity_.accessCoefficients();
    }

    const CacheCapacityModel &capacity() const { return capacity_; }

    std::uint64_t hits() const { return storage_.hits(); }
    std::uint64_t misses() const { return storage_.misses(); }
    std::uint64_t fills() const { return storage_.fills(); }
    unsigned validEntries() const { return validEntries_; }

  private:
    /** Re-derive the LLC-line footprint from the live entry count. */
    void updateOccupancy();

    CacheTlbConfig cfg_;
    CacheCapacityModel capacity_;
    tlb::SetAssocTlb storage_;
    unsigned l2MissStreak_ = 0;

    /** Live-entry estimate maintained incrementally (a full
     *  SetAssocTlb::validCount() scan per fill would be O(entries)).
     *  Exact under the MMU's fill-only-after-miss discipline. */
    unsigned validEntries_ = 0;
};

} // namespace eat::l3

#endif // EAT_L3_CACHE_TLB_HH
