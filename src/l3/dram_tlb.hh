/**
 * @file
 * DramTlb: a large set-associative TLB held in (die-stacked) DRAM,
 * fronted by a small direct-mapped SRAM tag cache.
 *
 * DRAM capacity makes the tier's reach nearly unbounded, but every
 * DRAM touch costs ~a page-walk memory reference in energy and tens of
 * cycles. The tag cache caches the tag state of recently touched DRAM
 * TLB *sets*, so a probe that the tag cache can prove absent skips the
 * DRAM access entirely — the common case for workloads whose misses
 * cluster in a few hot sets.
 *
 * Like CacheTlb, the tier holds 4 KB-granule translations only.
 */

#ifndef EAT_L3_DRAM_TLB_HH
#define EAT_L3_DRAM_TLB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "energy/coefficients.hh"
#include "l3/l3_config.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::energy
{
class CactiLite;
}

namespace eat::l3
{

/** What one DramTlb probe did, so the MMU can charge latency/energy
 *  for exactly the stages that were exercised. */
struct DramProbeResult
{
    bool hit = false;         ///< translation found
    bool tagCacheHit = false; ///< SRAM tag cache knew the set's tags
    bool dramAccessed = false;///< the DRAM array was actually touched
    tlb::TlbEntry entry{};    ///< valid iff hit
};

/** In-DRAM L3 TLB with an SRAM tag cache (see file comment). */
class DramTlb
{
  public:
    DramTlb(const DramTlbConfig &cfg, const energy::CactiLite &cacti);

    /** Probe for the 4 KB translation of @p vaddr. The tag cache is
     *  consulted first; DRAM is touched only when it must be. */
    DramProbeResult probe(Addr vaddr, tlb::Asid asid);

    /** Park a walked 4 KB translation in DRAM (the write also warms
     *  the set's tag-cache slot). @return true when a live entry was
     *  evicted. */
    bool fill(const tlb::TlbEntry &entry);

    void invalidateAll();
    unsigned invalidateAsid(tlb::Asid asid);
    unsigned invalidateRange(Addr vbase, Addr vlimit, tlb::Asid asid);

    /** SRAM tag-cache probe energy (and the tier's only leakage). */
    const energy::EnergyCoefficients &
    tagCoefficients() const
    {
        return tagCoeff_;
    }

    /** Per-access DRAM array energy; leakage mirrors the tag cache so
     *  the meter's gated and full leakage views agree. */
    const energy::EnergyCoefficients &
    dramCoefficients() const
    {
        return dramCoeff_;
    }

    std::uint64_t hits() const { return storage_.hits(); }
    std::uint64_t misses() const { return storage_.misses(); }
    std::uint64_t fills() const { return storage_.fills(); }
    std::uint64_t tagHits() const { return tagHits_; }
    std::uint64_t tagMisses() const { return tagMisses_; }
    std::uint64_t dramAccesses() const { return dramAccesses_; }

  private:
    /** One tag-cache slot: the DRAM-TLB set whose tags it caches,
     *  stamped with the invalidation generation it was filled under. */
    struct TagSlot
    {
        std::uint64_t gen = 0; ///< 0 = never filled (generation_ >= 1)
        unsigned set = 0;
    };

    unsigned
    setOf(Addr vaddr) const
    {
        return static_cast<unsigned>((vaddr >> storage_.shift()) &
                                     (storage_.sets() - 1));
    }

    TagSlot &slotOf(unsigned set)
    {
        return tagCache_[set & (cfg_.tagCacheEntries - 1)];
    }

    DramTlbConfig cfg_;
    tlb::SetAssocTlb storage_;
    std::vector<TagSlot> tagCache_;
    /** Bumping this invalidates every tag-cache slot at once — any
     *  invalidation may have changed DRAM tag state under them. */
    std::uint64_t generation_ = 1;

    energy::EnergyCoefficients tagCoeff_{};
    energy::EnergyCoefficients dramCoeff_{};

    std::uint64_t tagHits_ = 0;
    std::uint64_t tagMisses_ = 0;
    std::uint64_t dramAccesses_ = 0;
};

} // namespace eat::l3

#endif // EAT_L3_DRAM_TLB_HH
