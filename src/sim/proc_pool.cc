#include "sim/proc_pool.hh"

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <ctime>
#include <optional>
#include <unistd.h>

namespace eat::sim
{

namespace
{

/** A forked task the pool has not reaped yet. */
struct InFlightTask
{
    std::size_t index = 0;
    pid_t pid = -1;
    int fd = -1; ///< read end of the result pipe
    std::chrono::steady_clock::time_point deadline{};
    bool killed = false; ///< watchdog already sent SIGKILL
};

void
writeAll(int fd, const std::string &s)
{
    std::size_t done = 0;
    while (done < s.size()) {
        const ssize_t n = ::write(fd, s.data() + done, s.size() - done);
        if (n <= 0)
            return; // parent gone; nothing useful left to do
        done += static_cast<std::size_t>(n);
    }
}

/**
 * Fork one task. The child restores @p childMask (the pre-pool signal
 * mask), runs the task, writes the payload, and _exits without touching
 * the parent's stdio buffers or destructors. Returns std::nullopt when
 * the process could not even be created, with the failing call and its
 * errno in @p spawnError.
 */
std::optional<InFlightTask>
spawnTask(const ProcessPool::TaskFn &task, std::size_t index,
          unsigned timeoutSeconds, const sigset_t &childMask,
          std::string &spawnError)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        spawnError = std::string("pipe() failed: ") +
                     std::strerror(errno);
        return std::nullopt;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        spawnError = std::string("fork() failed: ") +
                     std::strerror(errno);
        ::close(fds[0]);
        ::close(fds[1]);
        return std::nullopt;
    }

    if (pid == 0) {
        ::sigprocmask(SIG_SETMASK, &childMask, nullptr);
        // The parent may have flag-setting SIGINT/SIGTERM handlers
        // installed for graceful shutdown; a child inheriting them
        // would shrug off Ctrl-C. Children die on these signals.
        ::signal(SIGINT, SIG_DFL);
        ::signal(SIGTERM, SIG_DFL);
        ::close(fds[0]);
        int code = 0;
        try {
            writeAll(fds[1], task());
        } catch (...) {
            code = 125; // payload protocol broken; caller sees the code
        }
        ::close(fds[1]);
        ::_exit(code);
    }

    ::close(fds[1]);
    InFlightTask inFlight;
    inFlight.index = index;
    inFlight.pid = pid;
    inFlight.fd = fds[0];
    if (timeoutSeconds > 0) {
        inFlight.deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(timeoutSeconds);
    }
    return inFlight;
}

/** Drain a reaped child's pipe and classify its exit. */
ProcessPool::TaskResult
finishTask(const InFlightTask &task, int status)
{
    ProcessPool::TaskResult result;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(task.fd, buf, sizeof(buf))) > 0)
        result.payload.append(buf, static_cast<std::size_t>(n));
    ::close(task.fd);

    if (task.killed) {
        result.state = ProcessPool::TaskState::TimedOut;
        return result;
    }
    if (WIFSIGNALED(status)) {
        result.state = ProcessPool::TaskState::Crashed;
        result.termSignal = WTERMSIG(status);
        return result;
    }
    result.state = ProcessPool::TaskState::Done;
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
    return result;
}

void
killRemaining(std::vector<InFlightTask> &inFlight)
{
    for (const auto &task : inFlight) {
        ::kill(task.pid, SIGKILL);
        ::waitpid(task.pid, nullptr, 0);
        ::close(task.fd);
    }
    inFlight.clear();
}

} // namespace

bool
ProcessPool::run(const Config &config, const std::vector<TaskFn> &tasks,
                 const DoneFn &onDone)
{
    const unsigned jobs = std::max(1u, config.jobs);
    const auto stopRequested = [&config] {
        return config.stopRequested && config.stopRequested();
    };

    // The reaper blocks SIGCHLD and sleeps in sigtimedwait until a
    // child exits (the signal stays pending if one beat us to it, so
    // there is no wake-up race) or the nearest watchdog deadline
    // passes. No polling, whatever the job count.
    sigset_t chldSet;
    sigemptyset(&chldSet);
    sigaddset(&chldSet, SIGCHLD);
    sigset_t previousMask;
    ::sigprocmask(SIG_BLOCK, &chldSet, &previousMask);

    std::vector<InFlightTask> inFlight;
    std::size_t spawned = 0;
    std::size_t completed = 0;

    while (completed < tasks.size()) {
        // A stop request (SIGINT/SIGTERM flag upstream) ends the run:
        // no new children, everything in flight killed and reaped.
        if (stopRequested()) {
            killRemaining(inFlight);
            ::sigprocmask(SIG_SETMASK, &previousMask, nullptr);
            return false;
        }

        // Keep the pool full.
        while (inFlight.size() < jobs && spawned < tasks.size()) {
            const std::size_t index = spawned++;
            std::string spawnError;
            auto task = spawnTask(tasks[index], index,
                                  config.timeoutSeconds, previousMask,
                                  spawnError);
            if (task) {
                inFlight.push_back(*task);
            } else {
                ++completed;
                TaskResult result;
                result.spawnError = std::move(spawnError);
                if (!onDone(index, result, inFlight.size())) {
                    killRemaining(inFlight);
                    ::sigprocmask(SIG_SETMASK, &previousMask, nullptr);
                    return false;
                }
            }
        }

        if (inFlight.empty())
            continue; // every remaining task failed to even fork

        // Sleep until a child exits or the nearest deadline. A task
        // already killed but not yet reaped keeps the nap short so its
        // exit is collected promptly.
        auto wait = std::chrono::nanoseconds(std::chrono::hours(1));
        const auto now = std::chrono::steady_clock::now();
        for (const auto &task : inFlight) {
            if (config.timeoutSeconds == 0)
                break;
            const auto remaining =
                task.killed
                    ? std::chrono::nanoseconds(
                          std::chrono::milliseconds(10))
                    : std::chrono::duration_cast<std::chrono::nanoseconds>(
                          task.deadline - now);
            wait = std::max(std::chrono::nanoseconds(0),
                            std::min(wait, remaining));
        }
        struct timespec ts;
        ts.tv_sec = static_cast<time_t>(wait.count() / 1'000'000'000);
        ts.tv_nsec = static_cast<long>(wait.count() % 1'000'000'000);
        ::sigtimedwait(&chldSet, nullptr, &ts); // EAGAIN = deadline

        // Enforce watchdog deadlines.
        if (config.timeoutSeconds > 0) {
            const auto t = std::chrono::steady_clock::now();
            for (auto &task : inFlight) {
                if (!task.killed && t >= task.deadline) {
                    ::kill(task.pid, SIGKILL);
                    task.killed = true;
                }
            }
        }

        // Reap every child that has exited.
        for (auto it = inFlight.begin(); it != inFlight.end();) {
            int status = 0;
            const pid_t r = ::waitpid(it->pid, &status, WNOHANG);
            if (r == 0) {
                ++it;
                continue;
            }
            const TaskResult result = finishTask(*it, status);
            const std::size_t index = it->index;
            it = inFlight.erase(it);
            ++completed;
            if (!onDone(index, result, inFlight.size())) {
                killRemaining(inFlight);
                ::sigprocmask(SIG_SETMASK, &previousMask, nullptr);
                return false;
            }
        }
    }
    ::sigprocmask(SIG_SETMASK, &previousMask, nullptr);
    return true;
}

} // namespace eat::sim
