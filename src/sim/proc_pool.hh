/**
 * @file
 * Fork-per-task process pool with watchdog and signal-driven reaping.
 *
 * Extracted from the batch runner so every campaign-style driver (the
 * sweep runner, the fuzzing campaign) shares one hardened isolation
 * mechanism: each task runs in its own forked child, a crash or a
 * panic costs exactly that task, a per-task wall-clock watchdog kills
 * hangs, and the parent sleeps in sigtimedwait on SIGCHLD rather than
 * polling. The child reports back over a pipe; the parent never trusts
 * it further than that payload and its exit status.
 *
 * Payload protocol is the caller's: the pool moves opaque bytes. One
 * caveat inherited from the original runner: the parent drains the
 * pipe only after the child exits, so payloads must stay below the
 * kernel pipe capacity (64 KiB on Linux) or the child deadlocks in
 * write() until the watchdog kills it. Every current payload is a few
 * hundred bytes.
 */

#ifndef EAT_SIM_PROC_POOL_HH
#define EAT_SIM_PROC_POOL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace eat::sim
{

/** A fork-per-task pool; see the file comment for the guarantees. */
class ProcessPool
{
  public:
    struct Config
    {
        /** Children kept in flight at once (>= 1). */
        unsigned jobs = 1;
        /** Per-task wall-clock limit; 0 disables the watchdog. */
        unsigned timeoutSeconds = 0;
        /**
         * Polled between dispatches and after every wake-up: when it
         * returns true, the pool stops spawning, kills and reaps every
         * in-flight child, and run() returns false. Callers install a
         * SIGINT/SIGTERM flag here for graceful shutdown (the pool's
         * own sleep is interrupted by any handled signal, so the hook
         * is checked promptly).
         */
        std::function<bool()> stopRequested;
    };

    /** How one task ended. */
    enum class TaskState
    {
        Done,        ///< child exited on its own; payload is complete
        Crashed,     ///< child died on a signal it did not expect
        TimedOut,    ///< watchdog killed it
        SpawnFailed, ///< pipe() or fork() failed; the task never ran
    };

    struct TaskResult
    {
        TaskState state = TaskState::SpawnFailed;
        /** Everything the child wrote to its pipe before exiting. */
        std::string payload;
        /** Terminating signal (valid when state == Crashed). */
        int termSignal = 0;
        /** Child exit code (valid when state == Done). */
        int exitCode = 0;
        /** Which call failed and why (valid when state == SpawnFailed),
         *  e.g. "fork() failed: Resource temporarily unavailable". */
        std::string spawnError;
    };

    /**
     * Runs inside the forked child; the returned string is written to
     * the result pipe and the child exits 0. A thrown exception makes
     * the child exit 125 with whatever was already written (callers
     * normally catch and encode errors in the payload instead).
     */
    using TaskFn = std::function<std::string()>;

    /**
     * Called in the parent as each task completes, in completion (not
     * submission) order. @p index is the task's position in the input
     * vector; @p inFlight counts children still running. Return false
     * to abort the pool: remaining children are killed and reaped, and
     * no further callbacks fire.
     */
    using DoneFn = std::function<bool(std::size_t index,
                                      const TaskResult &result,
                                      std::size_t inFlight)>;

    /**
     * Run every task through the pool. Blocks until all tasks have
     * completed, the callback aborted, or Config::stopRequested fired.
     * Tasks are started in order; completions arrive in any order.
     * @return true when every task completed and was reported.
     */
    static bool run(const Config &config,
                    const std::vector<TaskFn> &tasks, const DoneFn &onDone);
};

} // namespace eat::sim

#endif // EAT_SIM_PROC_POOL_HH
