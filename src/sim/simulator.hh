/**
 * @file
 * The end-to-end simulation driver.
 *
 * Binds a workload model, the OS memory manager for the chosen
 * configuration's policy, and the MMU; runs fast-forward plus a
 * measured window; and collects every statistic the paper's tables and
 * figures need.
 */

#ifndef EAT_SIM_SIMULATOR_HH
#define EAT_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "check/fault_injector.hh"
#include "check/shadow_checker.hh"
#include "core/config.hh"
#include "core/mmu_stats.hh"
#include "energy/account.hh"
#include "lite/lite_controller.hh"
#include "obs/profiler.hh"
#include "obs/provenance.hh"
#include "stats/timeline.hh"
#include "workloads/workload.hh"

namespace eat::sim
{

/** Everything one simulation run needs. */
struct SimConfig
{
    workloads::WorkloadSpec workload;
    core::MmuConfig mmu = core::MmuConfig::make(core::MmuOrg::Thp);

    /** Instructions to skip before measuring (the paper skips 50 G on
     *  real hardware; synthetic phases are compressed accordingly). */
    InstrCount fastForwardInstructions = 2'000'000;

    /** Instructions in the measured window. */
    InstrCount simulateInstructions = 20'000'000;

    std::uint64_t seed = 42;

    /** Record an L1-MPKI sample every this many instructions
     *  (0 disables the Figure-4 timeline). */
    InstrCount timelineInterval = 0;

    /** Physical pool size; 0 = footprint-derived default. */
    std::uint64_t physBytes = 0;

    /**
     * Override for the OS policy's eagerRangesPerRegion (imperfect
     * eager paging); 0 keeps the organization's default.
     */
    unsigned eagerRangesPerRegion = 0;

    /**
     * Differential-checking depth: every translation the MMU produces
     * is cross-checked against a golden flat-map translator. On by
     * default — a sweep whose checker never ran proves nothing — and
     * set to Off for raw-speed measurement runs.
     */
    check::CheckLevel checkLevel = check::CheckLevel::Full;

    /**
     * Fault-injection spec (see check/fault_injector.hh grammar);
     * empty disables injection. Uses @c seed, so runs stay
     * deterministic.
     */
    std::string faultSpec;

    /**
     * Last-translation front cache (simulator fast path; digest- and
     * telemetry-identical on or off — see core::Mmu). The driver
     * forces it off whenever faultSpec arms an injector, and
     * -DEAT_FRONT_CACHE=OFF builds ignore the flag entirely.
     */
    bool frontCache = true;

    // --- observability outputs (all optional; empty path = off) ---

    /** Write the end-of-run metric registry as JSON to this path. */
    std::string metricsPath;

    /** Stream per-interval telemetry records (JSONL) to this path. */
    std::string telemetryPath;

    /** Write a Chrome trace-event JSON of Lite/TLB decisions here. */
    std::string traceOutPath;

    /** Stream per-translation provenance events (JSONL) to this path.
     *  Requires the provenance hooks to be compiled in (the default;
     *  see the EAT_PROVENANCE CMake option). */
    std::string provenancePath;

    /** Write one sampled translation path out of every N (control
     *  events — resizes, intervals, shootdowns — and the exact summary
     *  totals are never sampled). Must be >= 1. */
    std::uint64_t provenanceSampleEvery = 1;

    /** Accumulate provenance totals/histograms in memory even with no
     *  provenancePath (powers the qa reconciliation oracle). Ignored
     *  (left off) when the hooks are compiled out. */
    bool provenanceEnabled = false;
};

/** The result of one simulation run. */
struct SimResult
{
    std::string workloadName;
    core::MmuOrg org{};

    core::MmuStats stats;
    energy::EnergyReport energy;
    lite::LiteStats lite;       ///< zeros when Lite is disabled
    bool liteEnabled = false;

    /** Differential-checker outcome (zeros when checking was off). */
    check::CheckStats check;
    check::CheckLevel checkLevel = check::CheckLevel::Off;
    std::string firstMismatch;

    /** Fault-injection activity (zeros when injection was off). */
    check::InjectStats inject;

    stats::Timeline mpkiTimeline;

    /** Wall-clock seconds per driver stage (always populated). */
    obs::StageTimings profile;

    /**
     * Memory operations served by the MMU's last-translation front
     * cache. A simulator-performance counter only — the front cache is
     * outcome-invisible, so this is deliberately absent from MmuStats,
     * metrics, and digests (eatperf reports it as a hit rate).
     */
    std::uint64_t frontCacheHits = 0;

    /** Telemetry/trace volume (zeros when the outputs were off). */
    std::uint64_t telemetryRecords = 0;
    std::uint64_t traceEvents = 0;
    std::uint64_t traceEventsDropped = 0;

    /** Exact provenance totals/histograms (empty unless provenance was
     *  on — path given or provenanceEnabled set — and compiled in). */
    bool provenanceEnabled = false;
    obs::ProvSummary provenance;

    // OS-level facts of the run.
    std::uint64_t pages4K = 0;
    std::uint64_t pages2M = 0;
    std::uint64_t numRanges = 0;
    double rangeCoverage = 0.0;

    /** Total dynamic translation energy (pJ). */
    PicoJoules totalEnergy() const { return energy.breakdown.total(); }

    /** Dynamic energy per kilo-instruction (pJ), the comparable unit. */
    double energyPerKiloInstr() const;

    /** TLB-miss cycles per kilo-instruction. */
    double missCyclesPerKiloInstr() const;

    /** Simulated kilo-instructions per wall-clock second (all stages). */
    double simKips() const;
};

/** Run one simulation. */
SimResult simulate(const SimConfig &config);

/**
 * Replay a recorded trace through the configured MMU instead of
 * generating operations. The config's workload spec still defines the
 * address space (it must be the spec the trace was recorded against,
 * with the same seed, so the OS lays out identical regions);
 * fastForward/simulate windows are ignored — the whole trace runs.
 */
SimResult simulateFromTrace(const SimConfig &config,
                            const std::string &tracePath);

/**
 * Record @p instructions worth of the configured workload's operation
 * stream (after fast-forward) to @p tracePath.
 *
 * @return number of operations recorded.
 */
std::uint64_t recordTrace(const SimConfig &config,
                          const std::string &tracePath);

} // namespace eat::sim

#endif // EAT_SIM_SIMULATOR_HH
