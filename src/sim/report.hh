/**
 * @file
 * Shared helpers for the benchmark harness: run config x workload
 * matrices and format paper-style comparison tables.
 */

#ifndef EAT_SIM_REPORT_HH
#define EAT_SIM_REPORT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "stats/table.hh"

namespace eat::sim
{

/** Command-line options every bench binary accepts. */
struct BenchOptions
{
    InstrCount simulateInstructions = 20'000'000;
    InstrCount fastForwardInstructions = 2'000'000;
    std::uint64_t seed = 42;
    bool csv = false; ///< also emit CSV blocks for re-plotting

    /**
     * Parse --instructions=N, --fast-forward=N, --seed=N, --csv.
     * Unknown arguments are fatal (they are usually typos).
     */
    static BenchOptions parse(int argc, char **argv);
};

/**
 * The results of one workload across multiple organizations. The label
 * is free-form: multicore sweeps reuse the same presentation with a
 * mix name ("mcf,canneal") in place of a workload name, and per-core
 * breakdowns come from mc::mcPerCoreTable rather than this row type.
 */
struct WorkloadRow
{
    std::string workload; ///< workload (or mix) label for the row
    std::vector<SimResult> byOrg; ///< parallel to the org list used
};

/**
 * One column of a comparison matrix: a display label plus the complete
 * MmuConfig it runs. The six paper organizations are variants made
 * straight from MmuConfig::make; derived columns (an org plus the L3
 * tier, a tuned epsilon, ...) carry their own label so tables stay
 * self-describing.
 */
struct OrgVariant
{
    std::string label;
    core::MmuConfig mmu;
};

/** The plain variants of @p orgs (label = orgName, config = make). */
std::vector<OrgVariant>
orgVariants(const std::vector<core::MmuOrg> &orgs);

/**
 * Run @p workloads under every organization in @p orgs.
 * Progress is reported on stderr (runs take seconds each).
 */
std::vector<WorkloadRow>
runMatrix(const std::vector<workloads::WorkloadSpec> &workloads,
          const std::vector<core::MmuOrg> &orgs, const BenchOptions &opts);

/** As above, over labeled configuration variants. */
std::vector<WorkloadRow>
runMatrix(const std::vector<workloads::WorkloadSpec> &workloads,
          const std::vector<OrgVariant> &variants,
          const BenchOptions &opts);

/**
 * Geometric means are inappropriate for normalized mixes of signs;
 * the paper reports arithmetic means of per-workload normalized
 * values, which this computes.
 */
double meanOf(const std::vector<double> &values);

/**
 * A table of per-row values normalized to the first organization (the
 * paper's "normalized to 4KB" presentation), one column per org, with
 * a final average row. Rows are workloads in the single-core benches
 * and mixes in multicore sweeps.
 */
stats::TextTable
normalizedTable(const std::vector<WorkloadRow> &rows,
                const std::vector<core::MmuOrg> &orgs,
                double (*metric)(const SimResult &),
                const std::string &metricName);

/** As above, with variant labels as the column headers. */
stats::TextTable
normalizedTable(const std::vector<WorkloadRow> &rows,
                const std::vector<OrgVariant> &variants,
                double (*metric)(const SimResult &),
                const std::string &metricName);

/** Metric extractors for normalizedTable. */
double energyMetric(const SimResult &r);
double missCyclesMetric(const SimResult &r);

} // namespace eat::sim

#endif // EAT_SIM_REPORT_HH
