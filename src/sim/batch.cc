#include "sim/batch.hh"

#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "base/logging.hh"
#include "stats/csv.hh"
#include "workloads/suite.hh"

namespace eat::sim
{

namespace
{

/** Metric columns between "status" and "error". */
constexpr std::size_t kMetricCount = 9;

std::string
fmt(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

std::vector<std::string>
metricCells(const SimResult &r)
{
    return {
        std::to_string(r.stats.instructions),
        fmt(r.stats.l1Mpki()),
        fmt(r.stats.l2Mpki()),
        fmt(r.missCyclesPerKiloInstr()),
        fmt(r.energyPerKiloInstr()),
        std::to_string(r.check.mismatches()),
        std::to_string(r.inject.injected()),
        fmt(r.profile.total()),
        fmt(r.simKips()),
    };
}

/** What the child reports back over the pipe. */
struct RunOutcome
{
    bool ok = false;
    std::vector<std::string> metrics;
    std::string error;
};

/**
 * The actual per-cell work, running inside the forked child. Never
 * throws: any exception becomes a failed outcome — and a crash or hang
 * beyond that only takes the child down, which is the point.
 */
RunOutcome
executeRun(const SimConfig &cfg, bool deliberateFail, bool deliberateHang)
{
    RunOutcome out;
    try {
        if (deliberateHang) {
            // Testing aid for the watchdog: block until it fires.
            std::this_thread::sleep_for(std::chrono::hours(24));
        }
        if (deliberateFail)
            eat_fatal("deliberate failure requested (fail-cell)");
        const SimResult r = simulate(cfg);
        // A mismatch under injection is a successful detection; a
        // mismatch without injection means the simulator is wrong.
        if (cfg.faultSpec.empty() && r.check.mismatches() > 0) {
            out.error = "self-check failed: " +
                        std::to_string(r.check.mismatches()) +
                        " mismatches (first: " + r.firstMismatch + ")";
            return out;
        }
        out.ok = true;
        out.metrics = metricCells(r);
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    return out;
}

void
writeAll(int fd, const std::string &s)
{
    std::size_t done = 0;
    while (done < s.size()) {
        const ssize_t n = ::write(fd, s.data() + done, s.size() - done);
        if (n <= 0)
            return; // parent gone; nothing useful left to do
        done += static_cast<std::size_t>(n);
    }
}

/** Pipe protocol: "OK\n" + one metric per line, or "ERR <message>\n". */
std::string
serialize(const RunOutcome &out)
{
    if (!out.ok)
        return "ERR " + out.error + "\n";
    std::string s = "OK\n";
    for (const auto &m : out.metrics)
        s += m + "\n";
    return s;
}

RunOutcome
deserialize(const std::string &payload)
{
    RunOutcome out;
    std::istringstream is(payload);
    std::string line;
    if (!std::getline(is, line)) {
        out.error = "child produced no result";
        return out;
    }
    if (line.rfind("ERR ", 0) == 0) {
        out.error = line.substr(4);
        return out;
    }
    if (line != "OK") {
        out.error = "garbled child result: " + line;
        return out;
    }
    while (std::getline(is, line))
        out.metrics.push_back(line);
    if (out.metrics.size() != kMetricCount) {
        out.error = "garbled child result: expected " +
                    std::to_string(kMetricCount) + " metrics, got " +
                    std::to_string(out.metrics.size());
        out.metrics.clear();
        return out;
    }
    out.ok = true;
    return out;
}

/**
 * Run one grid cell in a forked child under a wall-clock watchdog.
 * The parent never trusts the child further than its pipe output and
 * exit status, so a crash or hang in the simulator costs one row.
 */
BatchRow
runCell(const BatchOptions &options, const workloads::WorkloadSpec &spec,
        core::MmuOrg org)
{
    BatchRow row;
    row.workload = spec.name;
    row.org = std::string(core::orgName(org));

    SimConfig cfg = options.base;
    cfg.workload = spec;
    cfg.mmu = core::MmuConfig::make(org);
    if (!options.telemetryDir.empty()) {
        cfg.telemetryPath = options.telemetryDir + "/" + row.workload +
                            "_" + row.org + ".jsonl";
    }

    const std::string cell = row.workload + ":" + row.org;
    const bool wantFail = options.failCell == cell;
    const bool wantHang = options.failCell == cell + ":hang" ||
                          options.failCell == "hang:" + cell;

    int fds[2];
    if (::pipe(fds) != 0) {
        row.status = "failed";
        row.error = "pipe() failed";
        return row;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        row.status = "failed";
        row.error = "fork() failed";
        return row;
    }

    if (pid == 0) {
        // Child: run, report over the pipe, and _exit without touching
        // the parent's stdio buffers or destructors.
        ::close(fds[0]);
        const RunOutcome out = executeRun(cfg, wantFail, wantHang);
        writeAll(fds[1], serialize(out));
        ::close(fds[1]);
        ::_exit(out.ok ? 0 : 1);
    }

    // Parent: watchdog loop.
    ::close(fds[1]);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(options.timeoutSeconds);
    int status = 0;
    bool timedOut = false;
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (r < 0) {
            status = 0;
            break;
        }
        if (options.timeoutSeconds > 0 &&
            std::chrono::steady_clock::now() >= deadline) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            timedOut = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    std::string payload;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fds[0], buf, sizeof(buf))) > 0)
        payload.append(buf, static_cast<std::size_t>(n));
    ::close(fds[0]);

    if (timedOut) {
        row.status = "timeout";
        row.error = "killed after " +
                    std::to_string(options.timeoutSeconds) + "s watchdog";
        return row;
    }
    if (WIFSIGNALED(status)) {
        row.status = "failed";
        row.error = "child killed by signal " +
                    std::to_string(WTERMSIG(status));
        return row;
    }

    const RunOutcome out = deserialize(payload);
    if (out.ok) {
        row.status = "ok";
        row.metrics = out.metrics;
    } else {
        row.status = "failed";
        row.error = out.error;
    }
    return row;
}

/** Split one RFC-4180 CSV line into cells. */
std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

/** Load the "ok" rows of a previous sweep's CSV for --resume. */
std::vector<BatchRow>
loadCompletedRows(const std::string &path)
{
    std::vector<BatchRow> rows;
    std::ifstream in(path);
    if (!in)
        return rows;
    const std::size_t width = batchCsvHeader().size();
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (first) {
            first = false; // header
            continue;
        }
        if (line.empty())
            continue;
        const auto cells = parseCsvLine(line);
        if (cells.size() != width || cells[2] != "ok")
            continue;
        BatchRow row;
        row.workload = cells[0];
        row.org = cells[1];
        row.status = cells[2];
        row.metrics.assign(cells.begin() + 3,
                           cells.begin() + 3 +
                               static_cast<long>(kMetricCount));
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * Rewrite the whole results file through a temp file and rename it
 * into place, so readers only ever see a complete CSV.
 */
Status
writeCsvAtomic(const std::string &path, const std::vector<BatchRow> &rows)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return Status::error("cannot write ", tmp);
        stats::CsvWriter csv(out);
        csv.writeRow(batchCsvHeader());
        for (const auto &row : rows) {
            std::vector<std::string> cells{row.workload, row.org,
                                           row.status};
            cells.insert(cells.end(), row.metrics.begin(),
                         row.metrics.end());
            cells.resize(3 + kMetricCount); // pad failed rows
            cells.push_back(row.error);
            csv.writeRow(cells);
        }
        out.flush();
        if (!out)
            return Status::error("write failure on ", tmp,
                                 " (disk full?)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        return Status::error("cannot rename ", tmp, " to ", path);
    }
    return Status();
}

} // namespace

const std::vector<std::string> &
batchCsvHeader()
{
    static const std::vector<std::string> header{
        "workload",        "org",
        "status",          "instructions",
        "l1_mpki",         "l2_mpki",
        "miss_cycles_pki", "energy_pj_pki",
        "check_mismatches", "faults_injected",
        "wall_seconds",    "sim_kips",
        "error",
    };
    return header;
}

Result<BatchSummary>
runBatch(const BatchOptions &options, std::ostream &log)
{
    // Resolve the grid up front: an unusable sweep is an error, a bad
    // run later is data.
    std::vector<workloads::WorkloadSpec> specs;
    for (const auto &name : options.workloadNames) {
        const auto spec = workloads::findWorkload(name);
        if (!spec)
            return Status::error("unknown workload '", name, "'");
        specs.push_back(*spec);
    }
    if (specs.empty())
        return Status::error("no workloads selected");
    const std::vector<core::MmuOrg> &orgs =
        options.orgs.empty() ? core::allOrgs() : options.orgs;
    if (options.outPath.empty())
        return Status::error("no output path");

    std::vector<BatchRow> done;
    if (options.resume)
        done = loadCompletedRows(options.outPath);
    auto findDone = [&done](const std::string &wl,
                            const std::string &org) -> const BatchRow * {
        for (const auto &row : done) {
            if (row.workload == wl && row.org == org)
                return &row;
        }
        return nullptr;
    };

    BatchSummary summary;
    std::vector<BatchRow> rows;
    const std::size_t gridSize = specs.size() * orgs.size();
    std::size_t cellIndex = 0;
    std::size_t cellsRun = 0; // actually executed (not resumed)
    const auto sweepStart = std::chrono::steady_clock::now();

    for (const auto &spec : specs) {
        for (const auto org : orgs) {
            ++cellIndex;
            const std::string orgStr(core::orgName(org));
            if (const BatchRow *prev = findDone(spec.name, orgStr)) {
                rows.push_back(*prev);
                ++summary.resumed;
                log << "[" << cellIndex << "/" << gridSize << "] "
                    << spec.name << " x " << orgStr << ": resumed\n";
            } else {
                const BatchRow row = runCell(options, spec, org);
                rows.push_back(row);
                ++cellsRun;
                if (row.status == "ok")
                    ++summary.ok;
                else if (row.status == "timeout")
                    ++summary.timedOut;
                else
                    ++summary.failed;

                log << "[" << cellIndex << "/" << gridSize << "] "
                    << spec.name << " x " << orgStr << ": "
                    << row.status;
                if (!row.error.empty())
                    log << " (" << row.error << ")";
                log << "\n";

                // Heartbeat: the sweep's progress and a crude ETA from
                // the average cost of the cells run so far.
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - sweepStart)
                        .count();
                log << "heartbeat: " << cellIndex << "/" << gridSize
                    << " cells, " << fmt(elapsed) << "s elapsed";
                if (cellIndex < gridSize && cellsRun > 0) {
                    const double eta =
                        elapsed / static_cast<double>(cellsRun) *
                        static_cast<double>(gridSize - cellIndex);
                    log << ", ~" << fmt(eta) << "s remaining";
                }
                log << "\n";
            }

            // Persist after every cell (resumed rows included): an
            // interrupted sweep always leaves a complete CSV of
            // everything finished so far.
            const Status s = writeCsvAtomic(options.outPath, rows);
            if (!s.ok())
                return s;
        }
    }

    return summary;
}

} // namespace eat::sim
