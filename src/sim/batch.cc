#include "sim/batch.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/parse.hh"
#include "campaign/engine.hh"
#include "mc/mix.hh"
#include "stats/counter.hh"
#include "vm/host_table.hh"
#include "stats/csv.hh"
#include "workloads/suite.hh"

namespace eat::sim
{

namespace
{

/** Metric columns between "status" and "error". */
constexpr std::size_t kMetricCount = 10;

std::string
fmt(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

std::vector<std::string>
metricCells(const SimResult &r)
{
    return {
        std::to_string(r.stats.instructions),
        fmt(r.stats.l1Mpki()),
        fmt(r.stats.l2Mpki()),
        fmt(r.missCyclesPerKiloInstr()),
        fmt(r.energyPerKiloInstr()),
        std::to_string(r.check.mismatches()),
        std::to_string(r.inject.injected()),
        "0", // shootdowns: a single-core run has no remote cores
        fmt(r.profile.total()),
        fmt(r.simKips()),
    };
}

std::vector<std::string>
metricCells(const mc::McResult &r)
{
    std::uint64_t l1Misses = 0, l2Misses = 0, mismatches = 0,
                  injected = 0;
    for (const auto &c : r.perCore) {
        l1Misses += c.stats.l1Misses;
        l2Misses += c.stats.l2Misses;
        mismatches += c.check.mismatches();
        injected += c.inject.injected();
    }
    return {
        std::to_string(r.totalInstructions()),
        fmt(stats::mpki(l1Misses, r.totalInstructions())),
        fmt(stats::mpki(l2Misses, r.totalInstructions())),
        fmt(r.missCyclesPerKiloInstr()),
        fmt(r.energyPerKiloInstr()),
        std::to_string(mismatches),
        std::to_string(injected),
        std::to_string(r.shootdownEvents),
        fmt(r.profile.total()),
        fmt(r.simKips()),
    };
}

/** What the child reports back over the pipe. */
struct RunOutcome
{
    bool ok = false;
    std::vector<std::string> metrics;
    std::string error;
};

/**
 * The actual per-cell work, running inside the forked child. Never
 * throws: any exception becomes a failed outcome — and a crash or hang
 * beyond that only takes the child down, which is the point.
 */
RunOutcome
executeRun(const SimConfig &cfg, bool deliberateFail, bool deliberateHang,
           bool deliberateCrash)
{
    if (deliberateCrash) {
        // Testing aid for the retry/quarantine path: die on a signal,
        // not via an exception. SIGKILL rather than SIGSEGV so the
        // failure class is "signal" even under sanitizers (ASan
        // intercepts SIGSEGV and turns it into a nonzero exit).
        ::raise(SIGKILL);
    }
    RunOutcome out;
    try {
        if (deliberateHang) {
            // Testing aid for the watchdog: block until it fires.
            std::this_thread::sleep_for(std::chrono::hours(24));
        }
        if (deliberateFail)
            eat_fatal("deliberate failure requested (fail-cell)");
        const SimResult r = simulate(cfg);
        // A mismatch under injection is a successful detection; a
        // mismatch without injection means the simulator is wrong.
        if (cfg.faultSpec.empty() && r.check.mismatches() > 0) {
            out.error = "self-check failed: " +
                        std::to_string(r.check.mismatches()) +
                        " mismatches (first: " + r.firstMismatch + ")";
            return out;
        }
        out.ok = true;
        out.metrics = metricCells(r);
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    return out;
}

/** Layer the sweep's nested-paging knobs onto one cell's MmuConfig. */
void
applyVm(const BatchOptions &options, core::MmuConfig &mmu)
{
    if (!options.vmEnabled)
        return;
    mmu.vmEnabled = true;
    mmu.vmIdentityHost = options.vmIdentityHost;
    mmu.hostPageSize = options.hostPageSize;
}

/** Layer the sweep's L3-tier knobs onto one cell's MmuConfig. */
void
applyL3(const BatchOptions &options, core::MmuConfig &mmu)
{
    if (options.l3Mode == l3::L3Mode::None)
        return;
    mmu.l3Cache.policy = options.l3Policy;
    if (options.l3PromoteStreak > 0)
        mmu.l3Cache.promoteStreak = options.l3PromoteStreak;
    mmu.enableL3(options.l3Mode);
}

/** The multicore counterpart: one mix under one organization. */
RunOutcome
executeMcRun(const mc::McConfig &cfg, bool deliberateFail)
{
    RunOutcome out;
    try {
        if (deliberateFail)
            eat_fatal("deliberate failure requested (fail-cell)");
        const mc::McResult r = mc::mcSimulate(cfg);
        std::uint64_t mismatches = 0;
        for (const auto &c : r.perCore)
            mismatches += c.check.mismatches();
        if (cfg.base.faultSpec.empty() && mismatches > 0) {
            std::string first;
            for (const auto &c : r.perCore) {
                if (!c.firstMismatch.empty()) {
                    first = c.firstMismatch;
                    break;
                }
            }
            out.error = "self-check failed: " +
                        std::to_string(mismatches) +
                        " mismatches (first: " + first + ")";
            return out;
        }
        out.ok = true;
        out.metrics = metricCells(r);
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    return out;
}

/** Pipe protocol: "OK\n" + one metric per line, or "ERR <message>\n". */
std::string
serialize(const RunOutcome &out)
{
    if (!out.ok)
        return "ERR " + out.error + "\n";
    std::string s = "OK\n";
    for (const auto &m : out.metrics)
        s += m + "\n";
    return s;
}

RunOutcome
deserialize(const std::string &payload)
{
    RunOutcome out;
    std::istringstream is(payload);
    std::string line;
    if (!std::getline(is, line)) {
        out.error = "child produced no result";
        return out;
    }
    if (line.rfind("ERR ", 0) == 0) {
        out.error = line.substr(4);
        return out;
    }
    if (line != "OK") {
        out.error = "garbled child result: " + line;
        return out;
    }
    while (std::getline(is, line))
        out.metrics.push_back(line);
    if (out.metrics.size() != kMetricCount) {
        out.error = "garbled child result: expected " +
                    std::to_string(kMetricCount) + " metrics, got " +
                    std::to_string(out.metrics.size());
        out.metrics.clear();
        return out;
    }
    out.ok = true;
    return out;
}

/** Turn one campaign outcome (live or replayed) into a CSV row. */
void
finishCell(const campaign::TaskOutcome &outcome, unsigned timeoutSeconds,
           BatchRow &row)
{
    using campaign::FailureClass;
    row.metrics.clear();
    row.error.clear();
    switch (outcome.failure) {
      case FailureClass::None: {
        const RunOutcome out = deserialize(outcome.payload);
        row.status = "ok";
        row.metrics = out.metrics;
        break;
      }
      case FailureClass::BadPayload:
        row.status = "failed";
        row.error = deserialize(outcome.payload).error;
        break;
      case FailureClass::NonzeroExit:
        row.status = "failed";
        row.error = "child exited with status " +
                    std::to_string(outcome.exitCode);
        break;
      case FailureClass::Crashed:
        row.status = "failed";
        row.error = "child killed by signal " +
                    std::to_string(outcome.termSignal);
        break;
      case FailureClass::TimedOut:
        row.status = "timeout";
        row.error = "killed after " + std::to_string(timeoutSeconds) +
                    "s watchdog";
        break;
      case FailureClass::SpawnFailed:
        row.status = "failed";
        row.error = outcome.spawnError.empty()
                        ? "pipe() or fork() failed"
                        : outcome.spawnError;
        break;
    }
    if (outcome.attempts > 1 && row.status != "ok") {
        row.error += " (after " + std::to_string(outcome.attempts) +
                     " attempts)";
    }
}

/**
 * Campaign identity for the checkpoint journal: the grid plus every
 * knob that changes cell results. Deliberately excludes the testing
 * aids (failCell, killAfterCells), telemetry paths, and scheduling
 * knobs (jobs, timeout, retries) — none of those change what a cell
 * computes, and resume across them must keep working.
 */
std::string
sweepFingerprint(const BatchOptions &options,
                 const std::vector<BatchRow> &rows)
{
    std::ostringstream os;
    os << "eatbatch|v1";
    for (const auto &row : rows)
        os << "|" << row.workload << ":" << row.org;
    const SimConfig &b = options.base;
    os << "|ff=" << b.fastForwardInstructions
       << "|sim=" << b.simulateInstructions << "|seed=" << b.seed
       << "|phys=" << b.physBytes
       << "|eager=" << b.eagerRangesPerRegion
       << "|check=" << static_cast<int>(b.checkLevel)
       << "|inject=" << b.faultSpec;
    if (options.multicore()) {
        os << "|mc=" << options.cores << "," << options.mcShared << ","
           << options.mcCtxFlush << "," << options.mcQuantum << ","
           << options.mcRemapInterval << ",coh="
           << mc::coherenceModeName(options.coherence);
    }
    if (options.vmEnabled) {
        os << "|vm=" << (options.vmIdentityHost ? "identity" : "paged")
           << "," << vm::hostPageSizeName(options.hostPageSize);
    }
    if (options.l3Mode != l3::L3Mode::None) {
        os << "|l3=" << l3::l3ModeName(options.l3Mode) << ","
           << l3::l3InsertPolicyName(options.l3Policy) << ","
           << options.l3PromoteStreak;
    }
    return os.str();
}

/** options.jobs with 0 resolved to the hardware concurrency. */
unsigned
effectiveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** Split one RFC-4180 CSV line into cells. */
std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

/** Load the "ok" rows of a previous sweep's CSV for --resume. */
std::vector<BatchRow>
loadCompletedRows(const std::string &path)
{
    std::vector<BatchRow> rows;
    std::ifstream in(path);
    if (!in)
        return rows;
    const std::size_t width = batchCsvHeader().size();
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (first) {
            first = false; // header
            continue;
        }
        if (line.empty())
            continue;
        const auto cells = parseCsvLine(line);
        if (cells.size() != width || cells[2] != "ok")
            continue;
        BatchRow row;
        row.workload = cells[0];
        row.org = cells[1];
        row.status = cells[2];
        row.metrics.assign(cells.begin() + 3,
                           cells.begin() + 3 +
                               static_cast<long>(kMetricCount));
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * Rewrite the whole results file through a temp file and rename it
 * into place, so readers only ever see a complete CSV.
 */
Status
writeCsvAtomic(const std::string &path, const std::vector<BatchRow> &rows)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return Status::error("cannot write ", tmp);
        stats::CsvWriter csv(out);
        csv.writeRow(batchCsvHeader());
        for (const auto &row : rows) {
            std::vector<std::string> cells{row.workload, row.org,
                                           row.status};
            cells.insert(cells.end(), row.metrics.begin(),
                         row.metrics.end());
            cells.resize(3 + kMetricCount); // pad failed rows
            cells.push_back(row.error);
            csv.writeRow(cells);
        }
        out.flush();
        if (!out)
            return Status::error("write failure on ", tmp,
                                 " (disk full?)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        return Status::error("cannot rename ", tmp, " to ", path);
    }
    return Status();
}

} // namespace

std::vector<BatchRow>
loadBatchRows(const std::string &path)
{
    return loadCompletedRows(path);
}

const std::vector<std::string> &
batchCsvHeader()
{
    static const std::vector<std::string> header{
        "workload",        "org",
        "status",          "instructions",
        "l1_mpki",         "l2_mpki",
        "miss_cycles_pki", "energy_pj_pki",
        "check_mismatches", "faults_injected",
        "shootdowns",
        "wall_seconds",    "sim_kips",
        "error",
    };
    return header;
}

const std::vector<std::size_t> &
batchTimingColumns()
{
    // wall_seconds and sim_kips measure the host, not the simulated
    // machine; they are the only columns allowed to differ between
    // reruns or job counts.
    static const std::vector<std::size_t> cols = [] {
        std::vector<std::size_t> out;
        const auto &header = batchCsvHeader();
        for (std::size_t i = 0; i < header.size(); ++i) {
            if (header[i] == "wall_seconds" || header[i] == "sim_kips")
                out.push_back(i);
        }
        return out;
    }();
    return cols;
}

Result<unsigned>
parseJobs(std::string_view text)
{
    const auto parsed = parseU64(text);
    if (!parsed.ok())
        return Status::error("jobs: ", parsed.status().message());
    const std::uint64_t v = parsed.value();
    if (v == 0)
        return Status::error("jobs: must be at least 1");
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const std::uint64_t cap = 4ull * hw;
    if (v > cap) {
        return Status::error("jobs: ", v, " exceeds 4 x hardware "
                             "concurrency (cap ", cap, "); more children "
                             "than that only add scheduler churn");
    }
    return static_cast<unsigned>(v);
}

Result<BatchSummary>
runBatch(const BatchOptions &options, std::ostream &log)
{
    // Resolve the grid up front: an unusable sweep is an error, a bad
    // run later is data.
    std::vector<workloads::WorkloadSpec> specs;
    for (const auto &name : options.workloadNames) {
        const auto spec = workloads::findWorkload(name);
        if (!spec)
            return Status::error("unknown workload '", name, "'");
        specs.push_back(*spec);
    }
    if (specs.empty())
        return Status::error("no workloads selected");
    const std::vector<core::MmuOrg> &orgs =
        options.orgs.empty() ? core::allOrgs() : options.orgs;
    if (options.outPath.empty())
        return Status::error("no output path");

    // Multicore sweep: one mix (explicit, or the selected workloads)
    // per organization; the mix name labels the row.
    const bool mcMode = options.multicore();
    std::vector<workloads::WorkloadSpec> mix;
    std::string mixLabel;
    if (mcMode) {
        mix = options.mix.empty() ? specs : options.mix;
        mixLabel = mc::mixName(mix);
        if (options.cores < 1 || options.cores > mc::kMaxCores) {
            return Status::error("core count ", options.cores,
                                 " out of range (1..", mc::kMaxCores,
                                 ")");
        }
        if (options.mcQuantum == 0)
            return Status::error("empty scheduler quantum");
    }

    // The checkpoint journal is the authoritative resume record (it
    // holds every settled cell, flushed per record). The CSV fallback
    // covers sweeps checkpointed before the journal existed — it can
    // only recover "ok" rows.
    const std::string journalPath = options.checkpointPath.empty()
                                        ? options.outPath + ".journal"
                                        : options.checkpointPath;
    const std::string quarantinePath = journalPath + ".quarantine";
    const bool journalResume =
        options.resume && std::ifstream(journalPath).good();

    std::vector<BatchRow> done;
    if (options.resume && !journalResume)
        done = loadCompletedRows(options.outPath);
    auto findDone = [&done](const std::string &wl,
                            const std::string &org) -> const BatchRow * {
        for (const auto &row : done) {
            if (row.workload == wl && row.org == org)
                return &row;
        }
        return nullptr;
    };

    BatchSummary summary;
    const std::size_t gridSize =
        (mcMode ? 1 : specs.size()) * orgs.size();
    const unsigned jobs = effectiveJobs(options.jobs);
    const auto sweepStart = std::chrono::steady_clock::now();

    // Rows live at their grid index from the start, so whatever order
    // the pool finishes cells in, the CSV is ordered by cell index —
    // identical to a serial sweep. An empty status marks a cell whose
    // result is not in yet.
    struct GridCell
    {
        const workloads::WorkloadSpec *spec;
        core::MmuOrg org;
    };
    std::vector<GridCell> cells;
    std::vector<BatchRow> rows(gridSize);
    std::vector<std::size_t> pendingCells;
    {
        std::size_t index = 0;
        const std::size_t numRows = mcMode ? 1 : specs.size();
        for (std::size_t w = 0; w < numRows; ++w) {
            for (const auto org : orgs) {
                cells.push_back(
                    GridCell{mcMode ? nullptr : &specs[w], org});
                BatchRow &row = rows[index];
                row.workload = mcMode ? mixLabel : specs[w].name;
                row.org = std::string(core::orgName(org));
                if (const BatchRow *prev =
                        findDone(row.workload, row.org)) {
                    row = *prev;
                    ++summary.resumed;
                    log << "[" << index + 1 << "/" << gridSize << "] "
                        << row.workload << " x " << row.org
                        << ": resumed\n";
                } else {
                    pendingCells.push_back(index);
                }
                ++index;
            }
        }
    }

    /** Persist every finished row (in grid order) atomically. */
    auto persist = [&options, &rows]() -> Status {
        std::vector<BatchRow> finished;
        for (const auto &row : rows) {
            if (!row.status.empty())
                finished.push_back(row);
        }
        return writeCsvAtomic(options.outPath, finished);
    };
    if (Status s = persist(); !s.ok())
        return s;

    const std::size_t toRun = pendingCells.size();
    std::size_t completedRuns = 0;  // executed (not resumed) and reaped
    std::size_t replayedCells = 0;  // satisfied from the journal

    /** One progress line + pool-aware heartbeat after a finished run. */
    auto logCompletion = [&](const BatchRow &row, std::size_t inFlight) {
        const std::size_t done = summary.resumed + completedRuns;
        log << "[" << done << "/" << gridSize << "] " << row.workload
            << " x " << row.org << ": " << row.status;
        if (!row.error.empty())
            log << " (" << row.error << ")";
        log << "\n";

        // Heartbeat: progress, pool occupancy, and an ETA from the
        // pool's observed completion rate (which already reflects the
        // parallelism actually achieved).
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - sweepStart)
                .count();
        log << "heartbeat: " << done << "/" << gridSize << " cells, "
            << inFlight << " in flight (-j" << jobs << "), "
            << fmt(elapsed) << "s elapsed";
        const std::size_t liveTotal = toRun - replayedCells;
        if (completedRuns < liveTotal && completedRuns > 0) {
            const double eta =
                elapsed / static_cast<double>(completedRuns) *
                static_cast<double>(liveTotal - completedRuns);
            log << ", ~" << fmt(eta) << "s remaining";
        }
        log << "\n";
    };

    // One campaign task per pending cell: the child runs the
    // simulation and reports metrics over its pipe; a crash, panic, or
    // hang costs exactly that cell. The cell label doubles as the
    // checkpoint key.
    std::vector<campaign::EngineTask> tasks;
    tasks.reserve(toRun);
    for (const std::size_t index : pendingCells) {
        const BatchRow &row = rows[index];
        const std::string cell = row.workload + ":" + row.org;
        const bool wantFail = options.failCell == cell;
        const bool wantHang = options.failCell == cell + ":hang" ||
                              options.failCell == "hang:" + cell;
        const bool wantCrash = options.failCell == cell + ":crash";
        // Commas in the mix label would splinter a telemetry filename.
        std::string fileLabel = row.workload;
        for (auto &c : fileLabel) {
            if (c == ',')
                c = '+';
        }
        if (mcMode) {
            mc::McConfig mcc;
            mcc.base = options.base;
            mcc.base.workload = mix.front();
            mcc.base.mmu = core::MmuConfig::make(cells[index].org);
            applyVm(options, mcc.base.mmu);
            applyL3(options, mcc.base.mmu);
            mcc.cores = options.cores;
            mcc.mix = mix;
            mcc.sharedAddressSpace = options.mcShared;
            mcc.ctxFlush = options.mcCtxFlush;
            mcc.quantumInstructions = options.mcQuantum;
            mcc.remapInterval = options.mcRemapInterval;
            mcc.coherence = options.coherence;
            if (!options.telemetryDir.empty()) {
                mcc.base.telemetryPath = options.telemetryDir + "/" +
                                         fileLabel + "_" + row.org +
                                         ".jsonl";
            }
            tasks.push_back({cell, [mcc, wantFail] {
                return serialize(executeMcRun(mcc, wantFail));
            }});
            continue;
        }
        SimConfig cfg = options.base;
        cfg.workload = *cells[index].spec;
        cfg.mmu = core::MmuConfig::make(cells[index].org);
        applyVm(options, cfg.mmu);
        applyL3(options, cfg.mmu);
        if (!options.telemetryDir.empty()) {
            cfg.telemetryPath = options.telemetryDir + "/" +
                                fileLabel + "_" + row.org + ".jsonl";
        }
        tasks.push_back({cell, [cfg, wantFail, wantHang, wantCrash] {
            return serialize(
                executeRun(cfg, wantFail, wantHang, wantCrash));
        }});
    }

    // Persist after every settled cell (replayed or live): an
    // interrupted sweep always leaves a complete CSV of everything
    // finished so far. A persist failure aborts the campaign.
    Status persistError;
    campaign::EngineOptions engine;
    engine.jobs = jobs;
    engine.timeoutSeconds = options.timeoutSeconds;
    engine.retry.maxRetries = options.retries;
    engine.journalPath = journalPath;
    engine.fingerprint = sweepFingerprint(options, rows);
    engine.resume = journalResume;
    engine.quarantinePath = quarantinePath;
    engine.payloadOk = [](const std::string &payload) {
        return deserialize(payload).ok;
    };
    // Default acceptCheckpoint (successes only) is exactly the CSV
    // resume contract: failed and timed-out cells re-run on resume.
    engine.killAfterCheckpoints = options.killAfterCells;

    const auto engineRun = campaign::runEngine(
        engine, tasks,
        [&](std::size_t taskIndex, const campaign::TaskOutcome &outcome,
            std::size_t inFlight) {
            BatchRow &row = rows[pendingCells[taskIndex]];
            finishCell(outcome, options.timeoutSeconds, row);
            if (outcome.fromCheckpoint) {
                ++summary.resumed;
                ++replayedCells;
                log << "[" << summary.resumed + completedRuns << "/"
                    << gridSize << "] " << row.workload << " x "
                    << row.org << ": resumed\n";
            } else {
                if (row.status == "ok")
                    ++summary.ok;
                else if (row.status == "timeout")
                    ++summary.timedOut;
                else
                    ++summary.failed;
                ++completedRuns;
                logCompletion(row, inFlight);
            }
            if (Status s = persist(); !s.ok()) {
                persistError = s;
                return false;
            }
            return true;
        },
        log);
    if (!persistError.ok())
        return persistError;
    if (!engineRun.ok())
        return engineRun.status();
    summary.quarantined =
        static_cast<unsigned>(engineRun.value().quarantined);
    summary.retries = static_cast<unsigned>(engineRun.value().retries);
    summary.interruptSignal = engineRun.value().interruptSignal;

    return summary;
}

} // namespace eat::sim
