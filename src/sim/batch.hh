/**
 * @file
 * Fault-tolerant, parallel (workload x organization) sweep runner.
 *
 * A design-space sweep is only trustworthy if one bad cell cannot take
 * down — or silently truncate — the whole grid. The batch runner
 * therefore executes every run in a forked child process with a
 * wall-clock watchdog: a crash, a panic, or a hang costs exactly that
 * cell, is recorded as such, and the sweep continues. Results are
 * rewritten atomically (tmp file + rename) after every run, so an
 * interrupted sweep always leaves a complete, parseable CSV behind and
 * can resume from the rows already done.
 *
 * The grid cells are independent by construction (every child owns its
 * seed and its whole address space), so the runner keeps up to `jobs`
 * children in flight at once and reaps them signal-driven
 * (sigtimedwait on SIGCHLD — no wake-up polling, even at one job).
 * Parallelism never changes results: rows are ordered by cell index,
 * not completion order, and every metric cell except the two
 * wall-clock-derived columns (wall_seconds, sim_kips) is bit-identical
 * whatever the job count.
 */

#ifndef EAT_SIM_BATCH_HH
#define EAT_SIM_BATCH_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hh"
#include "l3/l3_config.hh"
#include "mc/mc_simulator.hh"
#include "sim/simulator.hh"

namespace eat::sim
{

/** What one grid cell produced. */
struct BatchRow
{
    std::string workload;
    std::string org;
    /** "ok", "failed", or "timeout". */
    std::string status;
    /** Metric cells (empty unless status == "ok"). */
    std::vector<std::string> metrics;
    /** Error description (empty unless the run failed). */
    std::string error;
};

/** Aggregate outcome of one sweep. */
struct BatchSummary
{
    unsigned ok = 0;
    unsigned failed = 0;
    unsigned timedOut = 0;
    unsigned resumed = 0; ///< rows reused from a previous sweep

    /** Cells recorded in the poisoned-cell (quarantine) file; these
     *  are also counted under failed/timedOut. */
    unsigned quarantined = 0;

    /** Transient-failure retry attempts dispatched. */
    unsigned retries = 0;

    /** SIGINT/SIGTERM that stopped the sweep; 0 = ran to completion.
     *  An interrupted sweep's CSV and checkpoint are complete for
     *  every settled cell — rerun with resume to finish. */
    int interruptSignal = 0;

    bool interrupted() const { return interruptSignal != 0; }

    unsigned total() const { return ok + failed + timedOut + resumed; }
};

/** Everything one sweep needs. */
struct BatchOptions
{
    /** Workload names (must resolve via workloads::findWorkload). */
    std::vector<std::string> workloadNames;

    /** Organizations to sweep (defaults to all six when empty). */
    std::vector<core::MmuOrg> orgs;

    /** Per-run template: window sizes, seed, check level, fault spec. */
    SimConfig base;

    /** Output CSV path (written atomically after every run). */
    std::string outPath;

    /** Per-run wall-clock limit in seconds; 0 disables the watchdog. */
    unsigned timeoutSeconds = 0;

    /**
     * Forked children kept in flight at once; 0 selects the hardware
     * concurrency. Results are independent of this value (see file
     * comment).
     */
    unsigned jobs = 1;

    /** Reuse "ok" rows from an existing outPath instead of re-running. */
    bool resume = false;

    /**
     * Checkpoint journal path; empty derives "<outPath>.journal". The
     * journal records every settled cell (flushed per record), so a
     * killed sweep resumes losing at most the cells in flight; resume
     * replays it in preference to the CSV.
     */
    std::string checkpointPath;

    /** Transient-failure retry budget per cell (spawn failure, signal
     *  death, watchdog timeout), with bounded exponential backoff.
     *  What still fails is quarantined, not fatal. */
    unsigned retries = 0;

    /** Testing aid: SIGKILL this process after N checkpoint appends
     *  (a deterministic kill -9 for the crash-resume suite); 0 = off. */
    unsigned killAfterCells = 0;

    /**
     * Testing aid: a "workload:org" cell that deliberately fails, so
     * the fault-tolerance path itself is exercisable end to end. A
     * ":hang" suffix hangs the cell (watchdog food); a ":crash" suffix
     * kills the child with SIGKILL (retry/quarantine food).
     */
    std::string failCell;

    /**
     * When non-empty, every cell streams its per-interval telemetry to
     * "<telemetryDir>/<workload>_<org>.jsonl" (the directory must
     * already exist).
     */
    std::string telemetryDir;

    /**
     * Multicore sweep: when cores > 1 or mix is non-empty, the grid
     * becomes (mix x organization) — one multicore run of the whole
     * mix per organization, with the mix name in the workload column
     * and aggregate metrics in the rows. The remaining fields carry
     * the scheduler and sharing knobs of every mc cell.
     */
    unsigned cores = 1;
    std::vector<workloads::WorkloadSpec> mix;
    bool mcShared = false;
    bool mcCtxFlush = false;
    std::uint64_t mcQuantum = 100'000;
    std::uint64_t mcRemapInterval = 0;

    /** Remap-invalidation cost model of every mc cell. */
    mc::McConfig::CoherenceMode coherence =
        mc::McConfig::CoherenceMode::Ipi;

    /**
     * Nested paging for every cell. The org-derived MmuConfig of each
     * cell gets these applied on top, so a vm sweep compares
     * organizations under the same host table.
     */
    bool vmEnabled = false;
    bool vmIdentityHost = false;
    vm::PageSize hostPageSize = vm::PageSize::Size4K;

    /**
     * L3 translation tier for every cell, layered onto the org-derived
     * MmuConfig like the vm knobs above. The tier's identity enters the
     * sweep fingerprint, so --resume refuses to splice rows from a
     * sweep that ran a different tier.
     */
    l3::L3Mode l3Mode = l3::L3Mode::None;
    l3::L3InsertPolicy l3Policy = l3::L3InsertPolicy::WalkFill;
    unsigned l3PromoteStreak = 0; ///< 0 keeps the config default

    bool multicore() const { return cores > 1 || !mix.empty(); }
};

/** The CSV header the runner writes. */
const std::vector<std::string> &batchCsvHeader();

/**
 * Load the "ok" rows of a sweep CSV (as written by runBatch). Used by
 * --resume and by drivers that post-process a finished sweep, e.g. the
 * normalized per-mix organization table eatbatch prints after a
 * multicore sweep.
 */
std::vector<BatchRow> loadBatchRows(const std::string &path);

/**
 * Indices (into batchCsvHeader()) of the columns derived from wall
 * clock rather than from simulation: wall_seconds and sim_kips. Every
 * other column is deterministic across job counts and reruns.
 */
const std::vector<std::size_t> &batchTimingColumns();

/**
 * Parse and validate a --jobs/-j value: a decimal count in
 * [1, 4 x hardware concurrency]. Rejects 0, non-numeric text, and
 * values beyond that cap (they only add scheduler churn).
 */
Result<unsigned> parseJobs(std::string_view text);

/**
 * Run the sweep. @p log receives one progress line per run. Returns
 * the summary, or an error for unusable options (unknown workload or
 * an unwritable output path); per-run failures are data, not errors.
 */
Result<BatchSummary> runBatch(const BatchOptions &options,
                              std::ostream &log);

} // namespace eat::sim

#endif // EAT_SIM_BATCH_HH
