#include "sim/simulator.hh"

#include <algorithm>
#include <fstream>
#include <memory>

#include "base/logging.hh"
#include "core/mmu.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "stats/counter.hh"
#include "vm/memory_manager.hh"
#include "workloads/trace.hh"

namespace eat::sim
{

double
SimResult::energyPerKiloInstr() const
{
    if (stats.instructions == 0)
        return 0.0;
    return totalEnergy() * 1000.0 /
           static_cast<double>(stats.instructions);
}

double
SimResult::missCyclesPerKiloInstr() const
{
    if (stats.instructions == 0)
        return 0.0;
    return static_cast<double>(stats.tlbMissCycles()) * 1000.0 /
           static_cast<double>(stats.instructions);
}

double
SimResult::simKips() const
{
    return obs::simKips(stats.instructions, profile.total());
}

namespace
{

/** Build the OS memory manager for one run's configuration. */
vm::MemoryManager
makeMemoryManager(const SimConfig &config)
{
    std::uint64_t physBytes = config.physBytes;
    if (physBytes == 0) {
        const std::uint64_t footprint = config.workload.footprintBytes();
        physBytes = alignUp(footprint + footprint / 4 + 256_MiB, 2_MiB);
    }
    auto policy = config.mmu.osPolicy();
    if (config.eagerRangesPerRegion > 0)
        policy.eagerRangesPerRegion = config.eagerRangesPerRegion;
    return vm::MemoryManager(policy, physBytes,
                             config.seed ^ 0x05f5e0ffull);
}

/** Holds the optional self-checking companions of one run. */
struct CheckHarness
{
    std::unique_ptr<check::ShadowChecker> checker;
    std::unique_ptr<check::FaultInjector> injector;

    /**
     * Build the checker/injector the config asks for and attach them to
     * @p mmu. Must run after the workload's allocations so the golden
     * snapshot sees the full address space.
     */
    CheckHarness(const SimConfig &config, const vm::MemoryManager &mm,
                 const vm::RangeTable *rangeTable, core::Mmu &mmu)
    {
        if (config.checkLevel != check::CheckLevel::Off) {
            checker = std::make_unique<check::ShadowChecker>(
                config.checkLevel, mm.pageTable(), rangeTable);
            mmu.setChecker(checker.get());
        }
        if (!config.faultSpec.empty()) {
            auto specs = check::parseFaultSpecs(config.faultSpec);
            if (!specs.ok())
                eat_fatal(specs.status().message());
            injector = std::make_unique<check::FaultInjector>(
                std::move(specs.value()), config.seed);
            injector->registerPageTlb(&mmu.l1Tlb4K(),
                                      check::FaultTarget::L1Tlb4K);
            injector->registerPageTlb(mmu.l1Tlb2M(),
                                      check::FaultTarget::L1Tlb2M);
            injector->registerPageTlb(mmu.l1Tlb1G(),
                                      check::FaultTarget::L1Tlb1G);
            injector->registerPageTlb(&mmu.l2Tlb(),
                                      check::FaultTarget::L2Tlb);
            injector->registerRangeTlb(mmu.l1RangeTlb(),
                                       check::FaultTarget::L1Range);
            injector->registerRangeTlb(mmu.l2RangeTlb(),
                                       check::FaultTarget::L2Range);
        }
    }

    /** Copy the harness outcome into @p result. */
    void
    finish(const SimConfig &config, SimResult &result) const
    {
        result.checkLevel = config.checkLevel;
        if (checker) {
            result.check = checker->stats();
            result.firstMismatch = checker->firstMismatch();
        }
        if (injector)
            result.inject = injector->stats();
    }
};

/** Holds the optional observability outputs of one run. */
struct ObsHarness
{
    std::unique_ptr<obs::TelemetrySink> telemetry;
    std::unique_ptr<obs::TraceWriter> trace;
    std::unique_ptr<obs::ProvenanceSink> provenance;

    /** Open the outputs the config asks for and attach them. */
    ObsHarness(const SimConfig &config, core::Mmu &mmu,
               const CheckHarness &harness)
    {
        eat_assert(config.provenanceSampleEvery >= 1,
                   "provenance sample rate must be >= 1");
        if (!config.provenancePath.empty()) {
            if (!obs::kProvenanceCompiledIn) {
                eat_fatal("this build has no provenance hooks "
                          "(EAT_PROVENANCE=OFF); cannot write '",
                          config.provenancePath, "'");
            }
            auto sink = obs::ProvenanceSink::open(
                config.provenancePath, config.provenanceSampleEvery);
            if (!sink.ok())
                eat_fatal(sink.status().message());
            provenance = std::move(sink.value());
        } else if (config.provenanceEnabled &&
                   obs::kProvenanceCompiledIn) {
            // In-memory accumulation only: exact totals for the
            // reconciliation oracle, no event stream.
            provenance = std::make_unique<obs::ProvenanceSink>(
                config.provenanceSampleEvery);
        }
        if (provenance)
            mmu.setProvenance(provenance.get());
        if (!config.telemetryPath.empty()) {
            auto sink = obs::TelemetrySink::open(config.telemetryPath);
            if (!sink.ok())
                eat_fatal(sink.status().message());
            telemetry = std::move(sink.value());
            mmu.setTelemetry(telemetry.get());
            if (harness.injector)
                mmu.setInjectStats(&harness.injector->stats());
        }
        if (!config.traceOutPath.empty()) {
            trace = std::make_unique<obs::TraceWriter>();
            mmu.setTrace(trace.get());
            if (harness.checker)
                harness.checker->setTrace(trace.get());
            if (harness.injector)
                harness.injector->setTrace(trace.get());
        }
    }

    /** Flush the outputs, snapshot the registry, fill @p result. */
    void
    finish(const SimConfig &config, const core::Mmu &mmu,
           const CheckHarness &harness, SimResult &result)
    {
        if (telemetry) {
            result.telemetryRecords = telemetry->recordsEmitted();
            eat_check_fatal(telemetry->close());
        }
        if (trace) {
            result.traceEvents = trace->eventsRecorded();
            result.traceEventsDropped = trace->eventsDropped();
            eat_check_fatal(trace->write(config.traceOutPath));
        }
        if (provenance) {
            eat_check_fatal(provenance->close());
            result.provenanceEnabled = true;
            result.provenance = provenance->summary();
        }
        if (!config.metricsPath.empty()) {
            obs::MetricRegistry registry;
            mmu.registerMetrics(registry);
            if (harness.checker)
                harness.checker->registerMetrics(registry);
            if (harness.injector)
                harness.injector->registerMetrics(registry);
            std::ofstream out(config.metricsPath,
                              std::ios::out | std::ios::trunc);
            if (!out) {
                eat_fatal("cannot open metrics file '", config.metricsPath,
                          "'");
            }
            registry.writeJson(out);
            out << '\n';
            out.flush();
            if (!out.good()) {
                eat_fatal("error writing metrics file '",
                          config.metricsPath, "'");
            }
        }
    }
};

} // namespace

SimResult
simulate(const SimConfig &config)
{
    eat_assert(config.simulateInstructions > 0, "empty measured window");

    obs::StageProfiler profiler;
    profiler.start("setup");

    // --- OS setup: map the workload under this configuration's policy.
    vm::MemoryManager mm = makeMemoryManager(config);

    workloads::WorkloadGenerator gen(config.workload, mm, config.seed);

    // --- hardware setup.
    const vm::RangeTable *rangeTable =
        (config.mmu.hasL1Range || config.mmu.hasL2Range)
            ? &mm.rangeTable()
            : nullptr;
    core::Mmu mmu(config.mmu, mm.pageTable(), rangeTable);
    CheckHarness harness(config, mm, rangeTable, mmu);
    ObsHarness outputs(config, mmu, harness);
    // An armed injector corrupts TLB state behind the MMU's back; the
    // front cache must not replay around that (see Mmu docs).
    mmu.setFrontCacheEnabled(config.frontCache && !harness.injector);

    // --- fast-forward: advance the generator without touching the MMU
    // (the TLBs start cold at the measurement window, as with the
    // paper's Pin-based skip).
    if (config.fastForwardInstructions > 0) {
        profiler.start("fast-forward");
        gen.skip(config.fastForwardInstructions);
    }

    // --- measured window.
    profiler.start("simulate");
    SimResult result;
    result.workloadName = config.workload.name;
    result.org = config.mmu.org;
    result.mpkiTimeline = stats::Timeline(config.timelineInterval);

    const InstrCount start = gen.instructionsRetired();
    const InstrCount end = start + config.simulateInstructions;

    InstrCount nextSample =
        config.timelineInterval ? config.timelineInterval : 0;
    std::uint64_t missesAtSample = 0;
    InstrCount instrAtSample = 0;

    while (gen.instructionsRetired() < end) {
        const auto op = gen.next();
        if (harness.injector)
            harness.injector->tick();
        mmu.tick(op.instrGap);
        mmu.access(op.vaddr);

        if (config.timelineInterval) {
            const InstrCount elapsed = gen.instructionsRetired() - start;
            while (nextSample && elapsed >= nextSample) {
                const auto &s = mmu.stats();
                const std::uint64_t dMiss = s.l1Misses - missesAtSample;
                const InstrCount dInstr = s.instructions - instrAtSample;
                result.mpkiTimeline.record(stats::mpki(dMiss, dInstr));
                missesAtSample = s.l1Misses;
                instrAtSample = s.instructions;
                nextSample += config.timelineInterval;
            }
        }
    }

    // Flush the final partial window so the timeline covers the whole
    // measured run (the tail used to be silently dropped).
    if (config.timelineInterval) {
        const auto &s = mmu.stats();
        const std::uint64_t dMiss = s.l1Misses - missesAtSample;
        const InstrCount dInstr = s.instructions - instrAtSample;
        if (dInstr > 0)
            result.mpkiTimeline.record(stats::mpki(dMiss, dInstr));
    }

    profiler.start("report");
    result.stats = mmu.stats();
    result.energy = mmu.energyReport();
    result.frontCacheHits = mmu.frontCacheHits();
    if (mmu.lite()) {
        result.lite = mmu.lite()->stats();
        result.liteEnabled = true;
    }
    harness.finish(config, result);
    outputs.finish(config, mmu, harness, result);

    result.pages4K = mm.pageTable().pageCount(vm::PageSize::Size4K);
    result.pages2M = mm.pageTable().pageCount(vm::PageSize::Size2M);
    result.numRanges = mm.rangeTable().size();
    result.rangeCoverage = mm.rangeCoverage();
    result.profile = profiler.timings();
    return result;
}

SimResult
simulateFromTrace(const SimConfig &config, const std::string &tracePath)
{
    obs::StageProfiler profiler;
    profiler.start("setup");

    // Same address-space setup as simulate(): the trace's addresses
    // are only meaningful against identical regions.
    vm::MemoryManager mm = makeMemoryManager(config);
    workloads::WorkloadGenerator gen(config.workload, mm, config.seed);
    (void)gen; // performs the allocations; the stream comes from disk

    const vm::RangeTable *rangeTable =
        (config.mmu.hasL1Range || config.mmu.hasL2Range)
            ? &mm.rangeTable()
            : nullptr;
    core::Mmu mmu(config.mmu, mm.pageTable(), rangeTable);
    CheckHarness harness(config, mm, rangeTable, mmu);
    ObsHarness outputs(config, mmu, harness);
    mmu.setFrontCacheEnabled(config.frontCache && !harness.injector);

    profiler.start("simulate");
    workloads::TraceReader reader(tracePath);
    while (auto op = reader.next()) {
        if (harness.injector)
            harness.injector->tick();
        mmu.tick(op->instrGap);
        mmu.access(op->vaddr);
    }

    profiler.start("report");
    SimResult result;
    result.workloadName = config.workload.name + " (trace)";
    result.org = config.mmu.org;
    result.stats = mmu.stats();
    result.energy = mmu.energyReport();
    result.frontCacheHits = mmu.frontCacheHits();
    if (mmu.lite()) {
        result.lite = mmu.lite()->stats();
        result.liteEnabled = true;
    }
    harness.finish(config, result);
    outputs.finish(config, mmu, harness, result);
    result.pages4K = mm.pageTable().pageCount(vm::PageSize::Size4K);
    result.pages2M = mm.pageTable().pageCount(vm::PageSize::Size2M);
    result.numRanges = mm.rangeTable().size();
    result.rangeCoverage = mm.rangeCoverage();
    result.profile = profiler.timings();
    return result;
}

std::uint64_t
recordTrace(const SimConfig &config, const std::string &tracePath)
{
    vm::MemoryManager mm = makeMemoryManager(config);
    workloads::WorkloadGenerator gen(config.workload, mm, config.seed);
    if (config.fastForwardInstructions > 0)
        gen.skip(config.fastForwardInstructions);

    workloads::TraceWriter writer(tracePath);
    const InstrCount end =
        gen.instructionsRetired() + config.simulateInstructions;
    while (gen.instructionsRetired() < end)
        writer.write(gen.next());
    eat_check_fatal(writer.close());
    return writer.recordsWritten();
}

} // namespace eat::sim
