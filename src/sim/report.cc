#include "sim/report.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"
#include "base/parse.hh"

namespace eat::sim
{

namespace
{

/** Strict numeric parse for a bench flag; garbage is fatal. */
std::uint64_t
benchCount(const char *flag, const char *text)
{
    const auto r = parseU64(text);
    if (!r.ok())
        eat_fatal(flag, ": ", r.status().message());
    return r.value();
}

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (const char *v = valueOf("--instructions=")) {
            opts.simulateInstructions = benchCount("--instructions", v);
        } else if (const char *v2 = valueOf("--fast-forward=")) {
            opts.fastForwardInstructions =
                benchCount("--fast-forward", v2);
        } else if (const char *v3 = valueOf("--seed=")) {
            opts.seed = benchCount("--seed", v3);
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--quick") {
            opts.simulateInstructions = 4'000'000;
            opts.fastForwardInstructions = 500'000;
        } else {
            eat_fatal("unknown bench option: ", arg,
                      " (supported: --instructions=N --fast-forward=N "
                      "--seed=N --csv --quick)");
        }
    }
    return opts;
}

std::vector<OrgVariant>
orgVariants(const std::vector<core::MmuOrg> &orgs)
{
    std::vector<OrgVariant> variants;
    variants.reserve(orgs.size());
    for (const auto org : orgs) {
        variants.push_back({std::string(core::orgName(org)),
                            core::MmuConfig::make(org)});
    }
    return variants;
}

std::vector<WorkloadRow>
runMatrix(const std::vector<workloads::WorkloadSpec> &workloads,
          const std::vector<core::MmuOrg> &orgs, const BenchOptions &opts)
{
    return runMatrix(workloads, orgVariants(orgs), opts);
}

std::vector<WorkloadRow>
runMatrix(const std::vector<workloads::WorkloadSpec> &workloads,
          const std::vector<OrgVariant> &variants,
          const BenchOptions &opts)
{
    std::vector<WorkloadRow> rows;
    rows.reserve(workloads.size());
    for (const auto &w : workloads) {
        WorkloadRow row;
        row.workload = w.name;
        for (const auto &variant : variants) {
            std::fprintf(stderr, "  running %-12s under %-8s ...\n",
                         w.name.c_str(), variant.label.c_str());
            SimConfig cfg;
            cfg.workload = w;
            cfg.mmu = variant.mmu;
            cfg.simulateInstructions = opts.simulateInstructions;
            cfg.fastForwardInstructions = opts.fastForwardInstructions;
            cfg.seed = opts.seed;
            row.byOrg.push_back(simulate(cfg));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

stats::TextTable
normalizedTable(const std::vector<WorkloadRow> &rows,
                const std::vector<core::MmuOrg> &orgs,
                double (*metric)(const SimResult &),
                const std::string &metricName)
{
    return normalizedTable(rows, orgVariants(orgs), metric, metricName);
}

stats::TextTable
normalizedTable(const std::vector<WorkloadRow> &rows,
                const std::vector<OrgVariant> &variants,
                double (*metric)(const SimResult &),
                const std::string &metricName)
{
    std::vector<std::string> headers{metricName};
    for (const auto &variant : variants)
        headers.push_back(variant.label);
    stats::TextTable table(std::move(headers));

    std::vector<std::vector<double>> normByOrg(variants.size());
    for (const auto &row : rows) {
        eat_assert(row.byOrg.size() == variants.size(),
                   "row/org arity mismatch");
        const double base = metric(row.byOrg[0]);
        std::vector<std::string> cells{row.workload};
        for (std::size_t o = 0; o < variants.size(); ++o) {
            const double v = metric(row.byOrg[o]);
            const double norm = base > 0.0 ? v / base : 0.0;
            normByOrg[o].push_back(norm);
            cells.push_back(stats::TextTable::num(norm, 3));
        }
        table.addRow(std::move(cells));
    }

    std::vector<std::string> avg{"average"};
    for (std::size_t o = 0; o < variants.size(); ++o)
        avg.push_back(stats::TextTable::num(meanOf(normByOrg[o]), 3));
    table.addRow(std::move(avg));
    return table;
}

double
energyMetric(const SimResult &r)
{
    return r.energyPerKiloInstr();
}

double
missCyclesMetric(const SimResult &r)
{
    return r.missCyclesPerKiloInstr();
}

} // namespace eat::sim
