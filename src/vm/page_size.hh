/**
 * @file
 * x86-64 page-size geometry (4 KB, 2 MB, 1 GB).
 */

#ifndef EAT_VM_PAGE_SIZE_HH
#define EAT_VM_PAGE_SIZE_HH

#include <string_view>

#include "base/types.hh"

namespace eat::vm
{

/** The page sizes the x86-64 architecture supports. */
enum class PageSize : std::uint8_t
{
    Size4K,
    Size2M,
    Size1G,
};

/** Number of distinct page sizes. */
constexpr unsigned kNumPageSizes = 3;

/** log2 of the page size in bytes (12 / 21 / 30). */
constexpr unsigned
pageShift(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 12;
      case PageSize::Size2M: return 21;
      case PageSize::Size1G: return 30;
    }
    return 12;
}

/** Page size in bytes. */
constexpr Addr
pageBytes(PageSize size)
{
    return Addr{1} << pageShift(size);
}

/** Base address of the page of size @p size containing @p addr. */
constexpr Addr
pageBase(Addr addr, PageSize size)
{
    return alignDown(addr, pageBytes(size));
}

/** Offset of @p addr within its page of size @p size. */
constexpr Addr
pageOffset(Addr addr, PageSize size)
{
    return addr & (pageBytes(size) - 1);
}

/** Human-readable page-size name. */
constexpr std::string_view
pageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return "4KB";
      case PageSize::Size2M: return "2MB";
      case PageSize::Size1G: return "1GB";
    }
    return "?";
}

} // namespace eat::vm

#endif // EAT_VM_PAGE_SIZE_HH
