/**
 * @file
 * Per-process software range table (Redundant Memory Mappings).
 *
 * RMM stores *range translations* — arbitrarily large ranges of pages
 * contiguous in both virtual and physical address space — in an
 * OS-managed table, redundantly with the page table. The hardware
 * range-table walker searches it on L2 TLB misses. The paper models the
 * table as a B-tree-like structure whose walk costs a few memory
 * references but happens off the critical path.
 */

#ifndef EAT_VM_RANGE_TABLE_HH
#define EAT_VM_RANGE_TABLE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "base/types.hh"

namespace eat::vm
{

/** One range translation: [vbase, vlimit) maps contiguously to pbase. */
struct RangeTranslation
{
    Addr vbase = 0;  ///< inclusive virtual start (page aligned)
    Addr vlimit = 0; ///< exclusive virtual end (page aligned)
    Addr pbase = 0;  ///< physical address of vbase

    bool
    contains(Addr vaddr) const
    {
        return vaddr >= vbase && vaddr < vlimit;
    }

    Addr bytes() const { return vlimit - vbase; }

    /** Translate an address inside the range. */
    Addr
    paddr(Addr vaddr) const
    {
        return pbase + (vaddr - vbase);
    }

    bool
    operator==(const RangeTranslation &o) const
    {
        return vbase == o.vbase && vlimit == o.vlimit && pbase == o.pbase;
    }
};

/** The software range table of one process. */
class RangeTable
{
  public:
    /** Fan-out of the modeled B-tree (drives the walk cost). */
    static constexpr unsigned kBTreeFanout = 8;

    /**
     * Insert a range; it must not overlap an existing one. Ranges that
     * are virtually AND physically adjacent are merged.
     */
    void insert(const RangeTranslation &range);

    /** Find the range containing @p vaddr, if any. */
    std::optional<RangeTranslation> lookup(Addr vaddr) const;

    /** Remove the range starting exactly at @p vbase. */
    bool erase(Addr vbase);

    std::size_t size() const { return ranges_.size(); }
    bool empty() const { return ranges_.empty(); }

    /** Total bytes covered by ranges. */
    std::uint64_t coveredBytes() const;

    /**
     * Memory references a hardware walk of this table costs: the depth
     * of a B-tree with fan-out kBTreeFanout (>= 1 even when empty, the
     * root is always probed).
     */
    unsigned walkRefs() const;

    /** Iteration support (for reports and tests). */
    auto begin() const { return ranges_.begin(); }
    auto end() const { return ranges_.end(); }

  private:
    /** Keyed by vbase. */
    std::map<Addr, RangeTranslation> ranges_;

    /**
     * Flat copy of the ranges in vbase order, rebuilt lazily after a
     * mutation: the hardware walker binary-searches this contiguous
     * array instead of chasing map nodes on every L2-miss walk. Purely
     * a lookup accelerator — the map stays authoritative.
     */
    mutable std::vector<RangeTranslation> flat_;
    mutable bool flatDirty_ = true;
};

} // namespace eat::vm

#endif // EAT_VM_RANGE_TABLE_HH
