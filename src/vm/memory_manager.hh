/**
 * @file
 * The operating-system memory-management model.
 *
 * Owns one process's virtual address space, page table and range table,
 * and implements the allocation policies the paper's configurations
 * assume:
 *
 *  - 4 KB only (the 4KB baseline),
 *  - transparent huge pages (THP: 2 MB mappings over aligned chunks),
 *  - eager paging (RMM: contiguous physical allocation at request time,
 *    recorded as range translations redundantly with the page table).
 *
 * "Perfect" eager paging (the paper's assumption) falls out of a fresh
 * physical pool; imperfect contiguity can be modeled by fragmenting the
 * pool or splitting regions into multiple ranges.
 */

#ifndef EAT_VM_MEMORY_MANAGER_HH
#define EAT_VM_MEMORY_MANAGER_HH

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "vm/page_size.hh"
#include "vm/page_table.hh"
#include "vm/phys_mem.hh"
#include "vm/range_table.hh"

namespace eat::vm
{

/** Allocation policy knobs for one simulated process. */
struct OsPolicy
{
    /** Promote aligned 2 MB chunks to huge pages (THP). */
    bool transparentHugePages = false;

    /** Allocate physically contiguous ranges and fill the range table. */
    bool eagerPaging = false;

    /**
     * Fraction of THP-eligible 2 MB chunks actually promoted (models the
     * OS failing to find aligned physical memory under pressure).
     */
    double thpCoverage = 1.0;

    /**
     * Number of physically contiguous pieces an eager allocation is
     * split into (1 = perfect eager paging; more models fragmentation).
     */
    unsigned eagerRangesPerRegion = 1;
};

/** A virtually contiguous mapped region returned by mmap(). */
struct Region
{
    Addr vbase = 0;
    std::uint64_t bytes = 0;

    Addr vlimit() const { return vbase + bytes; }
};

/** Why the OS rewrote a region's translations. */
enum class RemapKind
{
    Demotion,   ///< 2 MB mappings broken into 4 KB (memory pressure)
    Promotion,  ///< 4 KB mappings collapsed into 2 MB (THP daemon)
    Compaction, ///< region migrated to fresh contiguous frames
};

std::string_view remapKindName(RemapKind kind);

/**
 * One page-table rewrite affecting [vbase, vlimit). Cached translations
 * of the region — on every core — are stale after this; multicore
 * simulations subscribe via setRemapListener and broadcast the TLB
 * shootdown.
 */
struct RemapEvent
{
    RemapKind kind = RemapKind::Demotion;
    Addr vbase = 0;
    Addr vlimit = 0;
    std::uint64_t pagesChanged = 0; ///< leaf mappings rewritten
    bool rangesChanged = false;     ///< range-table entries rewritten too
};

/** One process's OS-level memory manager. */
class MemoryManager
{
  public:
    /**
     * @param policy the allocation policy.
     * @param physBytes physical pool size (must exceed the workload
     *                  footprint).
     * @param seed deterministic seed for probabilistic THP promotion.
     */
    MemoryManager(const OsPolicy &policy, std::uint64_t physBytes,
                  std::uint64_t seed = 7);

    /**
     * Map @p bytes of fresh memory (rounded up to 4 KB) and return the
     * region. Throws (fatal) if physical memory is exhausted.
     */
    Region mmap(std::uint64_t bytes);

    /**
     * Break all 2 MB mappings of @p region into 4 KB mappings (models
     * the OS responding to memory pressure).
     *
     * @return number of huge pages demoted.
     */
    std::uint64_t demoteRegion(const Region &region);

    /**
     * Collapse fully 4 KB-mapped, 2 MB-aligned chunks of @p region into
     * 2 MB mappings (the THP daemon's khugepaged pass). Chunks whose
     * frames are already contiguous and aligned are promoted in place;
     * others migrate to a fresh contiguous 2 MB block — unless a range
     * translation covers them (moving would break it) or the pool has
     * no aligned block left, in which case the chunk is skipped.
     *
     * @return number of chunks promoted.
     */
    std::uint64_t promoteRegion(const Region &region);

    /**
     * Migrate @p region to one fresh physically contiguous block
     * (memory compaction / page migration). Page sizes are preserved;
     * under eager paging the region's range translations are rewritten
     * to the new backing.
     *
     * @return false (and no change) when no contiguous block fits.
     */
    bool compactRegion(const Region &region);

    /**
     * Subscribe to page-table rewrites (demotion, promotion,
     * compaction). One listener only; pass nullptr to detach. The
     * listener runs after the page table (and range table) are
     * rewritten, exactly once per mutated region.
     */
    void
    setRemapListener(std::function<void(const RemapEvent &)> listener)
    {
        remapListener_ = std::move(listener);
    }

    const PageTable &pageTable() const { return pageTable_; }
    const RangeTable &rangeTable() const { return rangeTable_; }
    PhysicalMemory &physicalMemory() { return phys_; }
    const std::vector<Region> &regions() const { return regions_; }
    const OsPolicy &policy() const { return policy_; }

    /** Total bytes mapped via mmap(). */
    std::uint64_t mappedBytes() const { return mappedBytes_; }

    /** Fraction of mapped bytes covered by range translations. */
    double rangeCoverage() const;

  private:
    /** Map [vbase, vbase+bytes) onto [pbase, ...) with THP policy. */
    void mapChunk(Addr vbase, Addr pbase, std::uint64_t bytes);

    /** Map [vbase, ...) with per-page physical allocation (no ranges). */
    void mapScattered(Addr vbase, std::uint64_t bytes);

    /** Fire the remap listener (if any) for a completed rewrite. */
    void notifyRemap(const RemapEvent &event);

    OsPolicy policy_;
    PhysicalMemory phys_;
    PageTable pageTable_;
    RangeTable rangeTable_;
    Rng rng_;
    std::vector<Region> regions_;
    Addr nextVbase_ = 0x2000'0000;
    std::uint64_t mappedBytes_ = 0;
    std::function<void(const RemapEvent &)> remapListener_;

    /** Virtual guard gap between regions (keeps ranges distinct). */
    static constexpr Addr kGuardGap = 2_MiB;
};

} // namespace eat::vm

#endif // EAT_VM_MEMORY_MANAGER_HH
