/**
 * @file
 * Physical frame allocator.
 *
 * Models the pool of physical memory the OS hands out. Supports aligned
 * contiguous allocation (needed for huge pages and for RMM's eager
 * paging) and deliberate fragmentation injection so experiments can
 * study imperfect contiguity.
 */

#ifndef EAT_VM_PHYS_MEM_HH
#define EAT_VM_PHYS_MEM_HH

#include <cstdint>
#include <map>
#include <optional>

#include "base/rng.hh"
#include "base/types.hh"

namespace eat::vm
{

/** A first-fit physical memory extent allocator (4 KB granularity). */
class PhysicalMemory
{
  public:
    /**
     * @param bytes pool capacity; must be a multiple of 4 KB.
     * @param base physical address of the first frame.
     */
    explicit PhysicalMemory(std::uint64_t bytes, Addr base = 0x1000);

    /**
     * Allocate @p bytes of physically contiguous memory aligned to
     * @p align (a power of two >= 4 KB).
     *
     * @return base physical address, or std::nullopt when no extent fits.
     */
    std::optional<Addr> allocContiguous(std::uint64_t bytes,
                                        std::uint64_t align = 4096);

    /** A contiguous run of frames handed out by allocRun(). */
    struct Run
    {
        Addr base = 0;
        std::uint64_t bytes = 0;
    };

    /**
     * Carve up to @p maxBytes (a multiple of 4 KB) off the front of the
     * lowest-addressed free extent — exactly the frames a sequence of
     * allocContiguous(4096, 4096) calls would hand out one by one while
     * that extent lasts, returned as one run so bulk mappers can install
     * them without a per-page allocator round trip.
     *
     * @return the run, or std::nullopt when the pool is empty.
     */
    std::optional<Run> allocRun(std::uint64_t maxBytes);

    /** Return an extent to the pool (coalesces with neighbours). */
    void free(Addr base, std::uint64_t bytes);

    /**
     * Punch random 4 KB holes covering roughly @p fraction of the
     * currently free space, destroying large-extent contiguity. Used to
     * model a long-running system for eager-paging sensitivity studies.
     */
    void fragment(double fraction, Rng &rng);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t allocated() const { return capacity_ - freeBytes_; }
    std::uint64_t freeBytes() const { return freeBytes_; }

    /** Size of the largest free extent (bytes). */
    std::uint64_t largestFreeExtent() const;

    /** Number of free extents (fragmentation indicator). */
    std::size_t numFreeExtents() const { return free_.size(); }

  private:
    std::uint64_t capacity_;
    std::uint64_t freeBytes_;
    /** Free extents keyed by base address; value is extent size. */
    std::map<Addr, std::uint64_t> free_;
};

} // namespace eat::vm

#endif // EAT_VM_PHYS_MEM_HH
