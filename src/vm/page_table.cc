#include "vm/page_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::vm
{

namespace
{

constexpr Addr kNoLeaf = ~Addr{0};

/** Radix index of @p vaddr at page-table level @p level (4 = PML4). */
constexpr unsigned
levelIndex(Addr vaddr, unsigned level)
{
    const unsigned shift = 12 + 9 * (level - 1);
    return static_cast<unsigned>((vaddr >> shift) & 0x1ff);
}

/** The tree level at which a leaf of @p size lives (1 = PT). */
constexpr unsigned
leafLevel(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 1;
      case PageSize::Size2M: return 2;
      case PageSize::Size1G: return 3;
    }
    return 1;
}

constexpr PageSize
levelPageSize(unsigned level)
{
    switch (level) {
      case 1: return PageSize::Size4K;
      case 2: return PageSize::Size2M;
      default: return PageSize::Size1G;
    }
}

} // namespace

struct PageTable::Node
{
    struct Slot
    {
        std::unique_ptr<Node> child;
        Addr leafPbase = kNoLeaf;

        bool isLeaf() const { return leafPbase != kNoLeaf; }
        bool isEmpty() const { return !child && !isLeaf(); }
    };

    std::array<Slot, 512> slots;

    /** True when no leaf survives anywhere under this node. */
    bool
    subtreeEmpty() const
    {
        for (const auto &slot : slots) {
            if (slot.isLeaf())
                return false;
            if (slot.child && !slot.child->subtreeEmpty())
                return false;
        }
        return true;
    }
};

PageTable::PageTable() : root_(std::make_unique<Node>()) {}
PageTable::~PageTable() = default;
PageTable::PageTable(PageTable &&) noexcept = default;
PageTable &PageTable::operator=(PageTable &&) noexcept = default;

PageTable::Node *
PageTable::ensureChild(Node &node, unsigned index)
{
    auto &slot = node.slots[index];
    eat_assert(!slot.isLeaf(),
               "mapping overlaps an existing larger page");
    if (!slot.child)
        slot.child = std::make_unique<Node>();
    return slot.child.get();
}

void
PageTable::map(Addr vbase, Addr pbase, PageSize size)
{
    eat_assert(pageOffset(vbase, size) == 0,
               "vbase not aligned to ", pageSizeName(size));
    eat_assert(pageOffset(pbase, size) == 0,
               "pbase not aligned to ", pageSizeName(size));

    Node *node = root_.get();
    const unsigned leaf = leafLevel(size);
    for (unsigned level = 4; level > leaf; --level)
        node = ensureChild(*node, levelIndex(vbase, level));

    auto &slot = node->slots[levelIndex(vbase, leaf)];
    // A huge mapping may land where a lower-level table used to be: if
    // every entry of that table has been unmapped (the demote ->
    // promote cycle), the OS frees the empty table and installs the
    // large leaf in its place.
    if (slot.child && slot.child->subtreeEmpty())
        slot.child.reset();
    eat_assert(slot.isEmpty(),
               "mapping overlaps an existing mapping at ", vbase);
    slot.leafPbase = pbase;
    ++counts_[static_cast<unsigned>(size)];
}

void
PageTable::mapRun(Addr vbase, Addr pbase, std::uint64_t count)
{
    constexpr Addr kPage = 4096;
    eat_assert(pageOffset(vbase, PageSize::Size4K) == 0,
               "vbase not aligned to 4 KB");
    eat_assert(pageOffset(pbase, PageSize::Size4K) == 0,
               "pbase not aligned to 4 KB");

    std::uint64_t done = 0;
    while (done < count) {
        const Addr v = vbase + done * kPage;
        Node *node = root_.get();
        for (unsigned level = 4; level > 1; --level)
            node = ensureChild(*node, levelIndex(v, level));
        const unsigned first = levelIndex(v, 1);
        const std::uint64_t inNode =
            std::min<std::uint64_t>(count - done, 512 - first);
        for (std::uint64_t i = 0; i < inNode; ++i) {
            auto &slot = node->slots[first + i];
            eat_assert(slot.isEmpty(),
                       "mapping overlaps an existing mapping at ",
                       v + i * kPage);
            slot.leafPbase = pbase + (done + i) * kPage;
        }
        counts_[static_cast<unsigned>(PageSize::Size4K)] += inNode;
        done += inNode;
    }
}

bool
PageTable::unmap(Addr vbase, PageSize size)
{
    Node *node = root_.get();
    const unsigned leaf = leafLevel(size);
    for (unsigned level = 4; level > leaf; --level) {
        auto &slot = node->slots[levelIndex(vbase, level)];
        if (!slot.child)
            return false;
        node = slot.child.get();
    }
    auto &slot = node->slots[levelIndex(vbase, leaf)];
    if (!slot.isLeaf())
        return false;
    slot.leafPbase = kNoLeaf;
    --counts_[static_cast<unsigned>(size)];
    return true;
}

std::optional<Translation>
PageTable::translate(Addr vaddr) const
{
    const Node *node = root_.get();
    for (unsigned level = 4; level >= 1; --level) {
        const auto &slot = node->slots[levelIndex(vaddr, level)];
        if (slot.isLeaf()) {
            eat_assert(level <= 3, "leaf above the PDPT level");
            const PageSize size = levelPageSize(level);
            return Translation{pageBase(vaddr, size), slot.leafPbase, size};
        }
        if (!slot.child)
            return std::nullopt;
        node = slot.child.get();
    }
    return std::nullopt;
}

bool
PageTable::demote(Addr vbase)
{
    if (pageOffset(vbase, PageSize::Size2M) != 0)
        return false;
    auto t = translate(vbase);
    if (!t || t->size != PageSize::Size2M)
        return false;

    const Addr pbase = t->pbase;
    if (!unmap(vbase, PageSize::Size2M))
        return false;
    mapRun(vbase, pbase,
           pageBytes(PageSize::Size2M) / pageBytes(PageSize::Size4K));
    return true;
}

std::uint64_t
PageTable::pageCount(PageSize size) const
{
    return counts_[static_cast<unsigned>(size)];
}

void
PageTable::forEachLeaf(
    const std::function<void(const Translation &)> &fn) const
{
    forEachLeafRun([&fn](const Translation &first, std::uint64_t count) {
        const Addr bytes = pageBytes(first.size);
        for (std::uint64_t i = 0; i < count; ++i) {
            fn(Translation{first.vbase + i * bytes,
                           first.pbase + i * bytes, first.size});
        }
    });
}

void
PageTable::forEachLeafRun(
    const std::function<void(const Translation &, std::uint64_t)> &fn) const
{
    const auto visit = [&fn](const Node &node, unsigned level, Addr prefix,
                             const auto &self) -> void {
        const unsigned shift = 12 + 9 * (level - 1);
        const Addr bytes = Addr{1} << shift;
        for (unsigned i = 0; i < node.slots.size(); ++i) {
            const auto &slot = node.slots[i];
            const Addr vbase = prefix | (Addr{i} << shift);
            if (slot.isLeaf()) {
                // Extend over consecutive leaves mapping contiguous
                // frames; they coalesce into one callback.
                unsigned j = i + 1;
                while (j < node.slots.size() &&
                       node.slots[j].isLeaf() &&
                       node.slots[j].leafPbase ==
                           slot.leafPbase + (j - i) * bytes) {
                    ++j;
                }
                fn(Translation{vbase, slot.leafPbase,
                               levelPageSize(level)},
                   j - i);
                i = j - 1;
            } else if (slot.child) {
                self(*slot.child, level - 1, vbase, self);
            }
        }
    };
    visit(*root_, 4, 0, visit);
}

} // namespace eat::vm
