#include "vm/page_table.hh"

#include "base/logging.hh"

namespace eat::vm
{

namespace
{

constexpr Addr kNoLeaf = ~Addr{0};

/** Radix index of @p vaddr at page-table level @p level (4 = PML4). */
constexpr unsigned
levelIndex(Addr vaddr, unsigned level)
{
    const unsigned shift = 12 + 9 * (level - 1);
    return static_cast<unsigned>((vaddr >> shift) & 0x1ff);
}

/** The tree level at which a leaf of @p size lives (1 = PT). */
constexpr unsigned
leafLevel(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 1;
      case PageSize::Size2M: return 2;
      case PageSize::Size1G: return 3;
    }
    return 1;
}

constexpr PageSize
levelPageSize(unsigned level)
{
    switch (level) {
      case 1: return PageSize::Size4K;
      case 2: return PageSize::Size2M;
      default: return PageSize::Size1G;
    }
}

} // namespace

struct PageTable::Node
{
    struct Slot
    {
        std::unique_ptr<Node> child;
        Addr leafPbase = kNoLeaf;

        bool isLeaf() const { return leafPbase != kNoLeaf; }
        bool isEmpty() const { return !child && !isLeaf(); }
    };

    std::array<Slot, 512> slots;

    /** True when no leaf survives anywhere under this node. */
    bool
    subtreeEmpty() const
    {
        for (const auto &slot : slots) {
            if (slot.isLeaf())
                return false;
            if (slot.child && !slot.child->subtreeEmpty())
                return false;
        }
        return true;
    }
};

PageTable::PageTable() : root_(std::make_unique<Node>()) {}
PageTable::~PageTable() = default;
PageTable::PageTable(PageTable &&) noexcept = default;
PageTable &PageTable::operator=(PageTable &&) noexcept = default;

PageTable::Node *
PageTable::ensureChild(Node &node, unsigned index)
{
    auto &slot = node.slots[index];
    eat_assert(!slot.isLeaf(),
               "mapping overlaps an existing larger page");
    if (!slot.child)
        slot.child = std::make_unique<Node>();
    return slot.child.get();
}

void
PageTable::map(Addr vbase, Addr pbase, PageSize size)
{
    eat_assert(pageOffset(vbase, size) == 0,
               "vbase not aligned to ", pageSizeName(size));
    eat_assert(pageOffset(pbase, size) == 0,
               "pbase not aligned to ", pageSizeName(size));

    Node *node = root_.get();
    const unsigned leaf = leafLevel(size);
    for (unsigned level = 4; level > leaf; --level)
        node = ensureChild(*node, levelIndex(vbase, level));

    auto &slot = node->slots[levelIndex(vbase, leaf)];
    // A huge mapping may land where a lower-level table used to be: if
    // every entry of that table has been unmapped (the demote ->
    // promote cycle), the OS frees the empty table and installs the
    // large leaf in its place.
    if (slot.child && slot.child->subtreeEmpty())
        slot.child.reset();
    eat_assert(slot.isEmpty(),
               "mapping overlaps an existing mapping at ", vbase);
    slot.leafPbase = pbase;
    ++counts_[static_cast<unsigned>(size)];
}

bool
PageTable::unmap(Addr vbase, PageSize size)
{
    Node *node = root_.get();
    const unsigned leaf = leafLevel(size);
    for (unsigned level = 4; level > leaf; --level) {
        auto &slot = node->slots[levelIndex(vbase, level)];
        if (!slot.child)
            return false;
        node = slot.child.get();
    }
    auto &slot = node->slots[levelIndex(vbase, leaf)];
    if (!slot.isLeaf())
        return false;
    slot.leafPbase = kNoLeaf;
    --counts_[static_cast<unsigned>(size)];
    return true;
}

std::optional<Translation>
PageTable::translate(Addr vaddr) const
{
    const Node *node = root_.get();
    for (unsigned level = 4; level >= 1; --level) {
        const auto &slot = node->slots[levelIndex(vaddr, level)];
        if (slot.isLeaf()) {
            eat_assert(level <= 3, "leaf above the PDPT level");
            const PageSize size = levelPageSize(level);
            return Translation{pageBase(vaddr, size), slot.leafPbase, size};
        }
        if (!slot.child)
            return std::nullopt;
        node = slot.child.get();
    }
    return std::nullopt;
}

bool
PageTable::demote(Addr vbase)
{
    if (pageOffset(vbase, PageSize::Size2M) != 0)
        return false;
    auto t = translate(vbase);
    if (!t || t->size != PageSize::Size2M)
        return false;

    const Addr pbase = t->pbase;
    if (!unmap(vbase, PageSize::Size2M))
        return false;
    const Addr step = pageBytes(PageSize::Size4K);
    for (Addr off = 0; off < pageBytes(PageSize::Size2M); off += step)
        map(vbase + off, pbase + off, PageSize::Size4K);
    return true;
}

std::uint64_t
PageTable::pageCount(PageSize size) const
{
    return counts_[static_cast<unsigned>(size)];
}

void
PageTable::forEachLeaf(
    const std::function<void(const Translation &)> &fn) const
{
    const auto visit = [&fn](const Node &node, unsigned level, Addr prefix,
                             const auto &self) -> void {
        const unsigned shift = 12 + 9 * (level - 1);
        for (unsigned i = 0; i < node.slots.size(); ++i) {
            const auto &slot = node.slots[i];
            const Addr vbase = prefix | (Addr{i} << shift);
            if (slot.isLeaf())
                fn(Translation{vbase, slot.leafPbase, levelPageSize(level)});
            else if (slot.child)
                self(*slot.child, level - 1, vbase, self);
        }
    };
    visit(*root_, 4, 0, visit);
}

} // namespace eat::vm
