/**
 * @file
 * x86-64 four-level hierarchical page table.
 *
 * The radix tree mirrors the hardware layout: PML4 (bits 47:39), PDPT
 * (38:30), PD (29:21), PT (20:12), with leaves allowed at the PT (4 KB),
 * PD (2 MB), and PDPT (1 GB) levels. The page walker consults this
 * structure as the authoritative mapping source, exactly as the paper's
 * simulator consulted the real page table through Linux pagemap.
 */

#ifndef EAT_VM_PAGE_TABLE_HH
#define EAT_VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "base/types.hh"
#include "vm/page_size.hh"

namespace eat::vm
{

/** A resolved virtual-to-physical translation. */
struct Translation
{
    Addr vbase = 0;      ///< virtual base of the mapping page
    Addr pbase = 0;      ///< physical base of the mapping page
    PageSize size = PageSize::Size4K;

    /** Translate an address inside this page. */
    Addr
    paddr(Addr vaddr) const
    {
        return pbase + pageOffset(vaddr, size);
    }
};

/** The x86-64 page table of one process. */
class PageTable
{
  public:
    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;
    PageTable(PageTable &&) noexcept;
    PageTable &operator=(PageTable &&) noexcept;

    /**
     * Install a mapping. @p vbase and @p pbase must be aligned to the
     * page size; overlapping an existing mapping is a caller bug.
     */
    void map(Addr vbase, Addr pbase, PageSize size);

    /**
     * Install @p count 4 KB mappings contiguous in both spaces
     * (vbase + i*4K -> pbase + i*4K), walking the radix tree once per
     * 512-entry PT node instead of once per page. Identical to @p count
     * calls of map(..., PageSize::Size4K).
     */
    void mapRun(Addr vbase, Addr pbase, std::uint64_t count);

    /** Remove a mapping. @return false if nothing was mapped there. */
    bool unmap(Addr vbase, PageSize size);

    /** Resolve @p vaddr, or std::nullopt if unmapped. */
    std::optional<Translation> translate(Addr vaddr) const;

    /**
     * Break a 2 MB mapping into 512 4 KB mappings of the same frames
     * (models the OS responding to memory pressure; the paper cites this
     * as a reason Lite must be able to re-activate ways).
     *
     * @return false if @p vbase is not a 2 MB mapping.
     */
    bool demote(Addr vbase);

    /** Number of installed leaf mappings of @p size. */
    std::uint64_t pageCount(PageSize size) const;

    /**
     * Visit every installed leaf mapping in ascending vbase order.
     * Lets independent models (the golden shadow translator) snapshot
     * the full mapping without walking the radix tree per lookup.
     */
    void forEachLeaf(const std::function<void(const Translation &)> &fn) const;

    /**
     * Like forEachLeaf, but consecutive same-node leaves of one size
     * that are contiguous in both spaces arrive as a single callback:
     * @p fn receives the first mapping of the run and the run's page
     * count. A snapshot of a bulk-mapped region costs one call per
     * page-table node instead of one per page.
     */
    void forEachLeafRun(
        const std::function<void(const Translation &, std::uint64_t)> &fn)
        const;

    /**
     * Number of page-table levels a hardware walk must traverse to reach
     * the leaf for @p size: 4 for 4 KB, 3 for 2 MB, 2 for 1 GB.
     */
    static constexpr unsigned
    walkLevels(PageSize size)
    {
        switch (size) {
          case PageSize::Size4K: return 4;
          case PageSize::Size2M: return 3;
          case PageSize::Size1G: return 2;
        }
        return 4;
    }

  private:
    struct Node;

    Node *ensureChild(Node &node, unsigned index);

    std::unique_ptr<Node> root_;
    std::array<std::uint64_t, kNumPageSizes> counts_{};
};

} // namespace eat::vm

#endif // EAT_VM_PAGE_TABLE_HH
