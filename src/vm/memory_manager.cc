#include "vm/memory_manager.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::vm
{

std::string_view
remapKindName(RemapKind kind)
{
    switch (kind) {
      case RemapKind::Demotion: return "demotion";
      case RemapKind::Promotion: return "promotion";
      case RemapKind::Compaction: return "compaction";
    }
    return "?";
}

MemoryManager::MemoryManager(const OsPolicy &policy, std::uint64_t physBytes,
                             std::uint64_t seed)
    : policy_(policy), phys_(physBytes), rng_(seed)
{
    eat_assert(policy.thpCoverage >= 0.0 && policy.thpCoverage <= 1.0,
               "thpCoverage must be in [0, 1]");
    eat_assert(policy.eagerRangesPerRegion >= 1,
               "eagerRangesPerRegion must be >= 1");
}

Region
MemoryManager::mmap(std::uint64_t bytes)
{
    bytes = alignUp(std::max<std::uint64_t>(bytes, 4096), 4096);

    // Large regions are 2 MB aligned virtually so THP can promote the
    // whole interior.
    const Addr valign = bytes >= 2_MiB ? 2_MiB : Addr{4096};
    const Addr vbase = alignUp(nextVbase_, valign);
    nextVbase_ = vbase + bytes + kGuardGap;

    if (policy_.eagerPaging) {
        // Eager paging: allocate the physical backing contiguously at
        // request time and record the range translation(s).
        const unsigned pieces = policy_.eagerRangesPerRegion;
        const std::uint64_t rawPiece = bytes / pieces;
        Addr v = vbase;
        std::uint64_t remaining = bytes;
        for (unsigned i = 0; i < pieces && remaining > 0; ++i) {
            std::uint64_t pieceBytes =
                (i + 1 == pieces) ? remaining
                                  : alignUp(std::max<std::uint64_t>(
                                                rawPiece, 4096), 4096);
            pieceBytes = std::min(pieceBytes, remaining);
            const Addr palign =
                (policy_.transparentHugePages && pieceBytes >= 2_MiB &&
                 pageOffset(v, PageSize::Size2M) == 0)
                    ? 2_MiB
                    : Addr{4096};
            auto pbase = phys_.allocContiguous(pieceBytes, palign);
            if (!pbase)
                eat_fatal("physical memory exhausted (eager alloc of ",
                          pieceBytes, " bytes)");
            rangeTable_.insert({v, v + pieceBytes, *pbase});
            mapChunk(v, *pbase, pieceBytes);
            v += pieceBytes;
            remaining -= pieceBytes;
            if (pieces > 1 && remaining > 0) {
                // Imperfect eager paging: burn one frame between the
                // pieces so first-fit cannot make them physically
                // adjacent again (the range table would merge them).
                (void)phys_.allocContiguous(4096);
            }
        }
    } else if (policy_.transparentHugePages) {
        // THP without eager paging: each aligned 2 MB chunk is promoted
        // independently (with probability thpCoverage); everything else
        // is demand-style 4 KB allocation.
        Addr v = vbase;
        const Addr vend = vbase + bytes;
        while (v < vend) {
            const bool chunkAligned = pageOffset(v, PageSize::Size2M) == 0;
            const bool chunkFits = vend - v >= 2_MiB;
            if (chunkAligned && chunkFits &&
                rng_.chance(policy_.thpCoverage)) {
                auto pbase = phys_.allocContiguous(2_MiB, 2_MiB);
                if (!pbase)
                    eat_fatal("physical memory exhausted (THP chunk)");
                pageTable_.map(v, *pbase, PageSize::Size2M);
                v += 2_MiB;
            } else {
                const Addr next = chunkAligned && chunkFits
                                      ? v + 2_MiB
                                      : std::min(alignUp(v + 1, 2_MiB),
                                                 vend);
                mapScattered(v, next - v);
                v = next;
            }
        }
    } else {
        // 4 KB-only baseline.
        mapScattered(vbase, bytes);
    }

    const Region region{vbase, bytes};
    regions_.push_back(region);
    mappedBytes_ += bytes;
    return region;
}

void
MemoryManager::mapChunk(Addr vbase, Addr pbase, std::uint64_t bytes)
{
    Addr off = 0;
    while (off < bytes) {
        const Addr v = vbase + off;
        const bool hugeCandidate =
            policy_.transparentHugePages &&
            pageOffset(v, PageSize::Size2M) == 0 &&
            pageOffset(pbase + off, PageSize::Size2M) == 0 &&
            bytes - off >= 2_MiB;
        if (hugeCandidate && rng_.chance(policy_.thpCoverage)) {
            pageTable_.map(v, pbase + off, PageSize::Size2M);
            off += 2_MiB;
            continue;
        }
        // 4 KB pages up to the next possible huge-mapping start (the
        // next 2 MB-aligned virtual address) as one bulk install. The
        // interior pages are misaligned, so a per-page walk would draw
        // no coverage chance before that boundary — the alignment
        // tests short-circuit the draw — and the RNG stream is
        // preserved exactly.
        Addr next = bytes;
        if (policy_.transparentHugePages) {
            next = std::min<Addr>(
                bytes, alignUp(v + 4096, Addr{2_MiB}) - vbase);
        }
        pageTable_.mapRun(v, pbase + off, (next - off) / 4096);
        off = next;
    }
}

void
MemoryManager::mapScattered(Addr vbase, std::uint64_t bytes)
{
    // Demand-paged 4 KB allocation; no range translations result.
    // Frames come off the first-fit pool as whole-extent runs, which
    // hands out exactly the frame sequence per-page first-fit
    // allocation would, one bulk page-table install per run.
    std::uint64_t off = 0;
    while (off < bytes) {
        const auto run = phys_.allocRun(bytes - off);
        if (!run)
            eat_fatal("physical memory exhausted (4 KB page)");
        pageTable_.mapRun(vbase + off, run->base, run->bytes / 4096);
        off += run->bytes;
    }
}

std::uint64_t
MemoryManager::demoteRegion(const Region &region)
{
    std::uint64_t demoted = 0;
    for (Addr v = alignUp(region.vbase, 2_MiB);
         v + 2_MiB <= region.vlimit(); v += 2_MiB) {
        if (pageTable_.demote(v))
            ++demoted;
    }
    if (demoted > 0) {
        notifyRemap({RemapKind::Demotion, region.vbase, region.vlimit(),
                     demoted, false});
    }
    return demoted;
}

std::uint64_t
MemoryManager::promoteRegion(const Region &region)
{
    std::uint64_t promoted = 0;
    for (Addr v = alignUp(region.vbase, 2_MiB);
         v + 2_MiB <= region.vlimit(); v += 2_MiB) {
        // Eligible chunks are fully mapped with 4 KB pages.
        const auto first = pageTable_.translate(v);
        if (!first || first->size != PageSize::Size4K)
            continue;
        bool eligible = true;
        bool contiguous = true;
        for (Addr off = 0; off < 2_MiB; off += 4096) {
            const auto t = pageTable_.translate(v + off);
            if (!t || t->size != PageSize::Size4K) {
                eligible = false;
                break;
            }
            if (t->pbase != first->pbase + off)
                contiguous = false;
        }
        if (!eligible)
            continue;

        const bool inPlace =
            contiguous && pageOffset(first->pbase, PageSize::Size2M) == 0;
        Addr target = first->pbase;
        if (!inPlace) {
            // Migration target needed. A live range translation pins
            // the frames (moving them would break it), and a full pool
            // simply fails the promotion — both are the OS giving up on
            // this chunk, not errors.
            if (rangeTable_.lookup(v))
                continue;
            const auto fresh = phys_.allocContiguous(2_MiB, 2_MiB);
            if (!fresh)
                continue;
            target = *fresh;
        }
        for (Addr off = 0; off < 2_MiB; off += 4096) {
            const auto t = pageTable_.translate(v + off);
            pageTable_.unmap(v + off, PageSize::Size4K);
            if (!inPlace)
                phys_.free(t->pbase, 4096);
        }
        pageTable_.map(v, target, PageSize::Size2M);
        ++promoted;
    }
    if (promoted > 0) {
        notifyRemap({RemapKind::Promotion, region.vbase, region.vlimit(),
                     promoted, false});
    }
    return promoted;
}

bool
MemoryManager::compactRegion(const Region &region)
{
    // Snapshot the region's leaf mappings first: compaction preserves
    // page sizes, so the new block must be carved identically.
    struct Leaf
    {
        Addr vbase;
        Addr pbase;
        PageSize size;
    };
    std::vector<Leaf> leaves;
    for (Addr v = region.vbase; v < region.vlimit();) {
        const auto t = pageTable_.translate(v);
        eat_assert(t.has_value(), "compacting an unmapped page at ", v);
        leaves.push_back({t->vbase, t->pbase, t->size});
        v = t->vbase + pageBytes(t->size);
    }

    // Allocate the target before freeing the source so first-fit cannot
    // hand the same frames back; failing here leaves the region
    // untouched (the OS abandons the compaction run).
    const auto newBase = phys_.allocContiguous(region.bytes, 2_MiB);
    if (!newBase)
        return false;

    for (const auto &leaf : leaves) {
        pageTable_.unmap(leaf.vbase, leaf.size);
        phys_.free(leaf.pbase, pageBytes(leaf.size));
        pageTable_.map(leaf.vbase, *newBase + (leaf.vbase - region.vbase),
                       leaf.size);
    }

    bool rangesChanged = false;
    if (policy_.eagerPaging) {
        // Rewrite the region's range translations onto the new backing.
        // Ranges never span regions (the mmap guard gap), so collecting
        // by start address is exact.
        std::vector<Addr> stale;
        for (const auto &[vbase, range] : rangeTable_) {
            if (vbase >= region.vbase && vbase < region.vlimit())
                stale.push_back(vbase);
        }
        for (const Addr vbase : stale)
            rangeTable_.erase(vbase);
        if (!stale.empty()) {
            rangeTable_.insert(
                {region.vbase, region.vlimit(), *newBase});
            rangesChanged = true;
        }
    }

    notifyRemap({RemapKind::Compaction, region.vbase, region.vlimit(),
                 leaves.size(), rangesChanged});
    return true;
}

void
MemoryManager::notifyRemap(const RemapEvent &event)
{
    if (remapListener_)
        remapListener_(event);
}

double
MemoryManager::rangeCoverage() const
{
    if (mappedBytes_ == 0)
        return 0.0;
    return static_cast<double>(rangeTable_.coveredBytes()) /
           static_cast<double>(mappedBytes_);
}

} // namespace eat::vm
