#include "vm/range_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eat::vm
{

void
RangeTable::insert(const RangeTranslation &range)
{
    eat_assert(range.vbase < range.vlimit, "empty or inverted range");
    eat_assert(range.vbase % 4096 == 0 && range.vlimit % 4096 == 0,
               "range bounds must be page aligned");

    // Overlap check against neighbours.
    auto next = ranges_.lower_bound(range.vbase);
    if (next != ranges_.end())
        eat_assert(range.vlimit <= next->second.vbase,
                   "range overlaps successor");
    if (next != ranges_.begin()) {
        auto prev = std::prev(next);
        eat_assert(prev->second.vlimit <= range.vbase,
                   "range overlaps predecessor");
    }

    RangeTranslation merged = range;

    // Merge with a predecessor that is contiguous in both spaces.
    if (next != ranges_.begin()) {
        auto prev = std::prev(next);
        const auto &p = prev->second;
        if (p.vlimit == merged.vbase &&
            p.pbase + p.bytes() == merged.pbase) {
            merged.vbase = p.vbase;
            merged.pbase = p.pbase;
            ranges_.erase(prev);
        }
    }
    // Merge with a successor that is contiguous in both spaces.
    if (next != ranges_.end()) {
        const auto &n = next->second;
        if (merged.vlimit == n.vbase &&
            merged.pbase + merged.bytes() == n.pbase) {
            merged.vlimit = n.vlimit;
            ranges_.erase(next);
        }
    }

    ranges_.emplace(merged.vbase, merged);
    flatDirty_ = true;
}

std::optional<RangeTranslation>
RangeTable::lookup(Addr vaddr) const
{
    if (flatDirty_) {
        flat_.clear();
        flat_.reserve(ranges_.size());
        for (const auto &[vbase, r] : ranges_)
            flat_.push_back(r);
        flatDirty_ = false;
    }
    const auto it = std::upper_bound(
        flat_.begin(), flat_.end(), vaddr,
        [](Addr v, const RangeTranslation &r) { return v < r.vbase; });
    if (it == flat_.begin())
        return std::nullopt;
    const RangeTranslation &r = *(it - 1);
    if (r.contains(vaddr))
        return r;
    return std::nullopt;
}

bool
RangeTable::erase(Addr vbase)
{
    const bool erased = ranges_.erase(vbase) > 0;
    if (erased)
        flatDirty_ = true;
    return erased;
}

std::uint64_t
RangeTable::coveredBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[vbase, r] : ranges_)
        total += r.bytes();
    return total;
}

unsigned
RangeTable::walkRefs() const
{
    unsigned depth = 1;
    std::size_t capacity = kBTreeFanout;
    while (capacity < ranges_.size()) {
        capacity *= kBTreeFanout;
        ++depth;
    }
    return depth;
}

} // namespace eat::vm
