#include "vm/phys_mem.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace eat::vm
{

PhysicalMemory::PhysicalMemory(std::uint64_t bytes, Addr base)
    : capacity_(bytes), freeBytes_(bytes)
{
    eat_assert(bytes > 0 && bytes % 4096 == 0,
               "capacity must be a nonzero multiple of 4 KB");
    eat_assert(base % 4096 == 0, "base must be 4 KB aligned");
    free_.emplace(base, bytes);
}

std::optional<Addr>
PhysicalMemory::allocContiguous(std::uint64_t bytes, std::uint64_t align)
{
    eat_assert(bytes > 0 && bytes % 4096 == 0,
               "allocation must be a nonzero multiple of 4 KB");
    eat_assert(isPowerOfTwo(align) && align >= 4096,
               "alignment must be a power of two >= 4 KB");

    for (auto it = free_.begin(); it != free_.end(); ++it) {
        const Addr extBase = it->first;
        const std::uint64_t extSize = it->second;
        const Addr start = alignUp(extBase, align);
        if (start < extBase || start - extBase > extSize)
            continue;
        if (extSize - (start - extBase) < bytes)
            continue;

        // Split the extent: [extBase, start) stays, [start, start+bytes)
        // is handed out, the tail is re-inserted.
        const std::uint64_t head = start - extBase;
        const std::uint64_t tail = extSize - head - bytes;
        free_.erase(it);
        if (head)
            free_.emplace(extBase, head);
        if (tail)
            free_.emplace(start + bytes, tail);
        freeBytes_ -= bytes;
        return start;
    }
    return std::nullopt;
}

std::optional<PhysicalMemory::Run>
PhysicalMemory::allocRun(std::uint64_t maxBytes)
{
    eat_assert(maxBytes > 0 && maxBytes % 4096 == 0,
               "run request must be a nonzero multiple of 4 KB");
    if (free_.empty())
        return std::nullopt;
    // Extent bases and sizes are 4 KB granular by construction, so the
    // front of the first extent is what first-fit 4 KB allocations
    // would return.
    const auto it = free_.begin();
    const Addr base = it->first;
    const std::uint64_t extSize = it->second;
    const std::uint64_t bytes = std::min(maxBytes, extSize);
    free_.erase(it);
    if (extSize > bytes)
        free_.emplace(base + bytes, extSize - bytes);
    freeBytes_ -= bytes;
    return Run{base, bytes};
}

void
PhysicalMemory::free(Addr base, std::uint64_t bytes)
{
    eat_assert(bytes > 0 && bytes % 4096 == 0, "free of unaligned extent");

    auto [it, inserted] = free_.emplace(base, bytes);
    eat_assert(inserted, "double free at ", base);
    freeBytes_ += bytes;

    // Coalesce with successor.
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_.erase(next);
    }
    // Coalesce with predecessor.
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_.erase(it);
        }
    }
}

void
PhysicalMemory::fragment(double fraction, Rng &rng)
{
    if (fraction <= 0.0)
        return;
    // Collect current free extents, then re-allocate scattered 4 KB
    // holes inside them. The holes are simply discarded (treated as
    // pinned by other processes).
    std::vector<std::pair<Addr, std::uint64_t>> extents(free_.begin(),
                                                        free_.end());
    for (const auto &[base, size] : extents) {
        const std::uint64_t frames = size / 4096;
        for (std::uint64_t f = 0; f < frames; ++f) {
            if (!rng.chance(fraction))
                continue;
            const Addr hole = base + f * 4096;
            // Carve the hole out of whatever free extent now holds it.
            auto it = free_.upper_bound(hole);
            if (it == free_.begin())
                continue;
            --it;
            if (hole < it->first || hole + 4096 > it->first + it->second)
                continue;
            const Addr extBase = it->first;
            const std::uint64_t extSize = it->second;
            free_.erase(it);
            if (hole > extBase)
                free_.emplace(extBase, hole - extBase);
            if (hole + 4096 < extBase + extSize)
                free_.emplace(hole + 4096, extBase + extSize - hole - 4096);
            freeBytes_ -= 4096;
        }
    }
}

std::uint64_t
PhysicalMemory::largestFreeExtent() const
{
    std::uint64_t best = 0;
    for (const auto &[base, size] : free_)
        best = std::max(best, size);
    return best;
}

} // namespace eat::vm
