#include "vm/host_table.hh"

#include "base/logging.hh"

namespace eat::vm
{

HostTable::HostTable(const HostTableConfig &config) : config_(config)
{
    eat_assert(pageOffset(config_.offset, config_.pageSize) == 0,
               "host-table offset must be host-page aligned");
}

Translation
HostTable::translate(Addr gpa) const
{
    const Addr vbase = pageBase(gpa, config_.pageSize);
    return Translation{vbase, vbase + config_.offset, config_.pageSize};
}

Result<HostMode>
hostModeFromName(std::string_view name)
{
    if (name == "identity")
        return HostMode::Identity;
    if (name == "paged")
        return HostMode::Paged;
    return Status::error("unknown host-table mode '", name,
                         "' (expected identity or paged)");
}

Result<PageSize>
hostPageSizeFromName(std::string_view name)
{
    if (name == "4k")
        return PageSize::Size4K;
    if (name == "2m")
        return PageSize::Size2M;
    if (name == "1g")
        return PageSize::Size1G;
    return Status::error("unknown host page size '", name,
                         "' (expected 4k, 2m, or 1g)");
}

std::string_view
hostModeName(HostMode mode)
{
    return mode == HostMode::Identity ? "identity" : "paged";
}

std::string_view
hostPageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return "4k";
      case PageSize::Size2M: return "2m";
      case PageSize::Size1G: return "1g";
    }
    return "4k";
}

} // namespace eat::vm
