/**
 * @file
 * Two-dimensional (guest x host) page walker.
 *
 * Under nested paging a guest walk that needs n memory references
 * issues n + 1 host walks: one to translate the guest-physical address
 * of every page-table node it reads, plus one for the guest-physical
 * address of the data page itself. With 4 KB pages on both dimensions
 * and cold paging-structure caches that is the textbook worst case of
 * 4 + 5 x 4 = 24 memory references per TLB miss. Host-PWC hits and
 * huge host pages short-circuit individual host walks, exactly like
 * the one-dimensional machinery they mirror.
 *
 * The guest dimension reuses the existing guest paging-structure cache
 * (tlb::MmuCache) unchanged; the host dimension gets its own MmuCache
 * instance keyed on guest-physical addresses. In HostMode::Identity the
 * host dimension contributes nothing — zero host walks, zero references
 * — so identity runs stay digest-identical to flat runs.
 */

#ifndef EAT_VM_NESTED_WALKER_HH
#define EAT_VM_NESTED_WALKER_HH

#include "tlb/mmu_cache.hh"
#include "vm/host_table.hh"
#include "vm/page_table.hh"

namespace eat::vm
{

/** One host walk of a nested walk (for per-reference provenance). */
struct HostWalkOutcome
{
    Addr gpa = 0;             ///< guest-physical address translated
    unsigned memRefs = 0;     ///< host table references this walk cost
    bool pwcHit = false;      ///< a host-PWC level short-circuited it
    unsigned pwcFills = 0;    ///< host-PWC entries installed
};

/** Everything one two-dimensional walk did. */
struct NestedWalkResult
{
    /** Final translation the TLB caches (guest VA -> host PA). */
    Translation translation;
    /** The architectural guest mapping (guest VA -> guest PA). */
    Translation guestTranslation;
    /** Guest paging-structure-cache interaction (charged as today). */
    tlb::MmuCacheOutcome guestCache;

    /** Host walks issued, in walk order (empty in identity mode). */
    static constexpr unsigned kMaxHostWalks = 5;
    HostWalkOutcome hostWalks[kMaxHostWalks];
    unsigned hostWalkCount = 0;
    unsigned hostMemRefs = 0; ///< sum of hostWalks[i].memRefs

    unsigned
    totalMemRefs() const
    {
        return guestCache.memRefs + hostMemRefs;
    }
};

/**
 * Composes the guest page-table walk with the host (EPT) dimension.
 *
 * The walker synthesises guest-physical addresses for the guest
 * page-table nodes it reads: the node backing level L of @p vaddr in
 * address space @p asid lives at a deterministic guest-physical address
 * inside the 512 GB host region L (data pages occupy region 0). Nodes
 * covering the same region hash to the same address, so host-PWC
 * locality behaves like a real table's, while the five host walks of a
 * cold 4 KB nested walk touch five distinct host PML4 regions — which
 * makes the 24-reference worst case exactly reachable and unit-testable.
 */
class NestedWalker
{
  public:
    NestedWalker(const PageTable &guest, tlb::MmuCache &guestCache,
                 const HostTable &host, tlb::MmuCache &hostCache);

    /**
     * Perform the two-dimensional walk for @p vaddr in guest address
     * space @p asid. @p vaddr must be mapped in the guest table (the
     * workloads never touch unmapped memory).
     */
    NestedWalkResult walk(Addr vaddr, std::uint16_t asid = 0);

    /** Point the guest dimension at another address space's table. */
    void setPageTable(const PageTable &guest) { guest_ = &guest; }

    const HostTable &host() const { return *host_; }

    /**
     * Guest-physical address of the guest page-table node at @p level
     * (1 = PT .. 4 = PML4) covering @p vaddr in space @p asid.
     */
    static Addr nodeGpa(unsigned level, Addr vaddr, std::uint16_t asid);

    /** Cold-cache reference count of one nested walk (the oracle):
     *  n guest refs + (n + 1) host walks of m refs each. */
    static constexpr unsigned
    worstCaseRefs(PageSize guestSize, PageSize hostSize)
    {
        const unsigned n = PageTable::walkLevels(guestSize);
        const unsigned m = PageTable::walkLevels(hostSize);
        return n + (n + 1) * m;
    }

  private:
    HostWalkOutcome hostWalk(Addr gpa);

    const PageTable *guest_;
    tlb::MmuCache *guestCache_;
    const HostTable *host_;
    tlb::MmuCache *hostCache_;
};

} // namespace eat::vm

#endif // EAT_VM_NESTED_WALKER_HH
