/**
 * @file
 * EPT-style host (second-dimension) translation table.
 *
 * Under virtualization every guest-physical address produced by the
 * guest page walk is itself translated by the hypervisor's extended
 * page table. This model follows the paper's methodology: the host
 * dimension changes the *cost* of translation — extra walk references,
 * energy, and cycles — never its value. The host table therefore backs
 * the guest with a direct (optionally offset) contiguous mapping, so
 * every simulated TLB organisation and the golden shadow checker work
 * unchanged under `--vm`.
 *
 * Two modes:
 *  - Identity: the host dimension is free. No host walks are performed
 *    or charged; a `--vm=identity` run is bit-identical to a flat run
 *    (the differential tests pin this).
 *  - Paged: the host table is a real radix table with its own leaf page
 *    size; every guest-walk reference costs a host walk of 1..4 memory
 *    references (fewer for 2 MB / 1 GB host pages or host-PWC hits).
 */

#ifndef EAT_VM_HOST_TABLE_HH
#define EAT_VM_HOST_TABLE_HH

#include <optional>
#include <string_view>

#include "base/status.hh"
#include "vm/page_table.hh"

namespace eat::vm
{

/** How the host dimension behaves. */
enum class HostMode : std::uint8_t
{
    Identity, ///< host walks are free (flat-equivalent, differential anchor)
    Paged,    ///< host walks cost real references through the host table
};

/** Host-table shape. */
struct HostTableConfig
{
    HostMode mode = HostMode::Paged;
    PageSize pageSize = PageSize::Size4K; ///< host (EPT) leaf page size
    /**
     * Constant host-physical offset of the direct mapping
     * (hPA = gPA + offset). Zero in simulator runs so translations keep
     * their flat values; unit tests use a nonzero offset to prove the
     * composition actually routes through the host dimension.
     */
    Addr offset = 0;
};

/** The hypervisor's translation table for one virtual machine. */
class HostTable
{
  public:
    explicit HostTable(const HostTableConfig &config = {});

    /** Resolve a guest-physical address to its host mapping. */
    Translation translate(Addr gpa) const;

    /** Host-physical address of @p gpa (direct map, always defined). */
    Addr
    hostAddr(Addr gpa) const
    {
        return gpa + config_.offset;
    }

    HostMode mode() const { return config_.mode; }
    PageSize pageSize() const { return config_.pageSize; }
    Addr offset() const { return config_.offset; }

    /** Host page-table levels one host walk traverses (2, 3, or 4). */
    unsigned
    walkLevels() const
    {
        return PageTable::walkLevels(config_.pageSize);
    }

  private:
    HostTableConfig config_;
};

/** Parse "identity" / "paged" (the `--vm=` argument). */
Result<HostMode> hostModeFromName(std::string_view name);

/** Parse "4k" / "2m" / "1g" (the `--host-pages=` argument). */
Result<PageSize> hostPageSizeFromName(std::string_view name);

/** Canonical printable names. */
std::string_view hostModeName(HostMode mode);
std::string_view hostPageSizeName(PageSize size);

} // namespace eat::vm

#endif // EAT_VM_HOST_TABLE_HH
