#include "vm/nested_walker.hh"

#include "base/logging.hh"

namespace eat::vm
{

namespace
{

/**
 * Virtual-address span one page-table node covers: a PT node maps 2 MB,
 * a PD node 1 GB, a PDPT node 512 GB; the PML4 is a single node.
 */
constexpr unsigned
coverShift(unsigned level)
{
    switch (level) {
      case 1: return 21;
      case 2: return 30;
      case 3: return 39;
      default: return 48;
    }
}

/** splitmix64 finalizer — deterministic, well-mixed node placement. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

NestedWalker::NestedWalker(const PageTable &guest, tlb::MmuCache &guestCache,
                           const HostTable &host, tlb::MmuCache &hostCache)
    : guest_(&guest), guestCache_(&guestCache), host_(&host),
      hostCache_(&hostCache)
{
}

Addr
NestedWalker::nodeGpa(unsigned level, Addr vaddr, std::uint16_t asid)
{
    eat_assert(level >= 1 && level <= 4, "page-table level out of range");
    // Hash the (space, covered region) identity into the 512 GB host
    // region reserved for this level (data pages live in region 0), so
    // the host walks of one cold nested walk share no host-PWC state.
    const std::uint64_t region = vaddr >> coverShift(level);
    const std::uint64_t h =
        mix64((std::uint64_t(asid) << 48) ^ region ^ (std::uint64_t(level) << 56));
    constexpr std::uint64_t kFrameMask = (1ull << 27) - 1; // frames per region
    return (Addr(level) << 39) | ((h & kFrameMask) << 12);
}

HostWalkOutcome
NestedWalker::hostWalk(Addr gpa)
{
    HostWalkOutcome out;
    out.gpa = gpa;
    const auto cache = hostCache_->walkAccess(gpa, host_->pageSize());
    out.memRefs = cache.memRefs;
    out.pwcHit = cache.hitPde || cache.hitPdpte || cache.hitPml4;
    out.pwcFills = cache.fills();
    return out;
}

NestedWalkResult
NestedWalker::walk(Addr vaddr, std::uint16_t asid)
{
    NestedWalkResult result;

    const auto guest = guest_->translate(vaddr);
    if (!guest)
        eat_panic("nested walk of unmapped guest address ", vaddr);
    result.guestTranslation = *guest;
    result.guestCache = guestCache_->walkAccess(vaddr, guest->size);

    if (host_->mode() == HostMode::Identity) {
        // The host dimension is free: the walk is exactly the flat walk.
        result.translation = *guest;
        return result;
    }

    // One host walk per guest page-table node the guest walk reads. The
    // guest walk fetched levels (leaf + refs - 1) down to leaf — the
    // same per-reference levels the MMU attributes in provenance.
    const unsigned leaf = tlb::MmuCache::leafLevel(guest->size);
    for (unsigned i = 0; i < result.guestCache.memRefs; ++i) {
        const unsigned level = leaf + result.guestCache.memRefs - 1 - i;
        const auto walk = hostWalk(nodeGpa(level, vaddr, asid));
        result.hostWalks[result.hostWalkCount++] = walk;
        result.hostMemRefs += walk.memRefs;
    }

    // ... plus one for the guest-physical address of the data itself.
    const auto dataWalk = hostWalk(guest->paddr(vaddr));
    result.hostWalks[result.hostWalkCount++] = dataWalk;
    result.hostMemRefs += dataWalk.memRefs;

    // The host backing is a direct map, so a guest frame is contiguous
    // in host-physical space even when host pages are smaller than the
    // guest page; the cached translation keeps the guest page size.
    result.translation = result.guestTranslation;
    result.translation.pbase = host_->hostAddr(result.guestTranslation.pbase);
    return result;
}

} // namespace eat::vm
