/**
 * @file
 * CactiLite: an anchor-based analytical SRAM/CAM energy model.
 *
 * The paper published CACTI-P (32 nm) energies only for the geometries it
 * simulated (Table 2). CactiLite returns those exact values when queried
 * for a published geometry and extrapolates from the nearest published
 * anchor of the same structure class otherwise, using power-law scaling:
 *
 *   E ~ anchor * (ways ratio)^1.54 * (sets ratio)^0.25    (set assoc.)
 *   E ~ anchor * (entries ratio)^0.45                     (fully assoc.)
 *
 * The way exponent is fitted to the published L1-4KB / L1-2MB
 * downsizing series (64/4 -> 32/2 -> 16/1 and 32/4 -> 16/2 -> 8/1); the
 * set and CAM exponents are fitted to the published cross-structure
 * ratios (L1 vs. L2 page TLBs; PDPTE vs. PML4 caches). Leakage scales
 * linearly with capacity. This keeps every headline number in the
 * reproduction anchored on the paper's own coefficients.
 */

#ifndef EAT_ENERGY_CACTI_LITE_HH
#define EAT_ENERGY_CACTI_LITE_HH

#include "energy/coefficients.hh"

namespace eat::energy
{

/** Analytical energy model anchored on the published Table-2 points. */
class CactiLite
{
  public:
    CactiLite() = default;

    /**
     * Energy coefficients for a structure of class @p cls with
     * @p entries total entries and @p ways ways (0 = fully associative).
     *
     * Exact for published geometries; extrapolated otherwise.
     */
    EnergyCoefficients
    estimate(StructClass cls, unsigned entries, unsigned ways) const;

    /** True iff the query would be answered from a published anchor. */
    static bool isAnchor(StructClass cls, unsigned entries, unsigned ways);

    /**
     * Energy of one L2-cache read (for page-walk references missing the
     * L1 cache, Figure 3). Extrapolated from the published 32 KB L1
     * value assuming a 256 KB 8-way L2.
     */
    PicoJoules l2CacheReadEnergy() const;

  private:
    /** Scaling exponents (see file comment). */
    static constexpr double kWayExp = 1.54;
    static constexpr double kSetExp = 0.25;
    static constexpr double kCamExp = 0.45;
};

} // namespace eat::energy

#endif // EAT_ENERGY_CACTI_LITE_HH
