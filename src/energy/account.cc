#include "energy/account.hh"

// EnergyMeter and the report structs are header-only; this translation
// unit anchors the module in the library and is the natural home for any
// future out-of-line accounting logic.

namespace eat::energy
{
} // namespace eat::energy
