/**
 * @file
 * Published per-access energy coefficients (Table 2 of the paper).
 *
 * The paper derives its dynamic-energy numbers from CACTI-P runs at 32 nm
 * for every memory structure on the address-translation path. This module
 * embeds those exact coefficients; CactiLite (cacti_lite.hh) extrapolates
 * to geometries the paper did not publish.
 */

#ifndef EAT_ENERGY_COEFFICIENTS_HH
#define EAT_ENERGY_COEFFICIENTS_HH

#include <optional>
#include <string_view>

#include "base/types.hh"

namespace eat::energy
{

/** Per-operation dynamic energy and leakage power of one structure. */
struct EnergyCoefficients
{
    PicoJoules read = 0.0;   ///< energy per lookup/read operation
    PicoJoules write = 0.0;  ///< energy per fill/write operation
    MilliWatts leakage = 0.0;///< static leakage power
};

/**
 * The classes of structures that participate in address translation.
 * Each class has its own CACTI geometry (tag width, data width,
 * associativity style), so energy anchors never cross classes.
 */
enum class StructClass
{
    L1Tlb4K,     ///< set-associative L1 TLB for 4 KB pages
    L1Tlb2M,     ///< set-associative L1 TLB for 2 MB pages
    L1Tlb1G,     ///< small fully associative L1 TLB for 1 GB pages
    L1TlbMixedFA,///< fully associative L1 TLB holding all page sizes
                 ///< (SPARC/AMD style, paper §4.4)
    L1RangeTlb,  ///< fully associative L1 range TLB (double tag compare)
    L2Tlb4K,     ///< set-associative L2 TLB
    L2RangeTlb,  ///< fully associative L2 range TLB
    MmuPde,      ///< paging-structure cache, PDE level
    MmuPdpte,    ///< paging-structure cache, PDPTE level
    MmuPml4,     ///< paging-structure cache, PML4 level
    L1Cache,     ///< 32 KB L1 data cache (page-walk references)
    L2Cache,     ///< L2 cache (page-walk references that miss in L1)
};

/** Human-readable class name (for reports and error messages). */
std::string_view structClassName(StructClass cls);

/**
 * Exact Table-2 coefficients for (@p cls, @p entries, @p ways).
 *
 * @param ways 0 denotes fully associative.
 * @return the published values, or std::nullopt if the paper did not
 *         publish this geometry (callers then fall back to CactiLite).
 */
std::optional<EnergyCoefficients>
table2(StructClass cls, unsigned entries, unsigned ways);

/** Number of published Table-2 anchor points (for validation). */
unsigned table2AnchorCount();

} // namespace eat::energy

#endif // EAT_ENERGY_COEFFICIENTS_HH
