#include "energy/cacti_lite.hh"

#include <array>
#include <cmath>

#include "base/logging.hh"

namespace eat::energy
{

namespace
{

struct AnchorRef
{
    unsigned entries;
    unsigned ways;
};

// The preferred anchor to extrapolate from, per class. Same-class anchors
// share tag/data geometry, so intra-class scaling is the most faithful.
AnchorRef
preferredAnchor(StructClass cls)
{
    switch (cls) {
      case StructClass::L1Tlb4K: return {64, 4};
      case StructClass::L1Tlb2M: return {32, 4};
      case StructClass::L1Tlb1G: return {4, 0};   // borrowed, see below
      case StructClass::L1TlbMixedFA: return {4, 0}; // borrowed
      case StructClass::L1RangeTlb: return {4, 0};
      case StructClass::L2Tlb4K: return {512, 4};
      case StructClass::L2RangeTlb: return {32, 0};
      case StructClass::MmuPde: return {32, 2};
      case StructClass::MmuPdpte: return {4, 0};
      case StructClass::MmuPml4: return {2, 0};
      case StructClass::L1Cache: return {512, 8};
      case StructClass::L2Cache: return {512, 8}; // scaled from L1Cache
    }
    return {0, 0};
}

// Classes without their own Table-2 row borrow the geometry-closest
// published class.
StructClass
anchorClass(StructClass cls)
{
    switch (cls) {
      // The 4-entry fully associative L1-1GB TLB is geometrically the
      // published 4-entry fully associative PDPTE cache with TLB-width
      // tags; the PDPTE row is the closest published point.
      case StructClass::L1Tlb1G: return StructClass::MmuPdpte;
      case StructClass::L1TlbMixedFA: return StructClass::MmuPdpte;
      case StructClass::L2Cache: return StructClass::L1Cache;
      default: return cls;
    }
}

} // namespace

bool
CactiLite::isAnchor(StructClass cls, unsigned entries, unsigned ways)
{
    return table2(cls, entries, ways).has_value();
}

EnergyCoefficients
CactiLite::estimate(StructClass cls, unsigned entries, unsigned ways) const
{
    eat_assert(entries > 0, "structure must have at least one entry");
    eat_assert(ways == 0 || entries % ways == 0,
               "entries (", entries, ") not divisible by ways (", ways, ")");

    if (auto exact = table2(cls, entries, ways))
        return *exact;

    const StructClass acls = anchorClass(cls);
    const AnchorRef ref = preferredAnchor(acls);
    auto base = table2(acls, ref.entries, ref.ways);
    eat_assert(base.has_value(), "no anchor for class ",
               structClassName(cls));

    double scale = 1.0;
    double capacityRatio = static_cast<double>(entries) /
                           static_cast<double>(ref.entries);

    if (cls == StructClass::L1TlbMixedFA) {
        // A big fully associative TLB holding every page size: every
        // lookup drives the masked match lines of every entry, so the
        // energy grows slightly super-linearly with entry count — which
        // is why separate set-associative L1 TLBs are the more
        // energy-efficient design the paper baselines on (§2.2). The
        // exponent is chosen so a 64-entry combined CAM costs more per
        // lookup than the whole separate set-associative L1 stack
        // (5.865 + 4.801 pJ).
        scale = std::pow(capacityRatio, 1.05);
    } else if (ways == 0 || ref.ways == 0) {
        // Fully associative (CAM search): energy grows sublinearly with
        // entry count because the match lines dominate.
        scale = std::pow(capacityRatio, kCamExp);
    } else {
        const double setRatio =
            (static_cast<double>(entries) / ways) /
            (static_cast<double>(ref.entries) / ref.ways);
        const double wayRatio =
            static_cast<double>(ways) / static_cast<double>(ref.ways);
        scale = std::pow(wayRatio, kWayExp) * std::pow(setRatio, kSetExp);
    }

    EnergyCoefficients out;
    out.read = base->read * scale;
    out.write = base->write * scale;
    out.leakage = base->leakage * capacityRatio;
    return out;
}

PicoJoules
CactiLite::l2CacheReadEnergy() const
{
    // 256 KB 8-way L2 vs. the published 32 KB 8-way L1: reads scale
    // roughly with sqrt(capacity) in CACTI for same-technology caches.
    const auto l1 = table2(StructClass::L1Cache, 512, 8);
    eat_assert(l1.has_value(), "missing L1 cache anchor");
    return l1->read * std::sqrt(256.0 / 32.0);
}

} // namespace eat::energy
