/**
 * @file
 * Dynamic-energy accounting (the Table-3 energy model of the paper).
 *
 * Each hardware structure owns an EnergyMeter; the MMU charges it on
 * every lookup (read) and fill (write):
 *
 *   E_struct     = A * E_read + M * E_write
 *   E_page_walks = Mem * E_read(L1 cache)      [scaled by walk locality]
 *   E_total      = sum(E_struct) + E_page_walks
 *
 * The per-operation coefficients can change over time (Lite resizes the
 * L1 TLBs), so energy is accumulated online rather than derived from
 * event counts at report time.
 */

#ifndef EAT_ENERGY_ACCOUNT_HH
#define EAT_ENERGY_ACCOUNT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/prov_ids.hh"

namespace eat::energy
{

/** Accumulates the dynamic energy and event counts of one structure. */
class EnergyMeter
{
  public:
    /** Charge one read (lookup) of @p pj picojoules. */
    void
    chargeRead(PicoJoules pj)
    {
        readEnergy_ += pj;
        ++reads_;
    }

    /** Charge one write (fill) of @p pj picojoules. */
    void
    chargeWrite(PicoJoules pj)
    {
        writeEnergy_ += pj;
        ++writes_;
    }

    PicoJoules readEnergy() const { return readEnergy_; }
    PicoJoules writeEnergy() const { return writeEnergy_; }
    PicoJoules total() const { return readEnergy_ + writeEnergy_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    void
    reset()
    {
        readEnergy_ = writeEnergy_ = 0.0;
        reads_ = writes_ = 0;
    }

  private:
    PicoJoules readEnergy_ = 0.0;
    PicoJoules writeEnergy_ = 0.0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

/**
 * The categories the paper's Figure 2/10 stacked bars use, plus the
 * range-walk category RMM adds.
 */
struct EnergyBreakdown
{
    PicoJoules l1Tlb = 0.0;      ///< all L1 page/range TLBs
    PicoJoules l2Tlb = 0.0;      ///< all L2 page/range TLBs
    PicoJoules l3Tlb = 0.0;      ///< L3 tier (cache-resident or in-DRAM TLB)
    PicoJoules mmuCache = 0.0;   ///< paging-structure caches (incl. host PWC)
    PicoJoules pageWalkMem = 0.0;///< page-walk memory references
    PicoJoules rangeWalkMem = 0.0;///< range-table-walk memory references
    PicoJoules hostWalkMem = 0.0;///< host-walk references (nested paging)

    PicoJoules
    total() const
    {
        return l1Tlb + l2Tlb + l3Tlb + mmuCache + pageWalkMem +
               rangeWalkMem + hostWalkMem;
    }
};

/** One named row of a per-structure energy report. */
struct StructEnergyRow
{
    std::string name;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    PicoJoules readEnergy = 0.0;
    PicoJoules writeEnergy = 0.0;
    /** Stable identity used to match this row against provenance
     *  totals (names vary by organization, e.g. "L1-mixed TLB"). */
    obs::ProvStruct id = obs::ProvStruct::None;
};

/** A full energy report: breakdown plus per-structure rows. */
struct EnergyReport
{
    EnergyBreakdown breakdown;
    std::vector<StructEnergyRow> structs;
    MilliWatts leakagePower = 0.0; ///< leakage of the active configuration

    /**
     * Static (leakage) energy integrated over the run, assuming
     * disabled ways are power-gated (paper §6.2).
     */
    PicoJoules staticEnergyGated = 0.0;

    /** Static energy had every way leaked for the whole run. */
    PicoJoules staticEnergyFull = 0.0;
};

} // namespace eat::energy

#endif // EAT_ENERGY_ACCOUNT_HH
