#include "energy/coefficients.hh"

#include <array>

namespace eat::energy
{

namespace
{

struct Anchor
{
    StructClass cls;
    unsigned entries;
    unsigned ways; // 0 = fully associative
    EnergyCoefficients coeff;
};

// Table 2 of the paper, verbatim: dynamic energy per read and write
// operation (pJ) and leakage power (mW), CACTI-P at 32 nm.
constexpr std::array<Anchor, 13> kTable2 = {{
    {StructClass::L1Tlb4K, 64, 4, {5.865, 6.858, 0.3632}},
    {StructClass::L1Tlb4K, 32, 2, {1.881, 2.377, 0.1491}},
    {StructClass::L1Tlb4K, 16, 1, {0.697, 0.945, 0.0636}},
    {StructClass::L1Tlb2M, 32, 4, {4.801, 5.562, 0.1715}},
    {StructClass::L1Tlb2M, 16, 2, {1.536, 1.924, 0.0703}},
    {StructClass::L1Tlb2M, 8, 1, {0.568, 0.764, 0.0295}},
    {StructClass::L1RangeTlb, 4, 0, {1.806, 1.172, 0.1395}},
    {StructClass::L2Tlb4K, 512, 4, {8.078, 12.379, 1.6663}},
    {StructClass::L2RangeTlb, 32, 0, {3.306, 1.568, 0.2401}},
    {StructClass::MmuPde, 32, 2, {1.824, 2.281, 0.1402}},
    {StructClass::MmuPdpte, 4, 0, {0.766, 0.279, 0.0500}},
    {StructClass::MmuPml4, 2, 0, {0.473, 0.158, 0.0296}},
    // L1 cache entry count expressed in cache lines (32 KB / 64 B).
    {StructClass::L1Cache, 512, 8, {174.171, 186.723, 13.3364}},
}};

} // namespace

std::string_view
structClassName(StructClass cls)
{
    switch (cls) {
      case StructClass::L1Tlb4K: return "L1-4KB TLB";
      case StructClass::L1Tlb2M: return "L1-2MB TLB";
      case StructClass::L1Tlb1G: return "L1-1GB TLB";
      case StructClass::L1TlbMixedFA: return "L1-combined TLB";
      case StructClass::L1RangeTlb: return "L1-range TLB";
      case StructClass::L2Tlb4K: return "L2-4KB TLB";
      case StructClass::L2RangeTlb: return "L2-range TLB";
      case StructClass::MmuPde: return "MMU-cache PDE";
      case StructClass::MmuPdpte: return "MMU-cache PDPTE";
      case StructClass::MmuPml4: return "MMU-cache PML4";
      case StructClass::L1Cache: return "L1 cache";
      case StructClass::L2Cache: return "L2 cache";
    }
    return "unknown";
}

std::optional<EnergyCoefficients>
table2(StructClass cls, unsigned entries, unsigned ways)
{
    for (const auto &a : kTable2) {
        if (a.cls == cls && a.entries == entries && a.ways == ways)
            return a.coeff;
    }
    return std::nullopt;
}

unsigned
table2AnchorCount()
{
    return static_cast<unsigned>(kTable2.size());
}

} // namespace eat::energy
