#include "core/config.hh"

#include "base/logging.hh"

namespace eat::core
{

std::string_view
orgName(MmuOrg org)
{
    switch (org) {
      case MmuOrg::Base4K: return "4KB";
      case MmuOrg::Thp: return "THP";
      case MmuOrg::TlbLite: return "TLB_Lite";
      case MmuOrg::Rmm: return "RMM";
      case MmuOrg::TlbPP: return "TLB_PP";
      case MmuOrg::RmmLite: return "RMM_Lite";
    }
    return "?";
}

const std::vector<MmuOrg> &
allOrgs()
{
    static const std::vector<MmuOrg> orgs = {
        MmuOrg::Base4K, MmuOrg::Thp,   MmuOrg::TlbLite,
        MmuOrg::Rmm,    MmuOrg::TlbPP, MmuOrg::RmmLite,
    };
    return orgs;
}

MmuConfig
MmuConfig::make(MmuOrg org)
{
    MmuConfig cfg;
    cfg.org = org;
    switch (org) {
      case MmuOrg::Base4K:
      case MmuOrg::Thp:
        break;
      case MmuOrg::TlbLite:
        cfg.liteEnabled = true;
        cfg.lite.mode = lite::ThresholdMode::Relative;
        cfg.lite.epsilonRelative = 0.125; // 1/8, paper §5
        break;
      case MmuOrg::Rmm:
        cfg.hasL2Range = true;
        break;
      case MmuOrg::TlbPP:
        cfg.mixedTlbs = true;
        break;
      case MmuOrg::RmmLite:
        cfg.hasL1Range = true;
        cfg.hasL2Range = true;
        cfg.liteEnabled = true;
        cfg.lite.mode = lite::ThresholdMode::Absolute;
        cfg.lite.epsilonAbsoluteMpki = 0.1; // paper §5
        break;
    }
    return cfg;
}

vm::OsPolicy
MmuConfig::osPolicy() const
{
    vm::OsPolicy policy;
    switch (org) {
      case MmuOrg::Base4K:
        break;
      case MmuOrg::Thp:
      case MmuOrg::TlbLite:
      case MmuOrg::TlbPP:
        policy.transparentHugePages = true;
        break;
      case MmuOrg::Rmm:
        // RMM: THP plus perfect eager paging for range translations.
        policy.transparentHugePages = true;
        policy.eagerPaging = true;
        break;
      case MmuOrg::RmmLite:
        // RMM_Lite supports 4 KB pages and range translations only
        // (paper §5 configuration (vi)); no huge pages.
        policy.eagerPaging = true;
        break;
    }
    return policy;
}

} // namespace eat::core
