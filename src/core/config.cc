#include "core/config.hh"

#include "base/logging.hh"

namespace eat::core
{

std::string_view
orgName(MmuOrg org)
{
    switch (org) {
      case MmuOrg::Base4K: return "4KB";
      case MmuOrg::Thp: return "THP";
      case MmuOrg::TlbLite: return "TLB_Lite";
      case MmuOrg::Rmm: return "RMM";
      case MmuOrg::TlbPP: return "TLB_PP";
      case MmuOrg::RmmLite: return "RMM_Lite";
    }
    return "?";
}

const std::vector<MmuOrg> &
allOrgs()
{
    static const std::vector<MmuOrg> orgs = {
        MmuOrg::Base4K, MmuOrg::Thp,   MmuOrg::TlbLite,
        MmuOrg::Rmm,    MmuOrg::TlbPP, MmuOrg::RmmLite,
    };
    return orgs;
}

MmuConfig
MmuConfig::make(MmuOrg org)
{
    MmuConfig cfg;
    cfg.org = org;
    switch (org) {
      case MmuOrg::Base4K:
      case MmuOrg::Thp:
        break;
      case MmuOrg::TlbLite:
        cfg.liteEnabled = true;
        cfg.lite.mode = lite::ThresholdMode::Relative;
        cfg.lite.epsilonRelative = 0.125; // 1/8, paper §5
        break;
      case MmuOrg::Rmm:
        cfg.hasL2Range = true;
        break;
      case MmuOrg::TlbPP:
        cfg.mixedTlbs = true;
        break;
      case MmuOrg::RmmLite:
        cfg.hasL1Range = true;
        cfg.hasL2Range = true;
        cfg.liteEnabled = true;
        cfg.lite.mode = lite::ThresholdMode::Absolute;
        cfg.lite.epsilonAbsoluteMpki = 0.1; // paper §5
        break;
    }
    return cfg;
}

void
MmuConfig::enableL3(l3::L3Mode mode)
{
    l3Mode = mode;
    if (mode == l3::L3Mode::None || !liteEnabled)
        return;
    // The backstop turns a downsizing-induced TLB miss into an L3
    // probe instead of a full walk, so Lite may tolerate more misses.
    if (lite.mode == lite::ThresholdMode::Relative)
        lite.epsilonRelative *= l3LiteEpsilonScale;
    else
        lite.epsilonAbsoluteMpki *= l3LiteEpsilonScale;
}

namespace
{

/** Check one set-associative geometry; @p name labels the message. */
Status
validateGeom(std::string_view name, unsigned entries, unsigned ways)
{
    if (entries == 0)
        return Status::error(name, ": entry count must be non-zero");
    if (ways == 0)
        return Status::error(name, ": way count must be non-zero");
    if (entries % ways != 0) {
        return Status::error(name, ": entries (", entries,
                             ") not divisible by ways (", ways, ")");
    }
    if (!isPowerOfTwo(entries / ways)) {
        return Status::error(name, ": set count (", entries / ways,
                             ") must be a power of two");
    }
    if (!isPowerOfTwo(ways)) {
        return Status::error(name, ": way count (", ways,
                             ") must be a power of two");
    }
    return Status();
}

} // namespace

Status
MmuConfig::validate() const
{
    if (auto s = validateGeom("L1-4KB TLB", l1Tlb4K.entries, l1Tlb4K.ways);
        !s.ok())
        return s;
    if (auto s = validateGeom("L1-2MB TLB", l1Tlb2M.entries, l1Tlb2M.ways);
        !s.ok())
        return s;
    if (auto s = validateGeom("L2 TLB", l2Tlb.entries, l2Tlb.ways); !s.ok())
        return s;
    if (auto s = validateGeom("MMU-cache-PDE", mmuCache.pdeEntries,
                              mmuCache.pdeWays);
        !s.ok())
        return s;

    if (!isPowerOfTwo(l1Tlb1GEntries))
        return Status::error("L1-1GB TLB: entry count must be a power of two");
    if (mmuCache.pdpteEntries == 0 || mmuCache.pml4Entries == 0)
        return Status::error("MMU cache: entry counts must be non-zero");

    if (combinedFullyAssocL1 && !isPowerOfTwo(combinedL1Entries)) {
        return Status::error("combined L1 TLB: entry count (",
                             combinedL1Entries,
                             ") must be a power of two");
    }
    if (mixedTlbs && combinedFullyAssocL1) {
        return Status::error("mixedTlbs (TLB_PP) and combinedFullyAssocL1 "
                             "are mutually exclusive L1 organizations");
    }
    if (liteEnabled && mixedTlbs) {
        return Status::error("Lite on mixed TLBs is not modeled (the paper "
                             "applies Lite to per-size L1 TLBs)");
    }

    if ((hasL1Range && l1RangeEntries == 0) ||
        (hasL2Range && l2RangeEntries == 0))
        return Status::error("range TLB: entry count must be non-zero");
    if (hasL1Range && !hasL2Range) {
        return Status::error("an L1-range TLB requires an L2-range TLB "
                             "(RMM refill path)");
    }

    if (vmIdentityHost && !vmEnabled) {
        return Status::error("an identity host table requires nested "
                             "paging (vmEnabled)");
    }
    if (vmEnabled) {
        if (auto s = validateGeom("host-PWC-PDE", hostPwc.pdeEntries,
                                  hostPwc.pdeWays);
            !s.ok())
            return s;
        if (hostPwc.pdpteEntries == 0 || hostPwc.pml4Entries == 0)
            return Status::error("host PWC: entry counts must be non-zero");
    }
    if (cohProbePj < 0.0 || cohPerCorePj < 0.0 || cohPerEntryPj < 0.0)
        return Status::error("coherence energy knobs must be non-negative");

    if (l3Mode == l3::L3Mode::Cache) {
        if (auto s = validateGeom("L3-cache TLB", l3Cache.entries,
                                  l3Cache.ways);
            !s.ok())
            return s;
        if (l3Cache.ptesPerLine == 0)
            return Status::error("L3-cache TLB: ptesPerLine must be >= 1");
        if (l3Cache.policy == l3::L3InsertPolicy::PtePromote &&
            l3Cache.promoteStreak == 0) {
            return Status::error("L3-cache TLB: promoteStreak must be >= 1 "
                                 "under the promote policy");
        }
        const auto &llc = l3Cache.llc;
        if (llc.lineBytes == 0 || !isPowerOfTwo(llc.lineBytes))
            return Status::error("LLC: line size must be a power of two");
        if (llc.capacityBytes == 0 ||
            llc.capacityBytes % llc.lineBytes != 0)
            return Status::error("LLC: capacity must be a whole number of "
                                 "lines");
        if (auto s = validateGeom("LLC", unsigned(llc.lines()), llc.ways);
            !s.ok())
            return s;
        const std::uint64_t needLines =
            (l3Cache.entries + l3Cache.ptesPerLine - 1) /
            l3Cache.ptesPerLine;
        if (needLines > llc.lines()) {
            return Status::error("L3-cache TLB: ", l3Cache.entries,
                                 " entries need ", needLines,
                                 " LLC lines but the LLC has only ",
                                 llc.lines());
        }
    } else if (l3Mode == l3::L3Mode::Dram) {
        if (auto s = validateGeom("DRAM TLB", l3Dram.entries, l3Dram.ways);
            !s.ok())
            return s;
        if (l3Dram.tagCacheEntries == 0 ||
            !isPowerOfTwo(l3Dram.tagCacheEntries)) {
            return Status::error("DRAM TLB: tag-cache entry count must be "
                                 "a power of two");
        }
        if (l3Dram.dramReadPj < 0.0 || l3Dram.dramWritePj < 0.0)
            return Status::error("DRAM TLB: access energies must be "
                                 "non-negative");
    }
    if (l3Mode != l3::L3Mode::None && !(l3LiteEpsilonScale >= 1.0)) {
        return Status::error("l3LiteEpsilonScale (", l3LiteEpsilonScale,
                             ") must be >= 1");
    }

    if (walkL1CacheHitRatio < 0.0 || walkL1CacheHitRatio > 1.0) {
        return Status::error("walkL1CacheHitRatio (", walkL1CacheHitRatio,
                             ") out of [0,1]");
    }
    if (!(clockGhz > 0.0))
        return Status::error("clockGhz (", clockGhz, ") must be positive");

    if (liteEnabled) {
        if (lite.intervalInstructions == 0)
            return Status::error("Lite: interval must be non-zero");
        if (lite.minWays == 0)
            return Status::error("Lite: minWays must be >= 1");
        if (lite.fullActivationProbability < 0.0 ||
            lite.fullActivationProbability > 1.0) {
            return Status::error("Lite: fullActivationProbability out of "
                                 "[0,1]");
        }
        const double eps = lite.mode == lite::ThresholdMode::Relative
                               ? lite.epsilonRelative
                               : lite.epsilonAbsoluteMpki;
        if (eps < 0.0)
            return Status::error("Lite: epsilon must be non-negative");
    }
    return Status();
}

vm::OsPolicy
MmuConfig::osPolicy() const
{
    vm::OsPolicy policy;
    switch (org) {
      case MmuOrg::Base4K:
        break;
      case MmuOrg::Thp:
      case MmuOrg::TlbLite:
      case MmuOrg::TlbPP:
        policy.transparentHugePages = true;
        break;
      case MmuOrg::Rmm:
        // RMM: THP plus perfect eager paging for range translations.
        policy.transparentHugePages = true;
        policy.eagerPaging = true;
        break;
      case MmuOrg::RmmLite:
        // RMM_Lite supports 4 KB pages and range translations only
        // (paper §5 configuration (vi)); no huge pages.
        policy.eagerPaging = true;
        break;
    }
    return policy;
}

} // namespace eat::core
