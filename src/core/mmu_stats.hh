/**
 * @file
 * Aggregate statistics of one MMU simulation.
 */

#ifndef EAT_CORE_MMU_STATS_HH
#define EAT_CORE_MMU_STATS_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "base/types.hh"
#include "stats/histogram.hh"

namespace eat::core
{

/** Which structure ultimately served a memory operation. */
enum class HitSource : unsigned
{
    L1Page4K,
    L1Page2M,
    L1Page1G,
    L1Range,
    L2Page,
    L2Range,
    PageWalk,
    Count,
};

/** Display name of a hit source. */
constexpr std::string_view
hitSourceName(HitSource src)
{
    switch (src) {
      case HitSource::L1Page4K: return "L1-4KB";
      case HitSource::L1Page2M: return "L1-2MB";
      case HitSource::L1Page1G: return "L1-1GB";
      case HitSource::L1Range: return "L1-range";
      case HitSource::L2Page: return "L2-page";
      case HitSource::L2Range: return "L2-range";
      case HitSource::PageWalk: return "page-walk";
      case HitSource::Count: break;
    }
    return "?";
}

/** Raw event counts and the paper's derived performance metrics. */
struct MmuStats
{
    InstrCount instructions = 0;
    std::uint64_t memOps = 0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0; ///< lookups that missed every L1 structure
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0; ///< page walks

    std::uint64_t walkMemRefs = 0;      ///< page-walk memory references
    std::uint64_t rangeWalks = 0;       ///< background range-table walks
    std::uint64_t rangeWalkMemRefs = 0;

    // Nested paging (zero in flat runs AND identity-host runs, so the
    // result digest stays comparable across the differential pair).
    std::uint64_t hostWalks = 0;        ///< host (EPT) walks issued
    std::uint64_t hostWalkMemRefs = 0;  ///< host-table memory references

    // L3 translation tier (all zero with --l3=none; the digest prints
    // its l3 section only when probes occurred, which keeps none-runs
    // byte-identical to pre-L3 builds).
    std::uint64_t l3Probes = 0;  ///< L2-miss-path probes of the tier
    std::uint64_t l3Hits = 0;    ///< translations served by the tier
    std::uint64_t l3Misses = 0;  ///< probes that fell through to the walk
    std::uint64_t l3Fills = 0;   ///< walked translations parked in the tier
    std::uint64_t l3Evictions = 0; ///< fills that displaced a live entry
    std::uint64_t dramTagHits = 0; ///< SRAM tag-cache hits (dram mode)
    std::uint64_t dramAccesses = 0;///< DRAM array touches (dram mode)

    Cycles l1MissCycles = 0; ///< l1Misses * L2 hit latency
    Cycles walkCycles = 0;   ///< l2Misses * page-walk latency

    // Multicore bookkeeping (all zero in single-core runs; kept out of
    // the derived single-core metrics so `--cores 1` stays identical).
    std::uint64_t contextSwitches = 0;      ///< real CR3 reloads
    std::uint64_t shootdownsInitiated = 0;  ///< remap broadcasts sent
    std::uint64_t shootdownsReceived = 0;   ///< remote invalidations taken
    std::uint64_t shootdownInvalidations = 0; ///< TLB entries dropped
    Cycles shootdownCycles = 0;   ///< initiator-side IPI + wait cost
    double shootdownEnergyPj = 0.0; ///< initiator-side broadcast energy

    // Hardware-coherence book (hw mode only; the IPI book above stays
    // zero there, so each mode's cost is independently conserved).
    std::uint64_t cohProbes = 0;          ///< filter probes initiated
    std::uint64_t cohTargetedCores = 0;   ///< sharer cores messaged
    std::uint64_t cohInvalidationsReceived = 0; ///< targeted-side receipts
    Cycles cohCycles = 0;       ///< initiator-side probe + message cost
    double cohEnergyPj = 0.0;   ///< probe + message + CAM-write energy

    std::array<std::uint64_t, static_cast<unsigned>(HitSource::Count)>
        hitsBySource{};

    /** Lookups of the L1-4KB TLB bucketed by log2(active ways). */
    stats::Histogram l1WayLookups4K;
    /** Lookups of the L1-2MB TLB bucketed by log2(active ways). */
    stats::Histogram l1WayLookups2M;

    std::uint64_t
    hits(HitSource src) const
    {
        return hitsBySource[static_cast<unsigned>(src)];
    }

    /** Total cycles spent in TLB misses (Table 3 performance model). */
    Cycles tlbMissCycles() const { return l1MissCycles + walkCycles; }

    /** L1 TLB misses per kilo-instruction. */
    double l1Mpki() const;

    /** L2 TLB misses (page walks) per kilo-instruction. */
    double l2Mpki() const;

    /**
     * Fraction of execution time spent in TLB misses assuming a base
     * CPI of 1 (how the paper reports "cycles spent in TLB misses").
     */
    double tlbMissCycleFraction() const;
};

} // namespace eat::core

#endif // EAT_CORE_MMU_STATS_HH
