/**
 * @file
 * The per-core MMU: the complete address-translation datapath.
 *
 * One Mmu instance wires up the TLB hierarchy of a configuration
 * (core/config.hh), charges the Table-3 energy model on every access,
 * applies the Table-3 cycle model, and drives the Lite controller at
 * interval boundaries.
 *
 * Lookup datapath per memory operation:
 *
 *   1. All *enabled* L1 structures are searched in parallel (each one
 *      charged a read). A structure for a page size (or for ranges) is
 *      statically masked — zero energy — until the first walk fetches
 *      an entry of its kind (paper §3.1).
 *   2. On an L1 miss, the enabled L2 structures are searched in
 *      parallel (7 cycles). An L2-page hit refills the matching L1
 *      TLB; an L2-range hit refills the L1-range TLB (if present) and
 *      a synthesized 4 KB entry into the L1-4KB TLB (RMM semantics).
 *   3. On an L2 miss, the page walk runs (50 cycles): the MMU caches
 *      determine the 1-4 memory references, and in RMM configurations
 *      the range-table walker additionally runs in the background
 *      (energy, no cycles) and refills the L2-range TLB.
 */

#ifndef EAT_CORE_MMU_HH
#define EAT_CORE_MMU_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "check/shadow_checker.hh"
#include "core/config.hh"
#include "core/mmu_stats.hh"
#include "energy/account.hh"
#include "obs/prov_ids.hh"
#include "energy/cacti_lite.hh"
#include "l3/cache_tlb.hh"
#include "l3/dram_tlb.hh"
#include "lite/lite_controller.hh"
#include "tlb/fully_assoc_tlb.hh"
#include "tlb/mmu_cache.hh"
#include "tlb/page_walker.hh"
#include "tlb/range_tlb.hh"
#include "tlb/range_walker.hh"
#include "tlb/set_assoc_tlb.hh"
#include "vm/host_table.hh"
#include "vm/nested_walker.hh"
#include "vm/page_table.hh"
#include "vm/range_table.hh"

namespace eat::obs
{
class MetricRegistry;
class ProvenanceSink;
class TelemetrySink;
class TraceWriter;
} // namespace eat::obs

namespace eat::check
{
struct InjectStats;
} // namespace eat::check

namespace eat::core
{

/** True when the front-cache fast path is compiled in (the default;
 *  configure with -DEAT_FRONT_CACHE=OFF to compile it out and force
 *  every access down the full probe path). */
#ifdef EAT_NO_FRONT_CACHE
inline constexpr bool kFrontCacheCompiledIn = false;
#else
inline constexpr bool kFrontCacheCompiledIn = true;
#endif

/** The per-core memory management unit. */
class Mmu
{
  public:
    /**
     * @param config the organization to simulate.
     * @param pageTable the process's page table (authoritative; also
     *        the zero-cost oracle for TLB_PP's perfect predictor).
     * @param rangeTable the process's range table; required when the
     *        configuration has range TLBs, ignored otherwise.
     */
    Mmu(const MmuConfig &config, const vm::PageTable &pageTable,
        const vm::RangeTable *rangeTable);

    /** Translate one memory operation at @p vaddr. */
    void access(Addr vaddr);

    /**
     * Retire @p n instructions (drives Lite's interval clock). The
     * in-class body is the per-op fast path: a memoized static-energy
     * charge plus an interval-boundary check. Anything that changes the
     * leakage inputs (a fill's enable flip, a Lite resize) clears
     * leakCache_.valid, steering the next tick through tickSlow()'s
     * recompute — so the fast path never charges stale coefficients.
     */
    void
    tick(InstrCount n)
    {
        if (leakCache_.valid && n < kTickDeltaSlots &&
            tickDeltas_[n].valid) {
            stats_.instructions += n;
            staticGatedPj_ += tickDeltas_[n].gatedPj;
            staticFullPj_ += tickDeltas_[n].fullPj;
            if (!lite_ && !telemetry_)
                return;
            instrTowardInterval_ += n;
            if (instrTowardInterval_ < cfg_.lite.intervalInstructions)
                return;
            tickIntervals();
            return;
        }
        tickSlow(n);
    }

    /**
     * Context switch: retarget the datapath at another address space.
     * Reloading CR3 always flushes the (untagged) paging-structure
     * caches; @p flushTlbs additionally invalidates every TLB, modeling
     * cores without ASID tags (`--ctx-flush`). Switching to the
     * currently active space (same @p asid and @p pageTable) is free —
     * shared-address-space scheduling costs nothing at the MMU.
     * A @p rangeTable of nullptr is only legal when the configuration
     * has no range TLBs.
     */
    void switchContext(tlb::Asid asid, const vm::PageTable &pageTable,
                       const vm::RangeTable *rangeTable, bool flushTlbs);

    /**
     * TLB-shootdown receiver: drop every cached translation tagged
     * @p asid overlapping [@p vbase, @p vlimit) — page TLBs, range
     * TLBs, and the paging-structure caches. @p initiator marks the
     * core that issued the remap (its local invalidation is part of the
     * remap, not a "received" shootdown).
     * @return number of TLB entries invalidated.
     */
    unsigned shootdownInvalidate(Addr vbase, Addr vlimit, tlb::Asid asid,
                                 bool initiator);

    /**
     * Initiator-side shootdown cost: charge this core the broadcast's
     * cycle and energy cost (config shootdown* knobs) for interrupting
     * @p remoteCores cores that invalidated @p entriesInvalidated
     * entries in total.
     */
    void chargeShootdown(unsigned remoteCores,
                         unsigned entriesInvalidated);

    /**
     * Initiator-side hardware-coherence cost (config coh* knobs): one
     * filter probe that targeted @p targetCores sharer cores, whose
     * invalidations dropped @p entriesInvalidated entries in total.
     * @p version is the space's post-remap translation version (tags
     * the provenance event). The architectural invalidation work is
     * charged nowhere else — hw mode's book is exactly this.
     */
    void chargeCoherenceProbe(unsigned targetCores,
                              unsigned entriesInvalidated,
                              std::uint64_t version, Addr vbase);

    /** Targeted-side receipt of one hw-coherence invalidation message
     *  (the hw-mode analogue of a received shootdown IPI). */
    void receiveCoherenceInvalidation() { ++stats_.cohInvalidationsReceived; }

    /** The ASID tagging this core's fills and lookups. */
    tlb::Asid asid() const { return asid_; }

    const MmuConfig &config() const { return cfg_; }
    const MmuStats &stats() const { return stats_; }

    /** Full energy report (Table-3 model; Figure 2/10 breakdown). */
    energy::EnergyReport energyReport() const;

    /** The Lite controller, or nullptr when Lite is disabled. */
    const lite::LiteController *lite() const { return lite_.get(); }

    /**
     * Attach a differential checker (not owned; may be null to detach).
     * Every subsequent translation outcome is cross-checked against the
     * golden model, and way masks are audited periodically.
     */
    void setChecker(check::ShadowChecker *checker) { checker_ = checker; }

    /**
     * Register every MMU metric — structure hit/miss/fill counters,
     * datapath event counters, per-structure energy, way-activity
     * histograms, and (when Lite runs) the lite.* counters — into
     * @p registry. Multicore runs pass a @p prefix (e.g. "core2.") so
     * each core's metrics stay distinct. Bindings are non-owning: the
     * registry must not be read after this Mmu is destroyed.
     */
    void registerMetrics(obs::MetricRegistry &registry,
                         const std::string &prefix = "") const;

    /** Label telemetry records with this core's id (default 0). */
    void setCoreId(unsigned core) { coreId_ = core; }

    /**
     * Attach a per-interval telemetry sink (not owned; null detaches).
     * One IntervalRecord is emitted per Lite interval (or per
     * config().lite.intervalInstructions when Lite is disabled).
     */
    void setTelemetry(obs::TelemetrySink *sink);

    /**
     * Attach a decision tracer (not owned; null detaches). The trace
     * clock is bound to this MMU's retired-instruction counter, and
     * the Lite controller's decisions are traced per TLB track.
     */
    void setTrace(obs::TraceWriter *trace);

    /** Bind the fault injector's counters for telemetry reporting. */
    void setInjectStats(const check::InjectStats *stats);

    /**
     * Attach an energy-provenance sink (not owned; null detaches).
     * Every subsequent charge emits one event carrying the exact pJ
     * value the meter received, so the sink's per-structure totals stay
     * bit-identical to the meters. Call after setCoreId() — events are
     * labeled with the core id current at emission time, and the Lite
     * controller's resize hook binds the id at attach time. No-op in
     * EAT_NO_PROVENANCE builds.
     */
    void setProvenance(obs::ProvenanceSink *sink);

    /** Total dynamic energy charged so far (all meters). */
    PicoJoules dynamicEnergyTotal() const;

    /**
     * Enable/disable the last-translation front cache, a pure
     * simulator-speed memo ahead of the full L1 probe. Every replayed
     * hit applies the exact side effects (energy charges, counters,
     * recency restamps, checker calls, provenance events) the full
     * probe would, so simulated outcomes are bit-identical either way.
     * Must be OFF when a fault injector can corrupt TLB state behind
     * the MMU's back (the driver harnesses enforce this): a corrupted
     * tag aliasing a lower way could change the full probe's first
     * match, which a replay cannot see. Forced off in
     * -DEAT_FRONT_CACHE=OFF builds.
     */
    void
    setFrontCacheEnabled(bool on)
    {
        frontEnabled_ = kFrontCacheCompiledIn && on;
    }

    bool frontCacheEnabled() const { return frontEnabled_; }

    /** Accesses served by the front cache. Deliberately NOT a
     *  simulated statistic: it lives outside MmuStats, metrics,
     *  telemetry, and digests (the hit rate is a simulator-performance
     *  fact, surfaced only by eatperf). */
    std::uint64_t frontCacheHits() const { return frontHits_; }

    // --- introspection for tests and reports ---
    tlb::SetAssocTlb &l1Tlb4K() { return *l1Page4K_; }
    tlb::SetAssocTlb *l1Tlb2M() { return l1Page2M_.get(); }
    tlb::SetAssocTlb *l1Tlb1G() { return l1Page1G_.get(); }
    tlb::SetAssocTlb &l2Tlb() { return *l2Page_; }
    tlb::RangeTlb *l1RangeTlb() { return l1Range_.get(); }
    tlb::RangeTlb *l2RangeTlb() { return l2Range_.get(); }
    tlb::MmuCache &mmuCache() { return mmuCache_; }
    tlb::MmuCache *hostPwc() { return hostPwc_.get(); }
    const vm::HostTable *hostTable() const { return hostTable_.get(); }
    l3::CacheTlb *l3CacheTlb() { return l3Cache_.get(); }
    l3::DramTlb *l3DramTlb() { return l3Dram_.get(); }

    bool l1Tlb2MEnabled() const { return enabled2M_; }
    bool l1RangeEnabled() const { return enabledL1Range_; }
    bool l2RangeEnabled() const { return enabledL2Range_; }

  private:
    /** A structure's energy meter plus its (resizable) coefficients. */
    struct Metered
    {
        energy::EnergyMeter meter;
        /** Read/write coefficients indexed by log2(active ways); fixed
         *  structures use index 0 only. */
        std::vector<energy::EnergyCoefficients> coeffByLogWays;
        MilliWatts fullLeakage = 0.0;
        obs::ProvStruct id = obs::ProvStruct::None;
    };

    void chargeRead(Metered &m, unsigned logWays = 0, bool hit = false);
    void chargeWrite(Metered &m, unsigned logWays = 0,
                     unsigned psShift = 0);
    void chargeWalkMemory(unsigned refs, bool rangeWalk,
                          unsigned leafLevel = 0);

    /** Charge the host dimension of one nested walk: host-PWC probe
     *  and fills per host walk, plus every host-walk memory reference
     *  (hostWalkMemMeter_ + HostWalkMem provenance + cycles). */
    void chargeNestedWalk(const vm::NestedWalkResult &walk);

    /** Provenance: record that a fill displaced a live entry. */
    void provEvict(const Metered &m, bool evicted);

    /** Provenance: close the translation opened at access() entry. */
    void provEnd(std::string_view source, unsigned psShift, bool l1Hit);

    /**
     * Leakage power of the enabled structures. @p gated uses the
     * currently active way counts (disabled ways power-gated, §6.2);
     * otherwise every way of every enabled structure leaks.
     */
    MilliWatts leakagePower(bool gated) const;

    /** Fill a page entry into the right L1 structure (+ enable mask). */
    void fillL1Page(const tlb::TlbEntry &entry);

    /** Perfect page-size oracle for TLB_PP. */
    vm::PageSize predictPageSize(Addr vaddr) const;

    /** Report a served page translation to the attached checker. */
    void checkPageHit(Addr vaddr, const tlb::TlbEntry &entry,
                      HitSource src);

    /** Audit the way masks of all page TLBs (periodic, Full level). */
    void auditWayMasks();

    /** L2-miss-path probe of the L3 tier. Serves the access completely
     *  (L1/L2 refills, checker, provenance close) on a hit.
     *  @return true when the tier served the translation. */
    bool probeL3(Addr vaddr);

    /** Park a walked translation in the L3 tier per insertion policy. */
    void fillL3(const tlb::TlbEntry &entry);

    /** Close the current telemetry interval and emit its record. */
    void emitIntervalRecord(InstrCount intervalInstructions);

    static unsigned logWaysOf(const tlb::SetAssocTlb &t);

    // --- front cache (simulator fast path; see DESIGN.md §15) ---

    /**
     * A remembered L1 hit location. Live only while its generation
     * matches frontGen_; the TLB's peekReplayHit() then re-validates
     * it against live TLB state before any side effect is applied.
     */
    struct FrontSlot
    {
        std::uint64_t gen = 0;
        unsigned set = 0;
        unsigned way = 0;
    };

    /** Serve @p vaddr from the front cache if a remembered hit
     *  validates; applies the full probe's exact side effects.
     *  @return true when the access was replayed. */
    bool frontProbe(Addr vaddr);

    /** Replay one remembered page hit (any organization). */
    void frontReplayPage(Addr vaddr, tlb::SetAssocTlb &tlb,
                         const FrontSlot &slot, HitSource src);

    /** Replay one remembered L1-range hit (plain organizations). */
    void frontReplayRange(Addr vaddr);

    /** Invalidate every front slot in O(1). */
    void frontClear() { ++frontGen_; }

    MmuConfig cfg_;
    const vm::PageTable *pageTable_;
    const vm::RangeTable *rangeTable_;
    tlb::Asid asid_ = 0;
    unsigned coreId_ = 0;

    // Structures. l1Page4K_ doubles as the mixed L1 in TLB_PP mode, and
    // l2Page_ as the mixed L2.
    std::unique_ptr<tlb::SetAssocTlb> l1Page4K_;
    std::unique_ptr<tlb::SetAssocTlb> l1Page2M_;
    std::unique_ptr<tlb::FullyAssocTlb> l1Page1G_;
    std::unique_ptr<tlb::SetAssocTlb> l2Page_;
    std::unique_ptr<tlb::RangeTlb> l1Range_;
    std::unique_ptr<tlb::RangeTlb> l2Range_;
    tlb::MmuCache mmuCache_;
    tlb::PageWalker walker_;

    // Nested paging (all null / unused in flat runs). In identity-host
    // mode the walker is engaged but its host dimension contributes
    // nothing, so those runs stay digest-identical to flat runs.
    std::unique_ptr<vm::HostTable> hostTable_;
    std::unique_ptr<tlb::MmuCache> hostPwc_;
    std::unique_ptr<vm::NestedWalker> nestedWalker_;
    std::unique_ptr<tlb::RangeTableWalker> rangeWalker_;

    // L3 translation tier (at most one non-null; both null = --l3=none,
    // which keeps every meter below untouched and digests unchanged).
    std::unique_ptr<l3::CacheTlb> l3Cache_;
    std::unique_ptr<l3::DramTlb> l3Dram_;
    std::unique_ptr<lite::LiteController> lite_;
    check::ShadowChecker *checker_ = nullptr;

    // Static masks (paper §3.1): a structure consumes energy only after
    // the first fill of its kind. The 4 KB structures start enabled.
    bool enabled2M_ = false;
    bool enabled1G_ = false;
    bool enabledL1Range_ = false;
    bool enabledL2Range_ = false;

    // Energy meters.
    Metered m4K_, m2M_, m1G_, mL2_, mL1Range_, mL2Range_;
    Metered mPde_, mPdpte_, mPml4_;
    energy::EnergyMeter walkMemMeter_;
    energy::EnergyMeter rangeWalkMemMeter_;
    /** Host dimension: one lumped host-PWC meter (reads == host walks)
     *  and the host-walk memory-reference meter. Both stay untouched
     *  in flat and identity-host runs. */
    Metered mHostPwc_;
    energy::EnergyMeter hostWalkMemMeter_;
    /** L3 tier meters. mL3_ (cache mode) has one coefficient slot: the
     *  full-LLC access. mDram_ (dram mode) has two: index 0 the SRAM
     *  tag cache, index 1 the DRAM array — chargeRead/chargeWrite's
     *  logWays argument selects the stage, so provenance reconciles
     *  through the standard path. */
    Metered mL3_, mDram_;
    PicoJoules walkRefEnergy_ = 0.0; ///< blended L1/L2 cache read energy

    MmuStats stats_;
    InstrCount instrTowardInterval_ = 0;

    // Observability attachments (all non-owning, all optional).
    obs::TelemetrySink *telemetry_ = nullptr;
    obs::TraceWriter *trace_ = nullptr;
    obs::ProvenanceSink *prov_ = nullptr;
    const check::InjectStats *injectStats_ = nullptr;

    /** Cumulative values at the last closed telemetry interval. */
    struct IntervalSnapshot
    {
        InstrCount instructions = 0;
        std::uint64_t memOps = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t hostWalkRefs = 0;
        std::uint64_t l3Probes = 0;
        std::uint64_t l3Hits = 0;
        Cycles missCycles = 0;
        PicoJoules dynamicPj = 0.0;
        std::uint64_t checkMismatches = 0;
        std::uint64_t faultsInjected = 0;
    };
    IntervalSnapshot lastInterval_;
    std::uint64_t intervalIndex_ = 0;

    // Static (leakage) energy integrals (paper §6.2).
    PicoJoules staticGatedPj_ = 0.0;
    PicoJoules staticFullPj_ = 0.0;

    /**
     * Memoized leakagePower() results: the inputs (way masks and
     * enable masks) change only at interval boundaries and fills, but
     * tick() integrates leakage on every operation batch. The cached
     * doubles are the exact values leakagePower() returned, so the
     * integrals stay bit-identical.
     */
    struct LeakCache
    {
        bool valid = false;
        unsigned lw4K = 0;
        unsigned lw2M = 0;
        unsigned lw1G = 0;
        std::uint8_t enabled = 0;
        MilliWatts gated = 0.0;
        MilliWatts full = 0.0;
    };
    LeakCache leakCache_;

    /**
     * Per-gap static-energy deltas derived from leakCache_: slot n
     * holds exactly the doubles `leakCache_.gated * (n / f)` and
     * `leakCache_.full * (n / f)` that tick(n) would compute, so the
     * common small gaps skip the divide and multiplies while the
     * accumulators see bit-identical addends. Cleared whenever
     * leakCache_ refreshes.
     */
    struct TickDelta
    {
        bool valid = false;
        double gatedPj = 0.0;
        double fullPj = 0.0;
    };
    static constexpr std::size_t kTickDeltaSlots = 64;
    std::array<TickDelta, kTickDeltaSlots> tickDeltas_{};

    /** tick() off the fast path: recompute the leakage inputs, refresh
     *  leakCache_/tickDeltas_, charge, and run the interval clock. */
    void tickSlow(InstrCount n);

    /** Drain instrTowardInterval_: Lite decisions, generation bumps,
     *  telemetry records — one round per whole interval elapsed. */
    void tickIntervals();

    // Front cache: per-structure last-hit memos. Sized to the owning
    // TLB's set count (power of two) so repeated hits across sets
    // coexist; slots die en masse via the generation counter and are
    // re-validated against live TLB state before every replay.
    bool frontEnabled_ = kFrontCacheCompiledIn;
    std::uint64_t frontGen_ = 1;
    std::vector<FrontSlot> front4K_;
    std::vector<FrontSlot> front2M_;
    FrontSlot front1G_;
    FrontSlot frontRange_; ///< set field = RangeTlb slot index
    std::uint64_t frontHits_ = 0; ///< simulator-perf counter only

    energy::CactiLite cacti_;
};

} // namespace eat::core

#endif // EAT_CORE_MMU_HH
