#include "core/mmu_stats.hh"

#include "stats/counter.hh"

namespace eat::core
{

std::string_view
hitSourceName(HitSource src)
{
    switch (src) {
      case HitSource::L1Page4K: return "L1-4KB";
      case HitSource::L1Page2M: return "L1-2MB";
      case HitSource::L1Page1G: return "L1-1GB";
      case HitSource::L1Range: return "L1-range";
      case HitSource::L2Page: return "L2-page";
      case HitSource::L2Range: return "L2-range";
      case HitSource::PageWalk: return "page-walk";
      case HitSource::Count: break;
    }
    return "?";
}

double
MmuStats::l1Mpki() const
{
    return stats::mpki(l1Misses, instructions);
}

double
MmuStats::l2Mpki() const
{
    return stats::mpki(l2Misses, instructions);
}

double
MmuStats::tlbMissCycleFraction() const
{
    const double base = static_cast<double>(instructions);
    const double miss = static_cast<double>(tlbMissCycles());
    if (base + miss == 0.0)
        return 0.0;
    return miss / (base + miss);
}

} // namespace eat::core
