#include "core/mmu_stats.hh"

#include "stats/counter.hh"

namespace eat::core
{

double
MmuStats::l1Mpki() const
{
    return stats::mpki(l1Misses, instructions);
}

double
MmuStats::l2Mpki() const
{
    return stats::mpki(l2Misses, instructions);
}

double
MmuStats::tlbMissCycleFraction() const
{
    const double base = static_cast<double>(instructions);
    const double miss = static_cast<double>(tlbMissCycles());
    if (base + miss == 0.0)
        return 0.0;
    return miss / (base + miss);
}

} // namespace eat::core
