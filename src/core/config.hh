/**
 * @file
 * The six simulated MMU organizations (paper §5, Figure 9).
 *
 *  - Base4K : 4 KB pages only (normalization baseline).
 *  - Thp    : 4 KB + 2 MB transparent huge pages (state of practice).
 *  - TlbLite: THP + the Lite way-disabling mechanism (relative
 *             epsilon = 12.5%).
 *  - Rmm    : THP + an L2-range TLB with perfect eager paging.
 *  - TlbPP  : perfect TLB_Pred — a single set-associative L1 (and L2)
 *             holding both page sizes with a perfect, zero-energy
 *             page-size predictor.
 *  - RmmLite: 4 KB pages + range translations in both TLB levels
 *             (L1-range TLB) + Lite (absolute epsilon = 0.1 MPKI).
 *
 * All organizations share the Sandy Bridge-style backing hardware:
 * 64-entry 4-way L1-4KB TLB, 32-entry 4-way L1-2MB TLB, 4-entry fully
 * associative L1-1GB TLB, 512-entry 4-way L2 TLB, and the three-part
 * MMU paging-structure cache. Structures whose page size a process
 * never uses stay statically masked and consume no dynamic energy
 * (paper §3.1).
 */

#ifndef EAT_CORE_CONFIG_HH
#define EAT_CORE_CONFIG_HH

#include <string_view>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"
#include "l3/l3_config.hh"
#include "lite/lite_controller.hh"
#include "tlb/mmu_cache.hh"
#include "vm/memory_manager.hh"

namespace eat::core
{

/** The TLB organizations the paper evaluates. */
enum class MmuOrg
{
    Base4K,
    Thp,
    TlbLite,
    Rmm,
    TlbPP,
    RmmLite,
};

/** Display name ("4KB", "THP", "TLB_Lite", ...). */
std::string_view orgName(MmuOrg org);

/** All six organizations in the paper's presentation order. */
const std::vector<MmuOrg> &allOrgs();

/** Geometry of one set-associative TLB. */
struct TlbGeom
{
    unsigned entries = 0;
    unsigned ways = 0;
};

/** A fully resolved MMU configuration. */
struct MmuConfig
{
    MmuOrg org = MmuOrg::Thp;

    // --- structures ---
    TlbGeom l1Tlb4K{64, 4};
    TlbGeom l1Tlb2M{32, 4};
    unsigned l1Tlb1GEntries = 4;  ///< fully associative
    TlbGeom l2Tlb{512, 4};
    unsigned l1RangeEntries = 4;  ///< fully associative
    unsigned l2RangeEntries = 32; ///< fully associative
    tlb::MmuCacheConfig mmuCache{};

    bool hasL1Range = false; ///< RMM_Lite
    bool hasL2Range = false; ///< RMM, RMM_Lite
    bool mixedTlbs = false;  ///< TLB_PP: one L1/L2 holds both page sizes
    bool liteEnabled = false;
    lite::LiteParams lite{};

    /**
     * Paper §4.4: replace the per-size set-associative L1 page TLBs
     * with a single fully associative L1 TLB holding every page size
     * (SPARC/AMD style). Lite — when enabled — clusters the LRU
     * distances as if the entries were ways and resizes the structure
     * in powers of two.
     */
    bool combinedFullyAssocL1 = false;
    unsigned combinedL1Entries = 64;

    // --- performance model (paper Table 3) ---
    Cycles l2HitLatency = 7;    ///< L1 TLB miss, L2 TLB lookup
    Cycles pageWalkLatency = 50;///< L2 TLB miss, page walk

    // --- TLB-shootdown cost model (multicore only; never charged in
    // --- single-core runs, which issue no remaps) ---
    /** Initiator-side fixed cost per broadcast: IPI setup plus waiting
     *  for remote acknowledgements (cf. Yan et al.'s measured
     *  shootdown latencies, scaled to a tight microcode path). */
    Cycles shootdownBaseCycles = 500;
    /** Additional initiator cycles per remote core interrupted. */
    Cycles shootdownPerCoreCycles = 100;
    /** Energy per remote core signalled (interconnect + interrupt). */
    double shootdownPerCorePj = 8.0;
    /** Energy per TLB entry invalidated by the broadcast (CAM write). */
    double shootdownPerEntryPj = 0.4;

    // --- virtualization (guest/host two-dimensional translation) ---
    /** Run under nested paging: every guest-walk reference triggers a
     *  host (EPT) walk, charged through the same Table-3 model. */
    bool vmEnabled = false;
    /** Identity host table: the nested machinery is engaged but the
     *  host dimension is free — the differential anchor that must stay
     *  digest-identical to a flat run. */
    bool vmIdentityHost = false;
    /** Host (EPT) leaf page size; huge host pages shorten host walks. */
    vm::PageSize hostPageSize = vm::PageSize::Size4K;
    /** Host paging-structure cache geometry (mirrors the guest PWC). */
    tlb::MmuCacheConfig hostPwc{};
    /** Walk-latency charge per host-walk memory reference. Lower than
     *  the guest pageWalkLatency because host walks overlap the guest
     *  walk's node fetches in real MMUs. */
    Cycles hostWalkCyclesPerRef = 12;

    // --- hardware translation coherence (HATRIC-style alternative to
    // --- IPI shootdowns; multicore only, selected per run) ---
    /** Invalidate via coherence-filter probes instead of IPI
     *  broadcasts. Architectural invalidations are identical; only the
     *  cycle/energy book changes. */
    bool hwCoherence = false;
    /** Initiator-side cost of one filter probe (directory lookup plus
     *  version bump; no interrupts, no remote acknowledgement wait). */
    Cycles cohProbeCycles = 40;
    /** Additional initiator cycles per sharer core targeted. */
    Cycles cohPerCoreCycles = 10;
    /** Energy of the filter probe itself (directory CAM lookup). */
    double cohProbePj = 1.0;
    /** Energy per targeted sharer core (point-to-point message). */
    double cohPerCorePj = 2.0;
    /** Energy per TLB entry invalidated (same CAM write as IPI mode). */
    double cohPerEntryPj = 0.4;

    // --- L3 translation tier (cache-resident or in-DRAM TLB behind
    // --- the L2 TLBs; valid on top of every organization) ---
    l3::L3Mode l3Mode = l3::L3Mode::None;
    l3::CacheTlbConfig l3Cache{};
    l3::DramTlbConfig l3Dram{};
    /**
     * Lite epsilon relief: with an L3 backstop an L1-TLB miss costs a
     * 7-cycle L2 probe (and an L2 miss a cheap L3 probe), not a full
     * walk, so Lite can tolerate proportionally more misses when
     * downsizing. enableL3() multiplies the active epsilon (relative
     * or absolute MPKI) by this factor. The default x4 lets the
     * relative-mode threshold (0.125 -> 0.5) accept the L1 floor
     * geometry on scatter-heavy workloads whose lost-hit ratio sits
     * near 1.3-1.5, which is what converts the tier's reach into L1
     * downsizing energy.
     */
    double l3LiteEpsilonScale = 4.0;

    /**
     * Switch the L3 tier on (the supported way): sets l3Mode and, when
     * Lite is enabled, relaxes its epsilon by l3LiteEpsilonScale so
     * downsizing decisions see the backstop. No-op for L3Mode::None.
     */
    void enableL3(l3::L3Mode mode);

    // --- energy model knobs ---
    /**
     * Fraction of page-walk memory references that hit in the L1 data
     * cache (the Figure 3 locality knob; 1.0 = the paper's optimistic
     * default). Misses are charged the L2-cache read energy.
     */
    double walkL1CacheHitRatio = 1.0;

    /**
     * Clock frequency for converting leakage power into static energy
     * (paper §6.2: way-disabling plus power gating also saves leakage;
     * E[pJ] = P[mW] * t[ns] at an assumed base CPI of 1).
     */
    double clockGhz = 2.0;

    /** The canonical configuration for organization @p org. */
    static MmuConfig make(MmuOrg org);

    /**
     * Check the configuration for geometric and semantic consistency
     * (non-zero power-of-two geometry, knobs in range, compatible
     * feature flags). Returns the first problem found; the Mmu
     * constructor refuses invalid configurations.
     */
    Status validate() const;

    /** The OS allocation policy this organization assumes. */
    vm::OsPolicy osPolicy() const;

    std::string_view name() const { return orgName(org); }
};

} // namespace eat::core

#endif // EAT_CORE_CONFIG_HH
