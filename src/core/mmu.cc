#include "core/mmu.hh"

#include "base/logging.hh"
#include "check/fault_injector.hh"
#include "energy/coefficients.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace eat::core
{

namespace
{

using energy::StructClass;

/** Coefficients for every power-of-two downsizing of a page TLB. */
std::vector<energy::EnergyCoefficients>
resizableCoeffs(const energy::CactiLite &cacti, StructClass cls,
                const TlbGeom &geom)
{
    const unsigned sets = geom.entries / geom.ways;
    std::vector<energy::EnergyCoefficients> out(floorLog2(geom.ways) + 1);
    for (unsigned lw = 0; lw < out.size(); ++lw) {
        const unsigned ways = 1u << lw;
        out[lw] = cacti.estimate(cls, sets * ways, ways);
    }
    return out;
}

std::vector<energy::EnergyCoefficients>
fixedCoeff(const energy::CactiLite &cacti, StructClass cls, unsigned entries,
           unsigned ways)
{
    return {cacti.estimate(cls, entries, ways)};
}

} // namespace

unsigned
Mmu::logWaysOf(const tlb::SetAssocTlb &t)
{
    // The TLB maintains this value across resizes; recomputing the
    // log on every energy charge was measurable on the access path.
    return t.logActiveWays();
}

Mmu::Mmu(const MmuConfig &config, const vm::PageTable &pageTable,
         const vm::RangeTable *rangeTable)
    : cfg_(config),
      pageTable_(&pageTable),
      rangeTable_(rangeTable),
      mmuCache_(config.mmuCache),
      walker_(pageTable, mmuCache_)
{
    eat_check_fatal(cfg_.validate());

    // --- build the structures ---
    if (cfg_.combinedFullyAssocL1) {
        // §4.4: one fully associative L1 holds every page size; a
        // fully associative structure matches mixed sizes natively.
        l1Page4K_ = std::make_unique<tlb::SetAssocTlb>(
            "L1-combined TLB", cfg_.combinedL1Entries,
            cfg_.combinedL1Entries, 12);
    } else {
        l1Page4K_ = std::make_unique<tlb::SetAssocTlb>(
            cfg_.mixedTlbs ? "L1-mixed TLB" : "L1-4KB TLB",
            cfg_.l1Tlb4K.entries, cfg_.l1Tlb4K.ways, 12);
    }
    l2Page_ = std::make_unique<tlb::SetAssocTlb>(
        cfg_.mixedTlbs ? "L2-mixed TLB" : "L2-4KB TLB", cfg_.l2Tlb.entries,
        cfg_.l2Tlb.ways, 12);

    if (!cfg_.mixedTlbs && !cfg_.combinedFullyAssocL1) {
        l1Page2M_ = std::make_unique<tlb::SetAssocTlb>(
            "L1-2MB TLB", cfg_.l1Tlb2M.entries, cfg_.l1Tlb2M.ways, 21);
        l1Page1G_ = std::make_unique<tlb::FullyAssocTlb>(
            "L1-1GB TLB", cfg_.l1Tlb1GEntries, 30);
    }

    if (cfg_.hasL1Range)
        l1Range_ = std::make_unique<tlb::RangeTlb>("L1-range TLB",
                                                   cfg_.l1RangeEntries);
    if (cfg_.hasL2Range)
        l2Range_ = std::make_unique<tlb::RangeTlb>("L2-range TLB",
                                                   cfg_.l2RangeEntries);
    if (cfg_.hasL1Range || cfg_.hasL2Range) {
        eat_assert(rangeTable_ != nullptr,
                   "range TLBs require a range table");
        rangeWalker_ = std::make_unique<tlb::RangeTableWalker>(*rangeTable_);
    }

    if (cfg_.liteEnabled) {
        std::vector<tlb::SetAssocTlb *> monitored{l1Page4K_.get()};
        if (l1Page2M_)
            monitored.push_back(l1Page2M_.get());
        if (l1Page1G_)
            monitored.push_back(l1Page1G_.get());
        lite_ = std::make_unique<lite::LiteController>(cfg_.lite,
                                                       std::move(monitored));
    }

    // --- energy coefficients ---
    if (cfg_.combinedFullyAssocL1) {
        m4K_.coeffByLogWays = resizableCoeffs(
            cacti_, StructClass::L1TlbMixedFA,
            TlbGeom{cfg_.combinedL1Entries, cfg_.combinedL1Entries});
    } else {
        m4K_.coeffByLogWays =
            resizableCoeffs(cacti_, StructClass::L1Tlb4K, cfg_.l1Tlb4K);
    }
    mL2_.coeffByLogWays =
        fixedCoeff(cacti_, StructClass::L2Tlb4K, cfg_.l2Tlb.entries,
                   cfg_.l2Tlb.ways);
    if (l1Page2M_) {
        m2M_.coeffByLogWays =
            resizableCoeffs(cacti_, StructClass::L1Tlb2M, cfg_.l1Tlb2M);
        m1G_.coeffByLogWays = resizableCoeffs(
            cacti_, StructClass::L1Tlb1G,
            TlbGeom{cfg_.l1Tlb1GEntries, cfg_.l1Tlb1GEntries});
    }
    if (l1Range_) {
        mL1Range_.coeffByLogWays = fixedCoeff(
            cacti_, StructClass::L1RangeTlb, cfg_.l1RangeEntries, 0);
    }
    if (l2Range_) {
        mL2Range_.coeffByLogWays = fixedCoeff(
            cacti_, StructClass::L2RangeTlb, cfg_.l2RangeEntries, 0);
    }
    mPde_.coeffByLogWays =
        fixedCoeff(cacti_, StructClass::MmuPde, cfg_.mmuCache.pdeEntries,
                   cfg_.mmuCache.pdeWays);
    mPdpte_.coeffByLogWays = fixedCoeff(
        cacti_, StructClass::MmuPdpte, cfg_.mmuCache.pdpteEntries, 0);
    mPml4_.coeffByLogWays =
        fixedCoeff(cacti_, StructClass::MmuPml4, cfg_.mmuCache.pml4Entries, 0);

    // Nested paging: the host dimension mirrors the guest machinery — a
    // host table, its own paging-structure cache, and the composed
    // two-dimensional walker. One lumped meter covers the host PWC
    // (one probe per host walk; same PDE-class coefficients).
    if (cfg_.vmEnabled) {
        vm::HostTableConfig hostCfg;
        hostCfg.mode = cfg_.vmIdentityHost ? vm::HostMode::Identity
                                           : vm::HostMode::Paged;
        hostCfg.pageSize = cfg_.hostPageSize;
        hostTable_ = std::make_unique<vm::HostTable>(hostCfg);
        hostPwc_ = std::make_unique<tlb::MmuCache>(cfg_.hostPwc);
        nestedWalker_ = std::make_unique<vm::NestedWalker>(
            pageTable, mmuCache_, *hostTable_, *hostPwc_);
        mHostPwc_.coeffByLogWays = fixedCoeff(
            cacti_, StructClass::MmuPde, cfg_.hostPwc.pdeEntries,
            cfg_.hostPwc.pdeWays);
    }

    // L3 translation tier: at most one substrate behind the L2 TLBs.
    // Both meters reuse the standard charge paths; the coefficient
    // index selects the stage (dram: 0 = SRAM tag cache, 1 = DRAM
    // array), so provenance reconciles with no new machinery.
    if (cfg_.l3Mode == l3::L3Mode::Cache) {
        l3Cache_ = std::make_unique<l3::CacheTlb>(cfg_.l3Cache, cacti_);
        mL3_.coeffByLogWays = {l3Cache_->coefficients()};
    } else if (cfg_.l3Mode == l3::L3Mode::Dram) {
        l3Dram_ = std::make_unique<l3::DramTlb>(cfg_.l3Dram, cacti_);
        mDram_.coeffByLogWays = {l3Dram_->tagCoefficients(),
                                 l3Dram_->dramCoefficients()};
    }

    // Page-walk references: a blend of L1 and L2 data-cache reads
    // controlled by the Figure-3 locality knob.
    const auto l1c = cacti_.estimate(StructClass::L1Cache, 512, 8);
    const double h = cfg_.walkL1CacheHitRatio;
    eat_assert(h >= 0.0 && h <= 1.0, "walkL1CacheHitRatio out of [0,1]");
    walkRefEnergy_ = h * l1c.read + (1.0 - h) * cacti_.l2CacheReadEnergy();

    stats_.l1WayLookups4K.ensureBuckets(floorLog2(cfg_.l1Tlb4K.ways) + 1);
    if (l1Page2M_)
        stats_.l1WayLookups2M.ensureBuckets(floorLog2(cfg_.l1Tlb2M.ways) + 1);

    // Front-cache memo arrays, one slot per set of the owning TLB (a
    // power of two, so the index is a mask). A range TLB paired with a
    // mixed or combined L1 has no replay path (no organization pairs
    // them); keep the front off rather than model the combination.
    front4K_.resize(l1Page4K_->sets());
    if (l1Page2M_)
        front2M_.resize(l1Page2M_->sets());
    if ((cfg_.mixedTlbs || cfg_.combinedFullyAssocL1) && l1Range_)
        frontEnabled_ = false;

    // Provenance identities (must match the dynamicEnergyTotal() order
    // documented on obs::ProvStruct).
    m4K_.id = obs::ProvStruct::L1Tlb4K;
    m2M_.id = obs::ProvStruct::L1Tlb2M;
    m1G_.id = obs::ProvStruct::L1Tlb1G;
    mL2_.id = obs::ProvStruct::L2Tlb;
    mL1Range_.id = obs::ProvStruct::L1Range;
    mL2Range_.id = obs::ProvStruct::L2Range;
    mPde_.id = obs::ProvStruct::PwcPde;
    mPdpte_.id = obs::ProvStruct::PwcPdpte;
    mPml4_.id = obs::ProvStruct::PwcPml4;
    mHostPwc_.id = obs::ProvStruct::HostPwc;
    mL3_.id = obs::ProvStruct::L3Tlb;
    mDram_.id = obs::ProvStruct::DramTlb;
}

void
Mmu::chargeRead(Metered &m, unsigned logWays, bool hit)
{
    eat_assert(logWays < m.coeffByLogWays.size(), "bad coefficient index");
    const PicoJoules pj = m.coeffByLogWays[logWays].read;
    m.meter.chargeRead(pj);
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, 0, pj, obs::ProvKind::Probe,
                     m.id, coreId_, asid_, 0, hit, 1u << logWays, 0});
    }
}

void
Mmu::chargeWrite(Metered &m, unsigned logWays, unsigned psShift)
{
    eat_assert(logWays < m.coeffByLogWays.size(), "bad coefficient index");
    const PicoJoules pj = m.coeffByLogWays[logWays].write;
    m.meter.chargeWrite(pj);
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, 0, pj, obs::ProvKind::Fill, m.id,
                     coreId_, asid_, static_cast<std::uint8_t>(psShift),
                     false, 1u << logWays, 0});
    }
}

void
Mmu::chargeWalkMemory(unsigned refs, bool rangeWalk, unsigned leafLevel)
{
    auto &meter = rangeWalk ? rangeWalkMemMeter_ : walkMemMeter_;
    // One event per reference, not refs * energy: repeated addition of
    // a double is not the same as multiplication, and the provenance
    // totals must stay bit-identical to the meter.
    for (unsigned i = 0; i < refs; ++i) {
        meter.chargeRead(walkRefEnergy_);
        if (EAT_PROV_ENABLED && prov_) {
            // The walk fetches top-down; reference i touches level
            // leafLevel + refs - 1 - i (range walks report level 0).
            const unsigned level =
                rangeWalk ? 0 : leafLevel + refs - 1 - i;
            prov_->emit({stats_.instructions, 0, walkRefEnergy_,
                         obs::ProvKind::WalkRef,
                         rangeWalk ? obs::ProvStruct::RangeWalkMem
                                   : obs::ProvStruct::WalkMem,
                         coreId_, asid_, 0, false, level, 0});
        }
    }
}

void
Mmu::chargeNestedWalk(const vm::NestedWalkResult &walk)
{
    stats_.hostWalks += walk.hostWalkCount;
    stats_.hostWalkMemRefs += walk.hostMemRefs;
    stats_.walkCycles +=
        cfg_.hostWalkCyclesPerRef * Cycles(walk.hostMemRefs);
    for (unsigned w = 0; w < walk.hostWalkCount; ++w) {
        const auto &host = walk.hostWalks[w];
        // One lumped host-PWC probe per host walk (reads == hostWalks,
        // the accounting oracle's anchor) plus one write per entry the
        // walk installed.
        chargeRead(mHostPwc_, 0, host.pwcHit);
        for (unsigned f = 0; f < host.pwcFills; ++f)
            chargeWrite(mHostPwc_);
        // One event per host-table reference; repeated addition keeps
        // the provenance totals bit-identical to the meter.
        const unsigned leaf =
            tlb::MmuCache::leafLevel(hostTable_->pageSize());
        for (unsigned i = 0; i < host.memRefs; ++i) {
            hostWalkMemMeter_.chargeRead(walkRefEnergy_);
            if (EAT_PROV_ENABLED && prov_) {
                const unsigned level = leaf + host.memRefs - 1 - i;
                prov_->emit({stats_.instructions, 0, walkRefEnergy_,
                             obs::ProvKind::WalkRef,
                             obs::ProvStruct::HostWalkMem, coreId_, asid_,
                             0, false, level, 0});
            }
        }
    }
}

void
Mmu::provEvict(const Metered &m, bool evicted)
{
    if (EAT_PROV_ENABLED && prov_ && evicted) {
        prov_->emit({stats_.instructions, 0, 0.0, obs::ProvKind::Evict,
                     m.id, coreId_, asid_, 0, false, 0, 0});
    }
}

void
Mmu::provEnd(std::string_view source, unsigned psShift, bool l1Hit)
{
    if (EAT_PROV_ENABLED && prov_) {
        prov_->endTranslation(source, static_cast<std::uint8_t>(psShift),
                              l1Hit);
    }
}

vm::PageSize
Mmu::predictPageSize(Addr vaddr) const
{
    // TLB_PP's predictor is perfect and free (paper §5): consult the
    // page table directly without charging energy.
    auto t = pageTable_->translate(vaddr);
    if (!t)
        eat_panic("TLB_PP oracle consulted for unmapped address ", vaddr);
    return t->size;
}

void
Mmu::fillL1Page(const tlb::TlbEntry &entry)
{
    if (cfg_.mixedTlbs || cfg_.combinedFullyAssocL1) {
        chargeWrite(m4K_, logWaysOf(*l1Page4K_), entry.shift);
        provEvict(m4K_, l1Page4K_->fill(entry));
        return;
    }
    switch (entry.size) {
      case vm::PageSize::Size4K:
        chargeWrite(m4K_, logWaysOf(*l1Page4K_), entry.shift);
        provEvict(m4K_, l1Page4K_->fill(entry));
        break;
      case vm::PageSize::Size2M:
        if (!enabled2M_) { // naive static mask lifts on first 2 MB fill
            enabled2M_ = true;
            leakCache_.valid = false;
        }
        chargeWrite(m2M_, logWaysOf(*l1Page2M_), entry.shift);
        provEvict(m2M_, l1Page2M_->fill(entry));
        break;
      case vm::PageSize::Size1G:
        if (!enabled1G_) {
            enabled1G_ = true;
            leakCache_.valid = false;
        }
        chargeWrite(m1G_, logWaysOf(*l1Page1G_), entry.shift);
        provEvict(m1G_, l1Page1G_->fill(entry));
        break;
    }
}

bool
Mmu::frontProbe(Addr vaddr)
{
    // Range memo first: it replays the full path's range-priority hit.
    // The page memos are safe below it — a page memo is only stored by
    // an access whose parallel range probe missed, and within one
    // generation the range TLB saw no fill or invalidation, so it
    // still misses every address of that page.
    if (l1Range_ && enabledL1Range_ && frontRange_.gen == frontGen_ &&
        l1Range_->peekReplayHit(frontRange_.set, vaddr, asid_)) {
        frontReplayRange(vaddr);
        return true;
    }
    {
        const FrontSlot &s =
            front4K_[(vaddr >> 12) & (front4K_.size() - 1)];
        if (s.gen == frontGen_ &&
            l1Page4K_->peekReplayHit(s.set, s.way, vaddr, asid_)) {
            frontReplayPage(vaddr, *l1Page4K_, s, HitSource::L1Page4K);
            return true;
        }
    }
    if (l1Page2M_ && enabled2M_) {
        const FrontSlot &s =
            front2M_[(vaddr >> 21) & (front2M_.size() - 1)];
        if (s.gen == frontGen_ &&
            l1Page2M_->peekReplayHit(s.set, s.way, vaddr, asid_)) {
            frontReplayPage(vaddr, *l1Page2M_, s, HitSource::L1Page2M);
            return true;
        }
    }
    if (l1Page1G_ && enabled1G_ && front1G_.gen == frontGen_ &&
        l1Page1G_->peekReplayHit(front1G_.set, front1G_.way, vaddr,
                                 asid_)) {
        frontReplayPage(vaddr, *l1Page1G_, front1G_, HitSource::L1Page1G);
        return true;
    }
    return false;
}

void
Mmu::frontReplayPage(Addr vaddr, tlb::SetAssocTlb &tlb,
                     const FrontSlot &slot, HitSource src)
{
    ++stats_.memOps;
    if (EAT_PROV_ENABLED && prov_)
        prov_->beginTranslation(stats_.instructions, coreId_, asid_, vaddr);

    if (cfg_.mixedTlbs) {
        // Mixed L1 (TLB_PP). The full path's page-size oracle is pure
        // and free, and the page table cannot have changed within one
        // generation, so the replay skips the prediction: the probe
        // set it selects is the memo's set either way.
        const unsigned lw4K = logWaysOf(tlb);
        tlb.commitReplayHit(slot.set, slot.way);
        chargeRead(m4K_, lw4K, true);
        stats_.l1WayLookups4K.record(lw4K);
    } else if (cfg_.combinedFullyAssocL1) {
        const unsigned lw4K = logWaysOf(tlb);
        const unsigned d = tlb.commitReplayHit(slot.set, slot.way);
        chargeRead(m4K_, lw4K, true);
        stats_.l1WayLookups4K.record(lw4K);
        if (lite_)
            lite_->onTlbHit(0, d, true);
    } else {
        // Per-size L1s probed in parallel: replay the hit structure's
        // restamp and the other structures' (known) misses in the full
        // path's exact order, so the provenance event stream and every
        // counter match bit for bit.
        if (l1Range_ && enabledL1Range_) {
            l1Range_->noteMiss();
            chargeRead(mL1Range_, 0, false);
        }
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        if (src == HitSource::L1Page4K) {
            const unsigned d = tlb.commitReplayHit(slot.set, slot.way);
            chargeRead(m4K_, lw4K, true);
            stats_.l1WayLookups4K.record(lw4K);
            if (lite_)
                lite_->onTlbHit(0, d, true);
        } else {
            l1Page4K_->noteMiss();
            chargeRead(m4K_, lw4K, false);
            stats_.l1WayLookups4K.record(lw4K);
        }
        if (enabled2M_) {
            const unsigned lw2M = logWaysOf(*l1Page2M_);
            if (src == HitSource::L1Page2M) {
                const unsigned d = tlb.commitReplayHit(slot.set, slot.way);
                chargeRead(m2M_, lw2M, true);
                stats_.l1WayLookups2M.record(lw2M);
                if (lite_)
                    lite_->onTlbHit(1, d, true);
            } else {
                l1Page2M_->noteMiss();
                chargeRead(m2M_, lw2M, false);
                stats_.l1WayLookups2M.record(lw2M);
            }
        }
        if (enabled1G_) {
            const unsigned lw1G = logWaysOf(*l1Page1G_);
            if (src == HitSource::L1Page1G) {
                const unsigned d = tlb.commitReplayHit(slot.set, slot.way);
                chargeRead(m1G_, lw1G, true);
                if (lite_)
                    lite_->onTlbHit(2, d, true);
            } else {
                l1Page1G_->noteMiss();
                chargeRead(m1G_, lw1G, false);
            }
        }
    }

    // Entry read fresh: a replay must observe exactly what a full
    // probe of the slot would (e.g. an injected PPN corruption).
    const tlb::TlbEntry entry = tlb.entryAt(slot.set, slot.way);
    ++stats_.l1Hits;
    ++stats_.hitsBySource[static_cast<unsigned>(src)];
    ++frontHits_;
    if (checker_) {
        checkPageHit(vaddr, entry, src);
        if ((stats_.memOps & 63) == 0)
            auditWayMasks();
    }
    provEnd(hitSourceName(src), entry.shift, true);
}

void
Mmu::frontReplayRange(Addr vaddr)
{
    ++stats_.memOps;
    if (EAT_PROV_ENABLED && prov_)
        prov_->beginTranslation(stats_.instructions, coreId_, asid_, vaddr);

    const vm::RangeTranslation range =
        l1Range_->commitReplayHit(frontRange_.set);
    chargeRead(mL1Range_, 0, true);

    // Full-path rangeHit semantics: the parallel page-TLB probes burn
    // lookup energy but their entries are not used — no recency
    // refresh, no hit/miss counting, no Lite utility.
    const unsigned lw4K = logWaysOf(*l1Page4K_);
    chargeRead(m4K_, lw4K);
    stats_.l1WayLookups4K.record(lw4K);
    if (enabled2M_) {
        const unsigned lw2M = logWaysOf(*l1Page2M_);
        chargeRead(m2M_, lw2M);
        stats_.l1WayLookups2M.record(lw2M);
    }
    if (enabled1G_)
        chargeRead(m1G_, logWaysOf(*l1Page1G_));

    ++stats_.l1Hits;
    ++stats_.hitsBySource[static_cast<unsigned>(HitSource::L1Range)];
    ++frontHits_;
    if (checker_) {
        checker_->onRangeTranslation(vaddr, range.paddr(vaddr),
                                     hitSourceName(HitSource::L1Range));
        if ((stats_.memOps & 63) == 0)
            auditWayMasks();
    }
    provEnd(hitSourceName(HitSource::L1Range), 0, true);
}

void
Mmu::access(Addr vaddr)
{
    if (frontEnabled_ && frontProbe(vaddr))
        return;

    ++stats_.memOps;
    if (EAT_PROV_ENABLED && prov_)
        prov_->beginTranslation(stats_.instructions, coreId_, asid_, vaddr);

    // ------------------------------------------------------------------
    // L1: all enabled structures searched in parallel.
    // ------------------------------------------------------------------
    // Lookups run before their energy charge throughout: the charged
    // coefficient never depends on the outcome, and the provenance
    // probe event wants the hit flag.
    bool rangeHit = false;
    std::optional<vm::RangeTranslation> l1r;
    if (l1Range_ && enabledL1Range_) {
        l1r = l1Range_->lookup(vaddr, asid_);
        chargeRead(mL1Range_, 0, l1r.has_value());
        if (l1r)
            rangeHit = true;
    }

    bool pageHit = false;
    HitSource pageSource = HitSource::L1Page4K;
    tlb::TlbEntry hitEntry{};
    unsigned hitSet = 0;
    unsigned hitWay = 0;
    vm::PageSize mixedPredicted = vm::PageSize::Size4K;

    if (cfg_.mixedTlbs) {
        // The oracle's prediction also indexes the mixed L2 on a miss;
        // predicting once keeps the radix walk off the miss path.
        mixedPredicted = predictPageSize(vaddr);
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        auto res = l1Page4K_->lookupWithShift(
            vaddr, vm::pageShift(mixedPredicted), asid_);
        chargeRead(m4K_, lw4K, res.hit);
        stats_.l1WayLookups4K.record(lw4K);
        if (res.hit) {
            pageHit = true;
            pageSource = HitSource::L1Page4K;
            hitEntry = res.entry;
            hitSet = res.set;
            hitWay = res.way;
        }
    } else if (cfg_.combinedFullyAssocL1) {
        // One fully associative lookup serves every page size; Lite
        // clusters its LRU distances as pseudo-ways (§4.4).
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        auto res = l1Page4K_->lookup(vaddr, asid_);
        chargeRead(m4K_, lw4K, res.hit);
        stats_.l1WayLookups4K.record(lw4K);
        if (res.hit) {
            pageHit = true;
            pageSource = HitSource::L1Page4K;
            hitEntry = res.entry;
            hitSet = res.set;
            hitWay = res.way;
            if (lite_)
                lite_->onTlbHit(0, res.lruDistance, true);
        }
    } else if (rangeHit) {
        // The range translation provides this lookup; the parallel
        // page-TLB probes still burn lookup energy, but the entries are
        // not *used*, so their recency state is not refreshed (and Lite
        // records no utility). Without this, range-covered entries
        // would pin themselves at the MRU end forever and mask the
        // utility signal of the traffic only the page TLBs serve.
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        chargeRead(m4K_, lw4K);
        stats_.l1WayLookups4K.record(lw4K);
        if (enabled2M_) {
            const unsigned lw2M = logWaysOf(*l1Page2M_);
            chargeRead(m2M_, lw2M);
            stats_.l1WayLookups2M.record(lw2M);
        }
        if (enabled1G_)
            chargeRead(m1G_, logWaysOf(*l1Page1G_));
    } else {
        // L1-4KB TLB: always enabled.
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        auto res4k = l1Page4K_->lookup(vaddr, asid_);
        chargeRead(m4K_, lw4K, res4k.hit);
        stats_.l1WayLookups4K.record(lw4K);
        if (res4k.hit) {
            pageHit = true;
            pageSource = HitSource::L1Page4K;
            hitEntry = res4k.entry;
            hitSet = res4k.set;
            hitWay = res4k.way;
            if (lite_)
                lite_->onTlbHit(0, res4k.lruDistance, true);
        }

        if (enabled2M_) {
            const unsigned lw2M = logWaysOf(*l1Page2M_);
            auto res2m = l1Page2M_->lookup(vaddr, asid_);
            chargeRead(m2M_, lw2M, res2m.hit);
            stats_.l1WayLookups2M.record(lw2M);
            if (res2m.hit) {
                eat_assert(!pageHit, "address mapped by two page sizes");
                pageHit = true;
                pageSource = HitSource::L1Page2M;
                hitEntry = res2m.entry;
                hitSet = res2m.set;
                hitWay = res2m.way;
                if (lite_)
                    lite_->onTlbHit(1, res2m.lruDistance, true);
            }
        }
        if (enabled1G_) {
            auto res1g = l1Page1G_->lookup(vaddr, asid_);
            chargeRead(m1G_, logWaysOf(*l1Page1G_), res1g.hit);
            if (res1g.hit) {
                eat_assert(!pageHit, "address mapped by two page sizes");
                pageHit = true;
                pageSource = HitSource::L1Page1G;
                hitEntry = res1g.entry;
                hitSet = res1g.set;
                hitWay = res1g.way;
                if (lite_)
                    lite_->onTlbHit(2, res1g.lruDistance, true);
            }
        }
    }

    if (rangeHit || pageHit) {
        ++stats_.l1Hits;
        const HitSource src = rangeHit ? HitSource::L1Range : pageSource;
        ++stats_.hitsBySource[static_cast<unsigned>(src)];
        if (frontEnabled_) {
            // Remember where this hit lives so a repeat can replay it.
            if (rangeHit) {
                frontRange_ = {frontGen_, l1Range_->lastHitSlot(), 0};
            } else {
                switch (pageSource) {
                  case HitSource::L1Page4K:
                    front4K_[(vaddr >> 12) & (front4K_.size() - 1)] = {
                        frontGen_, hitSet, hitWay};
                    break;
                  case HitSource::L1Page2M:
                    front2M_[(vaddr >> 21) & (front2M_.size() - 1)] = {
                        frontGen_, hitSet, hitWay};
                    break;
                  case HitSource::L1Page1G:
                    front1G_ = {frontGen_, hitSet, hitWay};
                    break;
                  default:
                    break;
                }
            }
        }
        if (checker_) {
            if (rangeHit) {
                checker_->onRangeTranslation(vaddr, l1r->paddr(vaddr),
                                             hitSourceName(src));
            } else {
                checkPageHit(vaddr, hitEntry, src);
            }
            if ((stats_.memOps & 63) == 0)
                auditWayMasks();
        }
        provEnd(hitSourceName(src), rangeHit ? 0 : hitEntry.shift, true);
        return; // L1 hits are free (parallel with the L1 data cache).
    }

    // ------------------------------------------------------------------
    // L1 miss: the enabled L2 structures are searched in parallel.
    // ------------------------------------------------------------------
    // Every miss ends a front-cache generation: the fills (and enable
    // flips) below are exactly the state changes the replay equivalence
    // argument excludes. Between two misses, only restamps happen.
    frontClear();
    ++stats_.l1Misses;
    stats_.l1MissCycles += cfg_.l2HitLatency;
    if (lite_)
        lite_->onL1Miss();

    std::optional<vm::RangeTranslation> l2r;
    if (l2Range_ && enabledL2Range_) {
        l2r = l2Range_->lookup(vaddr, asid_);
        chargeRead(mL2Range_, 0, l2r.has_value());
    }

    tlb::TlbLookupResult l2res;
    if (cfg_.mixedTlbs) {
        l2res = l2Page_->lookupWithShift(
            vaddr, vm::pageShift(mixedPredicted), asid_);
    } else {
        // The L2 TLB holds 4 KB entries only (Sandy Bridge, Table 1);
        // 2 MB translations live solely in the L1-2MB TLB.
        l2res = l2Page_->lookup(vaddr, asid_);
    }
    chargeRead(mL2_, 0, l2res.hit);

    if (l2r) {
        // L2-range hit: copy the range into the L1-range TLB, plus the
        // corresponding page-table entry into the L1-page TLBs (RMM).
        // The PTE is synthesized from the range translation at the
        // page size the page table uses for this address — the two
        // mappings are redundant by construction.
        ++stats_.l2Hits;
        ++stats_.hitsBySource[static_cast<unsigned>(HitSource::L2Range)];
        if (l3Cache_)
            l3Cache_->noteL2Hit();
        if (checker_) {
            checker_->onRangeTranslation(
                vaddr, l2r->paddr(vaddr),
                hitSourceName(HitSource::L2Range));
        }
        if (l1Range_) {
            if (!enabledL1Range_) {
                enabledL1Range_ = true;
                leakCache_.valid = false;
            }
            chargeWrite(mL1Range_);
            provEvict(mL1Range_, l1Range_->fill(*l2r, asid_));
        }
        auto t = pageTable_->translate(vaddr);
        if (!t)
            eat_panic("range translation without page mapping at ", vaddr);
        fillL1Page(tlb::makePageEntry(vaddr, t->pbase, t->size, asid_));
        provEnd(hitSourceName(HitSource::L2Range),
                vm::pageShift(t->size), false);
        return;
    }
    if (l2res.hit) {
        ++stats_.l2Hits;
        ++stats_.hitsBySource[static_cast<unsigned>(HitSource::L2Page)];
        if (l3Cache_)
            l3Cache_->noteL2Hit();
        if (checker_)
            checkPageHit(vaddr, l2res.entry, HitSource::L2Page);
        fillL1Page(l2res.entry);
        provEnd(hitSourceName(HitSource::L2Page), l2res.entry.shift,
                false);
        return;
    }

    // ------------------------------------------------------------------
    // L2 miss: L3 tier (when configured), then the page walk (plus
    // background range-table walk under RMM).
    // ------------------------------------------------------------------
    ++stats_.l2Misses;

    // An L3 hit serves the translation at L3-probe cost and skips the
    // walk entirely (and, under RMM, the background range walk — the
    // tier answers before either walker is engaged).
    if ((l3Cache_ || l3Dram_) && probeL3(vaddr))
        return;

    stats_.walkCycles += cfg_.pageWalkLatency;
    ++stats_.hitsBySource[static_cast<unsigned>(HitSource::PageWalk)];

    // Under nested paging the walk is two-dimensional; its guest
    // dimension is charged below exactly like a flat walk, and the
    // host dimension is charged afterwards (zero in identity mode).
    vm::NestedWalkResult nested;
    if (nestedWalker_)
        nested = nestedWalker_->walk(vaddr, asid_);
    const auto walk =
        nestedWalker_ ? tlb::WalkResult{nested.translation, nested.guestCache}
                      : walker_.walk(vaddr);

    // All three paging-structure caches are probed in parallel.
    chargeRead(mPde_, 0, walk.cache.hitPde);
    chargeRead(mPdpte_, 0, walk.cache.hitPdpte);
    chargeRead(mPml4_, 0, walk.cache.hitPml4);
    if (walk.cache.filledPde)
        chargeWrite(mPde_);
    if (walk.cache.filledPdpte)
        chargeWrite(mPdpte_);
    if (walk.cache.filledPml4)
        chargeWrite(mPml4_);

    stats_.walkMemRefs += walk.cache.memRefs;
    chargeWalkMemory(walk.cache.memRefs, false,
                     tlb::MmuCache::leafLevel(walk.translation.size));
    if (nested.hostWalkCount > 0)
        chargeNestedWalk(nested);

    const auto entry = tlb::makePageEntry(
        vaddr, walk.translation.pbase, walk.translation.size, asid_);
    if (checker_)
        checkPageHit(vaddr, entry, HitSource::PageWalk);
    fillL1Page(entry);
    // The L2 TLB holds 4 KB entries only (Sandy Bridge), except for
    // TLB_PP's mixed L2.
    if (cfg_.mixedTlbs || entry.size == vm::PageSize::Size4K) {
        chargeWrite(mL2_, 0, entry.shift);
        provEvict(mL2_, l2Page_->fill(entry));
    }
    if (l3Cache_ || l3Dram_)
        fillL3(entry);

    if (rangeWalker_) {
        // The range-table walk happens in the background: dynamic
        // energy, zero cycles (paper §5).
        const auto rw = rangeWalker_->walk(vaddr);
        ++stats_.rangeWalks;
        stats_.rangeWalkMemRefs += rw.memRefs;
        chargeWalkMemory(rw.memRefs, true);
        if (rw.range && l2Range_) {
            if (!enabledL2Range_) {
                enabledL2Range_ = true;
                leakCache_.valid = false;
            }
            chargeWrite(mL2Range_);
            provEvict(mL2Range_, l2Range_->fill(*rw.range, asid_));
        }
    }
    provEnd(hitSourceName(HitSource::PageWalk), entry.shift, false);
}

bool
Mmu::probeL3(Addr vaddr)
{
    ++stats_.l3Probes;
    bool hit = false;
    tlb::TlbEntry entry{};
    if (l3Cache_) {
        stats_.walkCycles += cfg_.l3Cache.probeLatency;
        const auto res = l3Cache_->lookup(vaddr, asid_);
        chargeRead(mL3_, 0, res.hit);
        hit = res.hit;
        entry = res.entry;
    } else {
        const auto res = l3Dram_->probe(vaddr, asid_);
        // The SRAM tag cache is probed on every access; the DRAM array
        // only when the tags could not prove the translation absent.
        stats_.walkCycles += cfg_.l3Dram.tagLatency;
        chargeRead(mDram_, 0, res.tagCacheHit);
        if (res.tagCacheHit)
            ++stats_.dramTagHits;
        if (res.dramAccessed) {
            ++stats_.dramAccesses;
            stats_.walkCycles += cfg_.l3Dram.dramLatency;
            chargeRead(mDram_, 1, res.hit);
        }
        hit = res.hit;
        entry = res.entry;
    }
    if (!hit) {
        ++stats_.l3Misses;
        return false;
    }

    ++stats_.l3Hits;
    // Tier-served translations count under the walk bucket: the
    // frozen HitSource enum keeps digests stable, and the identities
    // "bySource sums to memOps" and "walk-bucket hits == l2Misses"
    // keep holding with the tier on.
    ++stats_.hitsBySource[static_cast<unsigned>(HitSource::PageWalk)];
    const std::string_view source = l3Cache_ ? "l3-tlb" : "dram-tlb";
    if (checker_) {
        checker_->onPageTranslation(vaddr, entry.paddr(vaddr), entry.size,
                                    source);
    }
    fillL1Page(entry);
    // The tier holds 4 KB entries, which the L2 TLB accepts in every
    // organization (mixed L2s accept all sizes).
    chargeWrite(mL2_, 0, entry.shift);
    provEvict(mL2_, l2Page_->fill(entry));
    provEnd(source, entry.shift, false);
    return true;
}

void
Mmu::fillL3(const tlb::TlbEntry &entry)
{
    // The tier holds 4 KB-granule translations only; huge-page walks
    // bypass it (their reach is not the binding constraint).
    if (entry.size != vm::PageSize::Size4K)
        return;
    if (l3Cache_) {
        if (!l3Cache_->admitOnWalk())
            return;
        chargeWrite(mL3_, 0, entry.shift);
        const bool evicted = l3Cache_->fill(entry);
        provEvict(mL3_, evicted);
        ++stats_.l3Fills;
        if (evicted)
            ++stats_.l3Evictions;
    } else {
        chargeWrite(mDram_, 1, entry.shift);
        const bool evicted = l3Dram_->fill(entry);
        provEvict(mDram_, evicted);
        ++stats_.l3Fills;
        if (evicted)
            ++stats_.l3Evictions;
    }
}

void
Mmu::switchContext(tlb::Asid asid, const vm::PageTable &pageTable,
                   const vm::RangeTable *rangeTable, bool flushTlbs)
{
    if (asid == asid_ && &pageTable == pageTable_)
        return; // same address space: nothing reloads
    frontClear(); // the memos are tagged with the outgoing space
    ++stats_.contextSwitches;
    asid_ = asid;
    pageTable_ = &pageTable;
    rangeTable_ = rangeTable;
    walker_.setPageTable(pageTable);
    if (nestedWalker_)
        nestedWalker_->setPageTable(pageTable);
    if (rangeWalker_) {
        eat_assert(rangeTable != nullptr,
                   "context switch dropped the range table of a "
                   "range-TLB configuration");
        rangeWalker_->setRangeTable(*rangeTable);
    }
    // The paging-structure caches are untagged (as on x86 parts):
    // a CR3 reload flushes them in both modes. The host PWC survives —
    // EPT caches are keyed on guest-physical addresses, which a guest
    // CR3 reload does not revoke.
    mmuCache_.flush();
    if (flushTlbs) {
        l1Page4K_->invalidateAll();
        if (l1Page2M_)
            l1Page2M_->invalidateAll();
        if (l1Page1G_)
            l1Page1G_->invalidateAll();
        l2Page_->invalidateAll();
        if (l1Range_)
            l1Range_->invalidateAll();
        if (l2Range_)
            l2Range_->invalidateAll();
        if (l3Cache_)
            l3Cache_->invalidateAll();
        if (l3Dram_)
            l3Dram_->invalidateAll();
    }
    if (checker_)
        checker_->setActiveAsid(asid);
}

unsigned
Mmu::shootdownInvalidate(Addr vbase, Addr vlimit, tlb::Asid asid,
                         bool initiator)
{
    // The remap behind this shootdown may change translations (and,
    // under TLB_PP, page-size predictions) without touching any
    // surviving TLB entry the memos point at: drop them all.
    frontClear();
    unsigned n = l1Page4K_->invalidateRange(vbase, vlimit, asid);
    if (l1Page2M_)
        n += l1Page2M_->invalidateRange(vbase, vlimit, asid);
    if (l1Page1G_)
        n += l1Page1G_->invalidateRange(vbase, vlimit, asid);
    n += l2Page_->invalidateRange(vbase, vlimit, asid);
    if (l1Range_)
        n += l1Range_->invalidateRange(vbase, vlimit, asid);
    if (l2Range_)
        n += l2Range_->invalidateRange(vbase, vlimit, asid);
    if (l3Cache_)
        n += l3Cache_->invalidateRange(vbase, vlimit, asid);
    if (l3Dram_)
        n += l3Dram_->invalidateRange(vbase, vlimit, asid);
    // The paging-structure caches hold upper-level PTEs of the remapped
    // region; they are untagged, so the whole cache goes.
    mmuCache_.flush();
    // shootdownsReceived counts IPIs taken; under hardware coherence
    // the same architectural invalidation arrives as a filter message,
    // counted by receiveCoherenceInvalidation() on targeted cores only.
    if (!initiator && !cfg_.hwCoherence)
        ++stats_.shootdownsReceived;
    stats_.shootdownInvalidations += n;
    return n;
}

void
Mmu::chargeShootdown(unsigned remoteCores, unsigned entriesInvalidated)
{
    ++stats_.shootdownsInitiated;
    stats_.shootdownCycles +=
        cfg_.shootdownBaseCycles +
        cfg_.shootdownPerCoreCycles * remoteCores;
    const PicoJoules pj =
        cfg_.shootdownPerCorePj * static_cast<double>(remoteCores) +
        cfg_.shootdownPerEntryPj * static_cast<double>(entriesInvalidated);
    stats_.shootdownEnergyPj += pj;
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, 0, pj, obs::ProvKind::Shootdown,
                     obs::ProvStruct::Shootdown, coreId_, asid_, 0, false,
                     remoteCores, entriesInvalidated});
    }
}

void
Mmu::chargeCoherenceProbe(unsigned targetCores, unsigned entriesInvalidated,
                          std::uint64_t version, Addr vbase)
{
    ++stats_.cohProbes;
    stats_.cohTargetedCores += targetCores;
    stats_.cohCycles +=
        cfg_.cohProbeCycles + cfg_.cohPerCoreCycles * targetCores;
    const PicoJoules pj =
        cfg_.cohProbePj +
        cfg_.cohPerCorePj * static_cast<double>(targetCores) +
        cfg_.cohPerEntryPj * static_cast<double>(entriesInvalidated);
    stats_.cohEnergyPj += pj;
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, vbase, pj, obs::ProvKind::CohProbe,
                     obs::ProvStruct::Coherence, coreId_, asid_, 0, false,
                     targetCores, entriesInvalidated, version});
    }
}

void
Mmu::checkPageHit(Addr vaddr, const tlb::TlbEntry &entry, HitSource src)
{
    checker_->onPageTranslation(vaddr, entry.paddr(vaddr), entry.size,
                                hitSourceName(src));
}

void
Mmu::auditWayMasks()
{
    checker_->auditWayMask(*l1Page4K_);
    if (l1Page2M_)
        checker_->auditWayMask(*l1Page2M_);
    if (l1Page1G_)
        checker_->auditWayMask(*l1Page1G_);
    checker_->auditWayMask(*l2Page_);
}

MilliWatts
Mmu::leakagePower(bool gated) const
{
    auto leak = [gated](const Metered &m, unsigned logWays) {
        const auto idx =
            gated ? logWays
                  : static_cast<unsigned>(m.coeffByLogWays.size() - 1);
        return idx < m.coeffByLogWays.size()
                   ? m.coeffByLogWays[idx].leakage
                   : 0.0;
    };
    MilliWatts total = leak(m4K_, logWaysOf(*l1Page4K_)) + leak(mL2_, 0) +
                       leak(mPde_, 0) + leak(mPdpte_, 0) +
                       leak(mPml4_, 0);
    if (l1Page2M_ && enabled2M_)
        total += leak(m2M_, logWaysOf(*l1Page2M_));
    if (l1Page1G_ && enabled1G_)
        total += leak(m1G_, logWaysOf(*l1Page1G_));
    if (l1Range_ && enabledL1Range_)
        total += leak(mL1Range_, 0);
    if (l2Range_ && enabledL2Range_)
        total += leak(mL2Range_, 0);
    // L3 tier leakage is constant while configured (reserved-share
    // model for the cache substrate, SRAM tag cache for DRAM), so the
    // leakage memo's key needs no new inputs.
    if (l3Cache_)
        total += leak(mL3_, 0);
    if (l3Dram_)
        total += leak(mDram_, 0);
    return total;
}

void
Mmu::tickSlow(InstrCount n)
{
    stats_.instructions += n;

    // Static energy (paper §6.2): with a base CPI of 1, n instructions
    // take n / f nanoseconds, and pJ = mW * ns. The leakage powers are
    // memoized on their only inputs (way masks and enable masks); the
    // mutation sites clear leakCache_.valid, and the recompute below
    // doubles as a cross-check when only a no-op restamp happened. The
    // cached doubles are exactly leakagePower()'s returns, so the
    // integrals are unchanged.
    const unsigned lw4K = logWaysOf(*l1Page4K_);
    const unsigned lw2M = l1Page2M_ ? logWaysOf(*l1Page2M_) : 0;
    const unsigned lw1G = l1Page1G_ ? logWaysOf(*l1Page1G_) : 0;
    const std::uint8_t enabled = static_cast<std::uint8_t>(
        (enabled2M_ ? 1 : 0) | (enabled1G_ ? 2 : 0) |
        (enabledL1Range_ ? 4 : 0) | (enabledL2Range_ ? 8 : 0));
    if (!leakCache_.valid || leakCache_.lw4K != lw4K ||
        leakCache_.lw2M != lw2M || leakCache_.lw1G != lw1G ||
        leakCache_.enabled != enabled) {
        leakCache_ = {true,    lw4K, lw2M, lw1G, enabled,
                      leakagePower(true), leakagePower(false)};
        tickDeltas_ = {};
    }
    if (n < kTickDeltaSlots) {
        TickDelta &d = tickDeltas_[n];
        if (!d.valid) {
            const double ns = static_cast<double>(n) / cfg_.clockGhz;
            d = {true, leakCache_.gated * ns, leakCache_.full * ns};
        }
        staticGatedPj_ += d.gatedPj;
        staticFullPj_ += d.fullPj;
    } else {
        const double ns = static_cast<double>(n) / cfg_.clockGhz;
        staticGatedPj_ += leakCache_.gated * ns;
        staticFullPj_ += leakCache_.full * ns;
    }

    // The interval clock drives Lite decisions and telemetry records;
    // it runs only when at least one consumer is attached.
    if (!lite_ && !telemetry_)
        return;
    instrTowardInterval_ += n;
    tickIntervals();
}

void
Mmu::tickIntervals()
{
    const auto interval = cfg_.lite.intervalInstructions;
    while (instrTowardInterval_ >= interval) {
        if (lite_) {
            lite_->onIntervalEnd(interval);
            // Lite may have resized: the leakage coefficients (and the
            // per-gap deltas derived from them) must be recomputed.
            leakCache_.valid = false;
        }
        instrTowardInterval_ -= interval;
        // Lite may just have resized. The replay path re-reads way
        // masks on every hit, but dropping the memos keeps the
        // generation invariant at its simplest: within one generation,
        // nothing but LRU restamps happens to the L1 structures.
        frontClear();
        // Emit after Lite's decision so the way-mask reflects it.
        if (telemetry_)
            emitIntervalRecord(interval);
    }
}

void
Mmu::registerMetrics(obs::MetricRegistry &registry,
                     const std::string &prefix) const
{
    // Every name below goes through @p name so one registry can hold
    // several cores ("core0.mmu.mem_ops", ...); the single-core prefix
    // is empty and the names are unchanged.
    auto name = [&prefix](const char *n) { return prefix + n; };

    // Datapath event counters.
    registry.addCounter(name("mmu.instructions"), &stats_.instructions);
    registry.addCounter(name("mmu.mem_ops"), &stats_.memOps);
    registry.addCounter(name("mmu.l1_hits"), &stats_.l1Hits);
    registry.addCounter(name("mmu.l1_misses"), &stats_.l1Misses);
    registry.addCounter(name("mmu.l2_hits"), &stats_.l2Hits);
    registry.addCounter(name("mmu.l2_misses"), &stats_.l2Misses);
    registry.addCounter(name("mmu.walk_mem_refs"), &stats_.walkMemRefs);
    registry.addCounter(name("mmu.range_walks"), &stats_.rangeWalks);
    registry.addCounter(name("mmu.range_walk_mem_refs"),
                        &stats_.rangeWalkMemRefs);
    if (nestedWalker_) {
        registry.addCounter(name("mmu.host_walks"), &stats_.hostWalks);
        registry.addCounter(name("mmu.host_walk_mem_refs"),
                            &stats_.hostWalkMemRefs);
    }
    if (l3Cache_ || l3Dram_) {
        registry.addCounter(name("mmu.l3_probes"), &stats_.l3Probes);
        registry.addCounter(name("mmu.l3_hits"), &stats_.l3Hits);
        registry.addCounter(name("mmu.l3_misses"), &stats_.l3Misses);
        registry.addCounter(name("mmu.l3_fills"), &stats_.l3Fills);
        registry.addCounter(name("mmu.l3_evictions"), &stats_.l3Evictions);
    }
    if (l3Dram_) {
        registry.addCounter(name("mmu.dram_tag_hits"),
                            &stats_.dramTagHits);
        registry.addCounter(name("mmu.dram_accesses"),
                            &stats_.dramAccesses);
    }
    registry.addCounter(name("mmu.l1_miss_cycles"), &stats_.l1MissCycles);
    registry.addCounter(name("mmu.walk_cycles"), &stats_.walkCycles);
    registry.addCounter(name("mmu.context_switches"),
                        &stats_.contextSwitches);
    registry.addCounter(name("mmu.shootdowns_initiated"),
                        &stats_.shootdownsInitiated);
    registry.addCounter(name("mmu.shootdowns_received"),
                        &stats_.shootdownsReceived);
    registry.addCounter(name("mmu.shootdown_invalidations"),
                        &stats_.shootdownInvalidations);
    registry.addCounter(name("mmu.shootdown_cycles"),
                        &stats_.shootdownCycles);
    registry.addCounter(name("mmu.coh_probes"), &stats_.cohProbes);
    registry.addCounter(name("mmu.coh_targeted_cores"),
                        &stats_.cohTargetedCores);
    registry.addCounter(name("mmu.coh_invalidations_received"),
                        &stats_.cohInvalidationsReceived);
    registry.addCounter(name("mmu.coh_cycles"), &stats_.cohCycles);

    static constexpr std::array<std::string_view,
                                static_cast<unsigned>(HitSource::Count)>
        kSourceNames{"l1_page4k", "l1_page2m", "l1_page1g", "l1_range",
                     "l2_page",   "l2_range",  "page_walk"};
    for (unsigned i = 0; i < kSourceNames.size(); ++i) {
        registry.addCounter(
            name("mmu.hits.") + std::string(kSourceNames[i]),
            &stats_.hitsBySource[i]);
    }

    registry.addHistogram(name("mmu.l1_way_lookups_4k"),
                          &stats_.l1WayLookups4K);
    if (l1Page2M_) {
        registry.addHistogram(name("mmu.l1_way_lookups_2m"),
                              &stats_.l1WayLookups2M);
    }

    // Per-structure hit/miss/fill counters (accessor-backed closures).
    auto addPageTlb = [&registry](std::string prefix,
                                  const tlb::SetAssocTlb *t) {
        registry.addCounter(prefix + ".hits", [t] { return t->hits(); });
        registry.addCounter(prefix + ".misses",
                            [t] { return t->misses(); });
        registry.addCounter(prefix + ".fills", [t] { return t->fills(); });
        registry.addCounter(prefix + ".resizes",
                            [t] { return t->resizes(); });
        registry.addGauge(prefix + ".active_ways", [t] {
            return static_cast<double>(t->activeWays());
        });
    };
    auto addRangeTlb = [&registry](std::string prefix,
                                   const tlb::RangeTlb *t) {
        registry.addCounter(prefix + ".hits", [t] { return t->hits(); });
        registry.addCounter(prefix + ".misses",
                            [t] { return t->misses(); });
        registry.addCounter(prefix + ".fills", [t] { return t->fills(); });
    };

    addPageTlb(name("l1.tlb4k"), l1Page4K_.get());
    if (l1Page2M_)
        addPageTlb(name("l1.tlb2m"), l1Page2M_.get());
    if (l1Page1G_)
        addPageTlb(name("l1.tlb1g"), l1Page1G_.get());
    addPageTlb(name("l2.tlb"), l2Page_.get());
    if (l1Range_)
        addRangeTlb(name("l1.range"), l1Range_.get());
    if (l2Range_)
        addRangeTlb(name("l2.range"), l2Range_.get());

    // Energy: totals plus per-structure meters.
    registry.addGauge(name("energy.dynamic_pj"),
                      [this] { return dynamicEnergyTotal(); });
    registry.addGauge(name("energy.leakage_mw"),
                      [this] { return leakagePower(true); });
    registry.addGauge(name("energy.static_gated_pj"),
                      [this] { return staticGatedPj_; });
    registry.addGauge(name("energy.static_full_pj"),
                      [this] { return staticFullPj_; });
    registry.addGauge(name("energy.shootdown_pj"),
                      [this] { return stats_.shootdownEnergyPj; });
    registry.addGauge(name("energy.coherence_pj"),
                      [this] { return stats_.cohEnergyPj; });

    auto addMeter = [&registry](std::string prefix,
                                const energy::EnergyMeter *m) {
        registry.addCounter(prefix + ".reads", [m] { return m->reads(); });
        registry.addCounter(prefix + ".writes",
                            [m] { return m->writes(); });
        registry.addGauge(prefix + ".read_pj",
                          [m] { return m->readEnergy(); });
        registry.addGauge(prefix + ".write_pj",
                          [m] { return m->writeEnergy(); });
    };
    addMeter(name("energy.l1_tlb4k"), &m4K_.meter);
    if (l1Page2M_) {
        addMeter(name("energy.l1_tlb2m"), &m2M_.meter);
        addMeter(name("energy.l1_tlb1g"), &m1G_.meter);
    }
    addMeter(name("energy.l2_tlb"), &mL2_.meter);
    if (l1Range_)
        addMeter(name("energy.l1_range"), &mL1Range_.meter);
    if (l2Range_)
        addMeter(name("energy.l2_range"), &mL2Range_.meter);
    addMeter(name("energy.mmu_pde"), &mPde_.meter);
    addMeter(name("energy.mmu_pdpte"), &mPdpte_.meter);
    addMeter(name("energy.mmu_pml4"), &mPml4_.meter);
    addMeter(name("energy.walk_mem"), &walkMemMeter_);
    if (rangeWalker_)
        addMeter(name("energy.range_walk_mem"), &rangeWalkMemMeter_);
    if (nestedWalker_) {
        addMeter(name("energy.host_pwc"), &mHostPwc_.meter);
        addMeter(name("energy.host_walk_mem"), &hostWalkMemMeter_);
    }
    if (l3Cache_)
        addMeter(name("energy.l3_tlb"), &mL3_.meter);
    if (l3Dram_)
        addMeter(name("energy.dram_tlb"), &mDram_.meter);

    if (lite_)
        lite_->registerMetrics(registry, prefix);
}

void
Mmu::setTelemetry(obs::TelemetrySink *sink)
{
    telemetry_ = sink;
}

void
Mmu::setTrace(obs::TraceWriter *trace)
{
    trace_ = trace;
    if (trace_)
        trace_->registerClock(coreId_, &stats_.instructions);
    if (lite_)
        lite_->setTrace(trace, coreId_);
}

void
Mmu::setInjectStats(const check::InjectStats *stats)
{
    injectStats_ = stats;
}

void
Mmu::setProvenance(obs::ProvenanceSink *sink)
{
    prov_ = obs::kProvenanceCompiledIn ? sink : nullptr;
    if (lite_) {
        // Lite's resize hook mirrors the ctor's monitored-TLB order.
        std::vector<obs::ProvStruct> ids{obs::ProvStruct::L1Tlb4K};
        if (l1Page2M_)
            ids.push_back(obs::ProvStruct::L1Tlb2M);
        if (l1Page1G_)
            ids.push_back(obs::ProvStruct::L1Tlb1G);
        lite_->setProvenance(prov_, coreId_, &stats_.instructions,
                             std::move(ids));
    }
}

PicoJoules
Mmu::dynamicEnergyTotal() const
{
    // Summation order == ProvStruct enum order (reconciliation replays
    // this exact IEEE addition sequence); host and L3 meters append
    // last and read 0.0 in flat / identity-host / --l3=none runs, so
    // adding them is bit-identical to the pre-L3 sum there.
    return m4K_.meter.total() + m2M_.meter.total() + m1G_.meter.total() +
           mL2_.meter.total() + mL1Range_.meter.total() +
           mL2Range_.meter.total() + mPde_.meter.total() +
           mPdpte_.meter.total() + mPml4_.meter.total() +
           walkMemMeter_.total() + rangeWalkMemMeter_.total() +
           mHostPwc_.meter.total() + hostWalkMemMeter_.total() +
           mL3_.meter.total() + mDram_.meter.total();
}

void
Mmu::emitIntervalRecord(InstrCount intervalInstructions)
{
    obs::IntervalRecord rec;
    rec.core = coreId_;
    rec.interval = intervalIndex_++;
    rec.startInstr = lastInterval_.instructions;
    rec.instructions = intervalInstructions;

    // Interval deltas. A tick retiring several intervals at once books
    // all its events into the first one it closes; the rest read zero.
    rec.memOps = stats_.memOps - lastInterval_.memOps;
    rec.l1Hits = stats_.l1Hits - lastInterval_.l1Hits;
    rec.l1Misses = stats_.l1Misses - lastInterval_.l1Misses;
    rec.l2Hits = stats_.l2Hits - lastInterval_.l2Hits;
    rec.l2Misses = stats_.l2Misses - lastInterval_.l2Misses;
    rec.hostWalkRefs = stats_.hostWalkMemRefs - lastInterval_.hostWalkRefs;
    rec.l3Probes = stats_.l3Probes - lastInterval_.l3Probes;
    rec.l3Hits = stats_.l3Hits - lastInterval_.l3Hits;
    const Cycles missCycles = stats_.tlbMissCycles();
    rec.missCycles = missCycles - lastInterval_.missCycles;
    const PicoJoules dynamicPj = dynamicEnergyTotal();
    rec.dynamicPj = dynamicPj - lastInterval_.dynamicPj;

    const double kilo = static_cast<double>(intervalInstructions) / 1000.0;
    rec.l1Mpki = kilo > 0.0 ? static_cast<double>(rec.l1Misses) / kilo : 0.0;
    rec.l2Mpki = kilo > 0.0 ? static_cast<double>(rec.l2Misses) / kilo : 0.0;
    rec.l1HitRatio =
        rec.memOps > 0 ? static_cast<double>(rec.l1Hits) /
                             static_cast<double>(rec.memOps)
                       : 0.0;
    const std::uint64_t l2Lookups = rec.l2Hits + rec.l2Misses;
    rec.l2HitRatio =
        l2Lookups > 0 ? static_cast<double>(rec.l2Hits) /
                            static_cast<double>(l2Lookups)
                      : 0.0;

    rec.wayMask.emplace_back(l1Page4K_->name(), l1Page4K_->activeWays());
    if (l1Page2M_)
        rec.wayMask.emplace_back(l1Page2M_->name(),
                                 l1Page2M_->activeWays());
    if (l1Page1G_)
        rec.wayMask.emplace_back(l1Page1G_->name(),
                                 l1Page1G_->activeWays());

    std::uint64_t mismatches = 0;
    if (checker_) {
        mismatches = checker_->stats().mismatches();
        rec.checkMismatches = mismatches - lastInterval_.checkMismatches;
    }
    std::uint64_t injected = 0;
    if (injectStats_) {
        injected = injectStats_->injected();
        rec.faultsInjected = injected - lastInterval_.faultsInjected;
    }

    lastInterval_.instructions += intervalInstructions;
    lastInterval_.memOps = stats_.memOps;
    lastInterval_.l1Hits = stats_.l1Hits;
    lastInterval_.l1Misses = stats_.l1Misses;
    lastInterval_.l2Hits = stats_.l2Hits;
    lastInterval_.l2Misses = stats_.l2Misses;
    lastInterval_.hostWalkRefs = stats_.hostWalkMemRefs;
    lastInterval_.l3Probes = stats_.l3Probes;
    lastInterval_.l3Hits = stats_.l3Hits;
    lastInterval_.missCycles = missCycles;
    lastInterval_.dynamicPj = dynamicPj;
    lastInterval_.checkMismatches = mismatches;
    lastInterval_.faultsInjected = injected;

    // The interval marker carries the same delta telemetry writes, so
    // eatreport can reconcile the two streams row by row.
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, rec.interval, rec.dynamicPj,
                     obs::ProvKind::Interval, obs::ProvStruct::None,
                     coreId_, asid_, 0, false, 0, 0});
    }

    telemetry_->emit(rec);
}

energy::EnergyReport
Mmu::energyReport() const
{
    energy::EnergyReport report;
    auto addStruct = [&report](const std::string &name, const Metered &m,
                               PicoJoules &category) {
        if (m.meter.reads() == 0 && m.meter.writes() == 0)
            return;
        category += m.meter.total();
        report.structs.push_back({name, m.meter.reads(), m.meter.writes(),
                                  m.meter.readEnergy(),
                                  m.meter.writeEnergy(), m.id});
    };

    auto &b = report.breakdown;
    addStruct(l1Page4K_->name(), m4K_, b.l1Tlb);
    if (l1Page2M_)
        addStruct(l1Page2M_->name(), m2M_, b.l1Tlb);
    if (l1Page1G_)
        addStruct(l1Page1G_->name(), m1G_, b.l1Tlb);
    if (l1Range_)
        addStruct(l1Range_->name(), mL1Range_, b.l1Tlb);
    addStruct(l2Page_->name(), mL2_, b.l2Tlb);
    if (l2Range_)
        addStruct(l2Range_->name(), mL2Range_, b.l2Tlb);
    addStruct("MMU-cache-PDE", mPde_, b.mmuCache);
    addStruct("MMU-cache-PDPTE", mPdpte_, b.mmuCache);
    addStruct("MMU-cache-PML4", mPml4_, b.mmuCache);

    // The walk-style meters share one row shape: read-only references
    // whose row appears only when the meter was touched, so untouched
    // meters leave the report — hence the digest — unchanged. (The
    // category starts at 0.0 and every addend is >= 0, so += matches
    // the old direct assignment bit for bit.)
    auto addMemMeter = [&report](const std::string &name,
                                 const energy::EnergyMeter &m,
                                 obs::ProvStruct id, PicoJoules &category) {
        category += m.total();
        if (m.reads() == 0)
            return;
        report.structs.push_back(
            {name, m.reads(), 0, m.readEnergy(), 0.0, id});
    };

    addMemMeter("page-walk memory", walkMemMeter_, obs::ProvStruct::WalkMem,
                b.pageWalkMem);
    addMemMeter("range-walk memory", rangeWalkMemMeter_,
                obs::ProvStruct::RangeWalkMem, b.rangeWalkMem);

    // Host (nested-paging) dimension: zero reads in flat and
    // identity-host runs, so the rows are skipped there.
    addStruct("host-PWC", mHostPwc_, b.mmuCache);
    addMemMeter("host-walk memory", hostWalkMemMeter_,
                obs::ProvStruct::HostWalkMem, b.hostWalkMem);

    // L3 translation tier (rows appear only when a tier ran).
    addStruct("L3-cache TLB", mL3_, b.l3Tlb);
    addStruct("DRAM TLB", mDram_, b.l3Tlb);

    // Leakage of the currently active configuration and the static
    // energy integrals (companion metrics; the headline results are
    // dynamic energy).
    report.leakagePower = leakagePower(true);
    report.staticEnergyGated = staticGatedPj_;
    report.staticEnergyFull = staticFullPj_;

    return report;
}

} // namespace eat::core
